// Shard replica process for distributed serving (serve::Coordinator tier).
//
// Stands up one replica of a serving fleet: loads a SeqFM checkpoint,
// computes its parameter fingerprint (serve::ParameterVersion — the
// model_version replicas announce in the RPC handshake), and serves its
// slice of the identity catalog through Predictor -> BatchServer ->
// RpcServer in replica mode. The owned slice is derived from
// ShardedCatalog::Bounds(items, num_shards) at shard_index, so every
// replica configured with the same (items, num_shards) agrees on every
// boundary without coordination.
//
// The process prints "PORT <p>\n" once listening (a parent that launched it
// with --port=0 reads the ephemeral port from here), then blocks reading
// stdin; EOF — the parent closing the pipe or exiting — triggers a drain
// Shutdown. Multi-process parity tests (tests/serve_dist_test.cc) and the
// bench_loadgen coordinator smoke leg drive it exactly this way.
//
//   seqfm_replica --checkpoint=ckpt.bin --shard-index=1 --num-shards=3
//                 --users=50 --items=120 --dim=16 --max-seq-len=20 --port=0
#include <cstdio>
#include <string>

#include "core/seqfm.h"
#include "data/dataset.h"
#include "serve/checkpoint.h"
#include "serve/predictor.h"
#include "serve/rpc_server.h"
#include "serve/server.h"
#include "util/failpoint.h"
#include "util/flags.h"

using namespace seqfm;

int main(int argc, char** argv) {
  // Server-side fault injection: the chaos harness launches replicas with
  // SEQFM_FAILPOINTS in the environment to arm schedules on this process's
  // I/O sites (rpc.server.read, rpc.server.shard.drop, ...).
  util::FailPoint::ArmFromEnv();
  FlagParser flags;
  if (auto st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const std::string checkpoint = flags.GetString("checkpoint", "");
  const auto shard_index = static_cast<uint32_t>(flags.GetInt("shard-index", 0));
  const auto num_shards = static_cast<uint32_t>(flags.GetInt("num-shards", 1));
  const auto port = static_cast<uint16_t>(flags.GetInt("port", 0));
  const auto users = static_cast<size_t>(flags.GetInt("users", 0));
  const auto items = static_cast<size_t>(flags.GetInt("items", 0));
  const auto dim = static_cast<size_t>(flags.GetInt("dim", 16));
  const auto max_seq_len = static_cast<size_t>(flags.GetInt("max-seq-len", 20));
  if (checkpoint.empty() || users == 0 || items == 0) {
    std::fprintf(stderr,
                 "usage: seqfm_replica --checkpoint=PATH --users=N --items=N "
                 "[--shard-index=I --num-shards=S --dim=D --max-seq-len=L "
                 "--port=P]\n");
    return 1;
  }

  // The architecture comes from the flags, the parameters from the
  // checkpoint; every replica of a fleet is launched with identical
  // geometry, so their parameter fingerprints agree iff their checkpoint
  // bytes do.
  data::FeatureSpace space(users, items);
  data::BatchBuilder builder(space, max_seq_len);
  core::SeqFmConfig config;
  config.embedding_dim = dim;
  config.max_seq_len = max_seq_len;
  core::SeqFm model(space, config);
  if (auto st = serve::Checkpoint::Load(&model, checkpoint); !st.ok()) {
    std::fprintf(stderr, "replica: %s\n", st.ToString().c_str());
    return 1;
  }

  serve::PredictorOptions pred_opts;
  pred_opts.context_cache_bytes = 8 << 20;
  serve::Predictor predictor(&model, &builder, pred_opts);
  serve::BatchServer batch(&predictor);
  serve::RpcServerOptions rpc_opts;
  rpc_opts.port = port;
  rpc_opts.catalog_size = items;  // replica mode: serve one catalog slice
  rpc_opts.shard_index = shard_index;
  rpc_opts.num_shards = num_shards;
  rpc_opts.model_version = serve::ParameterVersion(model);
  serve::RpcServer rpc(&batch, rpc_opts);
  if (auto st = rpc.Start(); !st.ok()) {
    std::fprintf(stderr, "replica: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("PORT %u\n", rpc.port());
  std::fflush(stdout);
  std::fprintf(stderr, "replica: shard %u/%u of %zu items, model %llu\n",
               shard_index, num_shards, items,
               static_cast<unsigned long long>(rpc_opts.model_version));

  // Lifetime is the stdin pipe: parent closes it (or dies), we drain out.
  int c;
  while ((c = std::getchar()) != EOF) {
  }
  rpc.Shutdown();
  return 0;
}
