// Reproduces Table III: classification (CTR prediction) on Trivago- and
// Taobao-like data. Prints AUC and RMSE per model.
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace seqfm {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags = ParseBenchFlagsOrDie(argc, argv, {"models", "datasets"});
  BenchOptions opts = BenchOptions::FromFlags(flags);

  PrintBanner("Table III — Classification task (CTR prediction)",
              "SeqFM paper Table III: AUC (higher better) and RMSE (lower "
              "better)");

  std::vector<std::string> models = baselines::ClassificationBaselines();
  models.push_back("SeqFM");
  if (flags.Has("models")) models = SplitCsv(flags.GetString("models", ""));
  std::vector<std::string> datasets = {"trivago", "taobao"};
  if (flags.Has("datasets")) {
    datasets = SplitCsv(flags.GetString("datasets", ""));
  }

  for (const std::string& dataset_name : datasets) {
    PreparedDataset prep = PrepareDataset(dataset_name, opts);
    const auto stats = prep.log.ComputeStats();
    std::printf("\n[%s] users=%zu objects=%zu interactions=%zu\n",
                dataset_name.c_str(), stats.num_users, stats.num_objects,
                stats.num_instances);
    std::printf("%-12s | %7s %7s %9s\n", "Method", "AUC", "RMSE", "LogLoss");
    std::printf("-------------+--------------------------\n");

    eval::ClassificationEvaluator evaluator(&prep.dataset, prep.builder.get(),
                                            opts.seed + 23);
    std::map<std::string, double> auc;
    for (const auto& name : models) {
      auto model = MakeModel(name, prep.space, opts);
      TrainModel(model.get(), prep, core::Task::kClassification, opts);
      auto metrics = evaluator.Evaluate(model.get());
      std::printf("%-12s | %s %s %s\n", name.c_str(),
                  FormatCell(metrics.auc).c_str(),
                  FormatCell(metrics.rmse).c_str(),
                  FormatCell(metrics.logloss, 9).c_str());
      std::fflush(stdout);
      auc[name] = metrics.auc;
    }
    double best_baseline = 0.0;
    for (const auto& [n, v] : auc) {
      if (n != "SeqFM") best_baseline = std::max(best_baseline, v);
    }
    std::printf("\nPaper's claim to check: SeqFM has the highest AUC / lowest "
                "RMSE; DIN and xDeepFM\nlead the baselines; deep FMs beat "
                "plain FM.\n");
    if (auc.count("SeqFM")) {
      std::printf("[shape] SeqFM AUC %.3f vs best baseline %.3f -> %s\n",
                  auc["SeqFM"], best_baseline,
                  auc["SeqFM"] >= best_baseline ? "REPRODUCED"
                                                : "NOT reproduced");
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
