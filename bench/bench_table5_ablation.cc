// Reproduces Table V: ablation of SeqFM's key components (Remove SV / DV /
// CV / RC / LN) across the six datasets, reporting the task metric of each
// degraded architecture. Pass --extras to also evaluate the padding-key
// masking extension (not in the paper).
#include <cstdio>
#include <functional>
#include <map>

#include "bench/bench_common.h"

namespace seqfm {
namespace bench {
namespace {

struct Ablation {
  const char* label;
  std::function<void(core::SeqFmConfig*)> apply;
};

int Run(int argc, char** argv) {
  FlagParser flags = ParseBenchFlagsOrDie(argc, argv, {"extras", "datasets"});
  BenchOptions opts = BenchOptions::FromFlags(flags);
  // Ablation trains 6 architectures per dataset; default to a reduced
  // budget and one dataset per task (override with --scale/--epochs/
  // --datasets=all).
  if (!flags.Has("scale") && !flags.Has("quick")) opts.scale = 0.35;
  if (!flags.Has("epochs") && !flags.Has("quick")) opts.epochs = 25;

  PrintBanner("Table V — Ablation test with different model architectures",
              "SeqFM paper Table V: HR@10 (ranking) / AUC (classification) / "
              "MAE (regression)");

  std::vector<Ablation> ablations = {
      {"Default", [](core::SeqFmConfig*) {}},
      {"Remove SV",
       [](core::SeqFmConfig* c) { c->use_static_view = false; }},
      {"Remove DV",
       [](core::SeqFmConfig* c) { c->use_dynamic_view = false; }},
      {"Remove CV", [](core::SeqFmConfig* c) { c->use_cross_view = false; }},
      {"Remove RC", [](core::SeqFmConfig* c) { c->use_residual = false; }},
      {"Remove LN",
       [](core::SeqFmConfig* c) { c->use_layer_norm = false; }},
  };
  if (flags.GetBool("extras", false)) {
    ablations.push_back({"Mask padding (ext.)", [](core::SeqFmConfig* c) {
                           c->mask_padding_keys = true;
                         }});
  }

  std::vector<std::string> datasets = {"gowalla", "trivago", "beauty"};
  if (flags.Has("datasets")) {
    const std::string value = flags.GetString("datasets", "");
    datasets = value == "all"
                   ? data::SyntheticDatasetGenerator::PresetNames()
                   : SplitCsv(value);
  }

  // metric[arch][dataset]
  std::map<std::string, std::map<std::string, double>> table;
  std::map<std::string, const char*> metric_name;
  for (const std::string& dataset_name : datasets) {
    PreparedDataset prep = PrepareDataset(dataset_name, opts);
    const bool regression = prep.config.with_ratings;
    const bool classification =
        dataset_name == "trivago" || dataset_name == "taobao";
    const core::Task task = regression ? core::Task::kRegression
                            : classification ? core::Task::kClassification
                                             : core::Task::kRanking;
    metric_name[dataset_name] =
        regression ? "MAE" : (classification ? "AUC" : "HR@10");

    eval::RankingEvaluator rank_eval(&prep.dataset, prep.builder.get(),
                                     opts.eval_negatives, opts.seed + 17);
    eval::ClassificationEvaluator cls_eval(&prep.dataset, prep.builder.get(),
                                           opts.seed + 23);
    eval::RegressionEvaluator reg_eval(&prep.dataset, prep.builder.get());

    for (const auto& ablation : ablations) {
      auto model = MakeModel("SeqFM", prep.space, opts, ablation.apply);
      TrainModel(model.get(), prep, task, opts);
      double value = 0.0;
      switch (task) {
        case core::Task::kRanking:
          value = rank_eval.Evaluate(model.get(), {10}).hr[10];
          break;
        case core::Task::kClassification:
          value = cls_eval.Evaluate(model.get()).auc;
          break;
        case core::Task::kRegression:
          value = reg_eval.Evaluate(model.get()).mae;
          break;
      }
      table[ablation.label][dataset_name] = value;
      std::printf("  [%s] %-20s %s = %.3f\n", dataset_name.c_str(),
                  ablation.label, metric_name[dataset_name], value);
      std::fflush(stdout);
    }
  }

  std::printf("\n%-20s |", "Architecture");
  for (const auto& d : datasets) {
    std::printf(" %10s", (d + "(" + metric_name[d] + ")").substr(0, 10).c_str());
  }
  std::printf("\n---------------------+");
  for (size_t i = 0; i < datasets.size(); ++i) std::printf("-----------");
  std::printf("\n");
  for (const auto& ablation : ablations) {
    std::printf("%-20s |", ablation.label);
    for (const auto& d : datasets) {
      std::printf(" %10.3f", table[ablation.label][d]);
    }
    std::printf("\n");
  }
  std::printf("\nPaper's claim to check: every removal hurts; Remove DV is "
              "the most damaging\n(sequence-awareness is the pivotal "
              "component); Remove CV hurts on most datasets.\nNote MAE is "
              "lower-better while HR@10/AUC are higher-better.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
