// Reproduces Table IV: regression (rating prediction) on Beauty- and
// Toys-like data. Prints MAE and RRSE per model.
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace seqfm {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags = ParseBenchFlagsOrDie(argc, argv, {"models", "datasets"});
  BenchOptions opts = BenchOptions::FromFlags(flags);

  PrintBanner("Table IV — Regression task (rating prediction)",
              "SeqFM paper Table IV: MAE and RRSE (both lower better)");

  std::vector<std::string> models = baselines::RegressionBaselines();
  models.push_back("SeqFM");
  if (flags.Has("models")) models = SplitCsv(flags.GetString("models", ""));
  std::vector<std::string> datasets = {"beauty", "toys"};
  if (flags.Has("datasets")) {
    datasets = SplitCsv(flags.GetString("datasets", ""));
  }

  for (const std::string& dataset_name : datasets) {
    PreparedDataset prep = PrepareDataset(dataset_name, opts);
    const auto stats = prep.log.ComputeStats();
    std::printf("\n[%s] users=%zu objects=%zu interactions=%zu\n",
                dataset_name.c_str(), stats.num_users, stats.num_objects,
                stats.num_instances);
    std::printf("%-12s | %7s %7s %7s\n", "Method", "MAE", "RRSE", "RMSE");
    std::printf("-------------+-------------------------\n");

    eval::RegressionEvaluator evaluator(&prep.dataset, prep.builder.get());
    std::map<std::string, double> mae;
    for (const auto& name : models) {
      auto model = MakeModel(name, prep.space, opts);
      TrainModel(model.get(), prep, core::Task::kRegression, opts);
      auto metrics = evaluator.Evaluate(model.get());
      std::printf("%-12s | %s %s %s\n", name.c_str(),
                  FormatCell(metrics.mae).c_str(),
                  FormatCell(metrics.rrse).c_str(),
                  FormatCell(metrics.rmse).c_str());
      std::fflush(stdout);
      mae[name] = metrics.mae;
    }
    double best_baseline = 1e9;
    for (const auto& [n, v] : mae) {
      if (n != "SeqFM") best_baseline = std::min(best_baseline, v);
    }
    std::printf("\nPaper's claim to check: SeqFM has the lowest MAE and RRSE; "
                "non-linear models\n(NFM, AFM, RRN) edge out the linear FM "
                "and HOFM.\n");
    if (mae.count("SeqFM")) {
      std::printf("[shape] SeqFM MAE %.3f vs best baseline %.3f -> %s\n",
                  mae["SeqFM"], best_baseline,
                  mae["SeqFM"] <= best_baseline ? "REPRODUCED"
                                                : "NOT reproduced");
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
