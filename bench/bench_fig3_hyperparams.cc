// Reproduces Figure 3: hyperparameter sensitivity of SeqFM. One-at-a-time
// sweeps of d, l, n. and rho around the paper's standard setting, reporting
// HR@10 (ranking), AUC (classification) and MAE (regression) series.
#include <cstdio>

#include "bench/bench_common.h"

namespace seqfm {
namespace bench {
namespace {

double RunOne(const std::string& dataset_name, const BenchOptions& base,
              size_t dim, size_t layers, size_t seq_len, float keep_prob) {
  BenchOptions opts = base;
  opts.dim = dim;
  opts.max_seq_len = seq_len;
  PreparedDataset prep = PrepareDataset(dataset_name, opts);
  const bool regression = prep.config.with_ratings;
  const bool classification =
      dataset_name == "trivago" || dataset_name == "taobao";
  const core::Task task = regression ? core::Task::kRegression
                          : classification ? core::Task::kClassification
                                           : core::Task::kRanking;
  auto model =
      MakeModel("SeqFM", prep.space, opts, [&](core::SeqFmConfig* c) {
        c->ffn_layers = layers;
        c->keep_prob = keep_prob;
      });
  TrainModel(model.get(), prep, task, opts);
  switch (task) {
    case core::Task::kRanking: {
      eval::RankingEvaluator ev(&prep.dataset, prep.builder.get(),
                                opts.eval_negatives, opts.seed + 17);
      return ev.Evaluate(model.get(), {10}).hr[10];
    }
    case core::Task::kClassification: {
      eval::ClassificationEvaluator ev(&prep.dataset, prep.builder.get(),
                                       opts.seed + 23);
      return ev.Evaluate(model.get()).auc;
    }
    case core::Task::kRegression:
    default: {
      eval::RegressionEvaluator ev(&prep.dataset, prep.builder.get());
      return ev.Evaluate(model.get()).mae;
    }
  }
}

int Run(int argc, char** argv) {
  FlagParser flags = ParseBenchFlagsOrDie(argc, argv, {"full", "datasets"});
  BenchOptions opts = BenchOptions::FromFlags(flags);
  // 12+ SeqFM trainings per dataset: default to a reduced budget
  // (override with --scale/--epochs).
  if (!flags.Has("scale") && !flags.Has("quick")) opts.scale = 0.3;
  if (!flags.Has("epochs") && !flags.Has("quick")) opts.epochs = 15;

  PrintBanner("Figure 3 — Parameter sensitivity analysis of SeqFM",
              "SeqFM paper Fig. 3: HR@10 / AUC / MAE while varying d, l, n. "
              "and rho one at a time");

  // The paper's standard setting is {d=64, l=1, n.=20, rho=0.6}; at our
  // reduced scale the standard point uses the bench defaults instead.
  const size_t base_dim = opts.dim;
  const size_t base_layers = 1;
  const size_t base_seq = opts.max_seq_len;
  const float base_keep = 0.9f;

  // Reduced grids by default (the paper's full grids via --full).
  const bool full = flags.GetBool("full", false);
  std::vector<size_t> dims = full ? std::vector<size_t>{8, 16, 32, 64, 128}
                                  : std::vector<size_t>{8, 16, 32};
  std::vector<size_t> layer_grid = full ? std::vector<size_t>{1, 2, 3, 4, 5}
                                        : std::vector<size_t>{1, 2, 3};
  std::vector<size_t> seq_grid = full ? std::vector<size_t>{10, 20, 30, 40, 50}
                                      : std::vector<size_t>{10, 20, 30};
  std::vector<float> keep_grid =
      full ? std::vector<float>{0.5f, 0.6f, 0.7f, 0.8f, 0.9f}
           : std::vector<float>{0.6f, 0.75f, 0.9f};

  std::vector<std::string> datasets = {"gowalla", "trivago", "beauty"};
  if (flags.Has("datasets")) {
    datasets = SplitCsv(flags.GetString("datasets", ""));
  }

  for (const std::string& ds : datasets) {
    std::printf("\n[%s]\n", ds.c_str());
    std::printf("  sweep d (latent dimension):\n");
    for (size_t d : dims) {
      const double v = RunOne(ds, opts, d, base_layers, base_seq, base_keep);
      std::printf("    d=%-4zu -> %.3f\n", d, v);
      std::fflush(stdout);
    }
    std::printf("  sweep l (FFN depth):\n");
    for (size_t l : layer_grid) {
      const double v = RunOne(ds, opts, base_dim, l, base_seq, base_keep);
      std::printf("    l=%-4zu -> %.3f\n", l, v);
      std::fflush(stdout);
    }
    std::printf("  sweep n. (max sequence length):\n");
    for (size_t n : seq_grid) {
      const double v = RunOne(ds, opts, base_dim, base_layers, n, base_keep);
      std::printf("    n=%-4zu -> %.3f\n", n, v);
      std::fflush(stdout);
    }
    std::printf("  sweep rho (dropout keep probability):\n");
    for (float k : keep_grid) {
      const double v = RunOne(ds, opts, base_dim, base_layers, base_seq, k);
      std::printf("    rho=%.2f -> %.3f\n", static_cast<double>(k), v);
      std::fflush(stdout);
    }
  }
  std::printf("\nPaper's claims to check: performance saturates as d grows; "
              "small l suffices\n(deeper FFNs overfit); the best n. is "
              "dataset-dependent; moderate-to-high rho\n(keep probability) "
              "works best.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
