// Reproduces Table II: ranking (next-POI recommendation) on Gowalla- and
// Foursquare-like data. Prints HR@{5,10,20} and NDCG@{5,10,20} for every
// baseline and SeqFM, mirroring the paper's row order.
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace seqfm {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags = ParseBenchFlagsOrDie(argc, argv, {"models", "datasets"});
  BenchOptions opts = BenchOptions::FromFlags(flags);

  PrintBanner("Table II — Ranking task (next-POI recommendation)",
              "SeqFM paper Table II: HR@K / NDCG@K, K in {5,10,20}, "
              "leave-one-out with sampled negatives");

  const std::vector<size_t> ks = {5, 10, 20};
  std::vector<std::string> models = baselines::RankingBaselines();
  models.push_back("SeqFM");
  if (flags.Has("models")) models = SplitCsv(flags.GetString("models", ""));

  std::vector<std::string> datasets = {"gowalla", "foursquare"};
  if (flags.Has("datasets")) {
    datasets = SplitCsv(flags.GetString("datasets", ""));
  }

  for (const std::string& dataset_name : datasets) {
    PreparedDataset prep = PrepareDataset(dataset_name, opts);
    auto stats = prep.log.ComputeStats();
    std::printf("\n[%s] users=%zu objects=%zu interactions=%zu "
                "(paper: Gowalla 34,796 users / Foursquare 24,941 users)\n",
                dataset_name.c_str(), stats.num_users, stats.num_objects,
                stats.num_instances);
    std::printf("%-12s |", "Method");
    for (size_t k : ks) std::printf("  HR@%-3zu", k);
    std::printf(" |");
    for (size_t k : ks) std::printf(" NDCG@%-2zu", k);
    std::printf("\n-------------+------------------------+"
                "------------------------\n");

    eval::RankingEvaluator evaluator(&prep.dataset, prep.builder.get(),
                                     opts.eval_negatives, opts.seed + 17);
    std::map<std::string, double> hr10;
    for (const auto& name : models) {
      auto model = MakeModel(name, prep.space, opts);
      TrainModel(model.get(), prep, core::Task::kRanking, opts);
      auto metrics = evaluator.Evaluate(model.get(), ks);
      std::printf("%-12s |", name.c_str());
      for (size_t k : ks) std::printf(" %s", FormatCell(metrics.hr[k]).c_str());
      std::printf(" |");
      for (size_t k : ks) {
        std::printf(" %s", FormatCell(metrics.ndcg[k]).c_str());
      }
      std::printf("\n");
      std::fflush(stdout);
      hr10[name] = metrics.hr[10];
    }
    std::printf("\nPaper's claim to check: SeqFM tops every column; "
                "sequence-aware models (SASRec, TFM)\nbeat set-category FMs; "
                "deep FMs beat plain FM.\n");
    std::printf("[shape] SeqFM HR@10 %.3f vs best baseline %.3f -> %s\n",
                hr10["SeqFM"],
                [&] {
                  double best = 0.0;
                  for (const auto& [n, v] : hr10) {
                    if (n != "SeqFM") best = std::max(best, v);
                  }
                  return best;
                }(),
                [&] {
                  double best = 0.0;
                  for (const auto& [n, v] : hr10) {
                    if (n != "SeqFM") best = std::max(best, v);
                  }
                  return hr10["SeqFM"] >= best ? "REPRODUCED" : "NOT reproduced";
                }());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
