// Open-loop load generator for the TCP serving tier (serve::RpcServer).
//
// Spins up the full serving stack in-process (Predictor -> BatchServer ->
// RpcServer on a loopback ephemeral port), then drives it over a real socket
// with Poisson arrivals at each target QPS of --qps-sweep. Open loop means
// the send schedule is fixed up front and never waits for responses — the
// generator keeps offering load when the server falls behind, so queueing
// delay shows up in the tail latencies instead of being silently absorbed
// (no coordinated omission). Latency is measured from each request's
// SCHEDULED send time to its response.
//
// Reported per target QPS: achieved throughput, p50/p99/p999 latency, and
// shed rate (OVERLOADED responses / submitted) — all into --json via the
// shared JsonResultWriter. Arrivals are deterministic: a seeded util::Rng
// drives the Poisson schedule, so two runs at one seed offer identical load.
//
// --smoke is the CI leg: a low-QPS phase against an unbounded queue must
// shed nothing, then a back-to-back burst against max_queue_requests=1 must
// shed some — and in both phases every submitted request must be answered
// exactly once (served + shed == submitted). A third leg stands up two
// replica-mode servers (each owning half the catalog) behind a
// serve::Coordinator and requires every request answered whole or
// explicitly PARTIAL — never an error, never a hang. Violations exit 1.
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/checkpoint.h"
#include "serve/coordinator.h"
#include "serve/predictor.h"
#include "serve/protocol.h"
#include "serve/rpc_server.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace bench {
namespace {

/// One planned request: everything needed to encode it, fixed up front so
/// the send loop does no data-dependent work.
struct PlannedRequest {
  const data::SequenceExample* ex = nullptr;
  std::vector<int32_t> slate;
};

std::vector<PlannedRequest> PlanRequests(
    const std::vector<data::SequenceExample>& pool, size_t num_objects,
    size_t requests, size_t users, size_t slate) {
  std::vector<const data::SequenceExample*> distinct;
  for (const auto& ex : pool) {
    bool seen = false;
    for (const auto* d : distinct) seen = seen || d->user == ex.user;
    if (!seen) distinct.push_back(&ex);
    if (distinct.size() >= users) break;
  }
  std::vector<PlannedRequest> plan(requests);
  for (size_t r = 0; r < requests; ++r) {
    plan[r].ex = distinct[r % distinct.size()];
    plan[r].slate.resize(slate);
    for (size_t j = 0; j < slate; ++j) {
      plan[r].slate[j] = static_cast<int32_t>((r * 7 + j) % num_objects);
    }
  }
  return plan;
}

struct LoadgenResult {
  uint64_t submitted = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;     // OVERLOADED responses
  uint64_t errors = 0;   // transport failures / missing responses
  double wall_s = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;

  double shed_rate() const {
    return submitted == 0 ? 0.0
                          : static_cast<double>(shed) /
                                static_cast<double>(submitted);
  }
};

/// Drives one open-loop phase: Poisson arrivals at \p qps (0 = back-to-back
/// burst), one response expected per request. The sender thread follows the
/// precomputed schedule while this thread collects responses, so a slow
/// server never throttles the offered load.
LoadgenResult RunOpenLoop(uint16_t port, const std::vector<PlannedRequest>&
                              plan, size_t k, double qps, uint64_t seed,
                          int64_t timeout_ms) {
  LoadgenResult result;
  result.submitted = plan.size();

  serve::RpcClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    result.errors = result.submitted;
    return result;
  }
  // A stalled server must fail the run, not hang it: cap each blocking read.
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(client.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Deterministic Poisson schedule: inter-arrival = -ln(1-U)/qps.
  std::vector<double> sched(plan.size(), 0.0);
  Rng rng(seed);  // seqfm::Rng: the library-wide deterministic generator
  double t = 0.0;
  for (size_t r = 0; r < plan.size(); ++r) {
    if (qps > 0.0) t += -std::log(1.0 - rng.Uniform()) / qps;
    sched[r] = t;
  }

  const auto start = std::chrono::steady_clock::now();
  std::thread sender([&]() {
    for (size_t r = 0; r < plan.size(); ++r) {
      const auto due =
          start + std::chrono::duration_cast<std::chrono::steady_clock::
                                                 duration>(
                      std::chrono::duration<double>(sched[r]));
      std::this_thread::sleep_until(due);  // no-op once we're behind schedule
      serve::RpcRequest req;
      req.id = r;
      req.user = plan[r].ex->user;
      req.k = static_cast<uint32_t>(k);
      req.history = plan[r].ex->history;
      req.slate = plan[r].slate;
      if (!client.Send(req).ok()) return;  // reader reports the shortfall
    }
  });

  std::vector<double> latencies;
  latencies.reserve(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    serve::RpcResponse resp;
    if (!client.ReadResponse(&resp).ok() || resp.id >= plan.size()) {
      result.errors = plan.size() - i;
      break;
    }
    const double now = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    latencies.push_back(now - sched[resp.id]);
    if (resp.status == serve::RpcStatus::kOk) {
      ++result.ok;
    } else {
      ++result.shed;
    }
  }
  sender.join();
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  result.achieved_qps =
      result.wall_s > 0.0
          ? static_cast<double>(result.ok + result.shed) / result.wall_s
          : 0.0;
  result.p50_ms = PercentileMs(&latencies, 0.50);
  result.p99_ms = PercentileMs(&latencies, 0.99);
  result.p999_ms = PercentileMs(&latencies, 0.999);
  return result;
}

int Run(int argc, char** argv) {
  FlagParser flags = ParseBenchFlagsOrDie(
      argc, argv,
      {"qps-sweep", "requests", "slate", "k", "users", "wave", "max-queue",
       "timeout-ms", "smoke", "json"});
  const bool smoke = flags.GetBool("smoke", false);
  const std::string json_path = flags.GetString("json", "");
  JsonResultWriter json;
  json.Add("bench", "loadgen");
  BenchOptions opts = BenchOptions::FromFlags(flags);
  if (smoke) {
    if (!flags.Has("scale")) opts.scale = 0.2;
    if (!flags.Has("dim")) opts.dim = 8;
  }
  const size_t requests = static_cast<size_t>(std::max<int64_t>(
      1, flags.GetInt("requests", smoke ? 48 : (opts.quick ? 64 : 400))));
  const size_t slate = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("slate", smoke ? 8 : 64)));
  const size_t k = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("k", 10)));
  const size_t users = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("users", 8)));
  const size_t wave = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("wave", 64)));
  const size_t max_queue = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt("max-queue", 0)));
  const int64_t timeout_ms =
      std::max<int64_t>(100, flags.GetInt("timeout-ms", 30000));

  PrintBanner("Open-loop RPC serving: Poisson arrivals vs target QPS",
              "src/serve/rpc_server.* (no paper counterpart); tail latency "
              "and load shedding of the network tier");

  PreparedDataset prep = PrepareDataset("gowalla", opts);
  auto model = MakeModel("SeqFM", prep.space, opts);
  const auto& examples = prep.dataset.test().empty() ? prep.dataset.train()
                                                     : prep.dataset.test();
  SEQFM_CHECK(!examples.empty());
  const std::vector<PlannedRequest> plan =
      PlanRequests(examples, prep.space.num_objects(), requests, users,
                   std::min(slate, prep.space.num_objects()));

  serve::PredictorOptions pred_opts;
  pred_opts.context_cache_bytes = 64u << 20;
  serve::Predictor predictor(model.get(), prep.builder.get(), pred_opts);

  auto run_phase = [&](size_t queue_bound, size_t wave_bound, double qps,
                       uint64_t seed) {
    serve::BatchServerOptions batch_opts;
    batch_opts.max_wave_requests = wave_bound;
    batch_opts.max_queue_requests = queue_bound;
    serve::BatchServer batch(&predictor, batch_opts);
    serve::RpcServer rpc(&batch);
    SEQFM_CHECK(rpc.Start().ok()) << "rpc server failed to start";
    LoadgenResult r = RunOpenLoop(rpc.port(), plan, k, qps, seed,
                                  timeout_ms);
    rpc.Shutdown();
    return r;
  };

  if (smoke) {
    // Leg 1: modest offered load, unbounded queue — nothing may shed.
    const LoadgenResult low = run_phase(/*queue_bound=*/0, wave, /*qps=*/200.0,
                                        opts.seed);
    std::printf("smoke low-qps: %llu submitted, %llu ok, %llu shed, %llu "
                "errors, p99=%.3f ms\n",
                static_cast<unsigned long long>(low.submitted),
                static_cast<unsigned long long>(low.ok),
                static_cast<unsigned long long>(low.shed),
                static_cast<unsigned long long>(low.errors), low.p99_ms);
    // Leg 2: back-to-back burst against a depth-1 queue and single-request
    // waves — the bounded queue must provably shed.
    const LoadgenResult burst =
        run_phase(/*queue_bound=*/1, /*wave_bound=*/1, /*qps=*/0.0,
                  opts.seed + 1);
    std::printf("smoke burst:   %llu submitted, %llu ok, %llu shed, %llu "
                "errors\n",
                static_cast<unsigned long long>(burst.submitted),
                static_cast<unsigned long long>(burst.ok),
                static_cast<unsigned long long>(burst.shed),
                static_cast<unsigned long long>(burst.errors));
    // Leg 3: distributed serving — two in-process replica-mode servers
    // (each owning half the catalog) behind a serve::Coordinator. Every
    // request must be ANSWERED: whole (OK, both shards merged) or
    // explicitly degraded (PARTIAL), never an error or a hang.
    auto* module = dynamic_cast<nn::Module*>(model.get());
    SEQFM_CHECK(module != nullptr);
    const uint64_t version = serve::ParameterVersion(*module);
    constexpr uint32_t kShards = 2;
    std::vector<std::unique_ptr<serve::BatchServer>> replica_batches;
    std::vector<std::unique_ptr<serve::RpcServer>> replica_servers;
    for (uint32_t s = 0; s < kShards; ++s) {
      replica_batches.push_back(
          std::make_unique<serve::BatchServer>(&predictor));
      serve::RpcServerOptions ropts;
      ropts.catalog_size = prep.space.num_objects();
      ropts.shard_index = s;
      ropts.num_shards = kShards;
      ropts.model_version = version;
      replica_servers.push_back(std::make_unique<serve::RpcServer>(
          replica_batches.back().get(), ropts));
      SEQFM_CHECK(replica_servers.back()->Start().ok())
          << "replica server failed to start";
    }
    serve::CoordinatorOptions copts;
    copts.replica_timeout_ms = timeout_ms;
    copts.connect_timeout_ms = timeout_ms;
    serve::Coordinator coordinator(copts);
    for (auto& server : replica_servers) {
      SEQFM_CHECK(coordinator.AddReplica("127.0.0.1", server->port()).ok());
    }
    SEQFM_CHECK(coordinator.Ready().ok());
    uint64_t dist_ok = 0;
    uint64_t dist_degraded = 0;
    uint64_t dist_errors = 0;
    for (const PlannedRequest& req : plan) {
      serve::CoordinatorResult result;
      if (!coordinator.TopKAll(*req.ex, k, &result).ok()) {
        ++dist_errors;
      } else if (result.status == serve::RpcStatus::kOk) {
        ++dist_ok;
      } else {
        ++dist_degraded;
      }
    }
    const serve::CoordinatorStats cstats = coordinator.stats();
    for (auto& server : replica_servers) server->Shutdown();
    std::printf("smoke dist:    %zu submitted, %llu ok, %llu degraded, "
                "%llu errors (2 replicas); recovery: %llu retries, "
                "%llu circuit opens, %llu reconnects\n",
                plan.size(), static_cast<unsigned long long>(dist_ok),
                static_cast<unsigned long long>(dist_degraded),
                static_cast<unsigned long long>(dist_errors),
                static_cast<unsigned long long>(cstats.retries),
                static_cast<unsigned long long>(cstats.circuit_opens),
                static_cast<unsigned long long>(cstats.reconnects));

    json.Add("mode", "smoke");
    json.Add("low_qps_sheds", static_cast<double>(low.shed));
    json.Add("low_qps_errors", static_cast<double>(low.errors));
    json.Add("burst_sheds", static_cast<double>(burst.shed));
    json.Add("burst_ok", static_cast<double>(burst.ok));
    json.Add("dist_ok", static_cast<double>(dist_ok));
    json.Add("dist_degraded", static_cast<double>(dist_degraded));
    json.Add("dist_errors", static_cast<double>(dist_errors));
    json.Add("dist_shard_attempts", static_cast<double>(cstats.shard_attempts));
    json.Add("dist_retries", static_cast<double>(cstats.retries));
    json.Add("dist_retries_denied",
             static_cast<double>(cstats.retries_denied));
    json.Add("dist_circuit_opens", static_cast<double>(cstats.circuit_opens));
    json.Add("dist_circuit_reopens",
             static_cast<double>(cstats.circuit_reopens));
    json.Add("dist_circuit_closes",
             static_cast<double>(cstats.circuit_closes));
    json.Add("dist_half_open_probes",
             static_cast<double>(cstats.half_open_probes));
    json.Add("dist_reconnects", static_cast<double>(cstats.reconnects));
    json.Add("dist_reconnect_failures",
             static_cast<double>(cstats.reconnect_failures));
    if (!json_path.empty()) json.WriteTo(json_path);
    if (low.shed != 0 || low.errors != 0 || low.ok != low.submitted) {
      std::fprintf(stderr, "FAIL: low-QPS phase shed or dropped requests\n");
      return 1;
    }
    if (burst.shed == 0 || burst.errors != 0 ||
        burst.ok + burst.shed != burst.submitted) {
      std::fprintf(stderr, "FAIL: burst phase must shed with a depth-1 "
                   "queue and answer every request\n");
      return 1;
    }
    if (dist_errors != 0 || dist_ok + dist_degraded != plan.size()) {
      std::fprintf(stderr, "FAIL: coordinator leg must answer every "
                   "request (ok + degraded == submitted, 0 errors)\n");
      return 1;
    }
    // A fault-free fleet must need none of the recovery machinery: any
    // retry, ejection, or reconnect here means the coordinator misreads a
    // healthy replica as faulty (spurious timeouts, broken handshake, ...).
    if (cstats.retries != 0 || cstats.retries_denied != 0 ||
        cstats.circuit_opens != 0 || cstats.reconnects != 0 ||
        cstats.reconnect_failures != 0) {
      std::fprintf(stderr, "FAIL: fault-free coordinator leg used recovery "
                   "machinery (%llu retries, %llu denied, %llu circuit "
                   "opens, %llu reconnects, %llu reconnect failures)\n",
                   static_cast<unsigned long long>(cstats.retries),
                   static_cast<unsigned long long>(cstats.retries_denied),
                   static_cast<unsigned long long>(cstats.circuit_opens),
                   static_cast<unsigned long long>(cstats.reconnects),
                   static_cast<unsigned long long>(
                       cstats.reconnect_failures));
      return 1;
    }
    std::printf("smoke mode: shedding contract holds (0 sheds at low QPS, "
                "%llu sheds under burst), coordinator answered %llu/%zu "
                "whole; every request answered.\n",
                static_cast<unsigned long long>(burst.shed),
                static_cast<unsigned long long>(dist_ok), plan.size());
    return 0;
  }

  const std::vector<size_t> qps_sweep = ParseSizeListOrDie(
      flags, "qps-sweep", opts.quick ? "100,400" : "100,400,1600,6400",
      10'000'000);
  std::printf("model=SeqFM dim=%zu | %zu requests/phase over %zu users, "
              "slate=%zu, k=%zu | wave<=%zu, max_queue=%zu (0=unbounded)\n\n",
              opts.dim, requests, users,
              std::min(slate, prep.space.num_objects()), k, wave, max_queue);
  std::printf("%10s %12s %10s %10s %10s %10s %9s\n", "target", "achieved",
              "p50 ms", "p99 ms", "p999 ms", "sheds", "shed rate");
  bool first = true;
  for (size_t qps : qps_sweep) {
    const LoadgenResult r =
        run_phase(max_queue, wave, static_cast<double>(qps), opts.seed);
    std::printf("%10zu %12.0f %10.3f %10.3f %10.3f %10llu %8.1f%%\n", qps,
                r.achieved_qps, r.p50_ms, r.p99_ms, r.p999_ms,
                static_cast<unsigned long long>(r.shed),
                100.0 * r.shed_rate());
    if (r.errors != 0) {
      std::fprintf(stderr, "FAIL: %llu requests went unanswered at target "
                   "qps=%zu\n",
                   static_cast<unsigned long long>(r.errors), qps);
      return 1;
    }
    const std::string suffix = "_qps" + std::to_string(qps);
    json.Add("achieved_qps" + suffix, r.achieved_qps);
    json.Add("p50_ms" + suffix, r.p50_ms);
    json.Add("p99_ms" + suffix, r.p99_ms);
    json.Add("p999_ms" + suffix, r.p999_ms);
    json.Add("shed_rate" + suffix, r.shed_rate());
    if (first) {
      json.Add("requests_per_phase", static_cast<double>(requests));
      json.Add("slate", static_cast<double>(std::min(
                            slate, prep.space.num_objects())));
      first = false;
    }
  }
  if (!json_path.empty()) json.WriteTo(json_path);
  std::printf("\nLatency is measured from each request's SCHEDULED send time "
              "(open loop), so overload shows up as tail growth. p999 equals "
              "the max until a phase has >= 1000 samples.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
