#ifndef SEQFM_BENCH_BENCH_COMMON_H_
#define SEQFM_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "core/seqfm.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "util/flags.h"

namespace seqfm {
namespace bench {

/// Shared knobs for the table/figure reproduction binaries. Every bench
/// accepts:
///   --scale=F        dataset size multiplier (default varies per bench)
///   --epochs=N       training epochs
///   --dim=N          latent dimension d
///   --seq-len=N      maximum dynamic sequence length n.
///   --negatives=N    training negatives per positive (paper: 5)
///   --eval-negatives=N  ranking candidates J (paper: 1000)
///   --batch=N        mini-batch size
///   --lr=F           Adam learning rate
///   --seed=N         global seed
///   --threads=N      thread-pool size (0 = SEQFM_THREADS env / hardware)
///   --quick          shrink everything for a fast smoke run
/// Flags consumed by BenchOptions::FromFlags, accepted by every bench.
const std::vector<std::string>& CommonBenchFlags();

/// Parses argv and rejects unknown flags: on a flag outside
/// CommonBenchFlags() + \p extra_flags (or a malformed one) it prints the
/// accepted set to stderr and exits with status 2 instead of silently
/// ignoring the typo. Positional arguments are also rejected.
FlagParser ParseBenchFlagsOrDie(int argc, const char* const* argv,
                                const std::vector<std::string>& extra_flags);

struct BenchOptions {
  double scale = 1.0;
  size_t epochs = 5;
  size_t dim = 32;
  size_t max_seq_len = 20;
  size_t num_negatives = 2;
  size_t eval_negatives = 200;
  size_t batch_size = 128;
  float learning_rate = 1e-2f;
  /// Epoch-selection cadence on the validation split (0 = off).
  size_t validate_every = 5;
  uint64_t seed = 42;
  /// Global thread-pool size applied by FromFlags; 0 keeps the default
  /// (SEQFM_THREADS env or hardware concurrency).
  size_t threads = 0;
  bool quick = false;

  static BenchOptions FromFlags(const FlagParser& flags);
};

/// A generated dataset plus everything models need to train/evaluate on it.
struct PreparedDataset {
  std::string name;
  data::SyntheticConfig config;
  data::InteractionLog log{0, 0};
  data::TemporalDataset dataset;
  data::FeatureSpace space;
  std::unique_ptr<data::BatchBuilder> builder;
};

/// Generates a preset at the requested scale and applies the paper's >=10
/// interaction filtering (Sec. V-A).
PreparedDataset PrepareDataset(const std::string& preset,
                               const BenchOptions& opts);

/// Creates "SeqFM" or any baseline with hyperparameters from \p opts.
/// \p seqfm_overrides lets ablation/hyperparameter benches tweak the SeqFM
/// config after the defaults are applied.
std::unique_ptr<core::Model> MakeModel(
    const std::string& name, const data::FeatureSpace& space,
    const BenchOptions& opts,
    const std::function<void(core::SeqFmConfig*)>& seqfm_overrides = nullptr);

/// Trains \p model on \p prepared for the given task and returns stats.
core::TrainResult TrainModel(core::Model* model, const PreparedDataset& prep,
                             core::Task task, const BenchOptions& opts);

/// Pretty-printing helpers shared by the table benches.
void PrintBanner(const std::string& title, const std::string& paper_ref);
std::string FormatCell(double value, int width = 7, int precision = 3);

/// Nearest-rank percentile: sorts \p samples in place and returns the value
/// at rank ceil(q * n) (1-based), i.e. the smallest sample >= q of the
/// distribution. The previous per-bench copies indexed q * n, which returns
/// the MAXIMUM for p99 whenever n <= 100 — the common bench regime — and
/// overstates every tail quantile by up to one rank. Returns 0 on empty
/// input. \p q must be in (0, 1]; q=0.999 (p999) is meaningful only once
/// n >= 1000, below that it reports the max by construction.
double Percentile(std::vector<double>* samples, double q);

/// Percentile() scaled to milliseconds for second-denominated samples.
double PercentileMs(std::vector<double>* latencies, double q);

/// Splits "a,b,c" into {"a","b","c"} (used by --models / --datasets flags).
std::vector<std::string> SplitCsv(const std::string& csv);

/// Parses the CSV flag \p name (default \p default_csv) as a list of sizes
/// in [1, max_value]. A malformed, out-of-range, or empty list prints a
/// usage line and exits 2 — the shared validation behind --thread-sweep and
/// --shards style sweep flags.
std::vector<size_t> ParseSizeListOrDie(const FlagParser& flags,
                                       const std::string& name,
                                       const std::string& default_csv,
                                       size_t max_value);

/// \brief Machine-readable bench results: a flat JSON object of metrics.
///
/// Benches that accept --json=<path> collect their headline numbers
/// (scores/sec, p50/p99, speedups) here and write them on exit, e.g.
/// `bench_serving --json=BENCH_serving.json`, so the perf trajectory is
/// diffable across PRs instead of buried in stdout. Keys keep insertion
/// order; numbers are emitted with enough digits to round-trip.
class JsonResultWriter {
 public:
  void Add(const std::string& key, double value);
  void Add(const std::string& key, const std::string& value);

  bool empty() const { return entries_.empty(); }

  /// Serializes to {"key": value, ...}.
  std::string ToJson() const;

  /// Writes ToJson() to \p path; logs and returns false on IO failure.
  bool WriteTo(const std::string& path) const;

 private:
  /// key -> pre-serialized JSON value (number or quoted string).
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace bench
}  // namespace seqfm

#endif  // SEQFM_BENCH_BENCH_COMMON_H_
