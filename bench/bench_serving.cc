// Serving throughput bench: scores/sec and p50/p99 latency for scoring
// candidate catalogs through
//   (a) the taped training-path forward (status quo before src/serve/),
//   (b) the tape-free generic forward (NoGradGuard micro-batches), and
//   (c) the serve::Predictor factored catalog program (SeqFM fast path),
// across thread counts. All three paths produce bit-for-bit identical
// scores; the bench asserts that before timing.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "autograd/variable.h"
#include "bench/bench_common.h"
#include "serve/predictor.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace bench {
namespace {

struct PathStats {
  double scores_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  return (*latencies)[idx] * 1e3;
}

/// Scores \p candidates for \p ex through the taped training-path forward in
/// batches of \p batch_size, recording one latency sample per batch.
std::vector<float> ScoreTaped(core::Model* model,
                              const data::BatchBuilder& builder,
                              const data::SequenceExample& ex,
                              const std::vector<int32_t>& candidates,
                              size_t batch_size,
                              std::vector<double>* latencies) {
  std::vector<float> scores;
  scores.reserve(candidates.size());
  for (size_t start = 0; start < candidates.size(); start += batch_size) {
    const size_t end = std::min(candidates.size(), start + batch_size);
    std::vector<const data::SequenceExample*> repeated(end - start, &ex);
    std::vector<int32_t> chunk(candidates.begin() + start,
                               candidates.begin() + end);
    data::Batch batch = builder.Build(repeated, &chunk);
    const auto t0 = std::chrono::steady_clock::now();
    autograd::Variable out = model->Score(batch, /*training=*/false);
    const auto t1 = std::chrono::steady_clock::now();
    latencies->push_back(std::chrono::duration<double>(t1 - t0).count());
    for (size_t i = 0; i < end - start; ++i) {
      scores.push_back(out.value().data()[i]);
    }
  }
  return scores;
}

int Run(int argc, char** argv) {
  FlagParser flags =
      ParseBenchFlagsOrDie(argc, argv, {"candidates", "requests",
                                        "thread-sweep"});
  BenchOptions opts = BenchOptions::FromFlags(flags);
  // Acceptance workload: batch 256 unless the caller asks otherwise.
  const size_t batch = flags.Has("batch") ? opts.batch_size : 256;
  const size_t requests = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("requests", opts.quick ? 4 : 16)));

  PrintBanner("Serving throughput — taped vs tape-free vs factored catalog",
              "src/serve/ subsystem (no paper counterpart); catalog scoring "
              "for next-object ranking");

  PreparedDataset prep = PrepareDataset("gowalla", opts);
  auto model = MakeModel("SeqFM", prep.space, opts);

  size_t num_candidates = static_cast<size_t>(
      flags.GetInt("candidates", prep.space.num_objects()));
  num_candidates = std::min(num_candidates, prep.space.num_objects());
  std::vector<int32_t> catalog(num_candidates);
  for (size_t i = 0; i < num_candidates; ++i) {
    catalog[i] = static_cast<int32_t>(i);
  }
  const auto& examples = prep.dataset.test().empty() ? prep.dataset.train()
                                                     : prep.dataset.test();
  SEQFM_CHECK(!examples.empty());

  serve::PredictorOptions generic_opts;
  generic_opts.micro_batch = batch;
  generic_opts.enable_seqfm_fast_path = false;
  serve::Predictor generic(model.get(), prep.builder.get(), generic_opts);
  serve::PredictorOptions fast_opts;
  fast_opts.micro_batch = batch;
  serve::Predictor fast(model.get(), prep.builder.get(), fast_opts);

  std::printf("model=SeqFM dim=%zu seq-len=%zu | catalog=%zu candidates, "
              "%zu requests, batch=%zu | fast path %s\n",
              opts.dim, opts.max_seq_len, num_candidates, requests, batch,
              fast.fast_path_active() ? "ACTIVE" : "inactive");

  // Parity gate: all three paths must agree bit-for-bit before any timing.
  {
    std::vector<double> scratch;
    const auto& ex = examples.front();
    std::vector<float> ref =
        ScoreTaped(model.get(), *prep.builder, ex, catalog, batch, &scratch);
    const std::vector<float> tf = generic.ScoreCandidates(ex, catalog);
    const std::vector<float> fc = fast.ScoreCandidates(ex, catalog);
    size_t mismatches = 0;
    for (size_t i = 0; i < ref.size(); ++i) {
      if (std::memcmp(&ref[i], &tf[i], sizeof(float)) != 0) ++mismatches;
      if (std::memcmp(&ref[i], &fc[i], sizeof(float)) != 0) ++mismatches;
    }
    std::printf("parity check: %zu mismatching scores (must be 0)\n",
                mismatches);
    if (mismatches != 0) return 1;
  }

  std::vector<size_t> thread_counts;
  for (const std::string& t :
       SplitCsv(flags.GetString("thread-sweep", "1,2,4"))) {
    // Validate here: a malformed token must get the usage treatment, not an
    // uncaught std::stoul exception or a SetGlobalThreads(0) check-fail.
    char* end = nullptr;
    const unsigned long value = std::strtoul(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0' || value == 0 || value > 1024) {
      std::fprintf(stderr,
                   "invalid --thread-sweep entry '%s' (want 1..1024)\n",
                   t.c_str());
      return 2;
    }
    thread_counts.push_back(static_cast<size_t>(value));
  }

  for (size_t threads : thread_counts) {
    util::SetGlobalThreads(threads);
    auto run_path = [&](const std::function<void(const data::SequenceExample&,
                                                 std::vector<double>*)>& fn) {
      std::vector<double> latencies;
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t r = 0; r < requests; ++r) {
        fn(examples[r % examples.size()], &latencies);
      }
      const auto t1 = std::chrono::steady_clock::now();
      PathStats stats;
      const double total = std::chrono::duration<double>(t1 - t0).count();
      stats.scores_per_sec =
          static_cast<double>(requests * num_candidates) / total;
      stats.p50_ms = PercentileMs(&latencies, 0.50);
      stats.p99_ms = PercentileMs(&latencies, 0.99);
      return stats;
    };

    PathStats taped = run_path([&](const data::SequenceExample& ex,
                                   std::vector<double>* lat) {
      (void)ScoreTaped(model.get(), *prep.builder, ex, catalog, batch, lat);
    });
    PathStats tape_free = run_path([&](const data::SequenceExample& ex,
                                       std::vector<double>* lat) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)generic.ScoreCandidates(ex, catalog);
      const auto t1 = std::chrono::steady_clock::now();
      lat->push_back(std::chrono::duration<double>(t1 - t0).count());
    });
    PathStats factored = run_path([&](const data::SequenceExample& ex,
                                      std::vector<double>* lat) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)fast.ScoreCandidates(ex, catalog);
      const auto t1 = std::chrono::steady_clock::now();
      lat->push_back(std::chrono::duration<double>(t1 - t0).count());
    });

    std::printf("\n[threads=%zu] %-28s %12s %10s %10s %9s\n", threads, "path",
                "scores/sec", "p50 ms", "p99 ms", "speedup");
    auto print_row = [&](const char* name, const char* unit,
                         const PathStats& s) {
      std::printf("            %-28s %12.0f %7.3f/%s %7.3f/%s %8.2fx\n", name,
                  s.scores_per_sec, s.p50_ms, unit, s.p99_ms, unit,
                  s.scores_per_sec / taped.scores_per_sec);
    };
    print_row("taped forward (batch)", "b", taped);
    print_row("tape-free forward (batch)", "rq", tape_free);
    print_row("factored catalog (request)", "rq", factored);
    std::fflush(stdout);
  }
  std::printf("\nLatency units: /b = per batch-%zu forward, /rq = per "
              "catalog request.\n", batch);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
