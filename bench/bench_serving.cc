// Serving throughput bench: scores/sec and p50/p99 latency for scoring
// candidate catalogs through
//   (a) the taped training-path forward (status quo before src/serve/),
//   (b) the tape-free generic forward (NoGradGuard micro-batches),
//   (c) the serve::Predictor factored catalog program (SeqFM fast path),
//   (d) the compiled op program (trace -> IR passes -> arena-planned VM),
//       alone and behind a serve::ContextCache (the production config),
//   (e) serve::BatchServer fusing many requests into multi-user waves, and
//   (f) serve::ShardedPredictor partitioning the catalog across shards with
//       a deterministic cross-shard top-K merge (--shards sweep),
// across thread counts. Every path produces bit-for-bit identical scores
// and rankings; the bench asserts that (including cached-warm,
// batch-served, and sharded results) before any timing and exits 1 on the
// first mismatch.
//
// --smoke runs the parity gates only, on tiny shapes, and exits — the mode
// CI uses under ASan+UBSan.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>

#include "autograd/variable.h"
#include "bench/bench_common.h"
#include "ir/exec.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/cpu.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace bench {
namespace {

struct PathStats {
  double scores_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

// Latency percentiles come from bench_common's nearest-rank Percentile
// (the local copy here used to index q*n, reporting the max as p99 for
// n <= 100 samples).

/// The one timing harness behind every measured path: runs fn(r, &latencies)
/// for each request, derives scores/sec from \p total_scores over the whole
/// run, and p50/p99 from the latency samples fn appends (usually one per
/// request; the taped path appends one per forward batch).
PathStats MeasurePath(size_t requests, size_t total_scores,
                      const std::function<void(size_t, std::vector<double>*)>&
                          fn) {
  std::vector<double> latencies;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t r = 0; r < requests; ++r) fn(r, &latencies);
  const auto t1 = std::chrono::steady_clock::now();
  PathStats stats;
  stats.scores_per_sec = static_cast<double>(total_scores) /
                         std::chrono::duration<double>(t1 - t0).count();
  stats.p50_ms = PercentileMs(&latencies, 0.50);
  stats.p99_ms = PercentileMs(&latencies, 0.99);
  return stats;
}

/// MeasurePath with the harness itself timing each request as one sample.
PathStats MeasurePathPerRequest(size_t requests, size_t total_scores,
                                const std::function<void(size_t)>& fn) {
  return MeasurePath(requests, total_scores,
                     [&](size_t r, std::vector<double>* latencies) {
                       const auto s0 = std::chrono::steady_clock::now();
                       fn(r);
                       const auto s1 = std::chrono::steady_clock::now();
                       latencies->push_back(
                           std::chrono::duration<double>(s1 - s0).count());
                     });
}

/// Scores \p candidates for \p ex through the taped training-path forward in
/// batches of \p batch_size, recording one latency sample per batch.
std::vector<float> ScoreTaped(core::Model* model,
                              const data::BatchBuilder& builder,
                              const data::SequenceExample& ex,
                              const std::vector<int32_t>& candidates,
                              size_t batch_size,
                              std::vector<double>* latencies) {
  std::vector<float> scores;
  scores.reserve(candidates.size());
  for (size_t start = 0; start < candidates.size(); start += batch_size) {
    const size_t end = std::min(candidates.size(), start + batch_size);
    std::vector<const data::SequenceExample*> repeated(end - start, &ex);
    std::vector<int32_t> chunk(candidates.begin() + start,
                               candidates.begin() + end);
    data::Batch batch = builder.Build(repeated, &chunk);
    const auto t0 = std::chrono::steady_clock::now();
    autograd::Variable out = model->Score(batch, /*training=*/false);
    const auto t1 = std::chrono::steady_clock::now();
    latencies->push_back(std::chrono::duration<double>(t1 - t0).count());
    for (size_t i = 0; i < end - start; ++i) {
      scores.push_back(out.value().data()[i]);
    }
  }
  return scores;
}

size_t CountMismatches(const std::vector<float>& ref,
                       const std::vector<float>& got) {
  if (ref.size() != got.size()) return ref.size() + got.size();
  size_t mismatches = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (std::memcmp(&ref[i], &got[i], sizeof(float)) != 0) ++mismatches;
  }
  return mismatches;
}

/// The repeated-user multi-request workload: request r comes from user
/// r % users and re-ranks a rotating slate of \p slate candidates, so a
/// (user, history) context is re-requested requests/users times — the
/// cache-hit-heavy traffic shape the ContextCache targets.
struct RequestWorkload {
  std::vector<const data::SequenceExample*> examples;  // per request
  std::vector<std::vector<int32_t>> slates;            // per request
};

RequestWorkload MakeRequestWorkload(
    const std::vector<data::SequenceExample>& pool, size_t num_objects,
    size_t requests, size_t users, size_t slate) {
  // Pick `users` examples with distinct user ids (histories differ too, so
  // each is one distinct serving context).
  std::vector<const data::SequenceExample*> distinct;
  for (const auto& ex : pool) {
    bool seen = false;
    for (const auto* d : distinct) seen = seen || d->user == ex.user;
    if (!seen) distinct.push_back(&ex);
    if (distinct.size() >= users) break;
  }
  RequestWorkload w;
  for (size_t r = 0; r < requests; ++r) {
    w.examples.push_back(distinct[r % distinct.size()]);
    std::vector<int32_t> s(slate);
    for (size_t j = 0; j < slate; ++j) {
      s[j] = static_cast<int32_t>((r * 7 + j) % num_objects);
    }
    w.slates.push_back(std::move(s));
  }
  return w;
}

int Run(int argc, char** argv) {
  FlagParser flags = ParseBenchFlagsOrDie(
      argc, argv,
      {"candidates", "requests", "thread-sweep", "smoke", "users", "slate",
       "cache-mb", "wave", "shards", "json"});
  const bool smoke = flags.GetBool("smoke", false);
  const std::string json_path = flags.GetString("json", "");
  JsonResultWriter json;
  json.Add("bench", "serving");
  json.Add("simd_level", tensor::kernels::Active().name);
  BenchOptions opts = BenchOptions::FromFlags(flags);
  if (smoke) {
    // Tiny shapes: the gates exercise every serving path bit-for-bit under
    // sanitizers without paying for a timed workload.
    if (!flags.Has("scale")) opts.scale = 0.2;
    if (!flags.Has("dim")) opts.dim = 8;
  } else {
    // Serving-shaped defaults: the paper's latent dim (64) and a long
    // check-in history. At the training benches' tiny dim=16/seq=20 the
    // per-request context is too cheap for caching to matter; serving heavy
    // users is exactly where the (user, history) context dominates.
    if (!flags.Has("dim")) opts.dim = 64;
    if (!flags.Has("seq-len")) opts.max_seq_len = 50;
  }
  // Acceptance workload: batch 256 unless the caller asks otherwise.
  const size_t batch = flags.Has("batch") ? opts.batch_size : 256;
  const size_t requests = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("requests", opts.quick ? 4 : 16)));
  const size_t rb_requests = smoke ? 8 : std::max<size_t>(requests, 64);
  const size_t rb_users = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("users", 8)));
  const size_t rb_slate = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("slate", 8)));
  const size_t cache_mb = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("cache-mb", 64)));
  const size_t wave = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("wave", 64)));

  PrintBanner("Serving throughput — taped vs tape-free vs factored vs "
              "cached vs request-batched vs sharded",
              "src/serve/ subsystem (no paper counterpart); catalog scoring "
              "for next-object ranking");

  PreparedDataset prep = PrepareDataset("gowalla", opts);
  auto model = MakeModel("SeqFM", prep.space, opts);

  size_t num_candidates = static_cast<size_t>(
      flags.GetInt("candidates", prep.space.num_objects()));
  num_candidates = std::min(num_candidates, prep.space.num_objects());
  std::vector<int32_t> catalog(num_candidates);
  for (size_t i = 0; i < num_candidates; ++i) {
    catalog[i] = static_cast<int32_t>(i);
  }
  const auto& examples = prep.dataset.test().empty() ? prep.dataset.train()
                                                     : prep.dataset.test();
  SEQFM_CHECK(!examples.empty());

  // The eager baselines pin use_compiled_program off: with the serving
  // compiler on by default, every Predictor would otherwise score through
  // the op program and the rows below would all measure the same path.
  serve::PredictorOptions generic_opts;
  generic_opts.micro_batch = batch;
  generic_opts.enable_seqfm_fast_path = false;
  generic_opts.use_compiled_program = false;
  serve::Predictor generic(model.get(), prep.builder.get(), generic_opts);
  serve::PredictorOptions fast_opts;
  fast_opts.micro_batch = batch;
  fast_opts.use_compiled_program = false;  // hand-factored eager program
  serve::Predictor fast(model.get(), prep.builder.get(), fast_opts);
  // The compiled op program (trace -> IR passes -> arena-planned VM).
  serve::PredictorOptions compiled_opts;
  compiled_opts.micro_batch = batch;
  serve::Predictor compiled(model.get(), prep.builder.get(), compiled_opts);
  // Compiled + context cache: the production serving configuration.
  serve::PredictorOptions cached_opts = compiled_opts;
  cached_opts.context_cache_bytes = cache_mb << 20;
  serve::Predictor cached(model.get(), prep.builder.get(), cached_opts);
  // Arena-off baseline: identical factored program, but every op output is
  // an individual heap allocation (the pre-arena behavior).
  serve::PredictorOptions noarena_opts = fast_opts;
  noarena_opts.use_scratch_arena = false;
  serve::Predictor fast_noarena(model.get(), prep.builder.get(),
                                noarena_opts);

  std::printf("model=SeqFM dim=%zu seq-len=%zu | catalog=%zu candidates, "
              "%zu requests, batch=%zu | fast path %s, compiler %s, "
              "cache %zu MiB\n",
              opts.dim, opts.max_seq_len, num_candidates, requests, batch,
              fast.fast_path_active() ? "ACTIVE" : "inactive",
              compiled.compiled_active() ? "ACTIVE" : "inactive", cache_mb);
  if (!compiled.compiled_active()) {
    std::fprintf(stderr, "SeqFM failed to compile into an op program\n");
    return 1;
  }
  // Compile-time facts, for --json and the log: instruction counts after
  // the pass pipeline and the statically planned execution-frame bytes.
  {
    const ir::EngineStats es = compiled.engine()->stats();
    std::printf("compiled program: %zu prologue + %zu body instrs, %zu "
                "slots, %zu planned frame bytes, %zu folded / %zu dce / "
                "%zu fused\n",
                es.prologue_instrs, es.body_instrs, es.slots,
                (es.prologue_frame_floats + es.body_frame_floats) *
                    sizeof(float),
                es.folded, es.dce_removed, es.fused);
    json.Add("compiled_prologue_instrs",
             static_cast<double>(es.prologue_instrs));
    json.Add("compiled_body_instrs", static_cast<double>(es.body_instrs));
    json.Add("compiled_slots", static_cast<double>(es.slots));
    json.Add("compiled_frame_bytes",
             static_cast<double>(
                 (es.prologue_frame_floats + es.body_frame_floats) *
                 sizeof(float)));
    json.Add("compiled_folded", static_cast<double>(es.folded));
    json.Add("compiled_dce_removed", static_cast<double>(es.dce_removed));
    json.Add("compiled_fused", static_cast<double>(es.fused));
  }

  const RequestWorkload workload =
      MakeRequestWorkload(examples, prep.space.num_objects(), rb_requests,
                          rb_users, std::min(rb_slate, num_candidates));

  // Shard sweep (--shards): same CSV validation treatment as --thread-sweep.
  const std::vector<size_t> shard_counts = ParseSizeListOrDie(
      flags, "shards", smoke ? "1,2,3,8" : "1,2,4,8", 4096);

  // -------------------------------------------------------------------------
  // Parity gates: every serving path must agree with the taped forward
  // bit-for-bit before any timing. Runs at each sweep thread count in smoke
  // mode, at the first otherwise.
  // -------------------------------------------------------------------------
  auto run_parity_gates = [&]() -> size_t {
    size_t mismatches = 0;
    std::vector<double> scratch;
    const auto& ex = examples.front();
    const std::vector<float> ref =
        ScoreTaped(model.get(), *prep.builder, ex, catalog, batch, &scratch);
    mismatches += CountMismatches(ref, generic.ScoreCandidates(ex, catalog));
    mismatches += CountMismatches(ref, fast.ScoreCandidates(ex, catalog));
    // The compiled op program against the taped forward — the compiled
    // on/off smoke CI leans on this gate.
    mismatches += CountMismatches(ref, compiled.ScoreCandidates(ex, catalog));
    // Arena on/off must be invisible in the bits.
    mismatches +=
        CountMismatches(ref, fast_noarena.ScoreCandidates(ex, catalog));
    // Cached path twice: the cold pass fills the cache, the warm pass must
    // serve the memoized context with identical bits.
    cached.InvalidateContextCache();
    mismatches += CountMismatches(ref, cached.ScoreCandidates(ex, catalog));
    mismatches += CountMismatches(ref, cached.ScoreCandidates(ex, catalog));

    // Shared ranking comparison for every top-K gate below: item equality
    // plus score-bit equality, size mismatch counted as all-wrong.
    auto count_ranking_mismatches =
        [](const std::vector<serve::ScoredItem>& got,
           const std::vector<serve::ScoredItem>& want) {
          if (got.size() != want.size()) return want.size() + 1;
          size_t bad = 0;
          for (size_t j = 0; j < got.size(); ++j) {
            if (got[j].item != want[j].item ||
                std::memcmp(&got[j].score, &want[j].score,
                            sizeof(float)) != 0) {
              ++bad;
            }
          }
          return bad;
        };

    // Batch-served parity over the repeated-user workload (fused waves +
    // cache): top-K of every request must equal the taped reference's.
    cached.InvalidateContextCache();
    serve::BatchServerOptions server_opts;
    server_opts.max_wave_requests = wave;
    serve::BatchServer server(&cached, server_opts);
    std::vector<std::future<std::vector<serve::ScoredItem>>> futures;
    for (size_t r = 0; r < workload.examples.size(); ++r) {
      futures.push_back(
          server.Submit(*workload.examples[r], workload.slates[r], 10));
    }
    for (size_t r = 0; r < futures.size(); ++r) {
      const std::vector<float> rref =
          ScoreTaped(model.get(), *prep.builder, *workload.examples[r],
                     workload.slates[r], batch, &scratch);
      mismatches += count_ranking_mismatches(
          futures[r].get(), serve::SelectTopK(workload.slates[r], rref, 10));
    }

    // Sharded catalog parity: every shard count (and a sharded BatchServer)
    // must reproduce the unsharded Predictor ranking bit-for-bit — items
    // and score bits — regardless of shard boundaries. Rank the same
    // `catalog` everywhere: TopKAll would cover the full object space even
    // when --candidates trimmed the bench catalog.
    const size_t gate_k = std::min<size_t>(10, num_candidates);
    const auto want_top = fast.TopK(ex, catalog, gate_k);
    for (size_t shards : shard_counts) {
      serve::ShardedPredictor sharded(&fast, {shards, 0});
      mismatches +=
          count_ranking_mismatches(sharded.TopK(ex, catalog, gate_k),
                                   want_top);
      // Sharded serving over the compiled program: same ranking bits.
      serve::ShardedPredictor sharded_compiled(&compiled, {shards, 0});
      mismatches += count_ranking_mismatches(
          sharded_compiled.TopK(ex, catalog, gate_k), want_top);
      serve::BatchServerOptions sharded_server_opts;
      sharded_server_opts.num_shards = shards;
      serve::BatchServer sharded_server(&fast, sharded_server_opts);
      mismatches += count_ranking_mismatches(
          sharded_server.Submit(ex, catalog, gate_k).get(), want_top);
    }
    return mismatches;
  };

  // Validated here so a malformed token gets the usage treatment, not an
  // uncaught exception or a SetGlobalThreads(0) check-fail.
  const std::vector<size_t> thread_counts = ParseSizeListOrDie(
      flags, "thread-sweep", smoke ? "1,2" : "1,2,4", 1024);

  for (size_t threads : smoke ? thread_counts
                              : std::vector<size_t>{thread_counts.front()}) {
    util::SetGlobalThreads(threads);
    const size_t mismatches = run_parity_gates();
    std::printf("parity gates @threads=%zu: %zu mismatching results "
                "(must be 0)\n", threads, mismatches);
    if (mismatches != 0) return 1;
  }
  if (smoke) {
    std::printf("smoke mode: parity gates passed, skipping timed runs.\n");
    if (!json_path.empty()) {
      json.Add("mode", "smoke");
      json.Add("parity_mismatches", 0.0);
      json.WriteTo(json_path);
    }
    return 0;
  }

  // -------------------------------------------------------------------------
  // Full-catalog sweep: one request at a time (PR 2 paths).
  // -------------------------------------------------------------------------
  const size_t sweep_scores = requests * num_candidates;
  for (size_t threads : thread_counts) {
    util::SetGlobalThreads(threads);
    const PathStats taped = MeasurePath(
        requests, sweep_scores, [&](size_t r, std::vector<double>* lat) {
          (void)ScoreTaped(model.get(), *prep.builder,
                           examples[r % examples.size()], catalog, batch,
                           lat);
        });
    const PathStats tape_free =
        MeasurePathPerRequest(requests, sweep_scores, [&](size_t r) {
          (void)generic.ScoreCandidates(examples[r % examples.size()],
                                        catalog);
        });
    const PathStats factored =
        MeasurePathPerRequest(requests, sweep_scores, [&](size_t r) {
          (void)fast.ScoreCandidates(examples[r % examples.size()], catalog);
        });
    const PathStats factored_noarena =
        MeasurePathPerRequest(requests, sweep_scores, [&](size_t r) {
          (void)fast_noarena.ScoreCandidates(examples[r % examples.size()],
                                             catalog);
        });
    const PathStats compiled_path =
        MeasurePathPerRequest(requests, sweep_scores, [&](size_t r) {
          (void)compiled.ScoreCandidates(examples[r % examples.size()],
                                         catalog);
        });

    std::printf("\n[threads=%zu] %-28s %12s %10s %10s %9s\n", threads, "path",
                "scores/sec", "p50 ms", "p99 ms", "speedup");
    auto print_row = [&](const char* name, const char* unit,
                         const PathStats& s) {
      std::printf("            %-28s %12.0f %7.3f/%s %7.3f/%s %8.2fx\n", name,
                  s.scores_per_sec, s.p50_ms, unit, s.p99_ms, unit,
                  s.scores_per_sec / taped.scores_per_sec);
    };
    print_row("taped forward (batch)", "b", taped);
    print_row("tape-free forward (batch)", "rq", tape_free);
    print_row("factored, arena OFF", "rq", factored_noarena);
    print_row("factored catalog (request)", "rq", factored);
    print_row("compiled op program (request)", "rq", compiled_path);
    std::printf("            arena speedup on the factored path: %.2fx\n",
                factored.scores_per_sec / factored_noarena.scores_per_sec);
    if (threads == thread_counts.front()) {
      json.Add("threads", static_cast<double>(threads));
      json.Add("catalog", static_cast<double>(num_candidates));
      json.Add("taped_scores_per_sec", taped.scores_per_sec);
      json.Add("tape_free_scores_per_sec", tape_free.scores_per_sec);
      json.Add("factored_scores_per_sec", factored.scores_per_sec);
      json.Add("factored_noarena_scores_per_sec",
               factored_noarena.scores_per_sec);
      json.Add("factored_speedup_vs_taped",
               factored.scores_per_sec / taped.scores_per_sec);
      json.Add("arena_speedup",
               factored.scores_per_sec / factored_noarena.scores_per_sec);
      json.Add("factored_p50_ms", factored.p50_ms);
      json.Add("factored_p99_ms", factored.p99_ms);
      json.Add("compiled_scores_per_sec", compiled_path.scores_per_sec);
      json.Add("compiled_speedup_vs_taped",
               compiled_path.scores_per_sec / taped.scores_per_sec);
      json.Add("compiled_p50_ms", compiled_path.p50_ms);
      json.Add("compiled_p99_ms", compiled_path.p99_ms);
      json.Add("compiled_counts",
               static_cast<double>(compiled.engine()->stats().compiled_counts));
    }
    std::fflush(stdout);
  }

  // -------------------------------------------------------------------------
  // Sharded catalog sweep: full-catalog top-10 through ShardedPredictor at
  // each --shards value, against the unsharded factored TopKAll baseline.
  // Sharding bounds per-request memory (shards * k heap entries instead of a
  // full score vector) and must never change a bit of the ranking; the gate
  // above already enforced parity, this section reports the cost.
  // -------------------------------------------------------------------------
  std::printf("\n--- sharded catalog serving: full-catalog top-10, "
              "%zu requests ---\n", requests);
  const size_t shard_k = std::min<size_t>(10, num_candidates);
  for (size_t threads : thread_counts) {
    util::SetGlobalThreads(threads);
    const PathStats unsharded =
        MeasurePathPerRequest(requests, sweep_scores, [&](size_t r) {
          (void)fast.TopK(examples[r % examples.size()], catalog, shard_k);
        });
    std::printf("\n[threads=%zu] %-28s %12s %10s %10s %9s\n", threads, "path",
                "scores/sec", "p50 ms", "p99 ms", "vs unshard");
    std::printf("            %-28s %12.0f %7.3f    %7.3f    %8.2fx\n",
                "unsharded top-K (baseline)", unsharded.scores_per_sec,
                unsharded.p50_ms, unsharded.p99_ms, 1.0);
    for (size_t shards : shard_counts) {
      serve::ShardedPredictor sharded(&fast, {shards, 0});
      // Partition once, serve many — the intended deployment shape.
      const serve::ShardedCatalog sharded_catalog(catalog, shards);
      const PathStats s =
          MeasurePathPerRequest(requests, sweep_scores, [&](size_t r) {
            (void)sharded.TopK(examples[r % examples.size()],
                               sharded_catalog, shard_k);
          });
      char name[64];
      std::snprintf(name, sizeof(name), "sharded top-K (%zu shards)", shards);
      std::printf("            %-28s %12.0f %7.3f    %7.3f    %8.2fx\n", name,
                  s.scores_per_sec, s.p50_ms, s.p99_ms,
                  s.scores_per_sec / unsharded.scores_per_sec);
    }
    std::fflush(stdout);
  }

  // -------------------------------------------------------------------------
  // Request-batched serving: the repeated-user workload through the PR 2
  // factored path (baseline), the ContextCache, and the BatchServer. The
  // acceptance criterion is cached/batched >= 2x the uncached factored path.
  // -------------------------------------------------------------------------
  std::printf("\n--- request-batched serving: %zu requests over %zu users, "
              "slate=%zu, wave<=%zu ---\n",
              rb_requests, rb_users, std::min(rb_slate, num_candidates),
              wave);
  const size_t rb_scores = rb_requests * std::min(rb_slate, num_candidates);
  for (size_t threads : thread_counts) {
    util::SetGlobalThreads(threads);

    auto run_serial = [&](const serve::Predictor& p) {
      return MeasurePathPerRequest(rb_requests, rb_scores, [&](size_t r) {
        (void)p.ScoreCandidates(*workload.examples[r], workload.slates[r]);
      });
    };

    const PathStats uncached = run_serial(fast);
    cached.InvalidateContextCache();
    // Counters are cumulative over the process; report this run's delta.
    const auto cache_before = cached.context_cache()->stats();
    const PathStats with_cache = run_serial(cached);
    auto cache_stats = cached.context_cache()->stats();
    cache_stats.hits -= cache_before.hits;
    cache_stats.misses -= cache_before.misses;

    // Steady-state allocation audit: with the context cache and the scratch
    // arena warm (the run above warmed both), additional requests must not
    // heap-allocate tensor data or grow the arena. This is the acceptance
    // assertion for allocation-free serving; a regression exits 1 like a
    // parity failure. `cached` serves through the compiled VM, so the audit
    // also pins the compiled path's zero-allocation claim — the explicit
    // warm-up pass makes sure every lazy per-count body compile and
    // execution-frame growth happened before the counters are read.
    const size_t warm_requests = std::min<size_t>(8, rb_requests);
    for (size_t r = 0; r < warm_requests; ++r) {
      (void)cached.ScoreCandidates(*workload.examples[r],
                                   workload.slates[r]);
    }
    const uint64_t heap_allocs_before = tensor::internal::HeapAllocCount();
    const auto scratch_before = cached.scratch_stats();
    const size_t audit_requests = std::min<size_t>(8, rb_requests);
    for (size_t r = 0; r < audit_requests; ++r) {
      (void)cached.ScoreCandidates(*workload.examples[r],
                                   workload.slates[r]);
    }
    const uint64_t heap_alloc_delta =
        tensor::internal::HeapAllocCount() - heap_allocs_before;
    const uint64_t refill_delta =
        cached.scratch_stats().heap_refills - scratch_before.heap_refills;
    std::printf("            steady state over %zu requests: %llu tensor "
                "heap allocations, %llu arena refills (must be 0)\n",
                audit_requests,
                static_cast<unsigned long long>(heap_alloc_delta),
                static_cast<unsigned long long>(refill_delta));
    if (heap_alloc_delta != 0 || refill_delta != 0) {
      std::fprintf(stderr, "steady-state serving allocated: %llu tensor "
                   "heap allocations, %llu arena refills\n",
                   static_cast<unsigned long long>(heap_alloc_delta),
                   static_cast<unsigned long long>(refill_delta));
      return 1;
    }

    cached.InvalidateContextCache();
    PathStats batched;
    {
      serve::BatchServerOptions server_opts;
      server_opts.max_wave_requests = wave;
      serve::BatchServer server(&cached, server_opts);
      std::vector<std::future<std::vector<serve::ScoredItem>>> futures;
      std::vector<std::chrono::steady_clock::time_point> submit_at;
      std::vector<double> latencies(rb_requests);
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t r = 0; r < rb_requests; ++r) {
        submit_at.push_back(std::chrono::steady_clock::now());
        futures.push_back(
            server.Submit(*workload.examples[r], workload.slates[r], 10));
      }
      for (size_t r = 0; r < rb_requests; ++r) {
        (void)futures[r].get();
        latencies[r] = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - submit_at[r]).count();
      }
      const auto t1 = std::chrono::steady_clock::now();
      batched.scores_per_sec =
          static_cast<double>(rb_scores) /
          std::chrono::duration<double>(t1 - t0).count();
      batched.p50_ms = PercentileMs(&latencies, 0.50);
      batched.p99_ms = PercentileMs(&latencies, 0.99);
    }

    std::printf("\n[threads=%zu] %-28s %12s %10s %10s %9s\n", threads, "path",
                "scores/sec", "p50 ms", "p99 ms", "speedup");
    auto print_row = [&](const char* name, const PathStats& s) {
      std::printf("            %-28s %12.0f %7.3f    %7.3f    %8.2fx\n", name,
                  s.scores_per_sec, s.p50_ms, s.p99_ms,
                  s.scores_per_sec / uncached.scores_per_sec);
    };
    print_row("factored, no cache (PR 2)", uncached);
    print_row("compiled + context cache", with_cache);
    print_row("batch server (fused+cache)", batched);
    std::printf("            cache: %llu hits / %llu misses (%.1f%% hit "
                "rate), %zu entries, %.1f KiB\n",
                static_cast<unsigned long long>(cache_stats.hits),
                static_cast<unsigned long long>(cache_stats.misses),
                100.0 * cache_stats.hit_rate(), cache_stats.entries,
                static_cast<double>(cache_stats.bytes) / 1024.0);
    const double best = std::max(with_cache.scores_per_sec,
                                 batched.scores_per_sec);
    std::printf("            best cached/batched = %.2fx uncached (PR 3's "
                ">= 2x acceptance predates the SIMD kernels, which sped up "
                "the uncached baseline itself)\n",
                best / uncached.scores_per_sec);
    if (threads == thread_counts.front()) {
      json.Add("cached_scores_per_sec", with_cache.scores_per_sec);
      json.Add("batched_scores_per_sec", batched.scores_per_sec);
      json.Add("best_cached_speedup", best / uncached.scores_per_sec);
      json.Add("cache_hit_rate", cache_stats.hit_rate());
      json.Add("steady_state_tensor_heap_allocs",
               static_cast<double>(heap_alloc_delta));
      json.Add("steady_state_arena_refills",
               static_cast<double>(refill_delta));
    }
    std::fflush(stdout);
  }
  const auto scratch = cached.scratch_stats();
  json.Add("scratch_allocations", static_cast<double>(scratch.allocations));
  json.Add("scratch_heap_refills", static_cast<double>(scratch.heap_refills));
  json.Add("scratch_bytes_reserved",
           static_cast<double>(scratch.bytes_reserved));
  json.Add("scratch_high_water", static_cast<double>(scratch.high_water));
  if (!json_path.empty()) json.WriteTo(json_path);
  std::printf("\nLatency units: /b = per batch-%zu forward, /rq = per "
              "catalog request; request-batched latencies are per request "
              "(batch-server latency includes queueing).\n", batch);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
