#include "bench/bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace bench {

const std::vector<std::string>& CommonBenchFlags() {
  static const std::vector<std::string> kFlags = {
      "scale",          "epochs", "dim",   "seq-len", "negatives",
      "eval-negatives", "batch",  "lr",    "validate-every", "seed",
      "threads",        "quick",
  };
  return kFlags;
}

FlagParser ParseBenchFlagsOrDie(int argc, const char* const* argv,
                                const std::vector<std::string>& extra_flags) {
  auto usage = [&] {
    std::fprintf(stderr, "accepted flags:");
    for (const auto& f : CommonBenchFlags()) {
      std::fprintf(stderr, " --%s", f.c_str());
    }
    for (const auto& f : extra_flags) std::fprintf(stderr, " --%s", f.c_str());
    std::fprintf(stderr, "\n");
  };
  FlagParser flags;
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    usage();
    std::exit(2);
  }
  if (!flags.positional().empty()) {
    std::fprintf(stderr, "unexpected positional argument: %s\n",
                 flags.positional().front().c_str());
    usage();
    std::exit(2);
  }
  for (const std::string& name : flags.Keys()) {
    const bool known =
        std::find(CommonBenchFlags().begin(), CommonBenchFlags().end(),
                  name) != CommonBenchFlags().end() ||
        std::find(extra_flags.begin(), extra_flags.end(), name) !=
            extra_flags.end();
    if (!known) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      usage();
      std::exit(2);
    }
  }
  return flags;
}

BenchOptions BenchOptions::FromFlags(const FlagParser& flags) {
  BenchOptions opts;
  opts.scale = 0.5;
  opts.epochs = 30;
  opts.dim = 16;
  opts.quick = flags.GetBool("quick", false);
  if (opts.quick) {
    opts.scale = 0.2;
    opts.epochs = 4;
    opts.eval_negatives = 100;
    opts.validate_every = 2;
  }
  opts.scale = flags.GetDouble("scale", opts.scale);
  opts.epochs = static_cast<size_t>(flags.GetInt("epochs", opts.epochs));
  opts.dim = static_cast<size_t>(flags.GetInt("dim", opts.dim));
  opts.max_seq_len =
      static_cast<size_t>(flags.GetInt("seq-len", opts.max_seq_len));
  opts.num_negatives =
      static_cast<size_t>(flags.GetInt("negatives", opts.num_negatives));
  opts.eval_negatives = static_cast<size_t>(
      flags.GetInt("eval-negatives", opts.eval_negatives));
  opts.batch_size = static_cast<size_t>(flags.GetInt("batch", opts.batch_size));
  opts.learning_rate =
      static_cast<float>(flags.GetDouble("lr", opts.learning_rate));
  opts.validate_every = static_cast<size_t>(
      flags.GetInt("validate-every", opts.validate_every));
  opts.seed = static_cast<uint64_t>(flags.GetInt("seed", opts.seed));
  const int64_t threads = flags.GetInt("threads", 0);
  if (threads < 0) {
    SEQFM_LOG(Warning) << "ignoring invalid --threads=" << threads;
  } else {
    opts.threads = static_cast<size_t>(threads);
    if (opts.threads > 0) {
      util::SetGlobalThreads(opts.threads);
    }
  }
  return opts;
}

PreparedDataset PrepareDataset(const std::string& preset,
                               const BenchOptions& opts) {
  PreparedDataset out;
  out.name = preset;
  out.config =
      data::SyntheticDatasetGenerator::Preset(preset, opts.scale).ValueOrDie();
  data::SyntheticDatasetGenerator generator(out.config);
  data::InteractionLog raw = generator.Generate().ValueOrDie();
  // The paper filters users/objects with < 10 interactions (Sec. V-A); the
  // regression presets are used as provided.
  if (out.config.with_ratings) {
    out.log = std::move(raw);
  } else {
    auto filtered = raw.Filter(/*min_user_events=*/10, /*min_object_users=*/2);
    out.log = filtered.ok() ? std::move(filtered).ValueOrDie() : std::move(raw);
  }
  out.dataset = data::TemporalDataset::FromLog(out.log).ValueOrDie();
  out.space = data::FeatureSpace(out.log.num_users(), out.log.num_objects());
  out.builder =
      std::make_unique<data::BatchBuilder>(out.space, opts.max_seq_len);
  return out;
}

std::unique_ptr<core::Model> MakeModel(
    const std::string& name, const data::FeatureSpace& space,
    const BenchOptions& opts,
    const std::function<void(core::SeqFmConfig*)>& seqfm_overrides) {
  if (name == "SeqFM") {
    core::SeqFmConfig cfg;
    cfg.embedding_dim = opts.dim;
    cfg.max_seq_len = opts.max_seq_len;
    cfg.ffn_layers = 1;
    cfg.keep_prob = 0.9f;
    cfg.seed = opts.seed;
    if (seqfm_overrides) seqfm_overrides(&cfg);
    return std::make_unique<core::SeqFm>(space, cfg);
  }
  baselines::BaselineConfig cfg;
  cfg.embedding_dim = opts.dim;
  cfg.max_seq_len = opts.max_seq_len;
  cfg.mlp_hidden = opts.dim;
  cfg.keep_prob = 0.9f;
  cfg.seed = opts.seed;
  return baselines::CreateBaseline(name, space, cfg).ValueOrDie();
}

core::TrainResult TrainModel(core::Model* model, const PreparedDataset& prep,
                             core::Task task, const BenchOptions& opts) {
  core::TrainConfig cfg;
  cfg.task = task;
  cfg.epochs = opts.epochs;
  cfg.batch_size = opts.batch_size;
  cfg.learning_rate = opts.learning_rate;
  cfg.num_negatives = opts.num_negatives;
  cfg.seed = opts.seed;
  cfg.validate_every = opts.validate_every;
  core::Trainer trainer(model, prep.builder.get(), &prep.dataset, cfg);

  // Epoch selection on the held-out second-last records (Sec. V-C). The
  // scorer must stay alive for the duration of Train().
  std::unique_ptr<eval::RankingEvaluator> rank_val;
  std::unique_ptr<eval::ClassificationEvaluator> cls_val;
  std::unique_ptr<eval::RegressionEvaluator> reg_val;
  if (opts.validate_every > 0) {
    switch (task) {
      case core::Task::kRanking:
        rank_val = std::make_unique<eval::RankingEvaluator>(
            &prep.dataset, prep.builder.get(), /*num_negatives=*/50,
            opts.seed + 31, /*use_validation=*/true);
        trainer.SetValidationScorer([&rank_val, model]() {
          return rank_val->Evaluate(model, {10}).hr[10];
        });
        break;
      case core::Task::kClassification:
        cls_val = std::make_unique<eval::ClassificationEvaluator>(
            &prep.dataset, prep.builder.get(), opts.seed + 31,
            /*use_validation=*/true);
        trainer.SetValidationScorer(
            [&cls_val, model]() { return cls_val->Evaluate(model).auc; });
        break;
      case core::Task::kRegression:
        reg_val = std::make_unique<eval::RegressionEvaluator>(
            &prep.dataset, prep.builder.get(), /*use_validation=*/true);
        trainer.SetValidationScorer(
            [&reg_val, model]() { return -reg_val->Evaluate(model).mae; });
        break;
    }
  }
  return trainer.Train();
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=============================================================="
              "==================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Synthetic substitution for the paper's datasets — compare the "
              "ORDERING of rows,\nnot absolute values (see DESIGN.md / "
              "EXPERIMENTS.md).\n");
  std::printf("================================================================"
              "================\n");
}

std::string FormatCell(double value, int width, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, value);
  return buf;
}

double Percentile(std::vector<double>* samples, double q) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t n = samples->size();
  // Nearest-rank: 1-based rank ceil(q * n), clamped into [1, n]. The naive
  // index q * n is off by one rank in the tail: for n = 100, p99 indexes
  // element 99 (the max, i.e. p100) instead of rank 99 (index 98).
  const double rank = std::ceil(q * static_cast<double>(n));
  const size_t idx =
      std::min(n - 1, static_cast<size_t>(std::max(rank, 1.0)) - 1);
  return (*samples)[idx];
}

double PercentileMs(std::vector<double>* latencies, double q) {
  return Percentile(latencies, q) * 1e3;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

void JsonResultWriter::Add(const std::string& key, double value) {
  // JSON has no nan/inf tokens; a degenerate metric becomes null rather
  // than making the whole file unparseable.
  if (!std::isfinite(value)) {
    entries_.emplace_back(key, "null");
    return;
  }
  char buf[64];
  // %.17g round-trips every double.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  entries_.emplace_back(key, buf);
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

void JsonResultWriter::Add(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

std::string JsonResultWriter::ToJson() const {
  std::string out = "{\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += "  \"" + JsonEscape(entries_[i].first) + "\": " +
           entries_[i].second;
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

bool JsonResultWriter::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    SEQFM_LOG(Warning) << "cannot write bench results to " << path;
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) SEQFM_LOG(Warning) << "short write of bench results to " << path;
  else std::printf("bench results written to %s\n", path.c_str());
  return ok;
}

std::vector<size_t> ParseSizeListOrDie(const FlagParser& flags,
                                       const std::string& name,
                                       const std::string& default_csv,
                                       size_t max_value) {
  std::vector<size_t> values;
  for (const std::string& tok :
       SplitCsv(flags.GetString(name, default_csv))) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || value == 0 ||
        value > max_value) {
      std::fprintf(stderr, "invalid --%s entry '%s' (want 1..%zu)\n",
                   name.c_str(), tok.c_str(), max_value);
      std::exit(2);
    }
    values.push_back(static_cast<size_t>(value));
  }
  if (values.empty()) {
    std::fprintf(stderr, "--%s: empty list\n", name.c_str());
    std::exit(2);
  }
  return values;
}

}  // namespace bench
}  // namespace seqfm
