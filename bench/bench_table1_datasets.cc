// Reproduces Table I: statistics of the six datasets (synthetic presets).
#include <cstdio>

#include "bench/bench_common.h"

namespace seqfm {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags = ParseBenchFlagsOrDie(argc, argv, {});
  BenchOptions opts = BenchOptions::FromFlags(flags);

  PrintBanner("Table I — Statistics of datasets in use",
              "SeqFM paper Table I: #Instance / #User / #Object / "
              "#Feature(Sparse) per dataset");

  struct PaperRow {
    const char* task;
    size_t instances, users, objects, features;
  };
  const std::map<std::string, PaperRow> paper = {
      {"gowalla", {"Ranking", 1865119, 34796, 57445, 149686}},
      {"foursquare", {"Ranking", 1196248, 24941, 28593, 82127}},
      {"trivago", {"Classification", 2810584, 12790, 45195, 103180}},
      {"taobao", {"Classification", 1970133, 37398, 65474, 168346}},
      {"beauty", {"Regression", 198503, 22363, 12101, 46565}},
      {"toys", {"Regression", 167597, 19412, 11924, 50748}},
  };

  std::printf("%-15s %-10s | %10s %8s %8s %10s | %s\n", "Task", "Dataset",
              "#Instance", "#User", "#Object", "#Feature", "avg seq len");
  std::printf("--------------------------------------------------------------"
              "------------------\n");
  for (const auto& name : data::SyntheticDatasetGenerator::PresetNames()) {
    PreparedDataset prep = PrepareDataset(name, opts);
    const auto stats = prep.log.ComputeStats();
    const auto& row = paper.at(name);
    std::printf("%-15s %-10s | %10zu %8zu %8zu %10zu | %6.1f\n", row.task,
                name.c_str(), stats.num_instances, stats.num_users,
                stats.num_objects, stats.num_sparse_features,
                stats.avg_sequence_length);
    std::printf("%-15s %-10s | %10zu %8zu %8zu %10zu | (paper, full scale)\n",
                "", "", row.instances, row.users, row.objects, row.features);
  }
  std::printf("\nThe synthetic presets reproduce the paper's *relative* "
              "dataset characteristics\n(task mix, density, sequence lengths) "
              "at ~1/100 scale for single-core runs;\npass --scale= to grow "
              "them.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
