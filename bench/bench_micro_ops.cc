// Microbenchmarks backing the Sec. III-I complexity analysis: the
// self-attention unit is O(n^2 d) in sequence length and the FFN is O(l d^2),
// so SeqFM's per-sample cost is O((n_s + n.)^2 d + l d^2). google-benchmark
// sweeps n and d so the scaling exponents can be read off the reported times.
//
// After the google-benchmark run, a kernel speedup summary times the
// dispatched SIMD kernel layer (tensor/kernels.h) scalar-vs-AVX2 on this
// machine and — with --json=<path> — writes the headline numbers as
// machine-readable BENCH_*.json (see bench::JsonResultWriter). Acceptance
// bar: >= 2x on the GEMM microkernel with AVX2 on AVX2 hardware.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "autograd/ops.h"
#include "bench/bench_common.h"
#include "nn/layers.h"
#include "nn/masks.h"
#include "tensor/init.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/cpu.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

using autograd::Variable;
using tensor::Tensor;

Variable RandomBatch(size_t batch, size_t n, size_t d, Rng* rng) {
  Tensor t({batch, n, d});
  tensor::FillNormal(&t, rng, 1.0f);
  return Variable::Constant(std::move(t));
}

// ---------------------------------------------------------------------------
// GEMM backbone: 512x512x512 across thread counts, against the naive
// reference. The acceptance bar for the parallel backbone is >= 2x at 4
// threads over the 1-thread blocked kernel (given >= 4 cores).
// ---------------------------------------------------------------------------

void GemmBenchArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

void BM_Gemm512(benchmark::State& state) {
  const size_t m = 512, k = 512, n = 512;
  Rng rng(7);
  Tensor a({m, k}), b({k, n}), c({m, n});
  tensor::FillNormal(&a, &rng, 1.0f);
  tensor::FillNormal(&b, &rng, 1.0f);
  util::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    tensor::MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(m * n * k) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
  util::SetGlobalThreads(1);
}
BENCHMARK(BM_Gemm512)->Apply(GemmBenchArgs);

void BM_Gemm512_Reference(benchmark::State& state) {
  const size_t m = 512, k = 512, n = 512;
  Rng rng(7);
  Tensor a({m, k}), b({k, n}), c({m, n});
  tensor::FillNormal(&a, &rng, 1.0f);
  tensor::FillNormal(&b, &rng, 1.0f);
  for (auto _ : state) {
    tensor::GemmReference(a.data(), b.data(), c.data(), m, k, n, false, false,
                          false);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(m * n * k) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Gemm512_Reference)->Unit(benchmark::kMillisecond);

void BM_Gemm512_Transposed(benchmark::State& state) {
  // The A^T · B shape that dominates the backward pass.
  const size_t m = 512, k = 512, n = 512;
  Rng rng(8);
  Tensor a({k, m}), b({k, n}), c({m, n});
  tensor::FillNormal(&a, &rng, 1.0f);
  tensor::FillNormal(&b, &rng, 1.0f);
  util::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    tensor::MatMul(a, b, &c, /*trans_a=*/true);
    benchmark::DoNotOptimize(c.data());
  }
  util::SetGlobalThreads(1);
}
BENCHMARK(BM_Gemm512_Transposed)->Apply(GemmBenchArgs);

void BM_SelfAttentionForward_SeqLen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 32, batch = 32;
  Rng rng(1);
  nn::SelfAttention attention(d, &rng);
  Variable mask = nn::MakeCausalMask(n);
  Variable e = RandomBatch(batch, n, d, &rng);
  for (auto _ : state) {
    Variable h = attention.Forward(e, mask);
    benchmark::DoNotOptimize(h.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SelfAttentionForward_SeqLen)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

void BM_SelfAttentionForward_Dim(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = 20, batch = 32;
  Rng rng(2);
  nn::SelfAttention attention(d, &rng);
  Variable mask = nn::MakeCausalMask(n);
  Variable e = RandomBatch(batch, n, d, &rng);
  for (auto _ : state) {
    Variable h = attention.Forward(e, mask);
    benchmark::DoNotOptimize(h.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(d));
}
BENCHMARK(BM_SelfAttentionForward_Dim)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

void BM_AttentionForwardBackward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 32, batch = 32;
  Rng rng(3);
  nn::SelfAttention attention(d, &rng);
  Variable mask = nn::MakeCausalMask(n);
  Variable e = RandomBatch(batch, n, d, &rng);
  for (auto _ : state) {
    attention.ZeroGrad();
    Variable h = attention.Forward(e, mask);
    Variable loss = autograd::MeanAll(h);
    autograd::Backward(loss);
    benchmark::DoNotOptimize(loss.value().at(0));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_AttentionForwardBackward)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity(benchmark::oNSquared);

void BM_ResidualFfn_Depth(benchmark::State& state) {
  const size_t layers = static_cast<size_t>(state.range(0));
  const size_t d = 64, batch = 128;
  Rng rng(4);
  nn::ResidualFeedForward ffn(d, layers, &rng);
  Tensor h({batch, d});
  tensor::FillNormal(&h, &rng, 1.0f);
  Variable input = Variable::Constant(std::move(h));
  for (auto _ : state) {
    Variable out = ffn.Forward(input, 1.0f, /*training=*/false, &rng);
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(layers));
}
BENCHMARK(BM_ResidualFfn_Depth)->DenseRange(1, 5)->Complexity(benchmark::oN);

void BM_EmbeddingGather(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t batch = 128, d = 64, vocab = 10000;
  Rng rng(5);
  nn::Embedding emb(vocab, d, &rng);
  std::vector<int32_t> idx(batch * n);
  for (auto& i : idx) {
    i = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(vocab)));
  }
  for (auto _ : state) {
    Variable out = emb.Forward(idx, batch, n);
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_EmbeddingGather)->RangeMultiplier(2)->Range(8, 64);

void BM_MaskedSoftmax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Tensor x({64, n, n});
  tensor::FillNormal(&x, &rng, 1.0f);
  Variable input = Variable::Constant(std::move(x));
  Variable mask = nn::MakeCausalMask(n);
  for (auto _ : state) {
    Variable p = autograd::MaskedSoftmax(input, mask);
    benchmark::DoNotOptimize(p.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MaskedSoftmax)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

// ---------------------------------------------------------------------------
// Kernel speedup summary: the dispatched SIMD layer, scalar vs AVX2
// ---------------------------------------------------------------------------

/// Seconds per iteration of fn, measured over >= min_seconds of work after
/// one warm-up call.
template <typename Fn>
double TimePerIter(Fn&& fn, double min_seconds = 0.2) {
  fn();
  size_t iters = 0;
  Stopwatch timer;
  do {
    fn();
    ++iters;
  } while (timer.ElapsedSeconds() < min_seconds);
  return timer.ElapsedSeconds() / static_cast<double>(iters);
}

void RunKernelSpeedupSummary(const std::string& json_path) {
  bench::JsonResultWriter json;
  json.Add("bench", "micro_ops");
  const bool avx2 = tensor::kernels::Avx2KernelsAvailable();
  json.Add("cpu_has_avx2", avx2 ? "true" : "false");
  std::printf("\n--- SIMD kernel layer: scalar vs avx2 (runtime dispatch, "
              "bit-identical results) ---\n");
  if (!avx2) {
    std::printf("AVX2 kernels unavailable on this machine; scalar only.\n");
    if (!json_path.empty()) json.WriteTo(json_path);
    return;
  }
  util::SetGlobalThreads(1);  // isolate the microkernel from pool effects

  Rng rng(17);
  const size_t gm = 256;
  Tensor a({gm, gm}), b({gm, gm}), c({gm, gm});
  tensor::FillNormal(&a, &rng, 1.0f);
  tensor::FillNormal(&b, &rng, 1.0f);
  const double gflop = 2.0 * static_cast<double>(gm * gm * gm) * 1e-9;

  auto time_gemm = [&](util::SimdLevel level, bool trans_b) {
    const util::SimdLevel prev = util::SetSimdLevel(level);
    const double sec = TimePerIter(
        [&]() { tensor::MatMul(a, b, &c, false, trans_b); });
    util::SetSimdLevel(prev);
    return sec;
  };

  std::printf("%-34s %12s %12s %9s\n", "kernel", "scalar", "avx2", "speedup");
  auto report = [&](const char* name, const char* key, double scalar_s,
                    double avx2_s, const char* unit, double per_iter_work) {
    std::printf("%-34s %9.2f %s %9.2f %s %8.2fx\n", name,
                per_iter_work / scalar_s, unit, per_iter_work / avx2_s, unit,
                scalar_s / avx2_s);
    json.Add(std::string(key) + "_speedup", scalar_s / avx2_s);
    json.Add(std::string(key) + "_scalar_per_sec", per_iter_work / scalar_s);
    json.Add(std::string(key) + "_avx2_per_sec", per_iter_work / avx2_s);
  };

  {
    const double s = time_gemm(util::SimdLevel::kScalar, false);
    const double v = time_gemm(util::SimdLevel::kAvx2, false);
    report("gemm 256^3 (B normal)", "gemm_microkernel", s, v, "GF/s", gflop);
  }
  {
    const double s = time_gemm(util::SimdLevel::kScalar, true);
    const double v = time_gemm(util::SimdLevel::kAvx2, true);
    report("gemm 256^3 (B transposed)", "gemm_trans", s, v, "GF/s", gflop);
  }

  const auto& ks = tensor::kernels::Table(util::SimdLevel::kScalar);
  const auto& kv = tensor::kernels::Table(util::SimdLevel::kAvx2);
  const size_t n = 4096;
  Tensor x({n}), y({n}), z({n});
  tensor::FillNormal(&x, &rng, 1.0f);
  tensor::FillNormal(&y, &rng, 1.0f);
  const double melems = static_cast<double>(n) * 1e-6;

  volatile float sink = 0.0f;
  {
    const double s =
        TimePerIter([&]() { sink = ks.dot(x.data(), y.data(), n); });
    const double v =
        TimePerIter([&]() { sink = kv.dot(x.data(), y.data(), n); });
    report("dot n=4096", "dot", s, v, "Me/s", melems);
  }
  {
    const double s = TimePerIter(
        [&]() { ks.axpy(1.0009765f, x.data(), z.data(), n); });
    const double v = TimePerIter(
        [&]() { kv.axpy(1.0009765f, x.data(), z.data(), n); });
    report("axpy n=4096", "axpy", s, v, "Me/s", melems);
  }
  {
    const double s =
        TimePerIter([&]() { ks.sigmoid(x.data(), z.data(), n); });
    const double v =
        TimePerIter([&]() { kv.sigmoid(x.data(), z.data(), n); });
    report("sigmoid n=4096", "sigmoid", s, v, "Me/s", melems);
  }
  {
    auto softmax_row = [&](const tensor::kernels::KernelTable& kt) {
      const float mx = kt.reduce_max_add(x.data(), nullptr, n);
      const float total =
          kt.softmax_exp_sum(x.data(), nullptr, mx, z.data(), n);
      kt.scale_inplace(1.0f / total, z.data(), n);
    };
    const double s = TimePerIter([&]() { softmax_row(ks); });
    const double v = TimePerIter([&]() { softmax_row(kv); });
    report("softmax row n=4096", "softmax", s, v, "Me/s", melems);
  }
  (void)sink;
  std::printf("acceptance: gemm microkernel avx2/scalar must be >= 2x on "
              "AVX2 hardware.\n");
  if (!json_path.empty()) json.WriteTo(json_path);
}

}  // namespace
}  // namespace seqfm

int main(int argc, char** argv) {
  // Pull out our own --json flag before handing argv to google-benchmark.
  std::string json_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  seqfm::RunKernelSpeedupSummary(json_path);
  return 0;
}
