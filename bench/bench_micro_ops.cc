// Microbenchmarks backing the Sec. III-I complexity analysis: the
// self-attention unit is O(n^2 d) in sequence length and the FFN is O(l d^2),
// so SeqFM's per-sample cost is O((n_s + n.)^2 d + l d^2). google-benchmark
// sweeps n and d so the scaling exponents can be read off the reported times.
#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "nn/layers.h"
#include "nn/masks.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

using autograd::Variable;
using tensor::Tensor;

Variable RandomBatch(size_t batch, size_t n, size_t d, Rng* rng) {
  Tensor t({batch, n, d});
  tensor::FillNormal(&t, rng, 1.0f);
  return Variable::Constant(std::move(t));
}

// ---------------------------------------------------------------------------
// GEMM backbone: 512x512x512 across thread counts, against the naive
// reference. The acceptance bar for the parallel backbone is >= 2x at 4
// threads over the 1-thread blocked kernel (given >= 4 cores).
// ---------------------------------------------------------------------------

void GemmBenchArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

void BM_Gemm512(benchmark::State& state) {
  const size_t m = 512, k = 512, n = 512;
  Rng rng(7);
  Tensor a({m, k}), b({k, n}), c({m, n});
  tensor::FillNormal(&a, &rng, 1.0f);
  tensor::FillNormal(&b, &rng, 1.0f);
  util::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    tensor::MatMul(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(m * n * k) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
  util::SetGlobalThreads(1);
}
BENCHMARK(BM_Gemm512)->Apply(GemmBenchArgs);

void BM_Gemm512_Reference(benchmark::State& state) {
  const size_t m = 512, k = 512, n = 512;
  Rng rng(7);
  Tensor a({m, k}), b({k, n}), c({m, n});
  tensor::FillNormal(&a, &rng, 1.0f);
  tensor::FillNormal(&b, &rng, 1.0f);
  for (auto _ : state) {
    tensor::GemmReference(a.data(), b.data(), c.data(), m, k, n, false, false,
                          false);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(m * n * k) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Gemm512_Reference)->Unit(benchmark::kMillisecond);

void BM_Gemm512_Transposed(benchmark::State& state) {
  // The A^T · B shape that dominates the backward pass.
  const size_t m = 512, k = 512, n = 512;
  Rng rng(8);
  Tensor a({k, m}), b({k, n}), c({m, n});
  tensor::FillNormal(&a, &rng, 1.0f);
  tensor::FillNormal(&b, &rng, 1.0f);
  util::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    tensor::MatMul(a, b, &c, /*trans_a=*/true);
    benchmark::DoNotOptimize(c.data());
  }
  util::SetGlobalThreads(1);
}
BENCHMARK(BM_Gemm512_Transposed)->Apply(GemmBenchArgs);

void BM_SelfAttentionForward_SeqLen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 32, batch = 32;
  Rng rng(1);
  nn::SelfAttention attention(d, &rng);
  Variable mask = nn::MakeCausalMask(n);
  Variable e = RandomBatch(batch, n, d, &rng);
  for (auto _ : state) {
    Variable h = attention.Forward(e, mask);
    benchmark::DoNotOptimize(h.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SelfAttentionForward_SeqLen)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

void BM_SelfAttentionForward_Dim(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = 20, batch = 32;
  Rng rng(2);
  nn::SelfAttention attention(d, &rng);
  Variable mask = nn::MakeCausalMask(n);
  Variable e = RandomBatch(batch, n, d, &rng);
  for (auto _ : state) {
    Variable h = attention.Forward(e, mask);
    benchmark::DoNotOptimize(h.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(d));
}
BENCHMARK(BM_SelfAttentionForward_Dim)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

void BM_AttentionForwardBackward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 32, batch = 32;
  Rng rng(3);
  nn::SelfAttention attention(d, &rng);
  Variable mask = nn::MakeCausalMask(n);
  Variable e = RandomBatch(batch, n, d, &rng);
  for (auto _ : state) {
    attention.ZeroGrad();
    Variable h = attention.Forward(e, mask);
    Variable loss = autograd::MeanAll(h);
    autograd::Backward(loss);
    benchmark::DoNotOptimize(loss.value().at(0));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_AttentionForwardBackward)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity(benchmark::oNSquared);

void BM_ResidualFfn_Depth(benchmark::State& state) {
  const size_t layers = static_cast<size_t>(state.range(0));
  const size_t d = 64, batch = 128;
  Rng rng(4);
  nn::ResidualFeedForward ffn(d, layers, &rng);
  Tensor h({batch, d});
  tensor::FillNormal(&h, &rng, 1.0f);
  Variable input = Variable::Constant(std::move(h));
  for (auto _ : state) {
    Variable out = ffn.Forward(input, 1.0f, /*training=*/false, &rng);
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(layers));
}
BENCHMARK(BM_ResidualFfn_Depth)->DenseRange(1, 5)->Complexity(benchmark::oN);

void BM_EmbeddingGather(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t batch = 128, d = 64, vocab = 10000;
  Rng rng(5);
  nn::Embedding emb(vocab, d, &rng);
  std::vector<int32_t> idx(batch * n);
  for (auto& i : idx) {
    i = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(vocab)));
  }
  for (auto _ : state) {
    Variable out = emb.Forward(idx, batch, n);
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_EmbeddingGather)->RangeMultiplier(2)->Range(8, 64);

void BM_MaskedSoftmax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Tensor x({64, n, n});
  tensor::FillNormal(&x, &rng, 1.0f);
  Variable input = Variable::Constant(std::move(x));
  Variable mask = nn::MakeCausalMask(n);
  for (auto _ : state) {
    Variable p = autograd::MaskedSoftmax(input, mask);
    benchmark::DoNotOptimize(p.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MaskedSoftmax)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace seqfm

BENCHMARK_MAIN();
