// Microbenchmarks backing the Sec. III-I complexity analysis: the
// self-attention unit is O(n^2 d) in sequence length and the FFN is O(l d^2),
// so SeqFM's per-sample cost is O((n_s + n.)^2 d + l d^2). google-benchmark
// sweeps n and d so the scaling exponents can be read off the reported times.
#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "nn/layers.h"
#include "nn/masks.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace seqfm {
namespace {

using autograd::Variable;
using tensor::Tensor;

Variable RandomBatch(size_t batch, size_t n, size_t d, Rng* rng) {
  Tensor t({batch, n, d});
  tensor::FillNormal(&t, rng, 1.0f);
  return Variable::Constant(std::move(t));
}

void BM_SelfAttentionForward_SeqLen(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 32, batch = 32;
  Rng rng(1);
  nn::SelfAttention attention(d, &rng);
  Variable mask = nn::MakeCausalMask(n);
  Variable e = RandomBatch(batch, n, d, &rng);
  for (auto _ : state) {
    Variable h = attention.Forward(e, mask);
    benchmark::DoNotOptimize(h.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SelfAttentionForward_SeqLen)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

void BM_SelfAttentionForward_Dim(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t n = 20, batch = 32;
  Rng rng(2);
  nn::SelfAttention attention(d, &rng);
  Variable mask = nn::MakeCausalMask(n);
  Variable e = RandomBatch(batch, n, d, &rng);
  for (auto _ : state) {
    Variable h = attention.Forward(e, mask);
    benchmark::DoNotOptimize(h.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(d));
}
BENCHMARK(BM_SelfAttentionForward_Dim)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

void BM_AttentionForwardBackward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = 32, batch = 32;
  Rng rng(3);
  nn::SelfAttention attention(d, &rng);
  Variable mask = nn::MakeCausalMask(n);
  Variable e = RandomBatch(batch, n, d, &rng);
  for (auto _ : state) {
    attention.ZeroGrad();
    Variable h = attention.Forward(e, mask);
    Variable loss = autograd::MeanAll(h);
    autograd::Backward(loss);
    benchmark::DoNotOptimize(loss.value().at(0));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_AttentionForwardBackward)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity(benchmark::oNSquared);

void BM_ResidualFfn_Depth(benchmark::State& state) {
  const size_t layers = static_cast<size_t>(state.range(0));
  const size_t d = 64, batch = 128;
  Rng rng(4);
  nn::ResidualFeedForward ffn(d, layers, &rng);
  Tensor h({batch, d});
  tensor::FillNormal(&h, &rng, 1.0f);
  Variable input = Variable::Constant(std::move(h));
  for (auto _ : state) {
    Variable out = ffn.Forward(input, 1.0f, /*training=*/false, &rng);
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(layers));
}
BENCHMARK(BM_ResidualFfn_Depth)->DenseRange(1, 5)->Complexity(benchmark::oN);

void BM_EmbeddingGather(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t batch = 128, d = 64, vocab = 10000;
  Rng rng(5);
  nn::Embedding emb(vocab, d, &rng);
  std::vector<int32_t> idx(batch * n);
  for (auto& i : idx) {
    i = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(vocab)));
  }
  for (auto _ : state) {
    Variable out = emb.Forward(idx, batch, n);
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_EmbeddingGather)->RangeMultiplier(2)->Range(8, 64);

void BM_MaskedSoftmax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Tensor x({64, n, n});
  tensor::FillNormal(&x, &rng, 1.0f);
  Variable input = Variable::Constant(std::move(x));
  Variable mask = nn::MakeCausalMask(n);
  for (auto _ : state) {
    Variable p = autograd::MaskedSoftmax(input, mask);
    benchmark::DoNotOptimize(p.value().data());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MaskedSoftmax)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace seqfm

BENCHMARK_MAIN();
