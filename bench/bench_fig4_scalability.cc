// Reproduces Figure 4: training time of SeqFM vs training-data proportion
// {0.2, 0.4, 0.6, 0.8, 1.0} on the largest (Trivago-like) dataset. The claim
// under test is LINEARITY of training time in data size.
//
// A second sweep varies the size of the util::ThreadPool
// (--thread-sweep=1,2,4,8) at full data proportion and reports the epoch-time
// speedup, verifying both the scalability of the parallel backbone and that
// the loss is bit-for-bit identical at every thread count.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags = ParseBenchFlagsOrDie(argc, argv, {"thread-sweep"});
  BenchOptions opts = BenchOptions::FromFlags(flags);
  // Timing does not need many epochs; the per-epoch time is what scales.
  opts.epochs = static_cast<size_t>(flags.GetInt("epochs", 3));
  opts.validate_every = 0;

  PrintBanner("Figure 4 — Training time of SeqFM w.r.t. varied data "
              "proportions",
              "SeqFM paper Fig. 4: wall-clock training time grows ~linearly "
              "from 0.2 to 1.0 of Trivago");

  PreparedDataset prep = PrepareDataset("trivago", opts);
  const auto stats = prep.log.ComputeStats();
  std::printf("\n[trivago] users=%zu objects=%zu interactions=%zu, %zu "
              "epochs per point\n",
              stats.num_users, stats.num_objects, stats.num_instances,
              opts.epochs);
  std::printf("%-12s | %12s | %14s | %s\n", "proportion", "train size",
              "train time (s)", "ideal (linear)");
  std::printf("-------------+--------------+----------------+-------------\n");

  Rng frac_rng(opts.seed + 5);
  std::vector<double> proportions = {0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<double> seconds;
  std::vector<size_t> sizes;
  for (double p : proportions) {
    data::TemporalDataset subset =
        prep.dataset.WithTrainFraction(p, &frac_rng);
    auto model = MakeModel("SeqFM", prep.space, opts);
    core::TrainConfig cfg;
    cfg.task = core::Task::kClassification;
    cfg.epochs = opts.epochs;
    cfg.batch_size = opts.batch_size;
    cfg.learning_rate = opts.learning_rate;
    cfg.num_negatives = opts.num_negatives;
    cfg.seed = opts.seed;
    core::Trainer trainer(model.get(), prep.builder.get(), &subset, cfg);
    auto result = trainer.Train();
    seconds.push_back(result.total_seconds);
    sizes.push_back(subset.train().size());
  }
  const double unit = seconds.back() / 1.0;  // time at proportion 1.0
  double max_rel_dev = 0.0;
  for (size_t i = 0; i < proportions.size(); ++i) {
    const double ideal = unit * proportions[i];
    if (ideal > 0) {
      max_rel_dev =
          std::max(max_rel_dev, std::abs(seconds[i] - ideal) / ideal);
    }
    std::printf("%-12.1f | %12zu | %14.2f | %10.2f\n", proportions[i],
                sizes[i], seconds[i], ideal);
  }
  std::printf("\n[shape] max deviation from the linear fit: %.1f%% -> %s\n",
              max_rel_dev * 100.0,
              max_rel_dev < 0.25 ? "approximately linear (REPRODUCED)"
                                 : "NOT linear");
  std::printf("(The paper reports 0.51e3 s at 0.2 to 2.79e3 s at 1.0 on its "
              "hardware; only the\nlinear shape, not the absolute seconds, "
              "is expected to transfer.)\n");

  // ---- Thread scalability sweep (parallel backbone) ----------------------
  const std::vector<size_t> thread_counts =
      ParseSizeListOrDie(flags, "thread-sweep", "1,2,4,8", 1024);
  std::printf("\nThread scalability at proportion 1.0 (%zu epochs per "
              "point):\n",
              opts.epochs);
  std::printf("%-8s | %14s | %8s | %s\n", "threads", "train time (s)",
              "speedup", "final loss (must be identical)");
  std::printf("---------+----------------+----------+--------------------\n");
  double base_seconds = 0.0;
  bool have_base = false;
  for (size_t t : thread_counts) {
    util::SetGlobalThreads(t);
    auto model = MakeModel("SeqFM", prep.space, opts);
    core::TrainConfig cfg;
    cfg.task = core::Task::kClassification;
    cfg.epochs = opts.epochs;
    cfg.batch_size = opts.batch_size;
    cfg.learning_rate = opts.learning_rate;
    cfg.num_negatives = opts.num_negatives;
    cfg.seed = opts.seed;
    core::Trainer trainer(model.get(), prep.builder.get(), &prep.dataset, cfg);
    auto result = trainer.Train();
    if (!have_base) {
      base_seconds = result.total_seconds;
      have_base = true;
    }
    const double speedup = result.total_seconds > 0.0
                               ? base_seconds / result.total_seconds
                               : 0.0;
    std::printf("%-8zu | %14.2f | %7.2fx | %.6f\n", t, result.total_seconds,
                speedup, result.final_loss);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace seqfm

int main(int argc, char** argv) { return seqfm::bench::Run(argc, argv); }
