#include "serve/context_cache.h"

#include <utility>

#include "util/hash.h"
#include "util/logging.h"

namespace seqfm {
namespace serve {

ContextCache::ContextCache(size_t byte_budget) : byte_budget_(byte_budget) {}

uint64_t ContextCache::KeyHash(int32_t user_index,
                               const std::vector<int32_t>& dynamic_ids) {
  uint64_t h = util::FnvUpdate(util::kFnv64Offset, &user_index,
                               sizeof(user_index));
  return util::FnvUpdate(h, dynamic_ids.data(),
                         dynamic_ids.size() * sizeof(int32_t));
}

ContextCache::LruList::iterator ContextCache::Find(
    uint64_t hash, int32_t user_index,
    const std::vector<int32_t>& dynamic_ids) {
  auto [lo, hi] = index_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (it->second->user_index == user_index &&
        it->second->dynamic_ids == dynamic_ids) {
      return it->second;
    }
  }
  return lru_.end();
}

ContextCache::ContextPtr ContextCache::GetOrCompute(
    int32_t user_index, const std::vector<int32_t>& dynamic_ids,
    const std::function<ContextPtr()>& compute) {
  const uint64_t hash = KeyHash(user_index, dynamic_ids);
  {
    util::OrderedMutexLock lock(mu_);
    auto it = Find(hash, user_index, dynamic_ids);
    if (it != lru_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it);  // most recently used
      return it->context;
    }
    ++misses_;
  }

  // Compute outside the lock so a slow context build never serializes
  // unrelated requests. Racing threads on the same cold key may duplicate
  // the work; both results are bit-identical, and only one is inserted.
  ContextPtr context = compute();
  SEQFM_CHECK(context != nullptr) << "ContextCache: compute returned null";
  // Entry cost charges the context tensors AND the entry's own copy of the
  // id key: the header promises "ids + entry overhead included", and
  // sizeof(Entry) only covers the vector object, not its heap payload.
  const size_t cost = context->ApproxBytes() +
                      dynamic_ids.size() * sizeof(int32_t) + sizeof(Entry);

  util::OrderedMutexLock lock(mu_);
  auto it = Find(hash, user_index, dynamic_ids);
  if (it != lru_.end()) {
    // A racing thread inserted while we computed (compute ran outside the
    // lock — possibly interleaved with an Invalidate); keep the cached copy
    // and never double-insert, so bytes_ can't leak on an overwrite (no
    // extra hit counted — this call already recorded its miss).
    lru_.splice(lru_.begin(), lru_, it);
    return it->context;
  }
  if (cost > byte_budget_) return context;  // uncacheable, serve uncached
  lru_.push_front(Entry{user_index, dynamic_ids, context, cost, hash});
  index_.emplace(hash, lru_.begin());
  bytes_ += cost;
  while (bytes_ > byte_budget_ && lru_.size() > 1) EvictBack();
  return context;
}

void ContextCache::EvictBack() {
  const Entry& victim = lru_.back();
  auto [lo, hi] = index_.equal_range(victim.hash);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == std::prev(lru_.end())) {
      index_.erase(it);
      break;
    }
  }
  bytes_ -= victim.bytes;
  lru_.pop_back();
  ++evictions_;
}

void ContextCache::Invalidate() {
  util::OrderedMutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  ++invalidations_;
}

ContextCacheStats ContextCache::stats() const {
  util::OrderedMutexLock lock(mu_);
  ContextCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.byte_budget = byte_budget_;
  return s;
}

}  // namespace serve
}  // namespace seqfm
