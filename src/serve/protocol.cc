#include "serve/protocol.h"

#include <cstring>

#include "util/failpoint.h"

namespace seqfm {
namespace serve {

namespace {

// All wire integers are little-endian; memcpy-based accessors keep every
// read/write alignment-safe regardless of where a frame lands in the stream
// buffer. The library only targets little-endian hosts (same assumption as
// the checkpoint format), so no byte swapping is performed.
template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(const std::string& in, size_t* pos, T* value) {
  if (in.size() - *pos < sizeof(*value)) return false;
  std::memcpy(value, in.data() + *pos, sizeof(*value));
  *pos += sizeof(*value);
  return true;
}

void AppendFrameHeader(std::string* wire, size_t payload_len) {
  AppendPod(wire, kRpcMagic);
  AppendPod(wire, static_cast<uint32_t>(payload_len));
}

}  // namespace

const char* RpcStatusToString(RpcStatus status) {
  switch (status) {
    case RpcStatus::kOk: return "OK";
    case RpcStatus::kOverloaded: return "OVERLOADED";
    case RpcStatus::kShuttingDown: return "SHUTTING_DOWN";
    case RpcStatus::kBadRequest: return "BAD_REQUEST";
    case RpcStatus::kPartial: return "PARTIAL";
  }
  return "UNKNOWN";
}

void AppendRequestFrame(const RpcRequest& req, std::string* wire) {
  const size_t payload_len = 1 + 8 + 4 + 4 + 4 + 4 +
                             4 * req.history.size() + 4 * req.slate.size();
  wire->reserve(wire->size() + kRpcFrameHeaderBytes + payload_len);
  AppendFrameHeader(wire, payload_len);
  AppendPod(wire, kRequestFrame);
  AppendPod(wire, req.id);
  AppendPod(wire, req.user);
  AppendPod(wire, req.k);
  AppendPod(wire, static_cast<uint32_t>(req.history.size()));
  AppendPod(wire, static_cast<uint32_t>(req.slate.size()));
  for (int32_t h : req.history) AppendPod(wire, h);
  for (int32_t s : req.slate) AppendPod(wire, s);
}

void AppendResponseFrame(const RpcResponse& resp, std::string* wire) {
  const size_t payload_len = 1 + 8 + 1 + 4 + 8 * resp.items.size();
  wire->reserve(wire->size() + kRpcFrameHeaderBytes + payload_len);
  AppendFrameHeader(wire, payload_len);
  AppendPod(wire, kResponseFrame);
  AppendPod(wire, resp.id);
  AppendPod(wire, static_cast<uint8_t>(resp.status));
  AppendPod(wire, static_cast<uint32_t>(resp.items.size()));
  for (const ScoredItem& item : resp.items) {
    AppendPod(wire, item.item);
    AppendPod(wire, item.score);
  }
}

void AppendHelloFrame(const RpcHello& hello, std::string* wire) {
  const size_t payload_len = 1 + 4 + 4;
  wire->reserve(wire->size() + kRpcFrameHeaderBytes + payload_len);
  AppendFrameHeader(wire, payload_len);
  AppendPod(wire, kHelloFrame);
  AppendPod(wire, hello.protocol_version);
  AppendPod(wire, hello.capabilities);
}

void AppendHelloAckFrame(const RpcHelloAck& ack, std::string* wire) {
  const size_t payload_len =
      1 + 1 + 4 + 4 + 8 + 4 + 4 + 8 + 8 + 8 + 4 + ack.message.size();
  wire->reserve(wire->size() + kRpcFrameHeaderBytes + payload_len);
  AppendFrameHeader(wire, payload_len);
  AppendPod(wire, kHelloAckFrame);
  AppendPod(wire, static_cast<uint8_t>(ack.status));
  AppendPod(wire, ack.protocol_version);
  AppendPod(wire, ack.capabilities);
  AppendPod(wire, ack.model_version);
  AppendPod(wire, ack.shard_index);
  AppendPod(wire, ack.num_shards);
  AppendPod(wire, ack.shard_begin);
  AppendPod(wire, ack.shard_end);
  AppendPod(wire, ack.catalog_size);
  AppendPod(wire, static_cast<uint32_t>(ack.message.size()));
  wire->append(ack.message);
}

void AppendShardRequestFrame(const RpcShardRequest& req, std::string* wire) {
  const size_t payload_len =
      1 + 8 + 4 + 4 + 8 + 8 + 4 + 4 * req.history.size();
  wire->reserve(wire->size() + kRpcFrameHeaderBytes + payload_len);
  AppendFrameHeader(wire, payload_len);
  AppendPod(wire, kShardRequestFrame);
  AppendPod(wire, req.id);
  AppendPod(wire, req.user);
  AppendPod(wire, req.k);
  AppendPod(wire, req.begin);
  AppendPod(wire, req.end);
  AppendPod(wire, static_cast<uint32_t>(req.history.size()));
  for (int32_t h : req.history) AppendPod(wire, h);
}

void AppendShardResponseFrame(const RpcShardResponse& resp,
                              std::string* wire) {
  const size_t payload_len = 1 + 8 + 1 + 8 + 4 + 16 * resp.entries.size();
  wire->reserve(wire->size() + kRpcFrameHeaderBytes + payload_len);
  AppendFrameHeader(wire, payload_len);
  AppendPod(wire, kShardResponseFrame);
  AppendPod(wire, resp.id);
  AppendPod(wire, static_cast<uint8_t>(resp.status));
  AppendPod(wire, resp.model_version);
  AppendPod(wire, static_cast<uint32_t>(resp.entries.size()));
  for (const RpcShardEntry& entry : resp.entries) {
    AppendPod(wire, entry.item);
    AppendPod(wire, entry.score);
    AppendPod(wire, entry.pos);
  }
}

Status DecodeRequest(const std::string& payload, RpcRequest* out) {
  size_t pos = 0;
  uint8_t type = 0;
  uint32_t history_len = 0, slate_len = 0;
  if (!ReadPod(payload, &pos, &type) || type != kRequestFrame) {
    return Status::InvalidArgument("rpc: not a request frame");
  }
  if (!ReadPod(payload, &pos, &out->id) || !ReadPod(payload, &pos, &out->user) ||
      !ReadPod(payload, &pos, &out->k) ||
      !ReadPod(payload, &pos, &history_len) ||
      !ReadPod(payload, &pos, &slate_len)) {
    return Status::InvalidArgument("rpc: truncated request header");
  }
  // The declared element counts must consume the rest of the payload
  // EXACTLY: a frame that declares more ids than it carries (truncated) or
  // carries trailing bytes (padded/desynced) is rejected before any resize
  // can act on an attacker-sized count.
  const size_t remaining = payload.size() - pos;
  if (remaining / 4 < history_len ||
      remaining != 4 * (static_cast<size_t>(history_len) + slate_len)) {
    return Status::InvalidArgument(
        "rpc: request declares " + std::to_string(history_len) +
        " history + " + std::to_string(slate_len) + " slate ids but carries " +
        std::to_string(remaining) + " payload bytes");
  }
  out->history.resize(history_len);
  for (uint32_t i = 0; i < history_len; ++i) {
    ReadPod(payload, &pos, &out->history[i]);
  }
  out->slate.resize(slate_len);
  for (uint32_t i = 0; i < slate_len; ++i) {
    ReadPod(payload, &pos, &out->slate[i]);
  }
  return Status::OK();
}

Status DecodeResponse(const std::string& payload, RpcResponse* out) {
  size_t pos = 0;
  uint8_t type = 0, status = 0;
  uint32_t count = 0;
  if (!ReadPod(payload, &pos, &type) || type != kResponseFrame) {
    return Status::InvalidArgument("rpc: not a response frame");
  }
  if (!ReadPod(payload, &pos, &out->id) || !ReadPod(payload, &pos, &status) ||
      !ReadPod(payload, &pos, &count)) {
    return Status::InvalidArgument("rpc: truncated response header");
  }
  if (status > static_cast<uint8_t>(RpcStatus::kPartial)) {
    return Status::InvalidArgument("rpc: unknown response status " +
                                   std::to_string(status));
  }
  out->status = static_cast<RpcStatus>(status);
  const size_t remaining = payload.size() - pos;
  if (remaining != 8 * static_cast<size_t>(count)) {
    return Status::InvalidArgument(
        "rpc: response declares " + std::to_string(count) +
        " items but carries " + std::to_string(remaining) + " payload bytes");
  }
  out->items.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    ReadPod(payload, &pos, &out->items[i].item);
    ReadPod(payload, &pos, &out->items[i].score);
  }
  return Status::OK();
}

Status DecodeHello(const std::string& payload, RpcHello* out) {
  size_t pos = 0;
  uint8_t type = 0;
  if (!ReadPod(payload, &pos, &type) || type != kHelloFrame) {
    return Status::InvalidArgument("rpc: not a hello frame");
  }
  if (!ReadPod(payload, &pos, &out->protocol_version) ||
      !ReadPod(payload, &pos, &out->capabilities)) {
    return Status::InvalidArgument("rpc: truncated hello");
  }
  if (pos != payload.size()) {
    return Status::InvalidArgument("rpc: hello carries trailing bytes");
  }
  return Status::OK();
}

Status DecodeHelloAck(const std::string& payload, RpcHelloAck* out) {
  size_t pos = 0;
  uint8_t type = 0, status = 0;
  uint32_t message_len = 0;
  if (!ReadPod(payload, &pos, &type) || type != kHelloAckFrame) {
    return Status::InvalidArgument("rpc: not a hello-ack frame");
  }
  if (!ReadPod(payload, &pos, &status) ||
      !ReadPod(payload, &pos, &out->protocol_version) ||
      !ReadPod(payload, &pos, &out->capabilities) ||
      !ReadPod(payload, &pos, &out->model_version) ||
      !ReadPod(payload, &pos, &out->shard_index) ||
      !ReadPod(payload, &pos, &out->num_shards) ||
      !ReadPod(payload, &pos, &out->shard_begin) ||
      !ReadPod(payload, &pos, &out->shard_end) ||
      !ReadPod(payload, &pos, &out->catalog_size) ||
      !ReadPod(payload, &pos, &message_len)) {
    return Status::InvalidArgument("rpc: truncated hello-ack");
  }
  if (status > static_cast<uint8_t>(RpcStatus::kPartial)) {
    return Status::InvalidArgument("rpc: unknown hello-ack status " +
                                   std::to_string(status));
  }
  out->status = static_cast<RpcStatus>(status);
  if (payload.size() - pos != message_len) {
    return Status::InvalidArgument(
        "rpc: hello-ack declares a " + std::to_string(message_len) +
        "-byte message but carries " + std::to_string(payload.size() - pos));
  }
  out->message.assign(payload, pos, message_len);
  return Status::OK();
}

Status DecodeShardRequest(const std::string& payload, RpcShardRequest* out) {
  size_t pos = 0;
  uint8_t type = 0;
  uint32_t history_len = 0;
  if (!ReadPod(payload, &pos, &type) || type != kShardRequestFrame) {
    return Status::InvalidArgument("rpc: not a shard-request frame");
  }
  if (!ReadPod(payload, &pos, &out->id) ||
      !ReadPod(payload, &pos, &out->user) || !ReadPod(payload, &pos, &out->k) ||
      !ReadPod(payload, &pos, &out->begin) ||
      !ReadPod(payload, &pos, &out->end) ||
      !ReadPod(payload, &pos, &history_len)) {
    return Status::InvalidArgument("rpc: truncated shard-request header");
  }
  const size_t remaining = payload.size() - pos;
  if (remaining != 4 * static_cast<size_t>(history_len)) {
    return Status::InvalidArgument(
        "rpc: shard request declares " + std::to_string(history_len) +
        " history ids but carries " + std::to_string(remaining) +
        " payload bytes");
  }
  out->history.resize(history_len);
  for (uint32_t i = 0; i < history_len; ++i) {
    ReadPod(payload, &pos, &out->history[i]);
  }
  return Status::OK();
}

Status DecodeShardResponse(const std::string& payload, RpcShardResponse* out) {
  size_t pos = 0;
  uint8_t type = 0, status = 0;
  uint32_t count = 0;
  if (!ReadPod(payload, &pos, &type) || type != kShardResponseFrame) {
    return Status::InvalidArgument("rpc: not a shard-response frame");
  }
  if (!ReadPod(payload, &pos, &out->id) || !ReadPod(payload, &pos, &status) ||
      !ReadPod(payload, &pos, &out->model_version) ||
      !ReadPod(payload, &pos, &count)) {
    return Status::InvalidArgument("rpc: truncated shard-response header");
  }
  if (status > static_cast<uint8_t>(RpcStatus::kPartial)) {
    return Status::InvalidArgument("rpc: unknown shard-response status " +
                                   std::to_string(status));
  }
  out->status = static_cast<RpcStatus>(status);
  const size_t remaining = payload.size() - pos;
  if (remaining != 16 * static_cast<size_t>(count)) {
    return Status::InvalidArgument(
        "rpc: shard response declares " + std::to_string(count) +
        " entries but carries " + std::to_string(remaining) +
        " payload bytes");
  }
  out->entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    ReadPod(payload, &pos, &out->entries[i].item);
    ReadPod(payload, &pos, &out->entries[i].score);
    ReadPod(payload, &pos, &out->entries[i].pos);
  }
  return Status::OK();
}

void FrameReader::Feed(const char* data, size_t n) {
  buf_.append(data, n);
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its stream buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

Status FrameReader::Next(std::string* payload, bool* got) {
  *got = false;
  if (poisoned_) {
    return Status::InvalidArgument("rpc: stream already failed framing");
  }
  if (buf_.size() - pos_ < kRpcFrameHeaderBytes) return Status::OK();
  uint32_t magic = 0, payload_len = 0;
  std::memcpy(&magic, buf_.data() + pos_, sizeof(magic));
  std::memcpy(&payload_len, buf_.data() + pos_ + sizeof(magic),
              sizeof(payload_len));
  if (magic != kRpcMagic) {
    poisoned_ = true;
    return Status::InvalidArgument("rpc: bad frame magic (stream desync)");
  }
  if (payload_len > max_frame_bytes_) {
    poisoned_ = true;
    return Status::InvalidArgument(
        "rpc: declared frame payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes_) +
        "-byte limit");
  }
  if (buf_.size() - pos_ < kRpcFrameHeaderBytes + payload_len) {
    return Status::OK();  // frame split across reads; wait for the rest
  }
  if (util::FailPoint::Trigger("rpc.frame.torn") != 0) {
    // Injected torn frame: a complete frame arrived but its bytes are
    // corrupt. Poison like the magic check would — the stream has no
    // resync point past garbage, so the connection must die.
    poisoned_ = true;
    return Status::InvalidArgument("rpc: injected torn frame");
  }
  payload->assign(buf_, pos_ + kRpcFrameHeaderBytes, payload_len);
  pos_ += kRpcFrameHeaderBytes + payload_len;
  *got = true;
  return Status::OK();
}

}  // namespace serve
}  // namespace seqfm
