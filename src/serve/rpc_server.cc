#include "serve/rpc_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace seqfm {
namespace serve {

namespace {

constexpr uint64_t kListenerId = 0;
constexpr uint64_t kEventFdId = 1;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

/// Per-connection state, owned and touched by the loop thread only.
struct RpcServer::Connection {
  int fd = -1;
  uint64_t id = 0;
  FrameReader reader;
  std::string out;      // encoded responses not yet fully written
  size_t out_pos = 0;   // flushed prefix of out
  bool want_write = false;   // EPOLLOUT armed
  bool paused_read = false;  // EPOLLIN disarmed by write backpressure

  size_t pending_out() const { return out.size() - out_pos; }
};

RpcServer::RpcServer(BatchServer* batch, RpcServerOptions options)
    : batch_(batch), options_(std::move(options)) {
  SEQFM_CHECK(batch_ != nullptr) << "RpcServer: null BatchServer";
  SEQFM_CHECK_GT(options_.max_frame_bytes, 0u);
  SEQFM_CHECK_GT(options_.max_write_buffer_bytes, 0u);
}

RpcServer::~RpcServer() { Shutdown(); }

Status RpcServer::Start() {
  {
    util::OrderedMutexLock lock(shutdown_mu_);
    if (started_) return Status::FailedPrecondition("RpcServer::Start twice");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError(Errno("rpc: socket"));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("rpc: bad bind address " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Status::IoError(Errno("rpc: bind"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status st = Status::IoError(Errno("rpc: listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status st = Status::IoError(Errno("rpc: getsockname"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    const Status st = Status::IoError(Errno("rpc: epoll_create1/eventfd"));
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (event_fd_ >= 0) ::close(event_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = event_fd_ = -1;
    return st;
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEventFdId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  {
    util::OrderedMutexLock lock(shutdown_mu_);
    started_ = true;
  }
  loop_ = std::thread([this]() { Loop(); });
  return Status::OK();
}

void RpcServer::Shutdown() {
  // Serializing the whole sequence makes Shutdown idempotent and gives every
  // caller the post-condition "all admitted requests answered, loop joined"
  // — the same guarantee BatchServer::Shutdown documents.
  util::OrderedMutexLock lock(shutdown_mu_);
  if (!started_ || joined_) return;
  stopping_.store(true, std::memory_order_release);
  SignalWakeup();  // loop closes the listener: no new connections
  // Drain the wave dispatcher. Every admitted request's callback fires
  // before this returns, so every response is in completions_ by the time
  // the drain phase below starts flushing.
  batch_->Shutdown();
  draining_.store(true, std::memory_order_release);
  SignalWakeup();  // loop flushes write buffers, closes conns, exits
  loop_.join();
  joined_ = true;
}

RpcServerStats RpcServer::stats() const {
  util::OrderedMutexLock lock(mu_);
  return stats_;
}

size_t RpcServer::open_connections() const {
  return open_connections_.load(std::memory_order_relaxed);
}

void RpcServer::SignalWakeup() {
  const uint64_t one = 1;
  // The eventfd is a counter: writes accumulate, the loop's read clears.
  // EAGAIN (counter saturated) still leaves it readable, so the wakeup is
  // never lost.
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
}

void RpcServer::Loop() {
  bool listener_open = true;
  bool drain_deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline;
  epoll_event events[64];
  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    // While draining, poll so the drain deadline fires even if no fd does.
    const int timeout_ms = draining ? 20 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      SEQFM_LOG(Warning) << "rpc: epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        if (listener_open) AcceptAll();
      } else if (id == kEventFdId) {
        uint64_t val = 0;
        [[maybe_unused]] ssize_t r = ::read(event_fd_, &val, sizeof(val));
        DrainCompletions();
      } else {
        HandleConnEvent(id, events[i].events);
      }
    }
    if (stopping_.load(std::memory_order_acquire) && listener_open) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
    }
    if (draining) {
      // Late completions may still be queued (the eventfd event and the
      // draining flag race benignly); sweep them before judging emptiness.
      DrainCompletions();
      if (!drain_deadline_set) {
        drain_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(options_.drain_timeout_ms);
        drain_deadline_set = true;
      }
      const bool expired = std::chrono::steady_clock::now() >= drain_deadline;
      // Close everything flushed (or everything, once the deadline passes —
      // a stalled client must not wedge Shutdown). Collect ids first:
      // CloseConn mutates conns_.
      std::vector<uint64_t> to_close;
      for (const auto& [id, conn] : conns_) {
        if (conn->pending_out() == 0 || expired) to_close.push_back(id);
      }
      for (uint64_t id : to_close) CloseConn(id);
      if (conns_.empty()) break;
    }
  }
  // Loop exit: release the epoll set and any stragglers.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConn(id);
  if (listener_open) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::close(epoll_fd_);
  ::close(event_fd_);
  epoll_fd_ = event_fd_ = -1;
}

void RpcServer::AcceptAll() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      SEQFM_LOG(Warning) << "rpc: accept failed: " << std::strerror(errno);
      return;
    }
    if (conns_.size() >= options_.max_connections ||
        stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->reader = FrameReader(options_.max_frame_bytes);
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(conn->id, std::move(conn));
    open_connections_.store(conns_.size(), std::memory_order_relaxed);
    util::OrderedMutexLock lock(mu_);
    ++stats_.connections_accepted;
  }
}

void RpcServer::HandleConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // closed earlier this iteration
  Connection* conn = it->second.get();
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConn(conn_id);
    return;
  }
  if (events & EPOLLOUT) {
    if (!FlushWrites(conn)) return;
  }
  if (events & EPOLLIN) {
    if (!HandleRead(conn)) return;
  }
}

bool RpcServer::HandleRead(Connection* conn) {
  char buf[65536];
  for (;;) {
    const ssize_t r = ::read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      conn->reader.Feed(buf, static_cast<size_t>(r));
      if (!ProcessFrames(conn)) return false;
      if (static_cast<size_t>(r) < sizeof(buf)) return true;  // drained
      // Backpressure may have disarmed EPOLLIN mid-burst; stop pulling more
      // bytes for this connection and let the kernel buffer throttle it.
      if (conn->paused_read) return true;
      continue;
    }
    if (r == 0) {  // peer closed (possibly mid-request; callbacks will drop)
      CloseConn(conn->id);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    CloseConn(conn->id);
    return false;
  }
}

bool RpcServer::ProcessFrames(Connection* conn) {
  std::string payload;
  bool got = false;
  for (;;) {
    if (Status st = conn->reader.Next(&payload, &got); !st.ok()) {
      SEQFM_LOG(Warning) << "rpc: closing connection: " << st.ToString();
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.protocol_errors;
      }
      CloseConn(conn->id);
      return false;
    }
    if (!got) return true;
    {
      util::OrderedMutexLock lock(mu_);
      ++stats_.frames_received;
    }
    RpcRequest req;
    if (Status st = DecodeRequest(payload, &req); !st.ok()) {
      SEQFM_LOG(Warning) << "rpc: closing connection: " << st.ToString();
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.protocol_errors;
      }
      CloseConn(conn->id);
      return false;
    }
    HandleRequest(conn, std::move(req));
    // HandleRequest can only close the connection via a failed response
    // flush; detect that by re-looking the id up.
    if (conns_.find(conn->id) == conns_.end()) return false;
  }
}

void RpcServer::HandleRequest(Connection* conn, RpcRequest req) {
  data::SequenceExample ex;
  ex.user = req.user;
  ex.history = std::move(req.history);
  const uint64_t conn_id = conn->id;
  const uint64_t request_id = req.id;
  const BatchServer::AdmitResult admit = batch_->TrySubmit(
      ex, std::move(req.slate), req.k,
      [this, conn_id, request_id](std::vector<ScoredItem> items) {
        OnWaveComplete(conn_id, request_id, std::move(items));
      });
  switch (admit) {
    case BatchServer::AdmitResult::kAdmitted:
      return;
    case BatchServer::AdmitResult::kOverloaded: {
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.requests_shed;
      }
      RpcResponse resp;
      resp.id = request_id;
      resp.status = RpcStatus::kOverloaded;
      std::string wire;
      AppendResponseFrame(resp, &wire);
      EnqueueResponse(conn, wire);
      return;
    }
    case BatchServer::AdmitResult::kShutdown: {
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.requests_rejected_shutdown;
      }
      RpcResponse resp;
      resp.id = request_id;
      resp.status = RpcStatus::kShuttingDown;
      std::string wire;
      AppendResponseFrame(resp, &wire);
      EnqueueResponse(conn, wire);
      return;
    }
  }
}

void RpcServer::OnWaveComplete(uint64_t conn_id, uint64_t request_id,
                               std::vector<ScoredItem> items) {
  // Dispatcher thread: encode, queue, wake the loop. No connection state is
  // touched here — the id survives a concurrent close (the completion is
  // simply dropped at drain time).
  RpcResponse resp;
  resp.id = request_id;
  resp.status = RpcStatus::kOk;
  resp.items = std::move(items);
  Completion completion;
  completion.conn_id = conn_id;
  AppendResponseFrame(resp, &completion.wire);
  {
    util::OrderedMutexLock lock(mu_);
    completions_.push_back(std::move(completion));
    ++stats_.requests_ok;
  }
  SignalWakeup();
}

void RpcServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    util::OrderedMutexLock lock(mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // client disconnected mid-request
    EnqueueResponse(it->second.get(), completion.wire);
  }
}

bool RpcServer::EnqueueResponse(Connection* conn, const std::string& wire) {
  // Compact the flushed prefix before growing the buffer further.
  if (conn->out_pos > 0 && conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  } else if (conn->out_pos > 65536 && conn->out_pos > conn->out.size() / 2) {
    conn->out.erase(0, conn->out_pos);
    conn->out_pos = 0;
  }
  conn->out.append(wire);
  return FlushWrites(conn);
}

bool RpcServer::FlushWrites(Connection* conn) {
  while (conn->out_pos < conn->out.size()) {
    // MSG_NOSIGNAL: a client that closed mid-write must produce EPIPE, not
    // a process-killing SIGPIPE.
    const ssize_t w = ::send(conn->fd, conn->out.data() + conn->out_pos,
                             conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (w > 0) {
      conn->out_pos += static_cast<size_t>(w);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn->id);  // EPIPE/ECONNRESET: client went away
    return false;
  }
  const bool fully_flushed = conn->out_pos == conn->out.size();
  if (fully_flushed) {
    conn->out.clear();
    conn->out_pos = 0;
  }
  bool interest_changed = false;
  if (conn->want_write == fully_flushed) {
    conn->want_write = !fully_flushed;
    interest_changed = true;
  }
  // Write backpressure: a connection whose client reads too slowly stops
  // being READ once its pending responses pass the high watermark, and
  // resumes below half of it. Its subsequent requests queue in kernel
  // socket buffers (then block the client's send), so server memory per
  // connection stays bounded by max_write_buffer_bytes + one socket buffer.
  if (!conn->paused_read &&
      conn->pending_out() > options_.max_write_buffer_bytes) {
    conn->paused_read = true;
    interest_changed = true;
    util::OrderedMutexLock lock(mu_);
    ++stats_.backpressure_pauses;
  } else if (conn->paused_read &&
             conn->pending_out() <= options_.max_write_buffer_bytes / 2) {
    conn->paused_read = false;
    interest_changed = true;
  }
  if (interest_changed) UpdateInterest(conn);
  return true;
}

void RpcServer::UpdateInterest(Connection* conn) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = (conn->paused_read ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn->want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void RpcServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  open_connections_.store(conns_.size(), std::memory_order_relaxed);
  util::OrderedMutexLock lock(mu_);
  ++stats_.connections_closed;
}

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

Status RpcClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IoError(Errno("rpc client: socket"));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("rpc client: bad address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IoError(Errno("rpc client: connect"));
    Close();
    return st;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = FrameReader();
  return Status::OK();
}

Status RpcClient::Send(const RpcRequest& req) {
  if (fd_ < 0) return Status::FailedPrecondition("rpc client: not connected");
  std::string wire;
  AppendRequestFrame(req, &wire);
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t w =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IoError(Errno("rpc client: write"));
  }
  return Status::OK();
}

Status RpcClient::ReadResponse(RpcResponse* out) {
  if (fd_ < 0) return Status::FailedPrecondition("rpc client: not connected");
  char buf[65536];
  for (;;) {
    std::string payload;
    bool got = false;
    SEQFM_RETURN_NOT_OK(reader_.Next(&payload, &got));
    if (got) return DecodeResponse(payload, out);
    const ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r > 0) {
      reader_.Feed(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      return Status::IoError("rpc client: connection closed by server");
    }
    if (errno == EINTR) continue;
    return Status::IoError(Errno("rpc client: read"));
  }
}

Status RpcClient::Call(const RpcRequest& req, RpcResponse* out) {
  SEQFM_RETURN_NOT_OK(Send(req));
  do {
    SEQFM_RETURN_NOT_OK(ReadResponse(out));
  } while (out->id != req.id);
  return Status::OK();
}

void RpcClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace serve
}  // namespace seqfm
