#include "serve/rpc_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "serve/shard.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace seqfm {
namespace serve {

namespace {

constexpr uint64_t kListenerId = 0;
constexpr uint64_t kEventFdId = 1;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Applies \p ms as both SO_RCVTIMEO and SO_SNDTIMEO; 0 clears them (block
/// indefinitely). A timed-out syscall then fails with EAGAIN, which the
/// client maps to a precise "timed out" Status.
void SetSocketTimeouts(int fd, int64_t ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

/// Per-connection state, owned and touched by the loop thread only.
struct RpcServer::Connection {
  int fd = -1;
  uint64_t id = 0;
  FrameReader reader;
  std::string out;      // encoded responses not yet fully written
  size_t out_pos = 0;   // flushed prefix of out
  bool want_write = false;   // EPOLLOUT armed
  bool paused_read = false;  // EPOLLIN disarmed by write backpressure
  bool hello_done = false;   // handshake accepted; requests may flow

  size_t pending_out() const { return out.size() - out_pos; }
};

RpcServer::RpcServer(BatchServer* batch, RpcServerOptions options)
    : batch_(batch), options_(std::move(options)) {
  SEQFM_CHECK(batch_ != nullptr) << "RpcServer: null BatchServer";
  SEQFM_CHECK_GT(options_.max_frame_bytes, 0u);
  SEQFM_CHECK_GT(options_.max_write_buffer_bytes, 0u);
  if (options_.catalog_size > 0) {
    SEQFM_CHECK_GT(options_.num_shards, 0u);
    SEQFM_CHECK_LT(options_.shard_index, options_.num_shards);
    const std::vector<size_t> bounds = ShardedCatalog::Bounds(
        options_.catalog_size, options_.num_shards);
    shard_begin_ = bounds[options_.shard_index];
    shard_end_ = bounds[options_.shard_index + 1];
  }
}

RpcServer::~RpcServer() { Shutdown(); }

Status RpcServer::Start() {
  {
    util::OrderedMutexLock lock(shutdown_mu_);
    if (started_) return Status::FailedPrecondition("RpcServer::Start twice");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError(Errno("rpc: socket"));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("rpc: bad bind address " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = Status::IoError(Errno("rpc: bind"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Status st = Status::IoError(Errno("rpc: listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    const Status st = Status::IoError(Errno("rpc: getsockname"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || event_fd_ < 0) {
    const Status st = Status::IoError(Errno("rpc: epoll_create1/eventfd"));
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (event_fd_ >= 0) ::close(event_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = event_fd_ = -1;
    return st;
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEventFdId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  {
    util::OrderedMutexLock lock(shutdown_mu_);
    started_ = true;
  }
  loop_ = std::thread([this]() { Loop(); });
  return Status::OK();
}

void RpcServer::Shutdown() {
  // Serializing the whole sequence makes Shutdown idempotent and gives every
  // caller the post-condition "all admitted requests answered, loop joined"
  // — the same guarantee BatchServer::Shutdown documents.
  util::OrderedMutexLock lock(shutdown_mu_);
  if (!started_ || joined_) return;
  stopping_.store(true, std::memory_order_release);
  SignalWakeup();  // loop closes the listener: no new connections
  // Drain the wave dispatcher. Every admitted request's callback fires
  // before this returns, so every response is in completions_ by the time
  // the drain phase below starts flushing.
  batch_->Shutdown();
  draining_.store(true, std::memory_order_release);
  SignalWakeup();  // loop flushes write buffers, closes conns, exits
  loop_.join();
  joined_ = true;
}

RpcServerStats RpcServer::stats() const {
  util::OrderedMutexLock lock(mu_);
  return stats_;
}

size_t RpcServer::open_connections() const {
  return open_connections_.load(std::memory_order_relaxed);
}

void RpcServer::SignalWakeup() {
  const uint64_t one = 1;
  // The eventfd is a counter: writes accumulate, the loop's read clears.
  // EAGAIN (counter saturated) still leaves it readable, so the wakeup is
  // never lost.
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
}

void RpcServer::Loop() {
  bool listener_open = true;
  bool drain_deadline_set = false;
  std::chrono::steady_clock::time_point drain_deadline;
  epoll_event events[64];
  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    // While draining, poll so the drain deadline fires even if no fd does.
    const int timeout_ms = draining ? 20 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      SEQFM_LOG(Warning) << "rpc: epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        if (listener_open) AcceptAll();
      } else if (id == kEventFdId) {
        uint64_t val = 0;
        [[maybe_unused]] ssize_t r = ::read(event_fd_, &val, sizeof(val));
        DrainCompletions();
      } else {
        HandleConnEvent(id, events[i].events);
      }
    }
    if (stopping_.load(std::memory_order_acquire) && listener_open) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
    }
    if (draining) {
      // Late completions may still be queued (the eventfd event and the
      // draining flag race benignly); sweep them before judging emptiness.
      DrainCompletions();
      if (!drain_deadline_set) {
        drain_deadline = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(options_.drain_timeout_ms);
        drain_deadline_set = true;
      }
      const bool expired = std::chrono::steady_clock::now() >= drain_deadline;
      // Close everything flushed (or everything, once the deadline passes —
      // a stalled client must not wedge Shutdown). Collect ids first:
      // CloseConn mutates conns_.
      std::vector<uint64_t> to_close;
      for (const auto& [id, conn] : conns_) {
        if (conn->pending_out() == 0 || expired) to_close.push_back(id);
      }
      for (uint64_t id : to_close) CloseConn(id);
      if (conns_.empty()) break;
    }
  }
  // Loop exit: release the epoll set and any stragglers.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConn(id);
  if (listener_open) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::close(epoll_fd_);
  ::close(event_fd_);
  epoll_fd_ = event_fd_ = -1;
}

void RpcServer::AcceptAll() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      SEQFM_LOG(Warning) << "rpc: accept failed: " << std::strerror(errno);
      return;
    }
    if (conns_.size() >= options_.max_connections ||
        stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->reader = FrameReader(options_.max_frame_bytes);
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(conn->id, std::move(conn));
    open_connections_.store(conns_.size(), std::memory_order_relaxed);
    util::OrderedMutexLock lock(mu_);
    ++stats_.connections_accepted;
  }
}

void RpcServer::HandleConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // closed earlier this iteration
  Connection* conn = it->second.get();
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConn(conn_id);
    return;
  }
  if (events & EPOLLOUT) {
    if (!FlushWrites(conn)) return;
  }
  if (events & EPOLLIN) {
    if (!HandleRead(conn)) return;
  }
}

bool RpcServer::HandleRead(Connection* conn) {
  if (util::FailPoint::Trigger("rpc.server.read") != 0) {
    // Injected transport failure: the connection dies exactly as it would
    // on a real ECONNRESET — close, drop pending responses, never answer.
    CloseConn(conn->id);
    return false;
  }
  char buf[65536];
  for (;;) {
    const ssize_t r = ::read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      conn->reader.Feed(buf, static_cast<size_t>(r));
      if (!ProcessFrames(conn)) return false;
      if (static_cast<size_t>(r) < sizeof(buf)) return true;  // drained
      // Backpressure may have disarmed EPOLLIN mid-burst; stop pulling more
      // bytes for this connection and let the kernel buffer throttle it.
      if (conn->paused_read) return true;
      continue;
    }
    if (r == 0) {  // peer closed (possibly mid-request; callbacks will drop)
      CloseConn(conn->id);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    CloseConn(conn->id);
    return false;
  }
}

bool RpcServer::ProcessFrames(Connection* conn) {
  std::string payload;
  bool got = false;
  for (;;) {
    if (Status st = conn->reader.Next(&payload, &got); !st.ok()) {
      SEQFM_LOG(Warning) << "rpc: closing connection: " << st.ToString();
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.protocol_errors;
      }
      CloseConn(conn->id);
      return false;
    }
    if (!got) return true;
    // The handshake gates everything: until the HELLO is accepted, no frame
    // is counted as request traffic and no request is dispatched.
    if (!conn->hello_done) {
      if (!HandleHello(conn, payload)) return false;
      continue;
    }
    {
      util::OrderedMutexLock lock(mu_);
      ++stats_.frames_received;
    }
    Status st;
    const uint8_t type = FrameType(payload);
    if (type == kRequestFrame) {
      RpcRequest req;
      st = DecodeRequest(payload, &req);
      if (st.ok()) HandleRequest(conn, std::move(req));
    } else if (type == kShardRequestFrame) {
      RpcShardRequest req;
      st = DecodeShardRequest(payload, &req);
      if (st.ok()) HandleShardRequest(conn, std::move(req));
    } else {
      st = Status::InvalidArgument("rpc: unexpected frame type " +
                                   std::to_string(type));
    }
    if (!st.ok()) {
      SEQFM_LOG(Warning) << "rpc: closing connection: " << st.ToString();
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.protocol_errors;
      }
      CloseConn(conn->id);
      return false;
    }
    // The handlers can only close the connection via a failed response
    // flush; detect that by re-looking the id up.
    if (conns_.find(conn->id) == conns_.end()) return false;
  }
}

bool RpcServer::HandleHello(Connection* conn, const std::string& payload) {
  RpcHelloAck ack;
  ack.capabilities = options_.catalog_size > 0 ? kRpcCapShardScoring : 0;
  ack.model_version = options_.model_version;
  ack.shard_index = options_.shard_index;
  ack.num_shards = options_.num_shards;
  ack.shard_begin = shard_begin_;
  ack.shard_end = shard_end_;
  ack.catalog_size = options_.catalog_size;
  RpcHello hello;
  const uint8_t type = FrameType(payload);
  if (type != kHelloFrame) {
    ack.status = RpcStatus::kBadRequest;
    ack.message = "rpc: connection must start with a HELLO (this server "
                  "speaks protocol v" +
                  std::to_string(kRpcProtocolVersion) + "); got frame type " +
                  std::to_string(type) +
                  " first — the client speaks protocol v1 or earlier";
  } else if (Status st = DecodeHello(payload, &hello); !st.ok()) {
    ack.status = RpcStatus::kBadRequest;
    ack.message = "rpc: malformed HELLO: " + st.ToString();
  } else if (hello.protocol_version != kRpcProtocolVersion) {
    ack.status = RpcStatus::kBadRequest;
    ack.message = "rpc: protocol version mismatch: client speaks v" +
                  std::to_string(hello.protocol_version) +
                  ", server speaks v" +
                  std::to_string(kRpcProtocolVersion);
  }
  if (ack.status != RpcStatus::kOk) {
    SEQFM_LOG(Warning) << "rpc: rejecting handshake: " << ack.message;
    util::OrderedMutexLock lock(mu_);
    ++stats_.protocol_errors;
  } else {
    // Count the accepted handshake BEFORE the ack hits the wire: a client
    // whose Connect() has returned must observe handshakes_ok >= 1, so the
    // increment has to be ordered before the bytes it synchronizes with.
    util::OrderedMutexLock lock(mu_);
    ++stats_.handshakes_ok;
  }
  std::string wire;
  AppendHelloAckFrame(ack, &wire);
  const bool alive = EnqueueResponse(conn, wire);
  if (ack.status != RpcStatus::kOk) {
    // Precise error first, then close. The ack is one small frame, so the
    // synchronous flush inside EnqueueResponse delivers it before the FIN.
    if (alive) CloseConn(conn->id);
    return false;
  }
  if (!alive) return false;
  conn->hello_done = true;
  return true;
}

void RpcServer::HandleRequest(Connection* conn, RpcRequest req) {
  data::SequenceExample ex;
  ex.user = req.user;
  ex.history = std::move(req.history);
  const uint64_t conn_id = conn->id;
  const uint64_t request_id = req.id;
  const BatchServer::AdmitResult admit = batch_->TrySubmit(
      ex, std::move(req.slate), req.k,
      [this, conn_id, request_id](std::vector<ScoredItem> items) {
        OnWaveComplete(conn_id, request_id, std::move(items));
      });
  switch (admit) {
    case BatchServer::AdmitResult::kAdmitted:
      return;
    case BatchServer::AdmitResult::kOverloaded: {
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.requests_shed;
      }
      RpcResponse resp;
      resp.id = request_id;
      resp.status = RpcStatus::kOverloaded;
      std::string wire;
      AppendResponseFrame(resp, &wire);
      EnqueueResponse(conn, wire);
      return;
    }
    case BatchServer::AdmitResult::kShutdown: {
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.requests_rejected_shutdown;
      }
      RpcResponse resp;
      resp.id = request_id;
      resp.status = RpcStatus::kShuttingDown;
      std::string wire;
      AppendResponseFrame(resp, &wire);
      EnqueueResponse(conn, wire);
      return;
    }
  }
}

void RpcServer::HandleShardRequest(Connection* conn, RpcShardRequest req) {
  if (options_.catalog_size == 0) {
    // Not a replica: reject precisely instead of scoring a catalog this
    // server does not own.
    {
      util::OrderedMutexLock lock(mu_);
      ++stats_.requests_bad;
    }
    SendShardError(conn, req.id, RpcStatus::kBadRequest);
    return;
  }
  if (req.begin > req.end || req.begin < shard_begin_ ||
      req.end > shard_end_) {
    SEQFM_LOG(Warning) << "rpc: shard request [" << req.begin << ", "
                       << req.end << ") outside owned slice [" << shard_begin_
                       << ", " << shard_end_ << ")";
    {
      util::OrderedMutexLock lock(mu_);
      ++stats_.requests_bad;
    }
    SendShardError(conn, req.id, RpcStatus::kBadRequest);
    return;
  }
  if (util::FailPoint::Trigger("rpc.server.shard.drop") != 0) {
    // Slow-replica simulation: the request was accepted (TCP-ack'd, decoded,
    // counted) but no response will ever be produced. The client's io
    // timeout is the only thing that can end the wait — exactly the
    // accepts-but-never-answers failure mode of a wedged process.
    util::OrderedMutexLock lock(mu_);
    ++stats_.requests_dropped;
    return;
  }
  data::SequenceExample ex;
  ex.user = req.user;
  ex.history = std::move(req.history);
  // The replica owns the identity catalog, so the slate is materialized
  // here — [begin, end) item ids — instead of shipped over the wire.
  std::vector<int32_t> candidates;
  candidates.reserve(static_cast<size_t>(req.end - req.begin));
  for (uint64_t p = req.begin; p < req.end; ++p) {
    candidates.push_back(static_cast<int32_t>(p));
  }
  const uint64_t conn_id = conn->id;
  const uint64_t request_id = req.id;
  const size_t k = std::min<uint64_t>(req.k, req.end - req.begin);
  const BatchServer::AdmitResult admit = batch_->TrySubmit(
      ex, std::move(candidates), k,
      [this, conn_id, request_id](std::vector<ScoredItem> items) {
        OnShardComplete(conn_id, request_id, std::move(items));
      });
  switch (admit) {
    case BatchServer::AdmitResult::kAdmitted:
      return;
    case BatchServer::AdmitResult::kOverloaded:
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.requests_shed;
      }
      SendShardError(conn, request_id, RpcStatus::kOverloaded);
      return;
    case BatchServer::AdmitResult::kShutdown:
      {
        util::OrderedMutexLock lock(mu_);
        ++stats_.requests_rejected_shutdown;
      }
      SendShardError(conn, request_id, RpcStatus::kShuttingDown);
      return;
  }
}

void RpcServer::SendShardError(Connection* conn, uint64_t request_id,
                               RpcStatus status) {
  RpcShardResponse resp;
  resp.id = request_id;
  resp.status = status;
  resp.model_version = options_.model_version;
  std::string wire;
  AppendShardResponseFrame(resp, &wire);
  EnqueueResponse(conn, wire);
}

void RpcServer::OnShardComplete(uint64_t conn_id, uint64_t request_id,
                                std::vector<ScoredItem> items) {
  RpcShardResponse resp;
  resp.id = request_id;
  resp.status = RpcStatus::kOk;
  resp.model_version = options_.model_version;
  resp.entries.reserve(items.size());
  for (const ScoredItem& item : items) {
    // Identity catalog: an item's global position IS its id, so the
    // coordinator's ScoredItem -> RankEntry reconstruction is lossless and
    // the merged order matches the single-process RankBefore order exactly.
    resp.entries.push_back(
        {item.item, item.score, static_cast<uint64_t>(item.item)});
  }
  Completion completion;
  completion.conn_id = conn_id;
  AppendShardResponseFrame(resp, &completion.wire);
  {
    util::OrderedMutexLock lock(mu_);
    completions_.push_back(std::move(completion));
    ++stats_.requests_ok;
  }
  SignalWakeup();
}

void RpcServer::OnWaveComplete(uint64_t conn_id, uint64_t request_id,
                               std::vector<ScoredItem> items) {
  // Dispatcher thread: encode, queue, wake the loop. No connection state is
  // touched here — the id survives a concurrent close (the completion is
  // simply dropped at drain time).
  RpcResponse resp;
  resp.id = request_id;
  resp.status = RpcStatus::kOk;
  resp.items = std::move(items);
  Completion completion;
  completion.conn_id = conn_id;
  AppendResponseFrame(resp, &completion.wire);
  {
    util::OrderedMutexLock lock(mu_);
    completions_.push_back(std::move(completion));
    ++stats_.requests_ok;
  }
  SignalWakeup();
}

void RpcServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    util::OrderedMutexLock lock(mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // client disconnected mid-request
    EnqueueResponse(it->second.get(), completion.wire);
  }
}

bool RpcServer::EnqueueResponse(Connection* conn, const std::string& wire) {
  // Compact the flushed prefix before growing the buffer further.
  if (conn->out_pos > 0 && conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  } else if (conn->out_pos > 65536 && conn->out_pos > conn->out.size() / 2) {
    conn->out.erase(0, conn->out_pos);
    conn->out_pos = 0;
  }
  conn->out.append(wire);
  return FlushWrites(conn);
}

bool RpcServer::FlushWrites(Connection* conn) {
  if (conn->out_pos < conn->out.size() &&
      util::FailPoint::Trigger("rpc.server.write") != 0) {
    CloseConn(conn->id);  // injected write failure: as-if EPIPE
    return false;
  }
  while (conn->out_pos < conn->out.size()) {
    // MSG_NOSIGNAL: a client that closed mid-write must produce EPIPE, not
    // a process-killing SIGPIPE.
    const ssize_t w = ::send(conn->fd, conn->out.data() + conn->out_pos,
                             conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (w > 0) {
      conn->out_pos += static_cast<size_t>(w);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn->id);  // EPIPE/ECONNRESET: client went away
    return false;
  }
  const bool fully_flushed = conn->out_pos == conn->out.size();
  if (fully_flushed) {
    conn->out.clear();
    conn->out_pos = 0;
  }
  bool interest_changed = false;
  if (conn->want_write == fully_flushed) {
    conn->want_write = !fully_flushed;
    interest_changed = true;
  }
  // Write backpressure: a connection whose client reads too slowly stops
  // being READ once its pending responses pass the high watermark, and
  // resumes below half of it. Its subsequent requests queue in kernel
  // socket buffers (then block the client's send), so server memory per
  // connection stays bounded by max_write_buffer_bytes + one socket buffer.
  if (!conn->paused_read &&
      conn->pending_out() > options_.max_write_buffer_bytes) {
    conn->paused_read = true;
    interest_changed = true;
    util::OrderedMutexLock lock(mu_);
    ++stats_.backpressure_pauses;
  } else if (conn->paused_read &&
             conn->pending_out() <= options_.max_write_buffer_bytes / 2) {
    conn->paused_read = false;
    interest_changed = true;
  }
  if (interest_changed) UpdateInterest(conn);
  return true;
}

void RpcServer::UpdateInterest(Connection* conn) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = (conn->paused_read ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn->want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void RpcServer::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  open_connections_.store(conns_.size(), std::memory_order_relaxed);
  util::OrderedMutexLock lock(mu_);
  ++stats_.connections_closed;
}

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

Status RpcClient::Connect(const std::string& host, uint16_t port,
                          RpcClientOptions options) {
  Close();
  if (int err = util::FailPoint::Trigger("rpc.client.connect"); err != 0) {
    return Status::IoError(std::string("rpc client: injected connect "
                                       "failure: ") +
                           std::strerror(err));
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IoError(Errno("rpc client: socket"));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("rpc client: bad address " + host);
  }
  if (options.connect_timeout_ms > 0) {
    // Non-blocking connect + poll: an unreachable host fails within the
    // bound instead of the kernel's minutes-long default.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (errno != EINPROGRESS) {
        const Status st = Status::IoError(Errno("rpc client: connect"));
        Close();
        return st;
      }
      pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int pr =
          ::poll(&pfd, 1, static_cast<int>(options.connect_timeout_ms));
      if (pr == 0) {
        Close();
        return Status::IoError(
            "rpc client: connect to " + host + ":" + std::to_string(port) +
            " timed out after " + std::to_string(options.connect_timeout_ms) +
            "ms");
      }
      if (pr < 0) {
        const Status st = Status::IoError(Errno("rpc client: poll"));
        Close();
        return st;
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len);
      if (err != 0) {
        Close();
        return Status::IoError(std::string("rpc client: connect: ") +
                               std::strerror(err));
      }
    }
    ::fcntl(fd_, F_SETFL, flags);  // back to blocking for the frame I/O
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    const Status st = Status::IoError(Errno("rpc client: connect"));
    Close();
    return st;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = FrameReader();
  server_info_ = RpcHelloAck();

  // Handshake, bounded by the connect timeout: a server that ACCEPTED the
  // TCP connection but never answers the HELLO — a hung process, or a
  // listener whose accept backlog swallowed the connect — must become a
  // timed-out Status, not a hang. (TCP alone can't distinguish these from
  // a healthy server on loopback: the kernel completes the handshake from
  // the backlog before the process ever calls accept.)
  io_timeout_ms_ = options.connect_timeout_ms > 0 ? options.connect_timeout_ms
                                                  : options.io_timeout_ms;
  SetSocketTimeouts(fd_, io_timeout_ms_);
  if (int err = util::FailPoint::Trigger("rpc.client.hello"); err != 0) {
    Close();
    return Status::IoError(std::string("rpc client: injected handshake "
                                       "failure: ") +
                           std::strerror(err));
  }
  RpcHello hello;
  hello.capabilities = options.capabilities;
  std::string wire;
  AppendHelloFrame(hello, &wire);
  if (Status st = SendWire(wire); !st.ok()) {
    Close();
    return st;
  }
  std::string payload;
  if (Status st = ReadFrame(&payload); !st.ok()) {
    Close();
    return Status::IoError(
        "rpc client: no HELLO_ACK from " + host + ":" +
        std::to_string(port) + " (" + st.ToString() +
        ") — the server may speak protocol v1 or earlier, which has no "
        "handshake");
  }
  RpcHelloAck ack;
  if (Status st = DecodeHelloAck(payload, &ack); !st.ok()) {
    Close();
    return Status::IoError("rpc client: malformed HELLO_ACK: " +
                           st.ToString());
  }
  if (ack.status != RpcStatus::kOk) {
    Close();
    return Status::FailedPrecondition(
        "rpc client: server rejected handshake: " + ack.message);
  }
  server_info_ = ack;
  io_timeout_ms_ = options.io_timeout_ms;
  SetSocketTimeouts(fd_, io_timeout_ms_);
  return Status::OK();
}

Status RpcClient::SendWire(const std::string& wire) {
  if (fd_ < 0) return Status::FailedPrecondition("rpc client: not connected");
  size_t sent = 0;
  while (sent < wire.size()) {
    // Injected EINTR: a delivered signal interrupts the syscall before any
    // byte moves — the loop must retry at the SAME offset.
    if (util::FailPoint::Trigger("rpc.client.send.eintr") != 0) continue;
    // Injected short write: the kernel accepts one byte of this attempt —
    // the loop must resume at sent + 1, not refuse or restart the frame.
    size_t len = wire.size() - sent;
    if (util::FailPoint::Trigger("rpc.client.send.short") != 0) len = 1;
    if (int err = util::FailPoint::Trigger("rpc.client.send"); err != 0) {
      Close();  // see below: a part-written frame poisons the stream
      return Status::IoError(std::string("rpc client: injected write "
                                         "failure: ") +
                             std::strerror(err));
    }
    const ssize_t w = ::send(fd_, wire.data() + sent, len, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    // A failed send may leave a PREFIX of the frame on the wire: nothing
    // sent afterwards would be parsed at a frame boundary, so the
    // connection is unusable. Close it — connected() turning false is what
    // tells the owner (RemoteReplicaBackend) to reconnect rather than
    // desync the stream.
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Close();
      return Status::IoError("rpc client: write timed out after " +
                             std::to_string(io_timeout_ms_) + "ms");
    }
    const Status st = Status::IoError(Errno("rpc client: write"));
    Close();
    return st;
  }
  return Status::OK();
}

Status RpcClient::ReadFrame(std::string* payload) {
  if (fd_ < 0) return Status::FailedPrecondition("rpc client: not connected");
  char buf[65536];
  for (;;) {
    bool got = false;
    if (Status st = reader_.Next(payload, &got); !st.ok()) {
      Close();  // framing desync (or injected torn frame): stream unusable
      return st;
    }
    if (got) return Status::OK();
    if (int err = util::FailPoint::Trigger("rpc.client.read"); err != 0) {
      Close();
      return Status::IoError(std::string("rpc client: injected read "
                                         "failure: ") +
                             std::strerror(err));
    }
    const ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r > 0) {
      reader_.Feed(buf, static_cast<size_t>(r));
      continue;
    }
    // Every failure below ends the connection: a timeout or reset may have
    // left a partial frame buffered in reader_, and the response stream has
    // no resync point — the owner must reconnect, not read on.
    if (r == 0) {
      Close();
      return Status::IoError("rpc client: connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Close();
      return Status::IoError("rpc client: read timed out after " +
                             std::to_string(io_timeout_ms_) + "ms");
    }
    const Status st = Status::IoError(Errno("rpc client: read"));
    Close();
    return st;
  }
}

Status RpcClient::Send(const RpcRequest& req) {
  std::string wire;
  AppendRequestFrame(req, &wire);
  return SendWire(wire);
}

Status RpcClient::ReadResponse(RpcResponse* out) {
  std::string payload;
  SEQFM_RETURN_NOT_OK(ReadFrame(&payload));
  return DecodeResponse(payload, out);
}

Status RpcClient::Call(const RpcRequest& req, RpcResponse* out) {
  SEQFM_RETURN_NOT_OK(Send(req));
  do {
    SEQFM_RETURN_NOT_OK(ReadResponse(out));
  } while (out->id != req.id);
  return Status::OK();
}

Status RpcClient::SendShard(const RpcShardRequest& req) {
  std::string wire;
  AppendShardRequestFrame(req, &wire);
  return SendWire(wire);
}

Status RpcClient::ReadShardResponse(RpcShardResponse* out) {
  std::string payload;
  SEQFM_RETURN_NOT_OK(ReadFrame(&payload));
  return DecodeShardResponse(payload, out);
}

Status RpcClient::CallShard(const RpcShardRequest& req,
                            RpcShardResponse* out) {
  SEQFM_RETURN_NOT_OK(SendShard(req));
  do {
    SEQFM_RETURN_NOT_OK(ReadShardResponse(out));
  } while (out->id != req.id);
  return Status::OK();
}

void RpcClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace serve
}  // namespace seqfm
