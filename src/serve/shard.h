#ifndef SEQFM_SERVE_SHARD_H_
#define SEQFM_SERVE_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/predictor.h"

namespace seqfm {
namespace serve {

class ScoringBackend;  // serve/backend.h; kept out of this header's includes

/// One scored candidate inside the sharded ranking machinery: the score, the
/// candidate id, and the candidate's position in the original candidates
/// vector (which makes the order below strictly total even with duplicate
/// ids).
struct RankEntry {
  float score = 0.0f;
  int32_t item = 0;
  size_t pos = 0;
};

/// The serving-wide ranking order: score descending, NaN scores last, ties
/// by candidate id ascending, duplicate ids by original position. Every
/// ranked result in src/serve/ — SelectTopK, per-shard heaps, cross-shard
/// merges — sorts by this one comparator; because it is a strict total order
/// over (score, id, pos), the global top-K is a unique set and sharded
/// rankings are bit-identical to unsharded ones for any shard layout.
bool RankBefore(const RankEntry& a, const RankEntry& b);

/// \brief Contiguous partition of a candidate vector into near-equal shards.
///
/// Shard s covers positions [Bounds(total, n)[s], Bounds(total, n)[s+1]);
/// shards differ in size by at most one and later shards may be empty when
/// num_shards exceeds the catalog size. The partition is deterministic in
/// (total, num_shards) only, so two replicas configured alike agree on every
/// boundary.
class ShardedCatalog {
 public:
  /// Positions of the num_shards + 1 shard boundaries over [0, total).
  static std::vector<size_t> Bounds(size_t total, size_t num_shards);

  /// Takes ownership of \p candidates; num_shards must be >= 1
  /// (check-fails otherwise).
  ShardedCatalog(std::vector<int32_t> candidates, size_t num_shards);

  size_t num_shards() const { return bounds_.size() - 1; }
  size_t size() const { return candidates_.size(); }
  const std::vector<int32_t>& candidates() const { return candidates_; }
  size_t shard_begin(size_t shard) const { return bounds_[shard]; }
  size_t shard_end(size_t shard) const { return bounds_[shard + 1]; }
  size_t shard_size(size_t shard) const {
    return bounds_[shard + 1] - bounds_[shard];
  }
  /// All num_shards + 1 boundary offsets (MakeShardChunks input).
  const std::vector<size_t>& bounds() const { return bounds_; }

 private:
  std::vector<int32_t> candidates_;
  std::vector<size_t> bounds_;  // num_shards + 1 monotone offsets
};

/// \brief Bounded top-k accumulator under RankBefore.
///
/// Holds at most k entries; Push replaces the current worst entry when the
/// new one ranks before it. The retained set is the top-k of everything ever
/// pushed, independent of push order, so concurrent chunk tasks feeding one
/// heap (under the caller's lock) stay deterministic. Memory is O(k)
/// regardless of how many candidates stream through — the point of sharded
/// serving: no shard ever materializes its full score vector.
///
/// Not internally synchronized; callers serialise Push per heap.
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) {}

  void Push(const RankEntry& entry);

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }

  /// The retained entries, best first (RankBefore order).
  std::vector<RankEntry> SortedEntries() const;

  /// The retained entries in internal heap order (no sort) — for draining
  /// one heap into another without paying the O(k log k) ordering.
  const std::vector<RankEntry>& entries() const { return heap_; }

 private:
  size_t k_;
  /// Binary heap with the worst retained entry at the front.
  std::vector<RankEntry> heap_;
};

/// K-way merges per-shard top-K heaps into the global top-k (RankBefore
/// order). Equals SelectTopK over the union of all pushed entries as long as
/// every heap held at least k slots.
std::vector<ScoredItem> MergeTopK(const std::vector<TopKHeap>& shard_heaps,
                                  size_t k);

/// K-way merges already-sorted (best-first, RankBefore) RankEntry runs into
/// the global top-k. This is the reduction every fan-out layer shares:
/// MergeTopK feeds it per-shard heap runs in process, and the distributed
/// serve::Coordinator feeds it per-replica runs off the wire — same
/// comparator, same cursor merge, so a request's ranking is identical no
/// matter how its candidate space was partitioned or transported. Empty runs
/// are permitted; behavior is unspecified if a run is not RankBefore-sorted.
std::vector<ScoredItem> MergeSortedRuns(
    const std::vector<std::vector<RankEntry>>& runs, size_t k);

/// One (shard, candidate-range) scoring task of a sharded request; chunks
/// never straddle a shard boundary.
struct ShardChunk {
  size_t shard = 0;
  size_t begin = 0;
  size_t end = 0;
};

/// Enumerates the chunk tasks covering \p bounds (as produced by
/// ShardedCatalog::Bounds) with at most \p chunk_size candidates each, in
/// shard-then-position order.
std::vector<ShardChunk> MakeShardChunks(const std::vector<size_t>& bounds,
                                        size_t chunk_size);

/// Runs one ShardChunk task: scores candidates[chunk.begin, chunk.end) —
/// through the factored program against \p ctx when non-null, through the
/// generic path for \p ex otherwise — into \p chunk_scores (resized), then
/// pushes every entry into \p heap under \p mu. This is the single
/// reduction step both ShardedPredictor::TopK and BatchServer waves execute
/// per task; sharing it keeps their rankings bit-identical by construction.
void ScoreChunkIntoHeap(const Predictor& predictor,
                        const core::SharedContext* ctx,
                        const data::SequenceExample& ex,
                        const std::vector<int32_t>& candidates,
                        const ShardChunk& chunk,
                        std::vector<float>* chunk_scores, std::mutex* mu,
                        TopKHeap* heap);

struct ShardedPredictorOptions {
  /// Contiguous shards the catalog is partitioned into. Each shard is scored
  /// as independent chunk tasks on the one global util::ThreadPool (never a
  /// nested pool) and reduced into its own bounded top-K heap.
  size_t num_shards = 1;
  /// Candidates per chunk task; 0 uses the Predictor's micro_batch. Chunks
  /// never straddle a shard boundary.
  size_t micro_batch = 0;
};

/// \brief Sharded catalog scoring over a serve::Predictor.
///
/// Partitions the candidate space into contiguous shards, scores every
/// shard's chunks through the Predictor's factored/generic range kernels
/// (fanned out on the shared thread pool), keeps one bounded top-K heap per
/// shard, and k-way merges the heaps under RankBefore. Results are
/// bit-identical to Predictor::TopKAll / Predictor::TopK for every shard
/// count and boundary; peak memory per request is O(num_shards * k + chunk)
/// instead of O(catalog), which is what lets catalogs larger than one node's
/// score buffer serve at all.
///
/// Thread-safe for concurrent TopK calls after construction (same contract
/// as Predictor). The Predictor is borrowed and must outlive this object.
class ShardedPredictor {
 public:
  explicit ShardedPredictor(Predictor* predictor,
                            ShardedPredictorOptions options = {});
  ~ShardedPredictor();

  /// Top-k of the pre-partitioned \p catalog (descending score, RankBefore
  /// ties). k is clamped to catalog.size().
  std::vector<ScoredItem> TopK(const data::SequenceExample& ex,
                               const ShardedCatalog& catalog, size_t k) const;

  /// Convenience: partitions \p candidates into options().num_shards shards
  /// and ranks them in place (no copy is taken).
  std::vector<ScoredItem> TopK(const data::SequenceExample& ex,
                               const std::vector<int32_t>& candidates,
                               size_t k) const;

  /// Top-k over the full object catalog [0, num_objects), sharded. Ranks
  /// the Predictor's own identity catalog in place (no copy); only the
  /// shard boundaries are computed here, once at construction.
  /// Bit-identical to Predictor::TopKAll.
  std::vector<ScoredItem> TopKAll(const data::SequenceExample& ex,
                                  size_t k) const;

  const Predictor* predictor() const { return predictor_; }
  const ShardedPredictorOptions& options() const { return options_; }

 private:
  /// The shared core: ranks \p candidates partitioned at \p bounds.
  std::vector<ScoredItem> TopKImpl(const data::SequenceExample& ex,
                                   const std::vector<int32_t>& candidates,
                                   const std::vector<size_t>& bounds,
                                   size_t k) const;

  Predictor* predictor_;
  ShardedPredictorOptions options_;
  /// The scoring engine room: one ScoreJob per shard goes through this
  /// LocalShardBackend (serve/backend.h), the same seam BatchServer waves
  /// use — the fan-out/reduce plumbing lives there exactly once.
  std::unique_ptr<ScoringBackend> backend_;
  /// Shard boundaries over the Predictor's full catalog (offsets only —
  /// the candidates themselves stay in the Predictor).
  std::vector<size_t> full_catalog_bounds_;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_SHARD_H_
