#ifndef SEQFM_SERVE_SERVER_H_
#define SEQFM_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "serve/predictor.h"
#include "util/mutex.h"
#include "util/ordered_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace serve {

class ScoringBackend;  // serve/backend.h; kept out of this header's includes

struct BatchServerOptions {
  /// Most requests fused into one scoring wave. The dispatcher drains up to
  /// this many queued requests at once and scores all their candidate
  /// chunks through a single ParallelFor, so the pool stays busy even when
  /// each individual catalog is too small to feed every thread.
  size_t max_wave_requests = 64;
  /// Candidate chunk per pool task; 0 uses the Predictor's micro_batch.
  size_t micro_batch = 0;
  /// Contiguous shards each request's candidate list is partitioned into.
  /// Every (request, shard, chunk) task of a wave still fans out through the
  /// one fused ParallelFor; sharding only changes the reduction: each shard
  /// keeps a bounded top-K heap and the per-request result is the
  /// cross-shard merge, so a wave's memory is O(requests * shards * k)
  /// instead of O(sum of catalog sizes). Results are bit-identical to
  /// Predictor::TopK for any value (see serve::RankBefore).
  size_t num_shards = 1;
  /// Upper bound on admitted-but-not-yet-dispatched requests; 0 = unbounded
  /// (the pre-RPC behavior). With a bound set, admission becomes load
  /// shedding instead of unbounded queueing: once queue depth reaches the
  /// bound, TrySubmit returns kOverloaded (and Submit fails its future)
  /// WITHOUT enqueueing, so an overloaded server's memory and queueing delay
  /// stay bounded while rejected clients get an explicit answer. Serve-side
  /// front ends (serve::RpcServer) translate the rejection into an
  /// OVERLOADED response.
  size_t max_queue_requests = 0;
};

/// Counters exposed by BatchServer::stats().
struct BatchServerStats {
  uint64_t requests_admitted = 0;
  uint64_t requests_served = 0;
  /// Requests shed at admission because the queue sat at
  /// BatchServerOptions::max_queue_requests (overload rejections only;
  /// submit-after-shutdown failures are not counted here).
  uint64_t requests_rejected = 0;
  uint64_t waves = 0;
  uint64_t largest_wave = 0;
  /// Scratch-arena counters for the tape-free scoring scopes the waves run
  /// in (process-wide snapshot; see core::ScratchStats). Steady state =
  /// heap_refills flat, allocations counting.
  core::ScratchStats scratch;

  double avg_wave_size() const {
    return waves == 0 ? 0.0 : static_cast<double>(requests_served) /
                                  static_cast<double>(waves);
  }
};

/// \brief Request-batched serving front end over a serve::Predictor.
///
/// Submit() admits (example, candidates, k) requests from any thread and
/// returns a future of the ranked top-K. A dispatcher thread fuses queued
/// requests into multi-user scoring waves: per wave it resolves each unique
/// (user, history) SharedContext once (through the Predictor's ContextCache
/// when enabled), then scores every candidate chunk of every request in one
/// ParallelFor on the shared util::ThreadPool — raising pool utilization
/// over the one-catalog-at-a-time Predictor loop. Results are bit-for-bit
/// identical to Predictor::TopK (and so to Model::Score).
///
/// Admission is bounded when max_queue_requests is set: a request arriving
/// at a full queue is shed synchronously (TrySubmit returns kOverloaded,
/// Submit fails its future) instead of queueing unboundedly, and the shed is
/// counted in stats().requests_rejected — the load-shedding contract the
/// RPC tier (serve::RpcServer) exposes as OVERLOADED responses.
///
/// Shutdown (and the destructor, which calls it) drains the queue: every
/// admitted request is served before the dispatcher exits, so futures never
/// dangle and callbacks fire exactly once. A Submit that loses the race
/// with shutdown fails its future cleanly with a std::runtime_error instead
/// of deadlocking, dropping the promise, or crashing the process.
class BatchServer {
 public:
  /// How TrySubmit disposed of a request.
  enum class AdmitResult {
    kAdmitted,    // queued; the done callback will fire exactly once
    kOverloaded,  // shed: queue at max_queue_requests; callback never fires
    kShutdown,    // lost the race with Shutdown; callback never fires
  };

  /// Invoked with the ranked top-K when an admitted request's wave
  /// completes. Runs on the dispatcher thread with no server lock held, so
  /// it may call Submit/TrySubmit/stats — but never Shutdown (the
  /// dispatcher cannot join itself) — and must stay cheap: wave N+1 does
  /// not start until every wave-N callback returned.
  using DoneCallback = std::function<void(std::vector<ScoredItem>)>;

  /// \p predictor is borrowed and must outlive the server.
  explicit BatchServer(Predictor* predictor, BatchServerOptions options = {});
  ~BatchServer();

  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Enqueues one request; the future resolves with the top-k of
  /// \p candidates for \p ex (semantics identical to Predictor::TopK: k
  /// clamped, descending score, candidate-id tie-break). Thread-safe, and
  /// safe to race with Shutdown: once shutdown has begun — or when the
  /// bounded queue sheds the request (max_queue_requests) — the returned
  /// future fails with std::runtime_error rather than ever blocking.
  std::future<std::vector<ScoredItem>> Submit(const data::SequenceExample& ex,
                                              std::vector<int32_t> candidates,
                                              size_t k);

  /// Callback-style admission with explicit shedding: on kAdmitted, \p done
  /// fires exactly once with the ranked top-K; on kOverloaded or kShutdown
  /// the request was NOT enqueued and \p done never fires — the caller
  /// answers the client immediately (serve::RpcServer encodes these as
  /// OVERLOADED / SHUTTING_DOWN responses). This is the non-blocking
  /// admission path an event-loop front end needs: no future to park a
  /// thread on, and rejection is synchronous. Thread-safe.
  AdmitResult TrySubmit(const data::SequenceExample& ex,
                        std::vector<int32_t> candidates, size_t k,
                        DoneCallback done);

  /// Stops admitting requests, serves everything already admitted, and joins
  /// the dispatcher. Idempotent and safe to call from several threads
  /// concurrently; the destructor calls it. After it returns every admitted
  /// future is resolved and later Submits fail cleanly.
  void Shutdown();

  /// Hot-swaps model parameters from \p path with serving quiesced: waits
  /// for the in-flight wave to finish, reloads, and invalidates the context
  /// cache, so no request is ever scored against a mix of old parameters
  /// and stale contexts. Requests queued behind the reload score against
  /// the new parameters.
  Status ReloadCheckpoint(const std::string& path) SEQFM_EXCLUDES(serve_mu_);

  BatchServerStats stats() const;

  /// Requests admitted but not yet picked up by the dispatcher.
  size_t pending() const;

 private:
  struct Request {
    data::SequenceExample ex;
    std::vector<int32_t> candidates;
    size_t k = 0;
    DoneCallback done;
  };

  void DispatchLoop();
  /// Scores one wave and fires its callbacks. Caller holds serve_mu_; the
  /// annotation is on the declaration, not re-locked inside (callbacks run
  /// with mu_ released but serve_mu_ held — they may re-enter TrySubmit).
  void ServeWave(std::vector<Request>* wave) SEQFM_REQUIRES(serve_mu_);

  Predictor* predictor_;
  BatchServerOptions options_;
  /// The wave engine room: every (request, shard) of a wave becomes one
  /// ScoreJob on this LocalShardBackend (serve/backend.h) — context dedup,
  /// the fused ParallelFor, and the bounded per-shard reduction all live
  /// there, shared verbatim with ShardedPredictor.
  std::unique_ptr<ScoringBackend> backend_;

  mutable util::OrderedMutex mu_{"BatchServer::mu_",
                                 util::lock_rank::kBatchQueue};
  util::CondVar cv_;
  std::deque<Request> queue_ SEQFM_GUARDED_BY(mu_);
  bool shutdown_ SEQFM_GUARDED_BY(mu_) = false;
  BatchServerStats stats_ SEQFM_GUARDED_BY(mu_);
  /// Serializes the dispatcher join across concurrent Shutdown callers.
  std::once_flag join_once_;

  /// Held while a wave executes; ReloadCheckpoint quiesces on it. Ranked
  /// below mu_: the dispatcher acquires serve_mu_ first, then mu_ for the
  /// stats update, and wave callbacks may re-enter TrySubmit (mu_) while
  /// the wave still holds serve_mu_.
  util::OrderedMutex serve_mu_{"BatchServer::serve_mu_",
                               util::lock_rank::kBatchServe};

  /// Last member: starts after every field above is initialized.
  std::thread dispatcher_;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_SERVER_H_
