#include "serve/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "nn/module.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/logging.h"

namespace seqfm {
namespace serve {

namespace {

// Payload integrity uses the shared 64-bit FNV-1a from util/hash.h (the same
// function keys serve::ContextCache); the streaming FnvUpdate form lets the
// checksum fold in tensor payloads as they are written/read.
using util::FnvUpdate;
constexpr uint64_t kFnvOffset = util::kFnv64Offset;

// Sanity bounds for manifest fields. A value beyond these means the file is
// garbage, not a legitimate checkpoint — reject with a Status instead of
// letting reserve()/seekg() act on attacker-sized numbers (the never-abort
// contract covers crafted files too).
constexpr uint64_t kMaxTensors = 1u << 20;
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxDim = 1ull << 32;
constexpr uint64_t kMaxElements = 1ull << 40;

template <typename T>
void WritePod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

// Cheapest possible entry: 1-char name, rank 1, a single dim of 1 — 4 (name
// len) + 1 (name) + 4 (dtype) + 4 (rank) + 8 (dim) + 4 (payload) bytes.
constexpr uint64_t kMinEntryBytes = 25;

// fsyncs \p path (a file or a directory). ofstream has no portable handle to
// sync through, so the data is synced by reopening the path read-only after
// close — the fd refers to the same inode the stream wrote.
Status SyncPath(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IoError("cannot open for fsync: " + path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync failed: " + path);
  }
  return Status::OK();
}

// The directory whose entry list holds \p path ("." for bare filenames) —
// the one that must be fsynced for a rename into it to be durable.
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// Rejects a declared tensor count that cannot possibly fit in the bytes left
// in the file (count * minimum entry size + the 8-byte checksum footer),
// BEFORE any reserve() or payload staging acts on it. Callers must already
// have bounded `count` (kMaxTensors / parameter count) so the product cannot
// overflow.
Status CheckDeclaredCount(std::ifstream& in, const std::string& path,
                          uint64_t count) {
  const std::streampos here = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  in.seekg(here);
  if (!in || here < std::streampos(0) || end < here) {
    return Status::IoError("cannot size checkpoint: " + path);
  }
  const uint64_t remaining = static_cast<uint64_t>(end - here);
  if (remaining < count * kMinEntryBytes + sizeof(uint64_t)) {
    return Status::InvalidArgument(
        "checkpoint declares " + std::to_string(count) + " tensors but only " +
        std::to_string(remaining) + " bytes remain in " + path);
  }
  return Status::OK();
}

// Janitor for the rename-based atomic save: a process that dies between
// writing `path + ".tmp"` and renaming it into place leaves the orphan
// behind forever (no later save of a DIFFERENT path touches it, and the
// tmp itself is never a valid checkpoint name). Both Save and Load sweep
// it on entry. Checkpoint paths are single-writer — the same assumption
// the tmp-then-rename scheme itself already makes — so an existing tmp is
// always a dead save's debris, never a live writer's work in progress.
void RemoveStaleTmp(const std::string& path) {
  const std::string tmp_path = path + ".tmp";
  if (::access(tmp_path.c_str(), F_OK) != 0) return;
  if (std::remove(tmp_path.c_str()) == 0) {
    SEQFM_LOG(Warning) << "checkpoint: removed stale temp file " << tmp_path
                       << " (an earlier save died before its rename)";
  } else {
    SEQFM_LOG(Warning) << "checkpoint: cannot remove stale temp file "
                       << tmp_path;
  }
}

// Reads the header and every manifest entry, seeking over payloads.
Status ReadManifest(std::ifstream& in, const std::string& path,
                    CheckpointManifest* manifest) {
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  if (!ReadPod(in, &magic) || !ReadPod(in, &version) || !ReadPod(in, &count)) {
    return Status::IoError("truncated checkpoint header: " + path);
  }
  if (magic != Checkpoint::kMagic) {
    return Status::InvalidArgument("bad checkpoint magic in " + path +
                                   " (not a SeqFM checkpoint)");
  }
  if (version != Checkpoint::kVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) + " in " +
        path + " (expected " + std::to_string(Checkpoint::kVersion) + ")");
  }
  if (count > kMaxTensors) {
    return Status::InvalidArgument("corrupted tensor count in " + path);
  }
  if (Status st = CheckDeclaredCount(in, path, count); !st.ok()) return st;
  manifest->version = version;
  manifest->entries.reserve(count);
  for (uint64_t t = 0; t < count; ++t) {
    CheckpointEntry entry;
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len)) {
      return Status::IoError("truncated checkpoint manifest: " + path);
    }
    if (name_len == 0 || name_len > kMaxNameLen) {
      return Status::InvalidArgument("corrupted checkpoint manifest: " + path);
    }
    entry.name.resize(name_len);
    in.read(entry.name.data(), static_cast<std::streamsize>(name_len));
    uint32_t dtype = 0, rank = 0;
    if (!in || !ReadPod(in, &dtype) || !ReadPod(in, &rank)) {
      return Status::IoError("truncated checkpoint manifest: " + path);
    }
    if (dtype != static_cast<uint32_t>(CheckpointDtype::kFloat32)) {
      return Status::InvalidArgument("unsupported dtype tag " +
                                     std::to_string(dtype) + " in " + path);
    }
    entry.dtype = static_cast<CheckpointDtype>(dtype);
    if (rank == 0 || rank > 3) {
      return Status::InvalidArgument("corrupted tensor rank in " + path);
    }
    entry.shape.resize(rank);
    for (uint32_t i = 0; i < rank; ++i) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim) || dim == 0) {
        return Status::IoError("truncated tensor shape in " + path);
      }
      if (dim > kMaxDim) {
        return Status::InvalidArgument("corrupted tensor shape in " + path);
      }
      entry.shape[i] = static_cast<size_t>(dim);
    }
    // Rank <= 3 and dims <= 2^32 bound the product at 2^96 conceptually, but
    // num_elements() multiplies in size_t; re-check against kMaxElements so
    // the seek offset below cannot wrap.
    uint64_t elements = 1;
    for (size_t d : entry.shape) {
      if (elements > kMaxElements / d) {
        return Status::InvalidArgument("corrupted tensor shape in " + path);
      }
      elements *= d;
    }
    in.seekg(static_cast<std::streamoff>(elements * sizeof(float)),
             std::ios::cur);
    // seekg past EOF does not fail on all libraries; peek() forces the check.
    if (!in || in.peek() == std::ifstream::traits_type::eof()) {
      return Status::IoError("truncated checkpoint payload: " + path);
    }
    manifest->entries.push_back(std::move(entry));
  }
  return Status::OK();
}

}  // namespace

Status Checkpoint::Save(const nn::Module& module, const std::string& path) {
  SEQFM_CHECK(!path.empty()) << "Checkpoint::Save: empty path";
  // Write to a sibling temp file and rename into place, so a crash or a
  // full disk mid-save never destroys the previous good checkpoint.
  const std::string tmp_path = path + ".tmp";
  RemoveStaleTmp(path);
  if (util::FailPoint::Trigger("ckpt.open") != 0) {
    return Status::IoError("injected open failure: " + tmp_path);
  }
  std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open checkpoint for write: " + tmp_path);
  }
  const auto named = module.NamedParameters();
  WritePod(out, kMagic);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(named.size()));
  uint64_t hash = kFnvOffset;
  for (const auto& [name, var] : named) {
    WritePod(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WritePod(out, static_cast<uint32_t>(CheckpointDtype::kFloat32));
    const auto& t = var.value();
    WritePod(out, static_cast<uint32_t>(t.rank()));
    for (size_t i = 0; i < t.rank(); ++i) {
      WritePod(out, static_cast<uint64_t>(t.dim(i)));
    }
    const char* payload = reinterpret_cast<const char*>(t.data());
    const size_t bytes = t.size() * sizeof(float);
    out.write(payload, static_cast<std::streamsize>(bytes));
    hash = FnvUpdate(hash, payload, bytes);
  }
  WritePod(out, hash);
  out.flush();
  out.close();
  if (!out || util::FailPoint::Trigger("ckpt.write") != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("checkpoint write failed: " + tmp_path);
  }
  // Durability, not just atomicity: without an fsync before the rename, a
  // power loss can leave the FINAL name pointing at zero-length or partial
  // data — rename is atomic against crashes of this process, not of the
  // machine. Sync the payload first, then the rename, then the parent
  // directory so the new directory entry itself is on disk.
  if (util::FailPoint::Trigger("ckpt.fsync") != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("injected fsync failure: " + tmp_path);
  }
  if (Status st = SyncPath(tmp_path, /*directory=*/false); !st.ok()) {
    std::remove(tmp_path.c_str());
    return st;
  }
  if (util::FailPoint::Trigger("ckpt.rename") != 0) {
    // Crash simulation, not error simulation: a process dying between write
    // and rename leaves the tmp file ORPHANED — deliberately no remove here,
    // so the janitor sweep (RemoveStaleTmp on the next Save/Load) is what
    // the tests exercise.
    return Status::IoError("injected crash before rename: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot move checkpoint into place: " + path);
  }
  return SyncPath(ParentDir(path), /*directory=*/true);
}

Status Checkpoint::Load(nn::Module* module, const std::string& path) {
  SEQFM_CHECK(module != nullptr) << "Checkpoint::Load: null module";
  RemoveStaleTmp(path);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open checkpoint for read: " + path);
  }
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  if (!ReadPod(in, &magic) || !ReadPod(in, &version) || !ReadPod(in, &count)) {
    return Status::IoError("truncated checkpoint header: " + path);
  }
  if (magic != kMagic) {
    return Status::InvalidArgument("bad checkpoint magic in " + path +
                                   " (not a SeqFM checkpoint)");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(version) + " in " +
        path + " (expected " + std::to_string(kVersion) + ")");
  }
  auto named = module->NamedParameters();
  if (count != named.size()) {
    return Status::InvalidArgument(
        "checkpoint parameter count mismatch: file has " +
        std::to_string(count) + ", module has " +
        std::to_string(named.size()));
  }
  if (Status st = CheckDeclaredCount(in, path, count); !st.ok()) return st;

  // Loads are transactional: everything is validated and read into staging
  // buffers first, so a bad file never leaves the module half-restored.
  std::vector<tensor::Tensor> staged;
  staged.reserve(named.size());
  uint64_t hash = kFnvOffset;
  for (auto& [expected_name, var] : named) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len == 0 || name_len > kMaxNameLen) {
      return Status::IoError("truncated checkpoint manifest: " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in) return Status::IoError("truncated checkpoint manifest: " + path);
    if (name != expected_name) {
      return Status::InvalidArgument("checkpoint name mismatch: expected '" +
                                     expected_name + "', got '" + name + "'");
    }
    uint32_t dtype = 0, rank = 0;
    if (!ReadPod(in, &dtype) || !ReadPod(in, &rank)) {
      return Status::IoError("truncated checkpoint manifest: " + path);
    }
    if (dtype != static_cast<uint32_t>(CheckpointDtype::kFloat32)) {
      return Status::InvalidArgument("unsupported dtype tag " +
                                     std::to_string(dtype) + " for '" + name +
                                     "' in " + path);
    }
    const auto& current = var.value();
    if (rank != current.rank()) {
      return Status::InvalidArgument(
          "checkpoint rank mismatch for '" + name + "': file " +
          std::to_string(rank) + ", module " + std::to_string(current.rank()));
    }
    std::vector<size_t> shape(rank);
    for (uint32_t i = 0; i < rank; ++i) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim)) {
        return Status::IoError("truncated tensor shape in " + path);
      }
      shape[i] = static_cast<size_t>(dim);
      if (shape[i] != current.dim(i)) {
        return Status::InvalidArgument(
            "checkpoint shape mismatch for '" + name + "' at dim " +
            std::to_string(i) + ": file " + std::to_string(shape[i]) +
            ", module " + std::to_string(current.dim(i)));
      }
    }
    tensor::Tensor buf = tensor::Tensor::Uninitialized(shape);
    char* payload = reinterpret_cast<char*>(buf.data());
    const size_t bytes = buf.size() * sizeof(float);
    in.read(payload, static_cast<std::streamsize>(bytes));
    if (!in || static_cast<size_t>(in.gcount()) != bytes) {
      return Status::IoError("truncated checkpoint payload for '" + name +
                             "' in " + path);
    }
    hash = FnvUpdate(hash, payload, bytes);
    staged.push_back(std::move(buf));
  }
  uint64_t stored_hash = 0;
  if (!ReadPod(in, &stored_hash)) {
    return Status::IoError("missing checkpoint checksum in " + path);
  }
  if (stored_hash != hash) {
    return Status::IoError("checkpoint payload corrupted (checksum mismatch) "
                           "in " + path);
  }
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second.mutable_value() = std::move(staged[i]);
  }
  return Status::OK();
}

Result<CheckpointManifest> Checkpoint::Inspect(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open checkpoint for read: " + path);
  }
  CheckpointManifest manifest;
  if (Status st = ReadManifest(in, path, &manifest); !st.ok()) return st;
  return manifest;
}

uint64_t ParameterVersion(const nn::Module& module) {
  // Must stay bit-compatible with the footer hash Save writes: same FNV-1a
  // stream over the same payload bytes in the same NamedParameters order.
  uint64_t hash = kFnvOffset;
  for (const auto& [name, var] : module.NamedParameters()) {
    const auto& t = var.value();
    hash = FnvUpdate(hash, reinterpret_cast<const char*>(t.data()),
                     t.size() * sizeof(float));
  }
  return hash;
}

}  // namespace serve
}  // namespace seqfm
