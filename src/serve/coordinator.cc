#include "serve/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"

namespace seqfm {
namespace serve {

Coordinator::Coordinator(CoordinatorOptions options) : options_(options) {}

Status Coordinator::AddBackend(std::unique_ptr<ScoringBackend> backend,
                               const ReplicaInfo& info) {
  SEQFM_CHECK(backend != nullptr) << "Coordinator: null backend";
  if (info.num_shards == 0) {
    return Status::InvalidArgument("coordinator: replica reports 0 shards");
  }
  if (info.shard_index >= info.num_shards) {
    return Status::InvalidArgument(
        "coordinator: replica shard index " +
        std::to_string(info.shard_index) + " out of range for " +
        std::to_string(info.num_shards) + " shards");
  }
  if (info.shard_begin > info.shard_end ||
      info.shard_end > info.catalog_size) {
    return Status::InvalidArgument(
        "coordinator: replica slice [" + std::to_string(info.shard_begin) +
        ", " + std::to_string(info.shard_end) +
        ") does not fit catalog of size " +
        std::to_string(info.catalog_size));
  }
  util::OrderedMutexLock lock(mu_);
  if (ready_) {
    return Status::FailedPrecondition(
        "coordinator: fleet is frozen — add replicas before Ready()");
  }
  members_.push_back(Member{std::move(backend), info});
  return Status::OK();
}

Status Coordinator::AddReplica(const std::string& host, uint16_t port) {
  RemoteReplicaBackendOptions opts;
  opts.connect_timeout_ms = options_.connect_timeout_ms;
  opts.io_timeout_ms = options_.replica_timeout_ms;
  auto backend = std::make_unique<RemoteReplicaBackend>(opts);
  Status st = backend->Connect(host, port);
  if (!st.ok()) return st;
  const ReplicaInfo info = backend->info();
  return AddBackend(std::move(backend), info);
}

Status Coordinator::Ready() {
  util::OrderedMutexLock lock(mu_);
  if (ready_) return Status::OK();
  if (members_.empty()) {
    return Status::FailedPrecondition("coordinator: empty fleet");
  }

  // The fleet's identity is whatever the first member claims; every other
  // member must agree. A coordinator never merges across model versions —
  // scores from different parameters are not comparable, and a ranking
  // stitched from both would be silently wrong in the worst possible way.
  const ReplicaInfo& first = members_.front().info;
  for (size_t m = 1; m < members_.size(); ++m) {
    const ReplicaInfo& info = members_[m].info;
    if (info.model_version != first.model_version) {
      return Status::FailedPrecondition(
          "coordinator: model version mismatch — replica 0 serves " +
          std::to_string(first.model_version) + ", replica " +
          std::to_string(m) + " serves " +
          std::to_string(info.model_version) +
          "; refusing to merge rankings across model versions");
    }
    if (info.num_shards != first.num_shards ||
        info.catalog_size != first.catalog_size) {
      return Status::FailedPrecondition(
          "coordinator: partition mismatch — replica 0 is shard " +
          std::to_string(first.shard_index) + "/" +
          std::to_string(first.num_shards) + " of catalog " +
          std::to_string(first.catalog_size) + ", replica " +
          std::to_string(m) + " is shard " +
          std::to_string(info.shard_index) + "/" +
          std::to_string(info.num_shards) + " of catalog " +
          std::to_string(info.catalog_size));
    }
  }

  // Every slice must equal the canonical partition at its index: replicas
  // and the coordinator then agree on every boundary without negotiation,
  // and the union of groups tiles the catalog exactly.
  const std::vector<size_t> bounds =
      ShardedCatalog::Bounds(first.catalog_size, first.num_shards);
  std::vector<std::vector<size_t>> groups(first.num_shards);
  for (size_t m = 0; m < members_.size(); ++m) {
    const ReplicaInfo& info = members_[m].info;
    if (info.shard_begin != bounds[info.shard_index] ||
        info.shard_end != bounds[info.shard_index + 1]) {
      return Status::FailedPrecondition(
          "coordinator: replica " + std::to_string(m) + " owns [" +
          std::to_string(info.shard_begin) + ", " +
          std::to_string(info.shard_end) +
          ") but the canonical slice of shard " +
          std::to_string(info.shard_index) + " is [" +
          std::to_string(bounds[info.shard_index]) + ", " +
          std::to_string(bounds[info.shard_index + 1]) + ")");
    }
    groups[info.shard_index].push_back(m);
  }
  for (uint32_t s = 0; s < first.num_shards; ++s) {
    if (groups[s].empty()) {
      return Status::FailedPrecondition(
          "coordinator: shard " + std::to_string(s) + "/" +
          std::to_string(first.num_shards) +
          " has no replica — the catalog is not fully covered");
    }
  }

  shard_groups_ = std::move(groups);
  model_version_ = first.model_version;
  catalog_size_ = first.catalog_size;
  num_shards_ = first.num_shards;
  ready_ = true;
  {
    util::OrderedMutexLock health_lock(health_mu_);
    health_.assign(members_.size(), MemberHealth{});
  }
  return Status::OK();
}

void Coordinator::ReportOutcome(size_t member, bool ok) {
  util::OrderedMutexLock lock(health_mu_);
  MemberHealth& h = health_[member];
  if (ok) {
    h.consecutive_failures = 0;
    if (h.circuit != Circuit::kClosed) {
      // A successful call through an OPEN/HALF_OPEN member closes its
      // circuit — full readmission into affinity routing.
      h.circuit = Circuit::kClosed;
      h.probe_in_flight = false;
      ++stats_.circuit_closes;
      SEQFM_LOG(Info) << "coordinator: member " << member
                      << " readmitted (circuit closed)";
    }
    return;
  }
  ++h.consecutive_failures;
  if (h.circuit == Circuit::kHalfOpen) {
    // The trial failed: back to OPEN for another full window.
    h.circuit = Circuit::kOpen;
    h.probe_in_flight = false;
    h.open_until = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options_.circuit_open_ms);
    ++stats_.circuit_reopens;
  } else if (h.circuit == Circuit::kClosed &&
             h.consecutive_failures >= options_.max_consecutive_failures) {
    h.circuit = Circuit::kOpen;
    h.open_until = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options_.circuit_open_ms);
    ++stats_.circuit_opens;
    SEQFM_LOG(Warning) << "coordinator: member " << member << " ejected after "
                       << h.consecutive_failures
                       << " consecutive failures (circuit open)";
  }
}

bool Coordinator::TrySpendRetryToken() {
  util::OrderedMutexLock lock(health_mu_);
  // Token-bucket-by-ratio: every FIRST attempt earns ratio tokens, every
  // failover spends one, and the burst floor keeps cold starts and small
  // fleets from being starved. No refill thread, no clock — the budget is a
  // pure function of traffic, so it is deterministic under test.
  const double budget =
      options_.retry_budget_ratio * static_cast<double>(stats_.shard_attempts) +
      static_cast<double>(options_.retry_budget_burst);
  if (static_cast<double>(stats_.retries) >= budget) {
    ++stats_.retries_denied;
    return false;
  }
  ++stats_.retries;
  return true;
}

Status Coordinator::TopKAll(const data::SequenceExample& ex, size_t k,
                            CoordinatorResult* out) {
  SEQFM_CHECK(out != nullptr);
  out->status = RpcStatus::kOk;
  out->items.clear();

  // Snapshot the fleet under mu_, then fan out with NO coordinator lock
  // held: workers only touch their own result slot, their backend's
  // internal channel lock, and health_mu_ between calls (never across one).
  struct Attempt {
    ScoringBackend* backend = nullptr;
    size_t member = 0;
  };
  struct ShardPlan {
    /// Probe (at most one, when a member is half-open-eligible) first, then
    /// the CLOSED members affinity-ordered — the failover order.
    std::vector<Attempt> attempts;
    size_t begin = 0;
    size_t end = 0;
  };
  std::vector<ShardPlan> plans;
  {
    util::OrderedMutexLock lock(mu_);
    if (!ready_) {
      return Status::FailedPrecondition(
          "coordinator: TopKAll before Ready()");
    }
    out->shards_total = num_shards_;
    const std::vector<size_t> bounds =
        ShardedCatalog::Bounds(catalog_size_, num_shards_);
    const uint64_t affinity =
        util::Fnv1a64(&ex.user, sizeof(ex.user));
    const auto now = std::chrono::steady_clock::now();
    plans.resize(num_shards_);
    util::OrderedMutexLock health_lock(health_mu_);
    for (uint32_t s = 0; s < num_shards_; ++s) {
      const std::vector<size_t>& group = shard_groups_[s];
      // Rotate the group so a given user keeps hitting the same replica
      // first (its SharedContext stays hot in that replica's cache); the
      // rest of the group is the failover order.
      const size_t pick = static_cast<size_t>(affinity % group.size());
      ShardPlan& plan = plans[s];
      plan.begin = bounds[s];
      plan.end = bounds[s + 1];
      plan.attempts.reserve(group.size());
      // Circuit-breaker routing: CLOSED members take traffic in affinity
      // order; an OPEN member whose window expired gets readmission tested
      // by ONE live trial request (HALF_OPEN, at most one probe in flight
      // and at most one probe per plan — a recovering fleet never stacks
      // timeout-prone attempts onto a single request).
      bool probe_added = false;
      for (size_t i = 0; i < group.size(); ++i) {
        const size_t m = group[(pick + i) % group.size()];
        MemberHealth& h = health_[m];
        if (h.circuit == Circuit::kClosed) {
          plan.attempts.push_back({members_[m].backend.get(), m});
        } else if (h.circuit == Circuit::kOpen && !probe_added &&
                   now >= h.open_until && !h.probe_in_flight) {
          h.circuit = Circuit::kHalfOpen;
          h.probe_in_flight = true;
          probe_added = true;
          ++stats_.half_open_probes;
          // The probe rides FIRST: readmission must be tested by live
          // traffic, and this request has the whole failover order behind
          // it if the trial fails.
          plan.attempts.insert(plan.attempts.begin(),
                               {members_[m].backend.get(), m});
        }
        // OPEN inside its window, or HALF_OPEN with a probe already out:
        // route around it entirely.
      }
      if (plan.attempts.empty()) {
        // Every member open and none probe-eligible. Attempt the whole
        // group anyway rather than silently dropping the shard: these
        // calls fail fast (the backends' reconnect backoff answers in
        // microseconds while the replica is truly down), and the shard
        // must not be lost for a full window when recovery is a race away.
        for (size_t i = 0; i < group.size(); ++i) {
          const size_t m = group[(pick + i) % group.size()];
          plan.attempts.push_back({members_[m].backend.get(), m});
        }
      }
    }
  }

  // One worker thread per shard, each writing a distinct slot. Plain
  // std::thread rather than the shared pool on purpose: in-process replicas
  // score on that pool, so a coordinator occupying pool threads while
  // waiting on them could starve itself into deadlock. Join-all is safe
  // because every remote call is bounded by its socket timeout.
  const uint32_t shards = out->shards_total;
  std::vector<std::vector<RankEntry>> runs(shards);
  std::vector<uint8_t> merged(shards, 0);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    workers.emplace_back([&, s]() {
      const ShardPlan& plan = plans[s];
      ScoreJob job;
      job.ex = &ex;
      job.candidates = nullptr;  // identity catalog: the replica's slice
      job.begin = plan.begin;
      job.end = plan.end;
      job.k = std::min(k, plan.end - plan.begin);
      bool first = true;
      for (const Attempt& attempt : plan.attempts) {
        if (first) {
          util::OrderedMutexLock lock(health_mu_);
          ++stats_.shard_attempts;
        } else if (!TrySpendRetryToken()) {
          // Budget exhausted: declaring the shard lost is the SAFE failure
          // (an explicit PARTIAL) — burning group-size attempts per request
          // during a mass outage would amplify the overload that caused it.
          SEQFM_LOG(Warning)
              << "coordinator: shard " << s
              << " failover suppressed by the retry budget";
          break;
        }
        first = false;
        std::vector<std::vector<RankEntry>> result;
        Status st = attempt.backend->ScoreTopK({job}, &result);
        ReportOutcome(attempt.member, st.ok());
        if (st.ok()) {
          runs[s] = std::move(result.front());
          merged[s] = 1;
          break;
        }
        SEQFM_LOG(Warning) << "coordinator: shard " << s
                           << " attempt failed: " << st.ToString();
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Merge whatever answered. Failed shards contribute an empty run, which
  // MergeSortedRuns permits; with every shard healthy this is the exact
  // reduction ShardedPredictor::TopKAll runs in process, so the ranking is
  // bit-identical to single-process sharded serving.
  uint32_t ok_shards = 0;
  for (uint32_t s = 0; s < shards; ++s) ok_shards += merged[s];
  out->shards_merged = ok_shards;
  out->items = MergeSortedRuns(runs, k);
  out->status =
      (ok_shards == shards) ? RpcStatus::kOk : RpcStatus::kPartial;
  return Status::OK();
}

uint64_t Coordinator::model_version() const {
  util::OrderedMutexLock lock(mu_);
  return model_version_;
}

uint64_t Coordinator::catalog_size() const {
  util::OrderedMutexLock lock(mu_);
  return catalog_size_;
}

uint32_t Coordinator::num_shards() const {
  util::OrderedMutexLock lock(mu_);
  return num_shards_;
}

CoordinatorStats Coordinator::stats() const {
  util::OrderedMutexLock lock(mu_);
  CoordinatorStats out;
  {
    util::OrderedMutexLock health_lock(health_mu_);
    out = stats_;
  }
  // Aggregate per-backend recovery counters under mu_ alone: each
  // RecoveryStats() nests into that backend's channel lock (rank above
  // both coordinator locks), same order the fan-out legalizes.
  for (const Member& member : members_) {
    const BackendRecoveryStats r = member.backend->RecoveryStats();
    out.reconnects += r.reconnects;
    out.reconnect_failures += r.reconnect_failures;
  }
  return out;
}

}  // namespace serve
}  // namespace seqfm
