#include "serve/backend.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace serve {

LocalShardBackend::LocalShardBackend(const Predictor* predictor,
                                     LocalShardBackendOptions options)
    : predictor_(predictor), options_(options) {
  SEQFM_CHECK(predictor_ != nullptr) << "LocalShardBackend: null predictor";
}

Status LocalShardBackend::ScoreTopK(
    const std::vector<ScoreJob>& in_jobs,
    std::vector<std::vector<RankEntry>>* results) {
  const size_t num_jobs = in_jobs.size();
  results->assign(num_jobs, {});

  // A job with no candidates vector scores the identity catalog: positions
  // [begin, end) ARE the item ids — the form a Coordinator hands its
  // backends, since a replica's slate is never shipped. Materialize the
  // slice locally and remap the job onto it; the relative positions the
  // heap sees are restored to global ones in phase 3. The remap cannot
  // change the retained set or its order: identity ids are distinct, so
  // RankBefore never reaches its position tie-break within one job.
  std::vector<ScoreJob> jobs(in_jobs);
  std::vector<std::unique_ptr<std::vector<int32_t>>> identity;  // stable ptrs
  std::vector<size_t> pos_offset(num_jobs, 0);
  for (size_t j = 0; j < num_jobs; ++j) {
    if (jobs[j].candidates != nullptr) continue;
    SEQFM_CHECK_LE(jobs[j].begin, jobs[j].end);
    auto ids = std::make_unique<std::vector<int32_t>>();
    ids->reserve(jobs[j].end - jobs[j].begin);
    for (size_t p = jobs[j].begin; p < jobs[j].end; ++p) {
      ids->push_back(static_cast<int32_t>(p));
    }
    pos_offset[j] = jobs[j].begin;
    jobs[j].candidates = ids.get();
    jobs[j].begin = 0;
    jobs[j].end = ids->size();
    identity.push_back(std::move(ids));
  }

  for (const ScoreJob& job : jobs) {
    SEQFM_CHECK(job.ex != nullptr) << "LocalShardBackend: job without example";
    SEQFM_CHECK_LE(job.begin, job.end);
    SEQFM_CHECK_LE(job.end, job.candidates->size());
  }

  // Phase 1 (context path only): resolve each unique (user, history)
  // SharedContext once per batch. The map dedupes duplicate users across
  // jobs before they even reach the ContextCache, so a cold cache never
  // computes the same context twice in one batch; groups resolve
  // concurrently on the pool.
  std::vector<Predictor::ContextPtr> contexts(num_jobs);
  if (predictor_->context_path_active()) {
    std::map<std::pair<int32_t, std::vector<int32_t>>, std::vector<size_t>>
        groups;
    for (size_t j = 0; j < num_jobs; ++j) {
      if (jobs[j].begin >= jobs[j].end || jobs[j].k == 0) continue;
      groups[{jobs[j].ex->user, jobs[j].ex->history}].push_back(j);
    }
    std::vector<const std::vector<size_t>*> group_list;
    group_list.reserve(groups.size());
    for (const auto& [key, members] : groups) group_list.push_back(&members);
    util::ParallelFor(group_list.size(), 1, [&](size_t g0, size_t g1) {
      for (size_t g = g0; g < g1; ++g) {
        const std::vector<size_t>& members = *group_list[g];
        const Predictor::ContextPtr ctx =
            predictor_->AcquireContext(*jobs[members.front()].ex);
        for (size_t j : members) contexts[j] = ctx;
      }
    });
  }

  // Phase 2: one fused ParallelFor over every (job, chunk) task of the
  // batch — the multi-user scoring wave that keeps all pool threads busy
  // regardless of per-job range size. Chunks never cross a job boundary,
  // and each job reduces into one bounded top-K heap, so the batch holds
  // sum_j min(k_j, range_j) retained entries plus one chunk-local score
  // buffer per pool thread — never a full score vector.
  const size_t chunk_size = options_.micro_batch > 0
                                ? options_.micro_batch
                                : predictor_->options().micro_batch;
  struct JobChunk {
    size_t job;
    size_t begin;
    size_t end;
  };
  std::vector<JobChunk> tasks;
  std::vector<TopKHeap> heaps;
  heaps.reserve(num_jobs);
  for (size_t j = 0; j < num_jobs; ++j) {
    const size_t range = jobs[j].end - jobs[j].begin;
    // Capacity min(k, range): a heap never retains more entries than were
    // pushed, so this keeps the exact retained set of a capacity-k heap
    // while bounding per-job memory by the job's own range.
    heaps.emplace_back(std::min(jobs[j].k, range));
    if (range == 0 || jobs[j].k == 0) continue;
    for (size_t begin = jobs[j].begin; begin < jobs[j].end;
         begin += chunk_size) {
      tasks.push_back({j, begin, std::min(jobs[j].end, begin + chunk_size)});
    }
  }
  // Chunk tasks of the same job may run concurrently; its heap is fed under
  // a mutex, and the retained set is push-order independent (RankBefore is
  // a strict total order), so results are deterministic for any schedule.
  std::vector<std::mutex> heap_mu(num_jobs);
  util::ParallelFor(tasks.size(), 1, [&](size_t t0, size_t t1) {
    std::vector<float> chunk_scores;
    for (size_t t = t0; t < t1; ++t) {
      const JobChunk& task = tasks[t];
      const ScoreJob& job = jobs[task.job];
      ScoreChunkIntoHeap(*predictor_, contexts[task.job].get(), *job.ex,
                         *job.candidates, ShardChunk{0, task.begin, task.end},
                         &chunk_scores, &heap_mu[task.job], &heaps[task.job]);
    }
  });

  // Phase 3: each job's run, best first, with identity-job positions
  // restored to global catalog positions.
  for (size_t j = 0; j < num_jobs; ++j) {
    (*results)[j] = heaps[j].SortedEntries();
    if (pos_offset[j] != 0) {
      for (RankEntry& e : (*results)[j]) e.pos += pos_offset[j];
    }
  }
  return Status::OK();
}

RemoteReplicaBackend::RemoteReplicaBackend(RemoteReplicaBackendOptions options)
    : options_(options), jitter_rng_(options.reconnect_jitter_seed) {}

Status RemoteReplicaBackend::Connect(const std::string& host, uint16_t port) {
  util::OrderedMutexLock lock(mu_);
  host_ = host;
  port_ = port;
  Status st = ConnectLocked(/*reconnect=*/false);
  if (st.ok()) ever_connected_ = true;
  return st;
}

Status RemoteReplicaBackend::ConnectLocked(bool reconnect) {
  RpcClientOptions copts;
  copts.connect_timeout_ms = options_.connect_timeout_ms;
  copts.io_timeout_ms = options_.io_timeout_ms;
  copts.capabilities = kRpcCapShardScoring;
  Status st = client_.Connect(host_, port_, copts);
  if (!st.ok()) return st;
  const RpcHelloAck& ack = client_.server_info();
  if (!(ack.capabilities & kRpcCapShardScoring)) {
    client_.Close();
    return Status::FailedPrecondition(
        "remote backend: server at " + host_ + ":" + std::to_string(port_) +
        " is not a replica (no shard-scoring capability) — it serves whole "
        "slates, not catalog slices");
  }
  if (reconnect) {
    // The fleet was validated against the ORIGINAL identity. A replica that
    // came back under another checkpoint (or re-partitioned) must be
    // refused here: its scores are not mergeable with the rest of the
    // fleet, and only the Coordinator's Ready() — long past — could have
    // re-validated it.
    if (ack.model_version != info_.model_version ||
        ack.shard_index != info_.shard_index ||
        ack.num_shards != info_.num_shards ||
        ack.shard_begin != info_.shard_begin ||
        ack.shard_end != info_.shard_end ||
        ack.catalog_size != info_.catalog_size) {
      client_.Close();
      return Status::FailedPrecondition(
          "remote backend: replica at " + host_ + ":" +
          std::to_string(port_) + " came back with a different identity "
          "(model version " + std::to_string(ack.model_version) + " vs " +
          std::to_string(info_.model_version) + ", shard " +
          std::to_string(ack.shard_index) + "/" +
          std::to_string(ack.num_shards) + " vs " +
          std::to_string(info_.shard_index) + "/" +
          std::to_string(info_.num_shards) +
          "); refusing to merge across identities");
    }
    return Status::OK();
  }
  info_.shard_index = ack.shard_index;
  info_.num_shards = ack.num_shards;
  info_.shard_begin = ack.shard_begin;
  info_.shard_end = ack.shard_end;
  info_.catalog_size = ack.catalog_size;
  info_.model_version = ack.model_version;
  return Status::OK();
}

Status RemoteReplicaBackend::EnsureConnectedLocked() {
  if (client_.connected()) return Status::OK();
  if (!ever_connected_) {
    return Status::FailedPrecondition(
        "remote backend: ScoreTopK before Connect");
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < next_attempt_) {
    // Fail fast inside the backoff window: the caller (a coordinator
    // fan-out worker) should spend its time on surviving replicas, not on
    // redialing a dead one — the next window edge retries automatically.
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                          next_attempt_ - now)
                          .count();
    return Status::FailedPrecondition(
        "remote backend: replica at " + host_ + ":" + std::to_string(port_) +
        " is down; backing off another " + std::to_string(wait) + "ms");
  }
  Status st = ConnectLocked(/*reconnect=*/true);
  if (!st.ok()) {
    ++recovery_.reconnect_failures;
    // Exponential growth capped at the max, then jittered into [d/2, d):
    // the schedule stays deterministic per backend (seeded stream) while
    // desynchronizing independent coordinators in a real fleet.
    backoff_ms_ = backoff_ms_ == 0
                      ? options_.reconnect_backoff_initial_ms
                      : std::min(backoff_ms_ * 2,
                                 options_.reconnect_backoff_max_ms);
    const int64_t jittered =
        backoff_ms_ <= 1
            ? backoff_ms_
            : backoff_ms_ / 2 +
                  static_cast<int64_t>(jitter_rng_.UniformInt(
                      static_cast<uint64_t>(backoff_ms_ - backoff_ms_ / 2)));
    next_attempt_ = now + std::chrono::milliseconds(jittered);
    return st;
  }
  ++recovery_.reconnects;
  backoff_ms_ = 0;
  next_attempt_ = std::chrono::steady_clock::time_point{};
  SEQFM_LOG(Info) << "remote backend: reconnected to replica at " << host_
                  << ":" << port_;
  return Status::OK();
}

BackendRecoveryStats RemoteReplicaBackend::RecoveryStats() const {
  util::OrderedMutexLock lock(mu_);
  return recovery_;
}

Status RemoteReplicaBackend::ScoreTopK(
    const std::vector<ScoreJob>& jobs,
    std::vector<std::vector<RankEntry>>* results) {
  const size_t num_jobs = jobs.size();
  results->assign(num_jobs, {});
  if (num_jobs == 0) return Status::OK();

  util::OrderedMutexLock lock(mu_);
  SEQFM_RETURN_NOT_OK(EnsureConnectedLocked());

  // Pipeline: send every request before reading any response. The replica's
  // BatchServer answers asynchronously as waves complete, so responses may
  // arrive in any order — match them to jobs by request id.
  std::unordered_map<uint64_t, size_t> pending;
  pending.reserve(num_jobs);
  for (size_t j = 0; j < num_jobs; ++j) {
    const ScoreJob& job = jobs[j];
    SEQFM_CHECK(job.candidates == nullptr)
        << "RemoteReplicaBackend: jobs must be identity-catalog form "
           "(null candidates) — a replica owns its slice, slates are never "
           "shipped";
    SEQFM_CHECK(job.ex != nullptr) << "RemoteReplicaBackend: job without "
                                      "example";
    RpcShardRequest req;
    req.id = next_id_++;
    req.user = job.ex->user;
    req.k = static_cast<uint32_t>(job.k);
    req.begin = job.begin;
    req.end = job.end;
    req.history = job.ex->history;
    Status st = client_.SendShard(req);
    if (!st.ok()) return st;
    pending.emplace(req.id, j);
  }

  while (!pending.empty()) {
    RpcShardResponse resp;
    Status st = client_.ReadShardResponse(&resp);
    if (!st.ok()) return st;
    auto it = pending.find(resp.id);
    if (it == pending.end()) {
      return Status::IoError("remote backend: replica answered unknown "
                             "request id " + std::to_string(resp.id));
    }
    const size_t j = it->second;
    pending.erase(it);
    if (resp.status != RpcStatus::kOk) {
      return Status::IoError(std::string("remote backend: replica answered ") +
                             RpcStatusToString(resp.status));
    }
    if (resp.model_version != info_.model_version) {
      return Status::FailedPrecondition(
          "remote backend: model version drift — handshake announced " +
          std::to_string(info_.model_version) + " but response carries " +
          std::to_string(resp.model_version) +
          "; rankings across versions must not be merged");
    }
    std::vector<RankEntry>& run = (*results)[j];
    run.reserve(resp.entries.size());
    for (const RpcShardEntry& e : resp.entries) {
      run.push_back(RankEntry{e.score, e.item, static_cast<size_t>(e.pos)});
    }
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace seqfm
