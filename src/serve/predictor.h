#ifndef SEQFM_SERVE_PREDICTOR_H_
#define SEQFM_SERVE_PREDICTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/model_interface.h"
#include "core/scratch_arena.h"
#include "core/seqfm.h"
#include "data/dataset.h"
#include "ir/exec.h"
#include "serve/context_cache.h"
#include "util/result.h"

namespace seqfm {
namespace serve {

struct PredictorOptions {
  /// Candidates scored per tape-free forward. Also the chunk the candidate
  /// loop hands to the shared util::ThreadPool.
  size_t micro_batch = 256;
  /// Use the factored SeqFM catalog program when the model supports it (all
  /// three views enabled, default masking). The program computes the
  /// candidate-invariant work — the whole dynamic view and the dynamic-side
  /// projections of the cross view — once per request and only re-scores the
  /// candidate-dependent rows, the same way an LLM server reuses its KV
  /// cache across decode steps. Scores are bit-for-bit identical to the
  /// batched Model::Score path; set to false to force the generic path.
  bool enable_seqfm_fast_path = true;
  /// Compile the model into a static op program at construction (trace → IR
  /// passes → arena-planned VM; see src/ir/) and serve every request through
  /// it: the candidate-invariant prologue runs once per (user, history) and
  /// feeds the context cache, the per-candidate body replays per chunk with
  /// zero steady-state allocations. Applies to ANY traceable model, not just
  /// SeqFM. Scores stay bit-for-bit identical to Model::Score — the compiler
  /// self-checks both program halves against the traced forward and the
  /// Predictor permanently falls back to the eager path (one warning) if a
  /// lazy per-count compile ever fails. Set to false to force eager serving
  /// (the parity oracle; also bench_serving's compiled-off baseline).
  bool use_compiled_program = true;
  /// Byte budget for the (user, history) SharedContext LRU cache in front of
  /// the factored path; 0 disables caching. Each entry holds the per-request
  /// candidate-invariant tensors, roughly 4*(3*n*d + 4*d) bytes for seq-len
  /// n and dim d (~39 KiB at n=50, d=64), so 64 MiB caches ~1.7k such
  /// contexts. Compiled-program contexts are cached through the same LRU
  /// (their unit is the prologue's slot tensors). Ignored when neither the
  /// compiled nor the hand-factored context path is active.
  size_t context_cache_bytes = 0;
  /// Draw tape-free op outputs from the worker thread's core::ScratchArena
  /// (zero tensor heap allocations in steady state). Off = every op output
  /// is an individual heap allocation, the pre-arena behavior — kept as an
  /// escape hatch and as bench_serving's arena-off baseline. The arena
  /// retains each worker's per-chunk high-water mark (tens of MiB at
  /// serving shapes) for reuse across requests.
  bool use_scratch_arena = true;
};

/// One ranked catalog entry returned by Predictor::TopK.
struct ScoredItem {
  int32_t item = 0;
  float score = 0.0f;
};

/// Top-k of \p candidates by \p scores under the serving-wide total order
/// (serve::RankBefore): descending score, NaN scores last, score ties by
/// candidate **id** ascending, duplicate ids by position. Ordering ties by
/// id rather than by position in the candidates vector is what keeps
/// sharded and unsharded rankings identical — a shard boundary changes
/// positions but never ids. k is clamped to candidates.size(). Used by
/// Predictor::TopK; BatchServer and ShardedPredictor produce the same
/// rankings through per-shard TopKHeaps + MergeTopK over the same order.
std::vector<ScoredItem> SelectTopK(const std::vector<int32_t>& candidates,
                                   const std::vector<float>& scores, size_t k);

/// \brief Forward-only scoring front end: the serving counterpart of
/// core::Trainer.
///
/// A Predictor wraps a trained model (any core::Model) and scores candidate
/// catalogs without constructing autograd state: every forward runs under
/// autograd::NoGradGuard in micro-batches, and SeqFM requests take the
/// factored catalog program described in PredictorOptions, optionally
/// memoized by a serve::ContextCache. Scoring is read-only on the model and
/// safe to call concurrently after construction; ReloadCheckpoint is the one
/// mutating call and requires the caller to quiesce scoring first
/// (BatchServer::ReloadCheckpoint does).
class Predictor {
 public:
  using ContextPtr = ContextCache::ContextPtr;

  /// Wraps an already-trained in-process model. Both pointers are borrowed
  /// and must outlive the Predictor.
  Predictor(core::Model* model, const data::BatchBuilder* builder,
            PredictorOptions options = {});

  /// Restores \p model from \p checkpoint_path (the model must be an
  /// nn::Module, which SeqFM and every registry baseline is), then wraps it.
  /// Returns the checkpoint's Status error on any load failure.
  static Result<std::unique_ptr<Predictor>> FromCheckpoint(
      core::Model* model, const data::BatchBuilder* builder,
      const std::string& checkpoint_path, PredictorOptions options = {});

  /// Scores each candidate object for the example's (user, history) context.
  /// scores[i] corresponds to candidates[i]. Bit-for-bit identical to
  /// scoring the same candidate batch through Model::Score.
  std::vector<float> ScoreCandidates(
      const data::SequenceExample& ex,
      const std::vector<int32_t>& candidates) const;

  /// Top-k of \p candidates by score (descending; ties broken by candidate
  /// id — see SelectTopK). k is clamped to candidates.size().
  std::vector<ScoredItem> TopK(const data::SequenceExample& ex,
                               const std::vector<int32_t>& candidates,
                               size_t k) const;

  /// Top-k over the full object catalog [0, num_objects). The identity
  /// catalog is materialized once at construction, not per request.
  std::vector<ScoredItem> TopKAll(const data::SequenceExample& ex,
                                  size_t k) const;

  /// Reloads model parameters from \p path (hot-swap to a newer training
  /// snapshot) and invalidates the context cache so no request is served
  /// from tensors of the old parameters. No scoring call may be in flight;
  /// serve through BatchServer::ReloadCheckpoint for a quiesced reload.
  ///
  /// After the recompile, the engine's slot ABI is re-verified against its
  /// prologue (ir::Engine::ReverifySlotAbi): a body whose slot wiring no
  /// longer matches what the prologue parks in contexts would read the
  /// wrong floats and serve garbage rankings without crashing. On a
  /// mismatch the reload still succeeds — the parameters are the new ones
  /// — but the compiled path is latched off (one warning) and scoring
  /// falls back to the eager path, which has no slot ABI to violate.
  Status ReloadCheckpoint(const std::string& path);

  /// Test hook: runs on the freshly compiled engine inside every
  /// ReloadCheckpoint, before the slot-ABI re-verification. Lets reload
  /// tests corrupt the slot wiring at exactly the moment a real
  /// miscompilation would introduce it; never set outside tests.
  void SetReloadCorruptionHookForTest(std::function<void(ir::Engine*)> hook) {
    reload_corruption_hook_ = std::move(hook);
  }

  /// Drops all cached contexts. Call after mutating model parameters by any
  /// route other than ReloadCheckpoint. No-op when caching is off.
  void InvalidateContextCache();

  // --- Fused-scoring building blocks (used by serve::BatchServer) ---------

  /// The (cached) SharedContext for this example. Context path only
  /// (context_path_active() must hold). Compiled contexts carry the
  /// prologue's slot tensors; hand-factored SeqFM contexts the h_dyn/q_dyn/…
  /// tensors.
  ContextPtr AcquireContext(const data::SequenceExample& ex) const;

  /// Scores candidates[begin, end) against \p ctx — through the compiled
  /// body program when compiled_active(), else the hand-factored SeqFM
  /// program — writing the end - begin results to out[0, end - begin).
  /// Taking a chunk-local output buffer (rather than a catalog-sized one
  /// indexed by begin) is what lets sharded serving bound its memory to one
  /// chunk per pool thread. Sets up its own NoGradGuard, so it can run
  /// directly on pool worker threads. A compiled-path failure (a lazy
  /// per-count body compile that does not verify) permanently disables the
  /// engine and re-scores the chunk through the fallback paths, so results
  /// are always produced.
  void ScoreContextRange(const core::SharedContext& ctx,
                         const data::SequenceExample& ex,
                         const std::vector<int32_t>& candidates,
                         size_t begin, size_t end, float* out) const;

  /// The hand-factored SeqFM catalog program (fast path). Kept callable on
  /// its own as the reference implementation ScoreContextRange falls back
  /// to; requires a hand-factored context (ctx.h_dyn defined).
  void ScoreFactoredRange(const core::SharedContext& ctx,
                          const std::vector<int32_t>& candidates,
                          size_t begin, size_t end, float* out) const;

  /// Generic-path equivalent of ScoreContextRange (any model).
  void ScoreGenericRange(const data::SequenceExample& ex,
                         const std::vector<int32_t>& candidates,
                         size_t begin, size_t end, float* out) const;

  /// True when requests will take the hand-factored SeqFM catalog program
  /// (the pre-compiler fast path; also the compiled path's first fallback).
  bool fast_path_active() const { return seqfm_ != nullptr; }

  /// True when requests will execute the compiled op program.
  bool compiled_active() const {
    return engine_ != nullptr &&
           !engine_failed_.load(std::memory_order_relaxed);
  }

  /// True when requests go through an AcquireContext + Score*Range pair
  /// (compiled or hand-factored) instead of the generic per-chunk rebuild.
  bool context_path_active() const {
    return compiled_active() || fast_path_active();
  }

  /// The compiled engine, or null when the model did not compile (or
  /// use_compiled_program is off). Stats feed bench_serving --json.
  const ir::Engine* engine() const { return engine_.get(); }

  /// The identity catalog [0, num_objects) behind TopKAll, built once at
  /// construction (ShardedPredictor partitions it instead of re-deriving).
  const std::vector<int32_t>& full_catalog() const { return full_catalog_; }

  /// Non-null iff the context path is active and context_cache_bytes > 0.
  const ContextCache* context_cache() const { return cache_.get(); }

  /// Scratch-arena counters for the tape-free scoring scopes (process-wide;
  /// see core::ScratchStats). In steady state heap_refills stays flat while
  /// allocations keeps counting — serving without heap allocations.
  core::ScratchStats scratch_stats() const {
    return core::GlobalScratchStats();
  }

  const core::Model* model() const { return model_; }
  const PredictorOptions& options() const { return options_; }

 private:
  std::vector<float> ScoreGeneric(const data::SequenceExample& ex,
                                  const std::vector<int32_t>& candidates) const;
  std::vector<float> ScoreContext(const data::SequenceExample& ex,
                                  const std::vector<int32_t>& candidates) const;
  /// (Re)compiles the serving program from the model's CURRENT parameters.
  /// Called at construction and again whenever parameters change: the
  /// candidate-invariant split is verified against live parameter values, so
  /// a checkpoint load can shift which values are invariant. Resets
  /// engine_failed_. Requires quiesced scoring (same contract as
  /// ReloadCheckpoint).
  void CompileEngine();

  core::Model* model_;
  const data::BatchBuilder* builder_;
  PredictorOptions options_;
  /// Non-null iff the hand-factored fast path applies to this model+config.
  core::SeqFm* seqfm_ = nullptr;
  /// Non-null iff the model compiled into a (prologue, body) op program.
  std::unique_ptr<ir::Engine> engine_;
  /// Latched on the first compiled-path failure (a per-count body that does
  /// not verify); from then on every request takes the fallback paths.
  /// Memory order audit: relaxed is sufficient — the flag is a pure latch
  /// that publishes no data. A thread observing it stale merely retries the
  /// compiled path and latches again (idempotent); the fallback paths read
  /// only state that was immutable before serving started. The store in
  /// CompileEngine runs with scoring quiesced (ReloadCheckpoint contract),
  /// so it cannot race a latch.
  mutable std::atomic<bool> engine_failed_{false};
  /// Test-only (SetReloadCorruptionHookForTest); empty in production.
  std::function<void(ir::Engine*)> reload_corruption_hook_;
  std::unique_ptr<ContextCache> cache_;
  /// [0, num_objects) — built once so TopKAll does not re-materialize it.
  std::vector<int32_t> full_catalog_;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_PREDICTOR_H_
