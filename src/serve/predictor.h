#ifndef SEQFM_SERVE_PREDICTOR_H_
#define SEQFM_SERVE_PREDICTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/model_interface.h"
#include "core/seqfm.h"
#include "data/dataset.h"
#include "util/result.h"

namespace seqfm {
namespace serve {

struct PredictorOptions {
  /// Candidates scored per tape-free forward. Also the chunk the candidate
  /// loop hands to the shared util::ThreadPool.
  size_t micro_batch = 256;
  /// Use the factored SeqFM catalog program when the model supports it (all
  /// three views enabled, default masking). The program computes the
  /// candidate-invariant work — the whole dynamic view and the dynamic-side
  /// projections of the cross view — once per request and only re-scores the
  /// candidate-dependent rows, the same way an LLM server reuses its KV
  /// cache across decode steps. Scores are bit-for-bit identical to the
  /// batched Model::Score path; set to false to force the generic path.
  bool enable_seqfm_fast_path = true;
};

/// One ranked catalog entry returned by Predictor::TopK.
struct ScoredItem {
  int32_t item = 0;
  float score = 0.0f;
};

/// \brief Forward-only scoring front end: the serving counterpart of
/// core::Trainer.
///
/// A Predictor wraps a trained model (any core::Model) and scores candidate
/// catalogs without constructing autograd state: every forward runs under
/// autograd::NoGradGuard in micro-batches, and SeqFM requests take the
/// factored catalog program described in PredictorOptions. Scoring is
/// read-only on the model and safe to call concurrently after construction.
class Predictor {
 public:
  /// Wraps an already-trained in-process model. Both pointers are borrowed
  /// and must outlive the Predictor.
  Predictor(core::Model* model, const data::BatchBuilder* builder,
            PredictorOptions options = {});

  /// Restores \p model from \p checkpoint_path (the model must be an
  /// nn::Module, which SeqFM and every registry baseline is), then wraps it.
  /// Returns the checkpoint's Status error on any load failure.
  static Result<std::unique_ptr<Predictor>> FromCheckpoint(
      core::Model* model, const data::BatchBuilder* builder,
      const std::string& checkpoint_path, PredictorOptions options = {});

  /// Scores each candidate object for the example's (user, history) context.
  /// scores[i] corresponds to candidates[i]. Bit-for-bit identical to
  /// scoring the same candidate batch through Model::Score.
  std::vector<float> ScoreCandidates(
      const data::SequenceExample& ex,
      const std::vector<int32_t>& candidates) const;

  /// Top-k of \p candidates by score (descending; ties broken by candidate
  /// position for determinism). k is clamped to candidates.size().
  std::vector<ScoredItem> TopK(const data::SequenceExample& ex,
                               const std::vector<int32_t>& candidates,
                               size_t k) const;

  /// Top-k over the full object catalog [0, num_objects).
  std::vector<ScoredItem> TopKAll(const data::SequenceExample& ex,
                                  size_t k) const;

  /// True when requests will take the factored SeqFM catalog program.
  bool fast_path_active() const { return seqfm_ != nullptr; }

  const core::Model* model() const { return model_; }

 private:
  std::vector<float> ScoreGeneric(const data::SequenceExample& ex,
                                  const std::vector<int32_t>& candidates) const;
  std::vector<float> ScoreFactored(const data::SequenceExample& ex,
                                   const std::vector<int32_t>& candidates) const;

  core::Model* model_;
  const data::BatchBuilder* builder_;
  PredictorOptions options_;
  /// Non-null iff the fast path applies to this model + config.
  core::SeqFm* seqfm_ = nullptr;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_PREDICTOR_H_
