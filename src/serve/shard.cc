#include "serve/shard.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "serve/backend.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace serve {

bool RankBefore(const RankEntry& a, const RankEntry& b) {
  const bool a_nan = std::isnan(a.score);
  const bool b_nan = std::isnan(b.score);
  if (a_nan != b_nan) return b_nan;  // NaN sorts last
  if (!a_nan && a.score != b.score) return a.score > b.score;
  if (a.item != b.item) return a.item < b.item;
  return a.pos < b.pos;
}

std::vector<size_t> ShardedCatalog::Bounds(size_t total, size_t num_shards) {
  SEQFM_CHECK_GT(num_shards, 0u) << "ShardedCatalog: need at least one shard";
  std::vector<size_t> bounds(num_shards + 1);
  for (size_t s = 0; s <= num_shards; ++s) {
    bounds[s] = total * s / num_shards;  // near-equal, empty tails allowed
  }
  return bounds;
}

ShardedCatalog::ShardedCatalog(std::vector<int32_t> candidates,
                               size_t num_shards)
    : candidates_(std::move(candidates)),
      bounds_(Bounds(candidates_.size(), num_shards)) {}

void TopKHeap::Push(const RankEntry& entry) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), RankBefore);
    return;
  }
  // Front is the worst retained entry; replace it only when the newcomer
  // ranks strictly before it.
  if (!RankBefore(entry, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), RankBefore);
  heap_.back() = entry;
  std::push_heap(heap_.begin(), heap_.end(), RankBefore);
}

std::vector<RankEntry> TopKHeap::SortedEntries() const {
  std::vector<RankEntry> sorted = heap_;
  std::sort(sorted.begin(), sorted.end(), RankBefore);
  return sorted;
}

std::vector<ScoredItem> MergeTopK(const std::vector<TopKHeap>& shard_heaps,
                                  size_t k) {
  std::vector<std::vector<RankEntry>> runs;
  runs.reserve(shard_heaps.size());
  for (const TopKHeap& heap : shard_heaps) {
    if (heap.size() > 0) runs.push_back(heap.SortedEntries());
  }
  return MergeSortedRuns(runs, k);
}

std::vector<ScoredItem> MergeSortedRuns(
    const std::vector<std::vector<RankEntry>>& all_runs, size_t k) {
  // Classic k-way merge over the sorted runs with a cursor heap:
  // O(k log num_runs), no concatenated buffer.
  std::vector<const std::vector<RankEntry>*> runs;
  runs.reserve(all_runs.size());
  for (const std::vector<RankEntry>& run : all_runs) {
    if (!run.empty()) runs.push_back(&run);
  }
  struct Cursor {
    size_t run;
    size_t idx;
  };
  const auto cursor_after = [&runs](const Cursor& a, const Cursor& b) {
    // "a after b" so the std::*_heap max element is the best cursor.
    return RankBefore((*runs[b.run])[b.idx], (*runs[a.run])[a.idx]);
  };
  std::vector<Cursor> cursors;
  cursors.reserve(runs.size());
  for (size_t r = 0; r < runs.size(); ++r) cursors.push_back({r, 0});
  std::make_heap(cursors.begin(), cursors.end(), cursor_after);

  std::vector<ScoredItem> top;
  while (top.size() < k && !cursors.empty()) {
    std::pop_heap(cursors.begin(), cursors.end(), cursor_after);
    Cursor best = cursors.back();
    cursors.pop_back();
    const RankEntry& entry = (*runs[best.run])[best.idx];
    top.push_back({entry.item, entry.score});
    if (++best.idx < runs[best.run]->size()) {
      cursors.push_back(best);
      std::push_heap(cursors.begin(), cursors.end(), cursor_after);
    }
  }
  return top;
}

std::vector<ShardChunk> MakeShardChunks(const std::vector<size_t>& bounds,
                                        size_t chunk_size) {
  SEQFM_CHECK_GT(chunk_size, 0u);
  std::vector<ShardChunk> chunks;
  for (size_t s = 0; s + 1 < bounds.size(); ++s) {
    // Chunks never straddle a shard boundary: each restarts at the shard.
    for (size_t begin = bounds[s]; begin < bounds[s + 1];
         begin += chunk_size) {
      chunks.push_back({s, begin, std::min(bounds[s + 1],
                                           begin + chunk_size)});
    }
  }
  return chunks;
}

void ScoreChunkIntoHeap(const Predictor& predictor,
                        const core::SharedContext* ctx,
                        const data::SequenceExample& ex,
                        const std::vector<int32_t>& candidates,
                        const ShardChunk& chunk,
                        std::vector<float>* chunk_scores, std::mutex* mu,
                        TopKHeap* heap) {
  chunk_scores->resize(chunk.end - chunk.begin);
  if (ctx != nullptr) {
    predictor.ScoreContextRange(*ctx, ex, candidates, chunk.begin, chunk.end,
                                chunk_scores->data());
  } else {
    predictor.ScoreGenericRange(ex, candidates, chunk.begin, chunk.end,
                                chunk_scores->data());
  }
  // Reduce lock-free into a chunk-local heap first, then merge only its
  // <= k survivors under the shared heap's mutex: the retained set is
  // push-order independent, so the bits are identical while the critical
  // section shrinks from O(chunk log k) to O(k log k) — concurrent chunks
  // of a hot shard would otherwise convoy on the mutex.
  TopKHeap local(heap->capacity());
  for (size_t i = 0; i < chunk_scores->size(); ++i) {
    local.Push({(*chunk_scores)[i], candidates[chunk.begin + i],
                chunk.begin + i});
  }
  std::lock_guard<std::mutex> lock(*mu);
  for (const RankEntry& entry : local.entries()) heap->Push(entry);
}

namespace {
std::vector<size_t> FullCatalogBounds(Predictor* predictor,
                                      size_t num_shards) {
  SEQFM_CHECK(predictor != nullptr) << "ShardedPredictor: null predictor";
  return ShardedCatalog::Bounds(predictor->full_catalog().size(), num_shards);
}
}  // namespace

ShardedPredictor::ShardedPredictor(Predictor* predictor,
                                   ShardedPredictorOptions options)
    : predictor_(predictor),
      options_(options),
      backend_(std::make_unique<LocalShardBackend>(
          predictor, LocalShardBackendOptions{options.micro_batch})),
      full_catalog_bounds_(FullCatalogBounds(predictor, options.num_shards)) {}

ShardedPredictor::~ShardedPredictor() = default;

std::vector<ScoredItem> ShardedPredictor::TopK(
    const data::SequenceExample& ex, const std::vector<int32_t>& candidates,
    size_t k) const {
  return TopKImpl(ex, candidates,
                  ShardedCatalog::Bounds(candidates.size(),
                                         options_.num_shards),
                  k);
}

std::vector<ScoredItem> ShardedPredictor::TopKAll(
    const data::SequenceExample& ex, size_t k) const {
  // The Predictor already materializes [0, num_objects); rank it in place.
  return TopKImpl(ex, predictor_->full_catalog(), full_catalog_bounds_, k);
}

std::vector<ScoredItem> ShardedPredictor::TopK(const data::SequenceExample& ex,
                                               const ShardedCatalog& catalog,
                                               size_t k) const {
  return TopKImpl(ex, catalog.candidates(), catalog.bounds(), k);
}

std::vector<ScoredItem> ShardedPredictor::TopKImpl(
    const data::SequenceExample& ex, const std::vector<int32_t>& candidates,
    const std::vector<size_t>& bounds, size_t k) const {
  const size_t num_shards = bounds.size() - 1;
  k = std::min(k, candidates.size());
  if (k == 0) return {};

  // One ScoreJob per shard through the shared backend seam: the backend
  // resolves the (user, history) context once (through the same
  // ContextCache), fans every (shard, chunk) task onto the pool, and hands
  // back one sorted top-k run per shard — exactly the plumbing this method
  // used to inline, now shared with BatchServer waves and the distributed
  // Coordinator.
  std::vector<ScoreJob> jobs;
  jobs.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    jobs.push_back({&ex, &candidates, bounds[s], bounds[s + 1], k});
  }
  std::vector<std::vector<RankEntry>> runs;
  const Status st = backend_->ScoreTopK(jobs, &runs);
  SEQFM_CHECK(st.ok()) << "ShardedPredictor: local backend failed: "
                       << st.ToString();
  return MergeSortedRuns(runs, k);
}

}  // namespace serve
}  // namespace seqfm
