#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "serve/backend.h"
#include "serve/shard.h"
#include "util/logging.h"

namespace seqfm {
namespace serve {

BatchServer::BatchServer(Predictor* predictor, BatchServerOptions options)
    : predictor_(predictor), options_(options) {
  SEQFM_CHECK(predictor_ != nullptr) << "BatchServer: null predictor";
  SEQFM_CHECK_GT(options_.max_wave_requests, 0u);
  SEQFM_CHECK_GT(options_.num_shards, 0u);
  backend_ = std::make_unique<LocalShardBackend>(
      predictor_, LocalShardBackendOptions{options_.micro_batch});
  dispatcher_ = std::thread([this]() { DispatchLoop(); });
}

BatchServer::~BatchServer() { Shutdown(); }

void BatchServer::Shutdown() {
  {
    util::OrderedMutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  // call_once: concurrent Shutdown callers (or Shutdown racing the
  // destructor) must not both join the dispatcher; late callers block here
  // until the first join completes, so "after Shutdown returns, all admitted
  // futures are resolved" holds for every caller.
  std::call_once(join_once_, [this]() {
    dispatcher_.join();  // DispatchLoop drains the queue before returning
  });
}

std::future<std::vector<ScoredItem>> BatchServer::Submit(
    const data::SequenceExample& ex, std::vector<int32_t> candidates,
    size_t k) {
  // std::promise is move-only but DoneCallback must be copyable; shared_ptr
  // bridges the two.
  auto promise = std::make_shared<std::promise<std::vector<ScoredItem>>>();
  std::future<std::vector<ScoredItem>> result = promise->get_future();
  const AdmitResult admit =
      TrySubmit(ex, std::move(candidates), k,
                [promise](std::vector<ScoredItem> items) {
                  promise->set_value(std::move(items));
                });
  switch (admit) {
    case AdmitResult::kAdmitted:
      break;
    case AdmitResult::kOverloaded:
      promise->set_exception(std::make_exception_ptr(std::runtime_error(
          "BatchServer::Submit overloaded: queue at max_queue_requests")));
      break;
    case AdmitResult::kShutdown:
      // Lost the race with Shutdown: the dispatcher may already have drained
      // past us (or exited), so enqueueing could strand the promise and
      // deadlock the caller's get(). Fail the future cleanly instead.
      promise->set_exception(std::make_exception_ptr(
          std::runtime_error("BatchServer::Submit after shutdown")));
      break;
  }
  return result;
}

BatchServer::AdmitResult BatchServer::TrySubmit(
    const data::SequenceExample& ex, std::vector<int32_t> candidates, size_t k,
    DoneCallback done) {
  Request req;
  req.ex = ex;
  req.candidates = std::move(candidates);
  req.k = k;
  req.done = std::move(done);
  {
    util::OrderedMutexLock lock(mu_);
    if (shutdown_) return AdmitResult::kShutdown;
    if (options_.max_queue_requests > 0 &&
        queue_.size() >= options_.max_queue_requests) {
      // Shed instead of queueing unboundedly: the caller gets the rejection
      // synchronously and the callback is never retained, so an overloaded
      // server holds at most max_queue_requests requests' memory.
      ++stats_.requests_rejected;
      return AdmitResult::kOverloaded;
    }
    queue_.push_back(std::move(req));
    ++stats_.requests_admitted;
  }
  cv_.NotifyOne();
  return AdmitResult::kAdmitted;
}

Status BatchServer::ReloadCheckpoint(const std::string& path) {
  // serve_mu_ quiesces serving: the in-flight wave (if any) completes
  // against the old parameters, then the reload + cache invalidation run
  // with no scoring in progress.
  util::OrderedMutexLock serve_lock(serve_mu_);
  return predictor_->ReloadCheckpoint(path);
}

BatchServerStats BatchServer::stats() const {
  util::OrderedMutexLock lock(mu_);
  BatchServerStats out = stats_;
  out.scratch = core::GlobalScratchStats();
  return out;
}

size_t BatchServer::pending() const {
  util::OrderedMutexLock lock(mu_);
  return queue_.size();
}

void BatchServer::DispatchLoop() {
  for (;;) {
    std::vector<Request> wave;
    {
      util::OrderedMutexLock lock(mu_);
      cv_.Wait(mu_, [this]() SEQFM_REQUIRES(mu_) {
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutdown with nothing left to drain
      const size_t take = std::min(queue_.size(), options_.max_wave_requests);
      wave.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        wave.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.waves;
      stats_.largest_wave = std::max<uint64_t>(stats_.largest_wave, take);
    }
    util::OrderedMutexLock serve_lock(serve_mu_);
    ServeWave(&wave);
  }
}

void BatchServer::ServeWave(std::vector<Request>* wave) {
  const size_t num_requests = wave->size();
  const size_t num_shards = options_.num_shards;

  // Every (request, shard) of the wave is one ScoreJob on the shared
  // backend seam (serve/backend.h). The LocalShardBackend reproduces the
  // wave semantics this method used to inline: unique (user, history)
  // contexts resolved once per wave across requests, then one fused
  // ParallelFor over every (job, chunk) task — all pool threads busy
  // regardless of per-request catalog size — reduced into one bounded
  // top-K heap per job, so the wave holds requests * shards * k retained
  // entries plus one chunk-local score buffer per pool thread, never a
  // full score vector.
  std::vector<ScoreJob> jobs;
  std::vector<size_t> job_request;  // job index -> wave request index
  jobs.reserve(num_requests * num_shards);
  job_request.reserve(num_requests * num_shards);
  for (size_t r = 0; r < num_requests; ++r) {
    const Request& req = (*wave)[r];
    const size_t total = req.candidates.size();
    if (total == 0 || req.k == 0) continue;
    const std::vector<size_t> bounds =
        ShardedCatalog::Bounds(total, num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      jobs.push_back({&req.ex, &req.candidates, bounds[s], bounds[s + 1],
                      std::min(req.k, total)});
      job_request.push_back(r);
    }
  }
  std::vector<std::vector<RankEntry>> runs;
  const Status st = backend_->ScoreTopK(jobs, &runs);
  SEQFM_CHECK(st.ok()) << "BatchServer: local backend failed: "
                       << st.ToString();

  // Cross-shard merge per request and callback delivery. The served
  // counter is published first so a client that observed its result arrive
  // always sees its request counted.
  std::vector<std::vector<std::vector<RankEntry>>> request_runs(num_requests);
  for (size_t j = 0; j < jobs.size(); ++j) {
    request_runs[job_request[j]].push_back(std::move(runs[j]));
  }
  {
    util::OrderedMutexLock lock(mu_);
    stats_.requests_served += num_requests;
  }
  for (size_t r = 0; r < num_requests; ++r) {
    Request& req = (*wave)[r];
    req.done(request_runs[r].empty() ? std::vector<ScoredItem>{}
                                     : MergeSortedRuns(request_runs[r], req.k));
  }
}

}  // namespace serve
}  // namespace seqfm
