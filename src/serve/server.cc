#include "serve/server.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "serve/shard.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace serve {

BatchServer::BatchServer(Predictor* predictor, BatchServerOptions options)
    : predictor_(predictor), options_(options) {
  SEQFM_CHECK(predictor_ != nullptr) << "BatchServer: null predictor";
  SEQFM_CHECK_GT(options_.max_wave_requests, 0u);
  SEQFM_CHECK_GT(options_.num_shards, 0u);
  dispatcher_ = std::thread([this]() { DispatchLoop(); });
}

BatchServer::~BatchServer() { Shutdown(); }

void BatchServer::Shutdown() {
  {
    util::OrderedMutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  // call_once: concurrent Shutdown callers (or Shutdown racing the
  // destructor) must not both join the dispatcher; late callers block here
  // until the first join completes, so "after Shutdown returns, all admitted
  // futures are resolved" holds for every caller.
  std::call_once(join_once_, [this]() {
    dispatcher_.join();  // DispatchLoop drains the queue before returning
  });
}

std::future<std::vector<ScoredItem>> BatchServer::Submit(
    const data::SequenceExample& ex, std::vector<int32_t> candidates,
    size_t k) {
  // std::promise is move-only but DoneCallback must be copyable; shared_ptr
  // bridges the two.
  auto promise = std::make_shared<std::promise<std::vector<ScoredItem>>>();
  std::future<std::vector<ScoredItem>> result = promise->get_future();
  const AdmitResult admit =
      TrySubmit(ex, std::move(candidates), k,
                [promise](std::vector<ScoredItem> items) {
                  promise->set_value(std::move(items));
                });
  switch (admit) {
    case AdmitResult::kAdmitted:
      break;
    case AdmitResult::kOverloaded:
      promise->set_exception(std::make_exception_ptr(std::runtime_error(
          "BatchServer::Submit overloaded: queue at max_queue_requests")));
      break;
    case AdmitResult::kShutdown:
      // Lost the race with Shutdown: the dispatcher may already have drained
      // past us (or exited), so enqueueing could strand the promise and
      // deadlock the caller's get(). Fail the future cleanly instead.
      promise->set_exception(std::make_exception_ptr(
          std::runtime_error("BatchServer::Submit after shutdown")));
      break;
  }
  return result;
}

BatchServer::AdmitResult BatchServer::TrySubmit(
    const data::SequenceExample& ex, std::vector<int32_t> candidates, size_t k,
    DoneCallback done) {
  Request req;
  req.ex = ex;
  req.candidates = std::move(candidates);
  req.k = k;
  req.done = std::move(done);
  {
    util::OrderedMutexLock lock(mu_);
    if (shutdown_) return AdmitResult::kShutdown;
    if (options_.max_queue_requests > 0 &&
        queue_.size() >= options_.max_queue_requests) {
      // Shed instead of queueing unboundedly: the caller gets the rejection
      // synchronously and the callback is never retained, so an overloaded
      // server holds at most max_queue_requests requests' memory.
      ++stats_.requests_rejected;
      return AdmitResult::kOverloaded;
    }
    queue_.push_back(std::move(req));
    ++stats_.requests_admitted;
  }
  cv_.NotifyOne();
  return AdmitResult::kAdmitted;
}

Status BatchServer::ReloadCheckpoint(const std::string& path) {
  // serve_mu_ quiesces serving: the in-flight wave (if any) completes
  // against the old parameters, then the reload + cache invalidation run
  // with no scoring in progress.
  util::OrderedMutexLock serve_lock(serve_mu_);
  return predictor_->ReloadCheckpoint(path);
}

BatchServerStats BatchServer::stats() const {
  util::OrderedMutexLock lock(mu_);
  BatchServerStats out = stats_;
  out.scratch = core::GlobalScratchStats();
  return out;
}

size_t BatchServer::pending() const {
  util::OrderedMutexLock lock(mu_);
  return queue_.size();
}

void BatchServer::DispatchLoop() {
  for (;;) {
    std::vector<Request> wave;
    {
      util::OrderedMutexLock lock(mu_);
      cv_.Wait(mu_, [this]() SEQFM_REQUIRES(mu_) {
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutdown with nothing left to drain
      const size_t take = std::min(queue_.size(), options_.max_wave_requests);
      wave.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        wave.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.waves;
      stats_.largest_wave = std::max<uint64_t>(stats_.largest_wave, take);
    }
    util::OrderedMutexLock serve_lock(serve_mu_);
    ServeWave(&wave);
  }
}

void BatchServer::ServeWave(std::vector<Request>* wave) {
  const size_t num_requests = wave->size();
  const size_t chunk_size = options_.micro_batch > 0
                                ? options_.micro_batch
                                : predictor_->options().micro_batch;

  // Phase 1 (context path only): resolve each unique (user, history) context
  // once per wave. The map dedupes duplicate users inside the wave before
  // they even reach the ContextCache, so a cold cache never computes the
  // same context twice in one wave; groups resolve concurrently on the pool.
  std::vector<Predictor::ContextPtr> contexts(num_requests);
  if (predictor_->context_path_active()) {
    std::map<std::pair<int32_t, std::vector<int32_t>>, std::vector<size_t>>
        groups;
    for (size_t r = 0; r < num_requests; ++r) {
      if ((*wave)[r].candidates.empty() || (*wave)[r].k == 0) continue;
      groups[{(*wave)[r].ex.user, (*wave)[r].ex.history}].push_back(r);
    }
    std::vector<const std::vector<size_t>*> group_list;
    group_list.reserve(groups.size());
    for (const auto& [key, members] : groups) group_list.push_back(&members);
    util::ParallelFor(group_list.size(), 1, [&](size_t g0, size_t g1) {
      for (size_t g = g0; g < g1; ++g) {
        const std::vector<size_t>& members = *group_list[g];
        const Predictor::ContextPtr ctx =
            predictor_->AcquireContext((*wave)[members.front()].ex);
        for (size_t r : members) contexts[r] = ctx;
      }
    });
  }

  // Phase 2: one fused ParallelFor over every (request, shard, chunk) task
  // of the wave — the multi-user scoring wave that keeps all pool threads
  // busy regardless of per-request catalog size. Each request's candidates
  // are partitioned into num_shards contiguous shards (chunks never
  // straddle a boundary) and reduced into per-shard bounded top-K heaps, so
  // the wave holds requests * shards * k retained entries plus one
  // chunk-local score buffer per pool thread — never a full score vector.
  const size_t num_shards = options_.num_shards;
  struct WaveTask {
    size_t request;
    ShardChunk chunk;
  };
  std::vector<WaveTask> tasks;
  std::vector<std::vector<TopKHeap>> heaps(num_requests);
  for (size_t r = 0; r < num_requests; ++r) {
    const size_t total = (*wave)[r].candidates.size();
    if (total == 0 || (*wave)[r].k == 0) continue;
    heaps[r].assign(num_shards, TopKHeap(std::min((*wave)[r].k, total)));
    for (const ShardChunk& chunk : MakeShardChunks(
             ShardedCatalog::Bounds(total, num_shards), chunk_size)) {
      tasks.push_back({r, chunk});
    }
  }
  // Chunk tasks of the same (request, shard) may run concurrently; its heap
  // is fed under a mutex, and the retained set is push-order independent
  // (RankBefore is a strict total order), so results are deterministic for
  // any pool schedule.
  std::vector<std::mutex> heap_mu(num_requests * num_shards);
  util::ParallelFor(tasks.size(), 1, [&](size_t t0, size_t t1) {
    std::vector<float> chunk_scores;
    for (size_t t = t0; t < t1; ++t) {
      const WaveTask& task = tasks[t];
      const Request& req = (*wave)[task.request];
      ScoreChunkIntoHeap(*predictor_, contexts[task.request].get(), req.ex,
                         req.candidates, task.chunk, &chunk_scores,
                         &heap_mu[task.request * num_shards + task.chunk.shard],
                         &heaps[task.request][task.chunk.shard]);
    }
  });

  // Phase 3: per-request cross-shard merge and callback delivery. The
  // served counter is published first so a client that observed its result
  // arrive always sees its request counted.
  {
    util::OrderedMutexLock lock(mu_);
    stats_.requests_served += num_requests;
  }
  for (size_t r = 0; r < num_requests; ++r) {
    Request& req = (*wave)[r];
    req.done(heaps[r].empty() ? std::vector<ScoredItem>{}
                              : MergeTopK(heaps[r], req.k));
  }
}

}  // namespace serve
}  // namespace seqfm
