#ifndef SEQFM_SERVE_CHECKPOINT_H_
#define SEQFM_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace seqfm {

namespace nn {
class Module;
}  // namespace nn

namespace serve {

/// Element type tag stored per tensor. Only f32 exists today; the tag is in
/// the format so readers can reject checkpoints from future dtypes instead
/// of misinterpreting their payload.
enum class CheckpointDtype : uint32_t {
  kFloat32 = 1,
};

/// One entry of the checkpoint manifest: the qualified parameter name as
/// produced by nn::Module::NamedParameters ("shared_ffn.w0", ...), its dtype
/// and its shape.
struct CheckpointEntry {
  std::string name;
  CheckpointDtype dtype = CheckpointDtype::kFloat32;
  std::vector<size_t> shape;

  size_t num_elements() const {
    size_t n = 1;
    for (size_t d : shape) n *= d;
    return n;
  }
};

/// Parsed header + manifest of a checkpoint file (no payload data).
struct CheckpointManifest {
  uint32_t version = 0;
  std::vector<CheckpointEntry> entries;

  size_t total_parameters() const {
    size_t n = 0;
    for (const auto& e : entries) n += e.num_elements();
    return n;
  }
};

/// \brief Binary serialization of nn::Module parameter trees.
///
/// Format (little-endian, version 2):
///   uint32 magic 'SQFM' | uint32 version | uint64 tensor count
///   per tensor: uint32 name_len | name bytes | uint32 dtype | uint32 rank |
///               uint64 dims[rank] | float payload[prod(dims)]
///   footer: uint64 FNV-1a hash over every payload byte, in file order.
///
/// All failure paths (missing file, bad magic, unsupported version, name or
/// shape mismatch, truncation, payload corruption) return util::Status — a
/// serving process must never abort because a checkpoint on disk is bad.
/// Null module pointers are programmer errors and SEQFM_CHECK-fail.
class Checkpoint {
 public:
  /// Writes every named parameter of \p module to \p path, atomically and
  /// durably: the bytes go to a sibling ".tmp" file which is fsynced, then
  /// renamed over \p path, then the parent directory is fsynced — so after
  /// Save returns OK the checkpoint survives both a crash of this process
  /// and a power loss, and a failure at any step (reported as IoError)
  /// leaves the previous checkpoint at \p path untouched.
  static Status Save(const nn::Module& module, const std::string& path);

  /// Restores parameters in place. The module must have been constructed
  /// with the same architecture: names, order, and shapes must match the
  /// manifest exactly.
  static Status Load(nn::Module* module, const std::string& path);

  /// Reads header + manifest without touching the payload (beyond seeking).
  static Result<CheckpointManifest> Inspect(const std::string& path);

  /// Format constants, exposed for tests that craft corrupted files.
  static constexpr uint32_t kMagic = 0x4d465153;  // "SQFM" little-endian
  static constexpr uint32_t kVersion = 2;
};

/// FNV-1a fingerprint over every parameter payload byte of \p module, in
/// NamedParameters order — by construction the same number Checkpoint::Save
/// writes as its footer hash. This is the model_version of the distributed
/// serving tier: replicas announce it in the RPC handshake and stamp it on
/// every shard response, and a coordinator refuses to merge rankings across
/// differing versions, so two replicas that loaded the same checkpoint file
/// agree on the fingerprint without ever talking to each other.
uint64_t ParameterVersion(const nn::Module& module);

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_CHECKPOINT_H_
