#ifndef SEQFM_SERVE_RPC_SERVER_H_
#define SEQFM_SERVE_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/ordered_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace serve {

struct RpcServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port (read it
  /// back from port() after Start).
  uint16_t port = 0;
  /// Listen address. The loopback default serves same-host clients only;
  /// "0.0.0.0" exposes the server to the network.
  std::string bind_address = "127.0.0.1";
  /// Frames declaring a payload above this fail their connection (framing
  /// validation happens before any allocation sized by the peer's bytes).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Write backpressure: once a connection's unflushed response bytes exceed
  /// this, the server stops READING that connection (its requests wait in
  /// kernel buffers) until the client drains below half of it — a slow
  /// reader throttles itself instead of growing server memory.
  size_t max_write_buffer_bytes = 4u << 20;
  /// Connections held concurrently; accepts beyond this are closed at once.
  size_t max_connections = 1024;
  /// Graceful-drain deadline: at Shutdown, connections get this long to
  /// drain their pending response bytes before being force-closed, so a
  /// stalled client can never wedge Shutdown.
  int64_t drain_timeout_ms = 5000;
};

/// Counters exposed by RpcServer::stats(). "Shed" mirrors the BatchServer's
/// requests_rejected for requests that arrived over this server.
struct RpcServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t requests_ok = 0;        // admitted, served, response enqueued
  uint64_t requests_shed = 0;      // answered OVERLOADED at admission
  uint64_t requests_rejected_shutdown = 0;  // answered SHUTTING_DOWN
  uint64_t protocol_errors = 0;    // framing/decoding failures (conn closed)
  uint64_t backpressure_pauses = 0;
};

/// \brief Single-threaded epoll TCP front end over a serve::BatchServer.
///
/// The network tier of the serving stack: one event-loop thread owns a
/// level-triggered epoll set (listener + eventfd + every connection),
/// decodes length-prefixed request frames (serve/protocol.h), and feeds
/// them to the BatchServer's wave dispatcher through the non-blocking
/// TrySubmit path. Scoring happens on the BatchServer's dispatcher + the
/// shared thread pool as before — the loop thread only moves bytes — and a
/// completed wave hands its responses back to the loop through an eventfd
/// wakeup, so the loop never blocks on scoring and scoring never touches a
/// socket.
///
/// Admission is the BatchServer's bounded queue: a request hitting
/// max_queue_requests is answered OVERLOADED immediately (load shedding),
/// one arriving after shutdown began is answered SHUTTING_DOWN. Served
/// rankings are bit-identical to calling BatchServer::Submit in process —
/// the wire adds framing, never arithmetic.
///
/// Robustness contract: a malformed frame (bad magic, oversized declared
/// length, inconsistent element counts) fails that CONNECTION, never the
/// process; a client disconnecting mid-request only drops its own
/// responses; a slow reader is throttled by write backpressure. Shutdown()
/// (idempotent, called by the destructor) stops accepting, drains every
/// admitted request through BatchServer::Shutdown, flushes pending
/// responses (bounded by drain_timeout_ms), and joins the loop.
///
/// The BatchServer is borrowed and must outlive this object; Shutdown()
/// shuts the BatchServer down as part of the drain.
class RpcServer {
 public:
  explicit RpcServer(BatchServer* batch, RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens, and starts the event-loop thread. Returns IoError when
  /// the socket/bind/listen/epoll setup fails (port in use, bad address).
  Status Start();

  /// Graceful drain: stop accepting, serve everything admitted (via
  /// BatchServer::Shutdown), flush responses, close connections, join the
  /// loop. Idempotent and safe to call concurrently with itself.
  void Shutdown();

  /// The bound port (the kernel's pick when options.port was 0). Valid
  /// after a successful Start().
  uint16_t port() const { return port_; }

  RpcServerStats stats() const;

  /// Connections currently held by the loop (diagnostic).
  size_t open_connections() const;

 private:
  struct Connection;
  struct Completion {
    uint64_t conn_id = 0;
    std::string wire;  // one encoded response frame
  };

  void Loop();
  void AcceptAll();
  void HandleConnEvent(uint64_t conn_id, uint32_t events);
  /// Reads until EAGAIN, feeding the connection's FrameReader. Returns
  /// false when the connection was closed.
  bool HandleRead(Connection* conn);
  /// Decodes and dispatches every complete buffered frame. Returns false
  /// when a framing/decoding error closed the connection.
  bool ProcessFrames(Connection* conn);
  void HandleRequest(Connection* conn, RpcRequest req);
  /// Called on the BatchServer dispatcher thread when a wave completes.
  void OnWaveComplete(uint64_t conn_id, uint64_t request_id,
                      std::vector<ScoredItem> items);
  /// Appends one encoded frame to the connection's write buffer, attempts a
  /// synchronous flush, and applies backpressure. Returns false when the
  /// flush failed and closed the connection.
  bool EnqueueResponse(Connection* conn, const std::string& wire);
  /// Writes buffered bytes until EAGAIN/empty; rearms EPOLLOUT/EPOLLIN as
  /// needed. Returns false when a write error closed the connection.
  bool FlushWrites(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConn(uint64_t conn_id);
  void DrainCompletions();
  void SignalWakeup();

  BatchServer* batch_;
  RpcServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_;

  /// Epoll-thread-only state: id -> connection. Other threads refer to
  /// connections by id (via completions_), never by pointer, so a close is
  /// a plain erase here.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = eventfd

  /// Ranked above BatchServer::serve_mu_: OnWaveComplete runs on the
  /// dispatcher thread with serve_mu_ held and must enqueue completions.
  mutable util::OrderedMutex mu_{"RpcServer::mu_",
                                 util::lock_rank::kRpcCompletions};
  std::vector<Completion> completions_ SEQFM_GUARDED_BY(mu_);
  RpcServerStats stats_ SEQFM_GUARDED_BY(mu_);
  std::atomic<size_t> open_connections_{0};

  std::atomic<bool> stopping_{false};  // stop accepting new connections
  std::atomic<bool> draining_{false};  // flush + close + exit the loop

  /// Serializes Shutdown callers (idempotence + single join). Outermost
  /// rank: Shutdown holds it across BatchServer::Shutdown (which takes the
  /// batch queue lock to drain).
  util::OrderedMutex shutdown_mu_{"RpcServer::shutdown_mu_",
                                  util::lock_rank::kRpcShutdown};
  bool started_ SEQFM_GUARDED_BY(shutdown_mu_) = false;
  bool joined_ SEQFM_GUARDED_BY(shutdown_mu_) = false;
};

/// \brief Minimal blocking client for the RPC protocol (tests, examples,
/// and the parity legs of bench_loadgen; the open-loop load generator runs
/// its own non-blocking loop instead).
///
/// Responses on a connection are matched by request id — a shed request is
/// answered ahead of earlier admitted ones — so Call() discards responses
/// to other ids (none exist when requests are strictly serial).
class RpcClient {
 public:
  RpcClient() = default;
  ~RpcClient() { Close(); }

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Connects a blocking TCP socket. \p host must be a numeric IPv4 address
  /// ("127.0.0.1").
  Status Connect(const std::string& host, uint16_t port);

  /// Writes one request frame (blocking until fully written).
  Status Send(const RpcRequest& req);

  /// Blocks until the next complete response frame arrives. IoError when
  /// the server closes the connection first.
  Status ReadResponse(RpcResponse* out);

  /// Send + read until the response matching req.id arrives.
  Status Call(const RpcRequest& req, RpcResponse* out);

  void Close();
  bool connected() const { return fd_ >= 0; }
  /// The raw socket, for tests that need to write bytes below the client
  /// abstraction (split frames, garbage).
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_RPC_SERVER_H_
