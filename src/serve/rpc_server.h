#ifndef SEQFM_SERVE_RPC_SERVER_H_
#define SEQFM_SERVE_RPC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "util/ordered_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace serve {

struct RpcServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port (read it
  /// back from port() after Start).
  uint16_t port = 0;
  /// Listen address. The loopback default serves same-host clients only;
  /// "0.0.0.0" exposes the server to the network.
  std::string bind_address = "127.0.0.1";
  /// Frames declaring a payload above this fail their connection (framing
  /// validation happens before any allocation sized by the peer's bytes).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Write backpressure: once a connection's unflushed response bytes exceed
  /// this, the server stops READING that connection (its requests wait in
  /// kernel buffers) until the client drains below half of it — a slow
  /// reader throttles itself instead of growing server memory.
  size_t max_write_buffer_bytes = 4u << 20;
  /// Connections held concurrently; accepts beyond this are closed at once.
  size_t max_connections = 1024;
  /// Graceful-drain deadline: at Shutdown, connections get this long to
  /// drain their pending response bytes before being force-closed, so a
  /// stalled client can never wedge Shutdown.
  int64_t drain_timeout_ms = 5000;
  /// Replica mode: when catalog_size > 0 the server also answers
  /// shard-scoped requests (kShardRequestFrame) over its owned slice
  /// [Bounds(catalog_size, num_shards)[shard_index],
  ///  Bounds(...)[shard_index + 1]) of the identity catalog
  /// {0, ..., catalog_size - 1}, and advertises kRpcCapShardScoring plus
  /// the slice bounds in its HELLO_ACK. Shard requests outside the owned
  /// slice are answered BAD_REQUEST — a misrouted coordinator gets a
  /// precise rejection, never a silently wrong ranking.
  uint64_t catalog_size = 0;
  uint32_t shard_index = 0;
  uint32_t num_shards = 1;
  /// Parameter fingerprint announced in the HELLO_ACK and stamped on every
  /// shard response (see serve::ParameterVersion). A coordinator refuses to
  /// merge entries scored under different versions, so a mid-fleet
  /// checkpoint swap degrades to PARTIAL instead of mixing models.
  uint64_t model_version = 0;
};

/// Counters exposed by RpcServer::stats(). "Shed" mirrors the BatchServer's
/// requests_rejected for requests that arrived over this server.
struct RpcServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t requests_ok = 0;        // admitted, served, response enqueued
  uint64_t requests_shed = 0;      // answered OVERLOADED at admission
  uint64_t requests_rejected_shutdown = 0;  // answered SHUTTING_DOWN
  uint64_t requests_bad = 0;       // answered BAD_REQUEST (bad shard range)
  uint64_t protocol_errors = 0;    // framing/decoding failures (conn closed)
  uint64_t backpressure_pauses = 0;
  /// Requests blackholed by the `rpc.server.shard.drop` failpoint (chaos
  /// only; the slow-replica simulator). These ARE counted in
  /// frames_received, so under chaos the accounting invariant reads
  /// "ok + shed + rejected_shutdown + bad + dropped == frames_received".
  uint64_t requests_dropped = 0;
  /// HELLO handshakes accepted. Hello frames are deliberately NOT counted
  /// in frames_received, so the accounting invariant "requests_ok +
  /// requests_shed + requests_rejected_shutdown + requests_bad ==
  /// frames_received" keeps holding for request traffic.
  uint64_t handshakes_ok = 0;
};

/// \brief Single-threaded epoll TCP front end over a serve::BatchServer.
///
/// The network tier of the serving stack: one event-loop thread owns a
/// level-triggered epoll set (listener + eventfd + every connection),
/// decodes length-prefixed request frames (serve/protocol.h), and feeds
/// them to the BatchServer's wave dispatcher through the non-blocking
/// TrySubmit path. Scoring happens on the BatchServer's dispatcher + the
/// shared thread pool as before — the loop thread only moves bytes — and a
/// completed wave hands its responses back to the loop through an eventfd
/// wakeup, so the loop never blocks on scoring and scoring never touches a
/// socket.
///
/// Admission is the BatchServer's bounded queue: a request hitting
/// max_queue_requests is answered OVERLOADED immediately (load shedding),
/// one arriving after shutdown began is answered SHUTTING_DOWN. Served
/// rankings are bit-identical to calling BatchServer::Submit in process —
/// the wire adds framing, never arithmetic.
///
/// Robustness contract: a malformed frame (bad magic, oversized declared
/// length, inconsistent element counts) fails that CONNECTION, never the
/// process; a client disconnecting mid-request only drops its own
/// responses; a slow reader is throttled by write backpressure. Shutdown()
/// (idempotent, called by the destructor) stops accepting, drains every
/// admitted request through BatchServer::Shutdown, flushes pending
/// responses (bounded by drain_timeout_ms), and joins the loop.
///
/// The BatchServer is borrowed and must outlive this object; Shutdown()
/// shuts the BatchServer down as part of the drain.
class RpcServer {
 public:
  explicit RpcServer(BatchServer* batch, RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens, and starts the event-loop thread. Returns IoError when
  /// the socket/bind/listen/epoll setup fails (port in use, bad address).
  Status Start();

  /// Graceful drain: stop accepting, serve everything admitted (via
  /// BatchServer::Shutdown), flush responses, close connections, join the
  /// loop. Idempotent and safe to call concurrently with itself.
  void Shutdown();

  /// The bound port (the kernel's pick when options.port was 0). Valid
  /// after a successful Start().
  uint16_t port() const { return port_; }

  RpcServerStats stats() const;

  /// Connections currently held by the loop (diagnostic).
  size_t open_connections() const;

 private:
  struct Connection;
  struct Completion {
    uint64_t conn_id = 0;
    std::string wire;  // one encoded response frame
  };

  void Loop();
  void AcceptAll();
  void HandleConnEvent(uint64_t conn_id, uint32_t events);
  /// Reads until EAGAIN, feeding the connection's FrameReader. Returns
  /// false when the connection was closed.
  bool HandleRead(Connection* conn);
  /// Decodes and dispatches every complete buffered frame. Returns false
  /// when a framing/decoding error closed the connection.
  bool ProcessFrames(Connection* conn);
  /// Processes the connection's mandatory first frame. A well-formed HELLO
  /// with a matching protocol version is acked (status OK) and unlocks the
  /// connection for requests; anything else — a version mismatch, or a v1
  /// client sending a request first — is answered with a BAD_REQUEST ack
  /// naming the problem precisely, then the connection is closed. Returns
  /// false when the connection was closed.
  bool HandleHello(Connection* conn, const std::string& payload);
  void HandleRequest(Connection* conn, RpcRequest req);
  /// Replica mode: scores [req.begin, req.end) of the identity catalog
  /// through the BatchServer (same admission/shedding as slate requests)
  /// and answers with a shard response carrying raw scores.
  void HandleShardRequest(Connection* conn, RpcShardRequest req);
  /// Immediate non-OK shard response (bad range, shed, shutting down).
  void SendShardError(Connection* conn, uint64_t request_id, RpcStatus status);
  /// Called on the BatchServer dispatcher thread when a wave completes.
  void OnWaveComplete(uint64_t conn_id, uint64_t request_id,
                      std::vector<ScoredItem> items);
  /// Shard-request flavor of OnWaveComplete: re-labels the ScoredItems as
  /// RpcShardEntries (pos == item under the identity catalog) and stamps
  /// the model version.
  void OnShardComplete(uint64_t conn_id, uint64_t request_id,
                       std::vector<ScoredItem> items);
  /// Appends one encoded frame to the connection's write buffer, attempts a
  /// synchronous flush, and applies backpressure. Returns false when the
  /// flush failed and closed the connection.
  bool EnqueueResponse(Connection* conn, const std::string& wire);
  /// Writes buffered bytes until EAGAIN/empty; rearms EPOLLOUT/EPOLLIN as
  /// needed. Returns false when a write error closed the connection.
  bool FlushWrites(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConn(uint64_t conn_id);
  void DrainCompletions();
  void SignalWakeup();

  BatchServer* batch_;
  RpcServerOptions options_;
  /// Owned identity-catalog slice in replica mode (both 0 otherwise);
  /// computed once from ShardedCatalog::Bounds in the constructor.
  uint64_t shard_begin_ = 0;
  uint64_t shard_end_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_;

  /// Epoll-thread-only state: id -> connection. Other threads refer to
  /// connections by id (via completions_), never by pointer, so a close is
  /// a plain erase here.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = eventfd

  /// Ranked above BatchServer::serve_mu_: OnWaveComplete runs on the
  /// dispatcher thread with serve_mu_ held and must enqueue completions.
  mutable util::OrderedMutex mu_{"RpcServer::mu_",
                                 util::lock_rank::kRpcCompletions};
  std::vector<Completion> completions_ SEQFM_GUARDED_BY(mu_);
  RpcServerStats stats_ SEQFM_GUARDED_BY(mu_);
  std::atomic<size_t> open_connections_{0};

  std::atomic<bool> stopping_{false};  // stop accepting new connections
  std::atomic<bool> draining_{false};  // flush + close + exit the loop

  /// Serializes Shutdown callers (idempotence + single join). Outermost
  /// rank: Shutdown holds it across BatchServer::Shutdown (which takes the
  /// batch queue lock to drain).
  util::OrderedMutex shutdown_mu_{"RpcServer::shutdown_mu_",
                                  util::lock_rank::kRpcShutdown};
  bool started_ SEQFM_GUARDED_BY(shutdown_mu_) = false;
  bool joined_ SEQFM_GUARDED_BY(shutdown_mu_) = false;
};

/// Client-side knobs. All-zero defaults reproduce the fully blocking v1
/// behavior (no timeouts).
struct RpcClientOptions {
  /// Bound on establishing the connection INCLUDING the handshake: TCP
  /// connect + HELLO/HELLO_ACK. 0 blocks indefinitely. A server that
  /// accepts but never answers (hung replica, full accept backlog) turns
  /// into a timed-out Status instead of a hang.
  int64_t connect_timeout_ms = 0;
  /// Per-syscall bound on Send/Read after the handshake (SO_SNDTIMEO /
  /// SO_RCVTIMEO). 0 blocks indefinitely. The coordinator sets this to its
  /// per-replica budget so a replica dying mid-call can never wedge a merge.
  int64_t io_timeout_ms = 0;
  /// Capability bits announced in the HELLO.
  uint32_t capabilities = 0;
};

/// \brief Minimal blocking client for the RPC protocol (tests, examples,
/// the coordinator's replica channel, and the parity legs of bench_loadgen;
/// the open-loop load generator runs its own non-blocking loop instead).
///
/// Connect() performs the protocol-v2 handshake transparently: it sends a
/// HELLO and fails with a precise error if the server answers with a
/// non-OK ack (version mismatch) or closes without answering (a pre-v2
/// server). The accepted ack — the server's model version and, for
/// replicas, its owned catalog slice — is kept readable via server_info().
///
/// Responses on a connection are matched by request id — a shed request is
/// answered ahead of earlier admitted ones — so Call() discards responses
/// to other ids (none exist when requests are strictly serial).
class RpcClient {
 public:
  RpcClient() = default;
  ~RpcClient() { Close(); }

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Connects a blocking TCP socket and performs the HELLO handshake.
  /// \p host must be a numeric IPv4 address ("127.0.0.1"). With
  /// options.connect_timeout_ms set, a server that cannot be reached — or
  /// accepts but never completes the handshake — yields a timed-out
  /// IoError within the bound instead of blocking forever.
  Status Connect(const std::string& host, uint16_t port,
                 RpcClientOptions options = {});

  /// Writes one request frame (blocking until fully written, bounded by
  /// io_timeout_ms when set).
  Status Send(const RpcRequest& req);

  /// Blocks until the next complete response frame arrives. IoError when
  /// the server closes the connection first or io_timeout_ms expires.
  Status ReadResponse(RpcResponse* out);

  /// Send + read until the response matching req.id arrives.
  Status Call(const RpcRequest& req, RpcResponse* out);

  /// Shard-scoped flavors of Send/ReadResponse/Call (replica servers only).
  Status SendShard(const RpcShardRequest& req);
  Status ReadShardResponse(RpcShardResponse* out);
  Status CallShard(const RpcShardRequest& req, RpcShardResponse* out);

  void Close();
  bool connected() const { return fd_ >= 0; }
  /// The server's accepted HELLO_ACK (valid after a successful Connect):
  /// protocol version, capabilities, model version, owned catalog slice.
  const RpcHelloAck& server_info() const { return server_info_; }
  /// The raw socket, for tests that need to write bytes below the client
  /// abstraction (split frames, garbage).
  int fd() const { return fd_; }

 private:
  /// Blocking full write of an encoded frame; EAGAIN (send timeout) is a
  /// timed-out IoError.
  Status SendWire(const std::string& wire);
  /// Reads until one complete frame payload is buffered.
  Status ReadFrame(std::string* payload);

  int fd_ = -1;
  int64_t io_timeout_ms_ = 0;
  FrameReader reader_;
  RpcHelloAck server_info_;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_RPC_SERVER_H_
