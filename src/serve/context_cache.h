#ifndef SEQFM_SERVE_CONTEXT_CACHE_H_
#define SEQFM_SERVE_CONTEXT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/seqfm.h"
#include "util/ordered_mutex.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace serve {

/// Counters and occupancy snapshot returned by ContextCache::stats().
struct ContextCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      // entries dropped to stay under the budget
  uint64_t invalidations = 0;  // Invalidate() calls (checkpoint reloads)
  size_t entries = 0;
  size_t bytes = 0;
  size_t byte_budget = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// \brief Byte-budgeted LRU cache of factored-serving SharedContexts, keyed
/// on (user_index, FNV-1a(history ids)).
///
/// The per-request candidate-invariant work of the factored SeqFM program —
/// the whole dynamic view plus the history-side cross projections — depends
/// only on who is asking and what they did, so repeated requests from the
/// same (user, history) can skip it entirely, the way an LLM server reuses a
/// session's KV cache. Keys hash with util::Fnv1a64 but lookups compare the
/// full (user, ids) key, so a hash collision can never serve the wrong
/// context and cached scores stay bit-for-bit identical to Model::Score.
///
/// Thread-safe: lookups/inserts lock internally, and the context compute
/// runs outside the lock (two threads racing on the same cold key may both
/// compute it; the first insert wins and the loser's result is still
/// returned to its caller). Invalidate() must be called whenever the
/// underlying model parameters change (serve::Predictor::ReloadCheckpoint
/// and serve::BatchServer::ReloadCheckpoint do this), because contexts hold
/// tensors derived from the parameters at compute time.
class ContextCache {
 public:
  using ContextPtr = std::shared_ptr<const core::SharedContext>;

  /// \p byte_budget caps the resident bytes of cached contexts (ids + entry
  /// overhead included). A context larger than the whole budget is returned
  /// but never cached. Budget 0 caches nothing (every call is a miss).
  explicit ContextCache(size_t byte_budget);

  ContextCache(const ContextCache&) = delete;
  ContextCache& operator=(const ContextCache&) = delete;

  /// Returns the cached context for (user_index, dynamic_ids), or runs
  /// \p compute, caches the result (evicting LRU entries past the budget)
  /// and returns it.
  ContextPtr GetOrCompute(int32_t user_index,
                          const std::vector<int32_t>& dynamic_ids,
                          const std::function<ContextPtr()>& compute);

  /// Drops every entry. Call after any parameter mutation (checkpoint
  /// reload, training step) — cached contexts are stale from that point.
  void Invalidate();

  ContextCacheStats stats() const;

  /// The cache key hash: FNV-1a over the user index then the id payload.
  /// Exposed so tests can pin the key composition.
  static uint64_t KeyHash(int32_t user_index,
                          const std::vector<int32_t>& dynamic_ids);

 private:
  struct Entry {
    int32_t user_index;
    std::vector<int32_t> dynamic_ids;
    ContextPtr context;
    size_t bytes;
    uint64_t hash;
  };
  using LruList = std::list<Entry>;

  /// Returns the entry for the full key or lru_.end(). Caller holds mu_.
  LruList::iterator Find(uint64_t hash, int32_t user_index,
                         const std::vector<int32_t>& dynamic_ids)
      SEQFM_REQUIRES(mu_);
  /// Drops the least-recently-used entry. Caller holds mu_.
  void EvictBack() SEQFM_REQUIRES(mu_);

  const size_t byte_budget_;
  mutable util::OrderedMutex mu_{"ContextCache::mu_",
                                 util::lock_rank::kContextCache};
  LruList lru_ SEQFM_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_multimap<uint64_t, LruList::iterator> index_
      SEQFM_GUARDED_BY(mu_);
  size_t bytes_ SEQFM_GUARDED_BY(mu_) = 0;
  uint64_t hits_ SEQFM_GUARDED_BY(mu_) = 0;
  uint64_t misses_ SEQFM_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ SEQFM_GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ SEQFM_GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_CONTEXT_CACHE_H_
