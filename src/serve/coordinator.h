#ifndef SEQFM_SERVE_COORDINATOR_H_
#define SEQFM_SERVE_COORDINATOR_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "serve/backend.h"
#include "serve/predictor.h"
#include "serve/shard.h"
#include "util/ordered_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace serve {

struct CoordinatorOptions {
  /// Per-replica budget for one request's scoring round-trip. Applied as the
  /// io timeout of replicas added via AddReplica; backends added via
  /// AddBackend bound their own calls. A replica that blows the budget is
  /// treated as failed for that request (PARTIAL merge), never waited on
  /// past its socket timeout — the fan-out join cannot hang.
  int64_t replica_timeout_ms = 2000;
  /// Bound on AddReplica's TCP connect + protocol handshake.
  int64_t connect_timeout_ms = 1000;
  /// Circuit breaker: a member failing this many CONSECUTIVE attempts has
  /// its circuit opened — it is ejected from affinity routing until a
  /// half-open probe readmits it. Successes reset the streak.
  uint32_t max_consecutive_failures = 3;
  /// How long an opened circuit stays closed to traffic before the breaker
  /// goes HALF_OPEN and routes one live request through the member as a
  /// trial: success closes the circuit (full readmission), failure re-opens
  /// it for another window.
  int64_t circuit_open_ms = 500;
  /// Retry budget: failover attempts (attempt #2+ of a request on a shard)
  /// are allowed only while
  ///   retries_spent < retry_budget_ratio * first_attempts + burst.
  /// Under a healthy fleet the budget is never touched; under a mass outage
  /// retries are capped at ~ratio of real traffic instead of multiplying
  /// every request by the group size — retry storms cannot amplify an
  /// overload into a bigger one. The burst term keeps small fleets and cold
  /// starts from being starved of their first few failovers.
  double retry_budget_ratio = 0.1;
  uint32_t retry_budget_burst = 10;
};

/// Fleet-health and recovery counters (see Coordinator::stats). Monotonic
/// over the coordinator's lifetime; bench_loadgen reports them in --json so
/// the perf trajectory captures recovery cost, and the fault-free smoke leg
/// gates on retries == 0.
struct CoordinatorStats {
  uint64_t shard_attempts = 0;      // first attempts (one per shard request)
  uint64_t retries = 0;             // failover attempts actually made
  uint64_t retries_denied = 0;      // failovers blocked by the retry budget
  uint64_t circuit_opens = 0;       // CLOSED -> OPEN transitions
  uint64_t circuit_reopens = 0;     // HALF_OPEN probe failed -> OPEN again
  uint64_t circuit_closes = 0;      // probe succeeded -> CLOSED (readmitted)
  uint64_t half_open_probes = 0;    // trial requests routed to OPEN members
  uint64_t reconnects = 0;          // backend reconnections (aggregated)
  uint64_t reconnect_failures = 0;  // failed backend reconnect attempts
};

/// Outcome of one coordinated request.
struct CoordinatorResult {
  /// kOk when every shard contributed; kPartial when at least one replica
  /// failed (timeout, transport error, version drift) and the merge degraded
  /// to the shards that answered. A result with zero merged shards is still
  /// kPartial — an empty degraded ranking, not an error; transport-level
  /// failures that prevent even trying (not Ready) surface as Status from
  /// TopKAll instead.
  RpcStatus status = RpcStatus::kOk;
  std::vector<ScoredItem> items;
  /// Shards in the catalog partition / shards whose runs were merged.
  uint32_t shards_total = 0;
  uint32_t shards_merged = 0;
};

/// \brief Coordinator of a multi-replica serving fleet: fans a request out
/// over one replica per catalog shard, k-way merges the per-shard top-K runs
/// under serve::RankBefore, and degrades gracefully when replicas fail.
///
/// The fleet is a set of ScoringBackends, each owning one contiguous slice
/// of the identity catalog (ReplicaInfo). Multiple replicas may own the
/// same shard (replication for availability); Ready() groups them by shard
/// index and validates the fleet:
///   - every backend serves the same model_version, num_shards and
///     catalog_size (a coordinator never merges across model versions);
///   - every shard of the partition is covered by at least one replica;
///   - every replica's owned slice equals ShardedCatalog::Bounds at its
///     index, so the union of slices tiles the catalog exactly.
///
/// TopKAll scores all shards concurrently (one worker thread per shard) and
/// merges with the same MergeSortedRuns reduction the in-process sharded
/// path uses — so for an all-shards-healthy fleet the coordinator's ranking
/// is bit-identical to single-process ShardedPredictor::TopKAll over the
/// same catalog. Within a shard's replica group the first attempt is picked
/// by user affinity (FNV hash of the user id), keeping a given user's
/// context cached on one replica; on failure the worker fails over to the
/// group's other replicas before giving the shard up.
///
/// Thread-safe: concurrent TopKAll calls snapshot the fleet under mu_
/// (lock_rank::kCoordinator) and fan out lock-free; backends serialize
/// internally per their own contract.
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options = {});
  ~Coordinator() = default;
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Adds a backend with an externally supplied identity — the in-process
  /// form (LocalShardBackend over a slice-owning Predictor) and the test
  /// seam. The info must be internally consistent (slice within catalog).
  Status AddBackend(std::unique_ptr<ScoringBackend> backend,
                    const ReplicaInfo& info) SEQFM_EXCLUDES(mu_);

  /// Connects a RemoteReplicaBackend to a replica process and adds it under
  /// the identity the replica announced in its handshake.
  Status AddReplica(const std::string& host, uint16_t port)
      SEQFM_EXCLUDES(mu_);

  /// Validates the fleet and freezes the shard grouping. Must be called
  /// after the last Add* and before the first TopKAll; returns
  /// FailedPrecondition naming the first inconsistency otherwise.
  Status Ready() SEQFM_EXCLUDES(mu_);

  /// Scores \p ex against the whole catalog and fills \p out with the
  /// merged global top-k. Returns non-OK only for usage errors (not Ready);
  /// replica failures degrade to out->status == kPartial instead.
  Status TopKAll(const data::SequenceExample& ex, size_t k,
                 CoordinatorResult* out) SEQFM_EXCLUDES(mu_);

  /// Fleet-wide identity agreed on by Ready().
  uint64_t model_version() const SEQFM_EXCLUDES(mu_);
  uint64_t catalog_size() const SEQFM_EXCLUDES(mu_);
  uint32_t num_shards() const SEQFM_EXCLUDES(mu_);

  /// Health/recovery counters, including per-backend reconnects aggregated
  /// across the fleet. Safe to call concurrently with TopKAll.
  CoordinatorStats stats() const SEQFM_EXCLUDES(mu_);

  const CoordinatorOptions& options() const { return options_; }

 private:
  struct Member {
    std::unique_ptr<ScoringBackend> backend;
    ReplicaInfo info;
  };

  /// Per-member circuit-breaker state (indexed like members_).
  enum class Circuit : uint8_t { kClosed, kOpen, kHalfOpen };
  struct MemberHealth {
    Circuit circuit = Circuit::kClosed;
    uint32_t consecutive_failures = 0;
    /// When an OPEN circuit becomes probe-eligible (HALF_OPEN).
    std::chrono::steady_clock::time_point open_until{};
    /// At most one in-flight trial per HALF_OPEN member: concurrent
    /// requests route around it until the probe reports back.
    bool probe_in_flight = false;
  };

  /// Records one attempt's outcome against the member's breaker.
  void ReportOutcome(size_t member, bool ok) SEQFM_EXCLUDES(health_mu_);
  /// Consumes one retry token if the budget allows another failover.
  bool TrySpendRetryToken() SEQFM_EXCLUDES(health_mu_);

  CoordinatorOptions options_;
  mutable util::OrderedMutex mu_{"Coordinator::mu_",
                                 util::lock_rank::kCoordinator};
  std::vector<Member> members_ SEQFM_GUARDED_BY(mu_);
  /// shard_groups_[s] = indices into members_ serving shard s, in Add
  /// order. Frozen by Ready(); empty before.
  std::vector<std::vector<size_t>> shard_groups_ SEQFM_GUARDED_BY(mu_);
  bool ready_ SEQFM_GUARDED_BY(mu_) = false;
  uint64_t model_version_ SEQFM_GUARDED_BY(mu_) = 0;
  uint64_t catalog_size_ SEQFM_GUARDED_BY(mu_) = 0;
  uint32_t num_shards_ SEQFM_GUARDED_BY(mu_) = 0;

  /// Health state sits under its own lock (rank kCoordinatorHealth, between
  /// mu_ and the replica channels): plan building consults it nested inside
  /// mu_, fan-out workers report outcomes into it with NO other lock held —
  /// and never across a backend call, so a replica stuck in its socket
  /// timeout cannot delay health bookkeeping for the rest of the fleet.
  mutable util::OrderedMutex health_mu_{"Coordinator::health_mu_",
                                        util::lock_rank::kCoordinatorHealth};
  std::vector<MemberHealth> health_ SEQFM_GUARDED_BY(health_mu_);
  CoordinatorStats stats_ SEQFM_GUARDED_BY(health_mu_);
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_COORDINATOR_H_
