#ifndef SEQFM_SERVE_COORDINATOR_H_
#define SEQFM_SERVE_COORDINATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "serve/backend.h"
#include "serve/predictor.h"
#include "serve/shard.h"
#include "util/ordered_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace serve {

struct CoordinatorOptions {
  /// Per-replica budget for one request's scoring round-trip. Applied as the
  /// io timeout of replicas added via AddReplica; backends added via
  /// AddBackend bound their own calls. A replica that blows the budget is
  /// treated as failed for that request (PARTIAL merge), never waited on
  /// past its socket timeout — the fan-out join cannot hang.
  int64_t replica_timeout_ms = 2000;
  /// Bound on AddReplica's TCP connect + protocol handshake.
  int64_t connect_timeout_ms = 1000;
};

/// Outcome of one coordinated request.
struct CoordinatorResult {
  /// kOk when every shard contributed; kPartial when at least one replica
  /// failed (timeout, transport error, version drift) and the merge degraded
  /// to the shards that answered. A result with zero merged shards is still
  /// kPartial — an empty degraded ranking, not an error; transport-level
  /// failures that prevent even trying (not Ready) surface as Status from
  /// TopKAll instead.
  RpcStatus status = RpcStatus::kOk;
  std::vector<ScoredItem> items;
  /// Shards in the catalog partition / shards whose runs were merged.
  uint32_t shards_total = 0;
  uint32_t shards_merged = 0;
};

/// \brief Coordinator of a multi-replica serving fleet: fans a request out
/// over one replica per catalog shard, k-way merges the per-shard top-K runs
/// under serve::RankBefore, and degrades gracefully when replicas fail.
///
/// The fleet is a set of ScoringBackends, each owning one contiguous slice
/// of the identity catalog (ReplicaInfo). Multiple replicas may own the
/// same shard (replication for availability); Ready() groups them by shard
/// index and validates the fleet:
///   - every backend serves the same model_version, num_shards and
///     catalog_size (a coordinator never merges across model versions);
///   - every shard of the partition is covered by at least one replica;
///   - every replica's owned slice equals ShardedCatalog::Bounds at its
///     index, so the union of slices tiles the catalog exactly.
///
/// TopKAll scores all shards concurrently (one worker thread per shard) and
/// merges with the same MergeSortedRuns reduction the in-process sharded
/// path uses — so for an all-shards-healthy fleet the coordinator's ranking
/// is bit-identical to single-process ShardedPredictor::TopKAll over the
/// same catalog. Within a shard's replica group the first attempt is picked
/// by user affinity (FNV hash of the user id), keeping a given user's
/// context cached on one replica; on failure the worker fails over to the
/// group's other replicas before giving the shard up.
///
/// Thread-safe: concurrent TopKAll calls snapshot the fleet under mu_
/// (lock_rank::kCoordinator) and fan out lock-free; backends serialize
/// internally per their own contract.
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options = {});
  ~Coordinator() = default;
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Adds a backend with an externally supplied identity — the in-process
  /// form (LocalShardBackend over a slice-owning Predictor) and the test
  /// seam. The info must be internally consistent (slice within catalog).
  Status AddBackend(std::unique_ptr<ScoringBackend> backend,
                    const ReplicaInfo& info) SEQFM_EXCLUDES(mu_);

  /// Connects a RemoteReplicaBackend to a replica process and adds it under
  /// the identity the replica announced in its handshake.
  Status AddReplica(const std::string& host, uint16_t port)
      SEQFM_EXCLUDES(mu_);

  /// Validates the fleet and freezes the shard grouping. Must be called
  /// after the last Add* and before the first TopKAll; returns
  /// FailedPrecondition naming the first inconsistency otherwise.
  Status Ready() SEQFM_EXCLUDES(mu_);

  /// Scores \p ex against the whole catalog and fills \p out with the
  /// merged global top-k. Returns non-OK only for usage errors (not Ready);
  /// replica failures degrade to out->status == kPartial instead.
  Status TopKAll(const data::SequenceExample& ex, size_t k,
                 CoordinatorResult* out) SEQFM_EXCLUDES(mu_);

  /// Fleet-wide identity agreed on by Ready().
  uint64_t model_version() const SEQFM_EXCLUDES(mu_);
  uint64_t catalog_size() const SEQFM_EXCLUDES(mu_);
  uint32_t num_shards() const SEQFM_EXCLUDES(mu_);

  const CoordinatorOptions& options() const { return options_; }

 private:
  struct Member {
    std::unique_ptr<ScoringBackend> backend;
    ReplicaInfo info;
  };

  CoordinatorOptions options_;
  mutable util::OrderedMutex mu_{"Coordinator::mu_",
                                 util::lock_rank::kCoordinator};
  std::vector<Member> members_ SEQFM_GUARDED_BY(mu_);
  /// shard_groups_[s] = indices into members_ serving shard s, in Add
  /// order. Frozen by Ready(); empty before.
  std::vector<std::vector<size_t>> shard_groups_ SEQFM_GUARDED_BY(mu_);
  bool ready_ SEQFM_GUARDED_BY(mu_) = false;
  uint64_t model_version_ SEQFM_GUARDED_BY(mu_) = 0;
  uint64_t catalog_size_ SEQFM_GUARDED_BY(mu_) = 0;
  uint32_t num_shards_ SEQFM_GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_COORDINATOR_H_
