#ifndef SEQFM_SERVE_BACKEND_H_
#define SEQFM_SERVE_BACKEND_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "serve/predictor.h"
#include "serve/rpc_server.h"
#include "serve/shard.h"
#include "util/ordered_mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace serve {

/// \brief One "score a candidate range, keep a bounded top-K" unit of work.
///
/// The range is candidates[begin, end); positions in the produced RankEntry
/// run are GLOBAL positions into \p candidates, so runs from different jobs
/// of the same request merge under the one serving-wide total order
/// (serve::RankBefore) exactly as if the request had been scored unsharded.
///
/// \p candidates may be null: the job then scores the IDENTITY catalog —
/// positions [begin, end) are the item ids themselves. This is the form
/// serve::Coordinator emits (a replica owns its slice; the slate is never
/// shipped). RemoteReplicaBackend only accepts this form;
/// LocalShardBackend accepts both and materializes the identity slice.
struct ScoreJob {
  const data::SequenceExample* ex = nullptr;
  const std::vector<int32_t>* candidates = nullptr;
  size_t begin = 0;
  size_t end = 0;
  /// Entries to retain; the produced run holds min(k, end - begin) entries.
  size_t k = 0;
};

/// Recovery counters exposed by ScoringBackend::RecoveryStats (today only
/// RemoteReplicaBackend reports non-zero values).
struct BackendRecoveryStats {
  uint64_t reconnects = 0;          // successful automatic reconnections
  uint64_t reconnect_failures = 0;  // failed reconnect attempts
};

/// \brief The transport-agnostic scoring seam of the serving stack.
///
/// "Score a candidate range and return a bounded top-K" is the one operation
/// every serving layer needs: BatchServer waves, ShardedPredictor fan-out,
/// and the distributed Coordinator all reduce to batches of ScoreJobs. A
/// backend executes a batch and returns, per job, the top-min(k, range)
/// entries sorted best-first under RankBefore, carrying RAW float scores
/// (bit-exact — merges downstream must reproduce the single-process ranking
/// bit for bit, so no backend may round, rescale, or re-derive scores).
///
/// Implementations:
///  - LocalShardBackend: in-process, over Predictor::ScoreContextRange +
///    TopKHeap — the engine room of BatchServer and ShardedPredictor.
///  - RemoteReplicaBackend: one replica process over the RPC wire protocol
///    (serve/protocol.h kShardRequestFrame), used by serve::Coordinator.
///
/// Batch form is deliberate: handing a backend ALL jobs of a wave at once
/// lets the local implementation fuse every (job, chunk) task into a single
/// ParallelFor and dedupe (user, history) contexts across jobs — the two
/// properties that made BatchServer waves fast — while a remote backend can
/// pipeline the batch onto its connection.
class ScoringBackend {
 public:
  virtual ~ScoringBackend() = default;

  /// Scores every job; on OK, results->at(j) is job j's run: its top
  /// min(k, end - begin) entries, sorted best-first under RankBefore, with
  /// global positions and raw scores. A non-OK status means the batch
  /// produced no usable results (results contents unspecified) — remote
  /// transports surface timeouts and version mismatches here; the local
  /// backend never fails.
  ///
  /// Thread-safety is per-implementation: LocalShardBackend is safe for
  /// concurrent calls (same contract as Predictor); RemoteReplicaBackend
  /// serializes calls on its one connection internally.
  virtual Status ScoreTopK(const std::vector<ScoreJob>& jobs,
                           std::vector<std::vector<RankEntry>>* results) = 0;

  /// Recovery counters (reconnects etc.); all-zero for backends that have
  /// no connection to lose. The Coordinator aggregates these into its own
  /// stats so bench_loadgen can report fleet-wide recovery cost.
  virtual BackendRecoveryStats RecoveryStats() const { return {}; }
};

struct LocalShardBackendOptions {
  /// Candidates per pool chunk task; 0 uses the Predictor's micro_batch.
  size_t micro_batch = 0;
};

/// \brief In-process ScoringBackend over a serve::Predictor.
///
/// Runs a job batch the way BatchServer::ServeWave and
/// ShardedPredictor::TopK used to inline it (both now delegate here):
///   1. resolve each unique (user, history) SharedContext once per batch —
///      deduped across jobs before the ContextCache is even consulted, so a
///      cold cache never computes the same context twice in one batch;
///   2. one fused ParallelFor over every (job, chunk) task, chunks never
///      crossing a job boundary, reduced into one bounded TopKHeap per job
///      (chunk-locally first, then <= k survivors under the job's mutex);
///   3. per-job SortedEntries as the result runs.
/// The retained set of a TopKHeap is push-order independent and RankBefore
/// is a strict total order, so results are bit-identical for any pool
/// schedule, thread count, chunk size, and job partition of the same range.
///
/// Thread-safe for concurrent ScoreTopK calls after construction. The
/// Predictor is borrowed and must outlive this object.
class LocalShardBackend : public ScoringBackend {
 public:
  explicit LocalShardBackend(const Predictor* predictor,
                             LocalShardBackendOptions options = {});

  Status ScoreTopK(const std::vector<ScoreJob>& jobs,
                   std::vector<std::vector<RankEntry>>* results) override;

  const Predictor* predictor() const { return predictor_; }
  const LocalShardBackendOptions& options() const { return options_; }

 private:
  const Predictor* predictor_;
  LocalShardBackendOptions options_;
};

/// \brief Identity of one replica (or local stand-in) in a distributed
/// serving fleet: which contiguous slice of which catalog it owns, and which
/// model version it serves. Remote replicas report this in the protocol
/// handshake (serve::RpcHelloAck); serve::Coordinator validates that a
/// fleet's infos agree before it will merge across them.
struct ReplicaInfo {
  uint32_t shard_index = 0;
  uint32_t num_shards = 1;
  /// Owned slice [shard_begin, shard_end) of the identity catalog — always
  /// equal to ShardedCatalog::Bounds(catalog_size, num_shards) at
  /// shard_index, so replicas configured alike agree on every boundary.
  uint64_t shard_begin = 0;
  uint64_t shard_end = 0;
  uint64_t catalog_size = 0;
  /// serve::ParameterVersion of the served parameters. Coordinators refuse
  /// to merge runs produced under different model versions.
  uint64_t model_version = 0;
};

struct RemoteReplicaBackendOptions {
  /// Bound on Connect (TCP + protocol handshake).
  int64_t connect_timeout_ms = 1000;
  /// Per-syscall bound on the scoring round-trips. The Coordinator sets
  /// this to its per-replica budget, which is what makes its join-all
  /// fan-out hang-free: a dead replica's worker always terminates.
  int64_t io_timeout_ms = 2000;
  /// Reconnection backoff: after a failed reconnect attempt the backend
  /// refuses further attempts (failing calls fast) for an exponentially
  /// growing, jittered delay — doubling from `initial` up to `max`, each
  /// delay drawn uniformly from [d/2, d) off a seeded Rng stream. Jitter
  /// keeps a fleet of coordinators from hammering a recovering replica in
  /// lockstep; the fast-fail keeps the request path from ever sleeping.
  int64_t reconnect_backoff_initial_ms = 10;
  int64_t reconnect_backoff_max_ms = 1000;
  /// Seed of the jitter stream (deterministic per backend instance).
  uint64_t reconnect_jitter_seed = 42;
};

/// \brief ScoringBackend over one remote replica process (the RPC wire
/// protocol's shard-scoped frames, serve/protocol.h).
///
/// Connect() handshakes and requires the server to advertise
/// kRpcCapShardScoring; the replica's self-description (owned slice, model
/// version) is kept in info(). ScoreTopK pipelines the whole batch onto the
/// one connection and matches responses by id, converting wire entries back
/// to RankEntry runs with their raw score bits — the coordinator-side merge
/// must reproduce single-process rankings exactly, and does, because
/// nothing on this path touches a score.
///
/// Every response's model version is checked against the handshake's; a
/// replica that hot-swapped its checkpoint mid-flight yields
/// FailedPrecondition instead of entries that must not be merged.
///
/// Self-healing: when the connection is lost (a failed send/read closes the
/// RpcClient — a part-written or part-read frame has no resync point), the
/// next ScoreTopK reconnects automatically, re-handshakes, and verifies the
/// replica still announces the SAME identity (model version + owned slice)
/// as the original Connect — a replica restarted under a different
/// checkpoint is refused, because its scores must not be merged with the
/// fleet's. Failed attempts back off exponentially with jitter (see
/// RemoteReplicaBackendOptions); during the backoff window calls fail fast
/// so a dead replica costs its callers microseconds, not timeouts.
///
/// Thread-safe: concurrent ScoreTopK calls serialize on the channel mutex
/// (lock_rank::kReplicaChannel).
class RemoteReplicaBackend : public ScoringBackend {
 public:
  explicit RemoteReplicaBackend(RemoteReplicaBackendOptions options = {});

  /// Connects + handshakes and fills info(). FailedPrecondition when the
  /// server is not a replica (no shard-scoring capability); a timed-out or
  /// unreachable server surfaces the RpcClient's precise IoError.
  Status Connect(const std::string& host, uint16_t port) SEQFM_EXCLUDES(mu_);

  /// Jobs must be identity-catalog form (null candidates): the replica
  /// scores positions [begin, end) of its own slice. Any transport failure,
  /// non-OK replica answer, or model-version drift fails the whole batch —
  /// the caller (Coordinator) treats the replica as failed for this
  /// request, it never merges a partial batch. A lost connection is
  /// re-established first (see class comment).
  Status ScoreTopK(const std::vector<ScoreJob>& jobs,
                   std::vector<std::vector<RankEntry>>* results) override
      SEQFM_EXCLUDES(mu_);

  BackendRecoveryStats RecoveryStats() const override SEQFM_EXCLUDES(mu_);

  const ReplicaInfo& info() const { return info_; }
  const RemoteReplicaBackendOptions& options() const { return options_; }

 private:
  /// One connect + handshake + capability check. With \p reconnect set the
  /// announced identity must equal info_ exactly; otherwise info_ is filled.
  Status ConnectLocked(bool reconnect) SEQFM_REQUIRES(mu_);
  /// Fast path no-op while connected; otherwise one backoff-gated
  /// ConnectLocked attempt.
  Status EnsureConnectedLocked() SEQFM_REQUIRES(mu_);

  RemoteReplicaBackendOptions options_;
  /// Written once by Connect before the backend is shared; read-only after.
  ReplicaInfo info_;
  /// Serializes batches on the one connection (and orders below nothing:
  /// coordinator fan-out workers take it with no coordinator lock held).
  mutable util::OrderedMutex mu_{"RemoteReplicaBackend::mu_",
                                 util::lock_rank::kReplicaChannel};
  RpcClient client_ SEQFM_GUARDED_BY(mu_);
  uint64_t next_id_ SEQFM_GUARDED_BY(mu_) = 1;
  std::string host_ SEQFM_GUARDED_BY(mu_);
  uint16_t port_ SEQFM_GUARDED_BY(mu_) = 0;
  bool ever_connected_ SEQFM_GUARDED_BY(mu_) = false;
  /// Backoff state: current delay (0 = healthy, next attempt immediate) and
  /// the earliest steady-clock time another attempt may run.
  int64_t backoff_ms_ SEQFM_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point next_attempt_ SEQFM_GUARDED_BY(mu_){};
  Rng jitter_rng_ SEQFM_GUARDED_BY(mu_){42};
  BackendRecoveryStats recovery_ SEQFM_GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_BACKEND_H_
