#ifndef SEQFM_SERVE_PROTOCOL_H_
#define SEQFM_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/predictor.h"
#include "util/status.h"

namespace seqfm {
namespace serve {

/// \brief Wire format of the TCP serving tier (see serve::RpcServer).
///
/// Every message is one length-prefixed frame, little-endian:
///
///   uint32 magic 'SQRP' | uint32 payload_len | payload[payload_len]
///
/// and every payload starts with a one-byte frame type. Request payloads
/// (client -> server):
///
///   uint8 type (=kRequestFrame) | uint64 request_id | int32 user |
///   uint32 k | uint32 history_len | uint32 slate_len |
///   int32 history[history_len] | int32 slate[slate_len]
///
/// Response payloads (server -> client):
///
///   uint8 type (=kResponseFrame) | uint64 request_id | uint8 status |
///   uint32 count | { int32 item, float score } * count
///
/// The request_id is an opaque client token echoed back verbatim; responses
/// on one connection are NOT ordered (a shed request is answered immediately
/// while earlier admitted ones are still in their wave), so clients must
/// match responses to requests by id. Framing is validated defensively: a
/// bad magic, a declared payload_len above the reader's limit, or a payload
/// that does not exactly match its declared element counts fails the
/// CONNECTION with a Status — never the process.

/// First four bytes of every frame ("SQRP" little-endian).
constexpr uint32_t kRpcMagic = 0x50525153;

/// Frame header: magic + payload length.
constexpr size_t kRpcFrameHeaderBytes = 8;

/// Payload type byte.
constexpr uint8_t kRequestFrame = 1;
constexpr uint8_t kResponseFrame = 2;

/// Default per-frame payload cap (1 MiB ~ a 260k-candidate slate). Frames
/// declaring more than the reader's configured cap poison the stream.
constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

/// Response status byte.
enum class RpcStatus : uint8_t {
  kOk = 0,
  /// Admission queue at BatchServerOptions::max_queue_requests — the request
  /// was shed, not queued. Clients may retry after backing off.
  kOverloaded = 1,
  /// The server is draining for shutdown; no new work is admitted.
  kShuttingDown = 2,
  /// The request decoded but was semantically unusable.
  kBadRequest = 3,
};

/// Human-readable status name for logs ("OK", "OVERLOADED", ...).
const char* RpcStatusToString(RpcStatus status);

/// One scoring request: rank `slate` for (user, history) and return the
/// top k. Mirrors BatchServer::Submit(ex, candidates, k).
struct RpcRequest {
  uint64_t id = 0;
  int32_t user = 0;
  uint32_t k = 0;
  std::vector<int32_t> history;
  std::vector<int32_t> slate;
};

/// One response: the ranked top-K (RankBefore order) on kOk, empty items
/// otherwise.
struct RpcResponse {
  uint64_t id = 0;
  RpcStatus status = RpcStatus::kOk;
  std::vector<ScoredItem> items;
};

/// Serializes \p req / \p resp as one complete frame appended to \p wire.
void AppendRequestFrame(const RpcRequest& req, std::string* wire);
void AppendResponseFrame(const RpcResponse& resp, std::string* wire);

/// Parses a frame payload (the bytes after the 8-byte header). Returns
/// InvalidArgument when the type byte, element counts, or total size are
/// inconsistent — the payload length must match its contents exactly, so a
/// truncated or padded frame can never half-parse.
Status DecodeRequest(const std::string& payload, RpcRequest* out);
Status DecodeResponse(const std::string& payload, RpcResponse* out);

/// \brief Incremental frame extractor for one TCP byte stream.
///
/// Feed() appends whatever bytes the socket produced — frames may arrive
/// split at any offset or coalesced many-per-read — and Next() yields each
/// complete payload once its length prefix is satisfied. A framing
/// violation (bad magic, declared payload above max_frame_bytes) returns
/// InvalidArgument and poisons the reader: the stream has lost sync and the
/// connection must be closed.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends \p n raw bytes from the wire.
  void Feed(const char* data, size_t n);

  /// Extracts the next complete frame payload into *payload, setting *got.
  /// OK + *got=false means "need more bytes". InvalidArgument means the
  /// stream is corrupt (and every later call fails the same way).
  Status Next(std::string* payload, bool* got);

  /// Bytes buffered but not yet returned as frames.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_PROTOCOL_H_
