#ifndef SEQFM_SERVE_PROTOCOL_H_
#define SEQFM_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/predictor.h"
#include "util/status.h"

namespace seqfm {
namespace serve {

/// \brief Wire format of the TCP serving tier (see serve::RpcServer).
///
/// Every message is one length-prefixed frame, little-endian:
///
///   uint32 magic 'SQRP' | uint32 payload_len | payload[payload_len]
///
/// and every payload starts with a one-byte frame type. Request payloads
/// (client -> server):
///
///   uint8 type (=kRequestFrame) | uint64 request_id | int32 user |
///   uint32 k | uint32 history_len | uint32 slate_len |
///   int32 history[history_len] | int32 slate[slate_len]
///
/// Response payloads (server -> client):
///
///   uint8 type (=kResponseFrame) | uint64 request_id | uint8 status |
///   uint32 count | { int32 item, float score } * count
///
/// The request_id is an opaque client token echoed back verbatim; responses
/// on one connection are NOT ordered (a shed request is answered immediately
/// while earlier admitted ones are still in their wave), so clients must
/// match responses to requests by id. Framing is validated defensively: a
/// bad magic, a declared payload_len above the reader's limit, or a payload
/// that does not exactly match its declared element counts fails the
/// CONNECTION with a Status — never the process.
///
/// Since protocol version 2 every connection starts with a handshake: the
/// client's FIRST frame must be a HELLO
///
///   uint8 type (=kHelloFrame) | uint32 protocol_version |
///   uint32 capabilities
///
/// answered by exactly one HELLO_ACK
///
///   uint8 type (=kHelloAckFrame) | uint8 status | uint32 protocol_version |
///   uint32 capabilities | uint64 model_version | uint32 shard_index |
///   uint32 num_shards | uint64 shard_begin | uint64 shard_end |
///   uint64 catalog_size | uint32 message_len | message bytes
///
/// A version mismatch (either direction) is answered with status
/// BAD_REQUEST and a message naming both versions, then the connection is
/// closed — a precise error instead of a decode mystery. A v1 client that
/// sends a request as its first frame gets the same treatment. The ack also
/// carries the server's model version and (for replicas) its owned catalog
/// slice, which is what lets a coordinator refuse to merge across model
/// versions before a single request is sent.
///
/// Distributed serving adds shard-scoped frames. A shard request
/// (coordinator -> replica) scores positions [begin, end) of the replica's
/// own identity catalog — the slate is never shipped:
///
///   uint8 type (=kShardRequestFrame) | uint64 request_id | int32 user |
///   uint32 k | uint64 begin | uint64 end | uint32 history_len |
///   int32 history[history_len]
///
/// and the shard response carries the replica's bounded top-K with RAW
/// float scores and GLOBAL catalog positions, best first under
/// serve::RankBefore, plus the model version the entries were scored under:
///
///   uint8 type (=kShardResponseFrame) | uint64 request_id | uint8 status |
///   uint64 model_version | uint32 count |
///   { int32 item, float score, uint64 pos } * count
///
/// Raw scores on the wire are load-bearing: the coordinator's k-way merge
/// (serve::MergeSortedRuns) must reproduce single-process rankings bit for
/// bit, so nothing may round or re-derive a score in transit.

/// First four bytes of every frame ("SQRP" little-endian).
constexpr uint32_t kRpcMagic = 0x50525153;

/// Frame header: magic + payload length.
constexpr size_t kRpcFrameHeaderBytes = 8;

/// Wire protocol version, announced in the HELLO/HELLO_ACK handshake.
/// History: v1 = PR 7 request/response frames, no handshake; v2 = mandatory
/// handshake + shard-scoped scoring + PARTIAL status.
constexpr uint32_t kRpcProtocolVersion = 2;

/// Capability bits carried in the handshake.
/// Server answers shard-scoped score requests (replica mode).
constexpr uint32_t kRpcCapShardScoring = 1u << 0;

/// Payload type byte.
constexpr uint8_t kRequestFrame = 1;
constexpr uint8_t kResponseFrame = 2;
constexpr uint8_t kHelloFrame = 3;
constexpr uint8_t kHelloAckFrame = 4;
constexpr uint8_t kShardRequestFrame = 5;
constexpr uint8_t kShardResponseFrame = 6;

/// Default per-frame payload cap (1 MiB ~ a 260k-candidate slate). Frames
/// declaring more than the reader's configured cap poison the stream.
constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

/// Response status byte.
enum class RpcStatus : uint8_t {
  kOk = 0,
  /// Admission queue at BatchServerOptions::max_queue_requests — the request
  /// was shed, not queued. Clients may retry after backing off.
  kOverloaded = 1,
  /// The server is draining for shutdown; no new work is admitted.
  kShuttingDown = 2,
  /// The request decoded but was semantically unusable.
  kBadRequest = 3,
  /// Degraded result: a coordinator merged fewer than all shards (replica
  /// failure or per-replica timeout). The items carried are a correct
  /// ranking of the shards that DID answer.
  kPartial = 4,
};

/// Human-readable status name for logs ("OK", "OVERLOADED", ...).
const char* RpcStatusToString(RpcStatus status);

/// One scoring request: rank `slate` for (user, history) and return the
/// top k. Mirrors BatchServer::Submit(ex, candidates, k).
struct RpcRequest {
  uint64_t id = 0;
  int32_t user = 0;
  uint32_t k = 0;
  std::vector<int32_t> history;
  std::vector<int32_t> slate;
};

/// One response: the ranked top-K (RankBefore order) on kOk, empty items
/// otherwise.
struct RpcResponse {
  uint64_t id = 0;
  RpcStatus status = RpcStatus::kOk;
  std::vector<ScoredItem> items;
};

/// The client's opening handshake frame.
struct RpcHello {
  uint32_t protocol_version = kRpcProtocolVersion;
  uint32_t capabilities = 0;
};

/// The server's handshake answer. status kOk accepts the connection; any
/// other status carries a precise human-readable \p message (version
/// mismatch, missing hello) and the server closes the connection after
/// sending it. On kOk the ack doubles as the replica's self-description:
/// model version and — when kRpcCapShardScoring is set — the owned
/// identity-catalog slice.
struct RpcHelloAck {
  RpcStatus status = RpcStatus::kOk;
  uint32_t protocol_version = kRpcProtocolVersion;
  uint32_t capabilities = 0;
  uint64_t model_version = 0;
  uint32_t shard_index = 0;
  uint32_t num_shards = 1;
  uint64_t shard_begin = 0;
  uint64_t shard_end = 0;
  uint64_t catalog_size = 0;
  std::string message;
};

/// One shard-scoped scoring request: rank positions [begin, end) of the
/// replica's identity catalog for (user, history) and return the top k with
/// raw scores. [begin, end) must lie inside the replica's owned slice.
struct RpcShardRequest {
  uint64_t id = 0;
  int32_t user = 0;
  uint32_t k = 0;
  uint64_t begin = 0;
  uint64_t end = 0;
  std::vector<int32_t> history;
};

/// One entry of a shard response: raw score, item id, and the item's GLOBAL
/// position in the replica's catalog (== item id under the identity
/// catalog). Mirrors serve::RankEntry, fixed-width for the wire.
struct RpcShardEntry {
  int32_t item = 0;
  float score = 0.0f;
  uint64_t pos = 0;
};

/// One shard response: the replica's top-min(k, end - begin), sorted best
/// first under serve::RankBefore, on kOk; empty entries otherwise.
/// model_version names the parameters the entries were scored under so a
/// coordinator can refuse to merge across a mid-flight checkpoint swap.
struct RpcShardResponse {
  uint64_t id = 0;
  RpcStatus status = RpcStatus::kOk;
  uint64_t model_version = 0;
  std::vector<RpcShardEntry> entries;
};

/// Serializes one message as one complete frame appended to \p wire.
void AppendRequestFrame(const RpcRequest& req, std::string* wire);
void AppendResponseFrame(const RpcResponse& resp, std::string* wire);
void AppendHelloFrame(const RpcHello& hello, std::string* wire);
void AppendHelloAckFrame(const RpcHelloAck& ack, std::string* wire);
void AppendShardRequestFrame(const RpcShardRequest& req, std::string* wire);
void AppendShardResponseFrame(const RpcShardResponse& resp,
                              std::string* wire);

/// Parses a frame payload (the bytes after the 8-byte header). Returns
/// InvalidArgument when the type byte, element counts, or total size are
/// inconsistent — the payload length must match its contents exactly, so a
/// truncated or padded frame can never half-parse.
Status DecodeRequest(const std::string& payload, RpcRequest* out);
Status DecodeResponse(const std::string& payload, RpcResponse* out);
Status DecodeHello(const std::string& payload, RpcHello* out);
Status DecodeHelloAck(const std::string& payload, RpcHelloAck* out);
Status DecodeShardRequest(const std::string& payload, RpcShardRequest* out);
Status DecodeShardResponse(const std::string& payload, RpcShardResponse* out);

/// The payload's leading type byte (0 for an empty payload) — how a server
/// routes a decoded frame without trial-parsing every message type.
inline uint8_t FrameType(const std::string& payload) {
  return payload.empty() ? 0 : static_cast<uint8_t>(payload[0]);
}

/// \brief Incremental frame extractor for one TCP byte stream.
///
/// Feed() appends whatever bytes the socket produced — frames may arrive
/// split at any offset or coalesced many-per-read — and Next() yields each
/// complete payload once its length prefix is satisfied. A framing
/// violation (bad magic, declared payload above max_frame_bytes) returns
/// InvalidArgument and poisons the reader: the stream has lost sync and the
/// connection must be closed.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends \p n raw bytes from the wire.
  void Feed(const char* data, size_t n);

  /// Extracts the next complete frame payload into *payload, setting *got.
  /// OK + *got=false means "need more bytes". InvalidArgument means the
  /// stream is corrupt (and every later call fails the same way).
  Status Next(std::string* payload, bool* got);

  /// Bytes buffered but not yet returned as frames.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace serve
}  // namespace seqfm

#endif  // SEQFM_SERVE_PROTOCOL_H_
