#include "serve/predictor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/module.h"
#include "serve/checkpoint.h"
#include "serve/shard.h"  // RankBefore, the serving-wide ranking order
#include "util/logging.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace serve {

using autograd::Variable;

Predictor::Predictor(core::Model* model, const data::BatchBuilder* builder,
                     PredictorOptions options)
    : model_(model), builder_(builder), options_(options) {
  SEQFM_CHECK(model_ != nullptr) << "Predictor: null model";
  SEQFM_CHECK(builder_ != nullptr) << "Predictor: null batch builder";
  SEQFM_CHECK_GT(options_.micro_batch, 0u);
  if (options_.enable_seqfm_fast_path) {
    auto* seqfm = dynamic_cast<core::SeqFm*>(model_);
    // The factored program mirrors the default three-view forward; ablated
    // or padding-masked configurations fall back to the generic path. So
    // does a builder/model seq-len mismatch: the generic path then fails
    // through SeqFm::Score's loud shape check instead of reading a
    // truncated index buffer here.
    if (seqfm != nullptr && seqfm->config().use_static_view &&
        seqfm->config().use_dynamic_view && seqfm->config().use_cross_view &&
        !seqfm->config().mask_padding_keys &&
        builder_->max_seq_len() == seqfm->config().max_seq_len) {
      seqfm_ = seqfm;
    }
  }
  CompileEngine();
  if ((seqfm_ != nullptr || engine_ != nullptr) &&
      options_.context_cache_bytes > 0) {
    cache_ = std::make_unique<ContextCache>(options_.context_cache_bytes);
  }
  full_catalog_.resize(builder_->space().num_objects());
  std::iota(full_catalog_.begin(), full_catalog_.end(), 0);
}

void Predictor::CompileEngine() {
  engine_.reset();
  engine_failed_.store(false, std::memory_order_relaxed);
  if (!options_.use_compiled_program ||
      builder_->space().num_objects() < 2 ||
      builder_->space().num_users() < 1) {
    return;
  }
  // Trace the model into a static op program (src/ir/). Compile failure is
  // expected for untraceable models and simply keeps the eager paths; the
  // compiler has already self-checked any engine it returns.
  std::string error;
  engine_ = ir::Engine::Compile(model_, builder_,
                                builder_->space().num_objects(), &error);
  if (engine_ == nullptr) {
    SEQFM_LOG(Info) << "serving compiler: '" << model_->name()
                    << "' stays on the eager path (" << error << ")";
  }
}

Result<std::unique_ptr<Predictor>> Predictor::FromCheckpoint(
    core::Model* model, const data::BatchBuilder* builder,
    const std::string& checkpoint_path, PredictorOptions options) {
  SEQFM_CHECK(model != nullptr) << "Predictor::FromCheckpoint: null model";
  auto* module = dynamic_cast<nn::Module*>(model);
  if (module == nullptr) {
    return Status::InvalidArgument(
        "model '" + model->name() + "' is not an nn::Module; cannot restore");
  }
  SEQFM_RETURN_NOT_OK(Checkpoint::Load(module, checkpoint_path));
  return std::make_unique<Predictor>(model, builder, options);
}

Status Predictor::ReloadCheckpoint(const std::string& path) {
  auto* module = dynamic_cast<nn::Module*>(model_);
  if (module == nullptr) {
    return Status::InvalidArgument(
        "model '" + model_->name() + "' is not an nn::Module; cannot restore");
  }
  SEQFM_RETURN_NOT_OK(Checkpoint::Load(module, path));
  // The load swapped parameter tensors in place: every cached context now
  // describes the old weights, and the compiled program's candidate-
  // invariant split was verified against the old values (an untrained
  // all-zero weight column is candidate-invariant; its trained replacement
  // is not), so both are rebuilt. The caller has quiesced scoring.
  InvalidateContextCache();
  // Re-verify the slot ABI of the fresh engine before any request scores
  // through it: a body slot miswired against the prologue reads the wrong
  // context floats and serves garbage rankings without crashing — the one
  // compiled-path failure the per-count self-checks cannot catch, because
  // each half verifies in isolation. A mismatch does not fail the reload
  // (the parameters ARE the new checkpoint); it latches the compiled path
  // off and serving falls back to the eager path.
  if (engine_ != nullptr) {
    if (reload_corruption_hook_) reload_corruption_hook_(engine_.get());
    const Status abi = engine_->ReverifySlotAbi();
    if (!abi.ok()) {
      SEQFM_LOG(Warning) << "serving compiler: slot ABI re-verification "
                            "failed after checkpoint reload; serving falls "
                            "back to the eager path: "
                         << abi.ToString();
      engine_failed_.store(true, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

void Predictor::InvalidateContextCache() {
  if (cache_) cache_->Invalidate();
  // Mutated parameters invalidate the compiled factorization for the same
  // reason they invalidate cached contexts; recompile from the new values.
  CompileEngine();
}

std::vector<float> Predictor::ScoreCandidates(
    const data::SequenceExample& ex,
    const std::vector<int32_t>& candidates) const {
  if (candidates.empty()) return {};
  return context_path_active() ? ScoreContext(ex, candidates)
                               : ScoreGeneric(ex, candidates);
}

void Predictor::ScoreGenericRange(const data::SequenceExample& ex,
                                  const std::vector<int32_t>& candidates,
                                  size_t begin, size_t end, float* out) const {
  // Grad mode is thread-scoped, so the guard must live here — this runs
  // directly on pool workers (ScoreGeneric) and on BatchServer wave tasks.
  // The scratch scope routes every op output of the forward into the
  // worker's arena; results are copied into `out` before it closes.
  autograd::NoGradGuard no_grad;
  std::optional<core::ScratchScope> scratch;
  if (options_.use_scratch_arena) scratch.emplace();
  std::vector<const data::SequenceExample*> repeated(end - begin, &ex);
  std::vector<int32_t> override_chunk(candidates.begin() + begin,
                                      candidates.begin() + end);
  data::Batch batch = builder_->Build(repeated, &override_chunk);
  Variable scored = model_->Score(batch, /*training=*/false);
  SEQFM_CHECK_EQ(scored.value().size(), end - begin);
  const float* src = scored.value().data();
  for (size_t i = 0; i < end - begin; ++i) out[i] = src[i];
}

std::vector<float> Predictor::ScoreGeneric(
    const data::SequenceExample& ex,
    const std::vector<int32_t>& candidates) const {
  const size_t total = candidates.size();
  const size_t chunk_size = options_.micro_batch;
  const size_t num_chunks = (total + chunk_size - 1) / chunk_size;
  std::vector<float> scores(total);

  // Safe to fan out from the first chunk: eval-mode Score is read-only for
  // every model (SeqFM materializes its cross mask in its constructor, and
  // the baselines build masks as per-call locals).
  util::ParallelFor(num_chunks, 1, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      const size_t begin = c * chunk_size;
      ScoreGenericRange(ex, candidates, begin,
                        std::min(total, begin + chunk_size),
                        scores.data() + begin);
    }
  });
  return scores;
}

Predictor::ContextPtr Predictor::AcquireContext(
    const data::SequenceExample& ex) const {
  SEQFM_CHECK(context_path_active())
      << "AcquireContext requires the compiled or hand-factored context path";
  // Reuse the BatchBuilder for the index layout so padding and index mapping
  // are byte-identical to the taped path.
  const std::vector<const data::SequenceExample*> one = {&ex};
  const data::Batch base = builder_->Build(one);
  const int32_t user_index = base.static_ids[0];
  const size_t n = builder_->max_seq_len();
  std::vector<int32_t> dynamic_ids(
      base.dynamic_ids.begin(),
      base.dynamic_ids.begin() + static_cast<ptrdiff_t>(n));
  auto compute = [&]() -> ContextPtr {
    if (compiled_active()) {
      auto ctx = std::make_shared<core::SharedContext>();
      engine_->MakeContext(user_index, dynamic_ids, ctx.get());
      return ctx;
    }
    return std::make_shared<const core::SharedContext>(
        seqfm_->ComputeSharedContext(user_index, dynamic_ids));
  };
  if (cache_) return cache_->GetOrCompute(user_index, dynamic_ids, compute);
  return compute();
}

void Predictor::ScoreContextRange(const core::SharedContext& ctx,
                                  const data::SequenceExample& ex,
                                  const std::vector<int32_t>& candidates,
                                  size_t begin, size_t end, float* out) const {
  if (compiled_active() && ctx.engine_uid == engine_->uid()) {
    std::string error;
    if (engine_->ScoreRange(ctx, candidates, begin, end, out, &error)) {
      return;
    }
    // A lazy per-count body failed to compile or verify. Latch the failure
    // (warn once), drop contexts that carry now-unusable slot tensors, and
    // serve this and every later chunk through the reference paths.
    if (!engine_failed_.exchange(true)) {
      SEQFM_LOG(Warning) << "serving compiler: disabling compiled path for '"
                         << model_->name() << "': " << error;
      if (cache_) cache_->Invalidate();
    }
  }
  if (fast_path_active() && ctx.h_dyn.defined()) {
    ScoreFactoredRange(ctx, candidates, begin, end, out);
    return;
  }
  ScoreGenericRange(ex, candidates, begin, end, out);
}

void Predictor::ScoreFactoredRange(const core::SharedContext& ctx,
                                   const std::vector<int32_t>& candidates,
                                   size_t begin, size_t end,
                                   float* out_scores) const {
  namespace ag = autograd;
  autograd::NoGradGuard no_grad;
  // Every intermediate of the factored program below lives in the worker
  // thread's scratch arena and is released wholesale when this chunk
  // returns — zero tensor heap traffic once the arena is warm. The scores
  // are copied into out_scores before the scope closes.
  std::optional<core::ScratchScope> scratch;
  if (options_.use_scratch_arena) scratch.emplace();
  const core::SeqFm::ServingView view = seqfm_->serving_view();
  const core::SeqFmConfig& cfg = seqfm_->config();
  const data::FeatureSpace& space = builder_->space();
  const size_t count = end - begin;
  const size_t n = ctx.n, d = ctx.d;

  // Index layout mirrors BatchBuilder::Build: [user, candidate] per row.
  // The id vectors ride the worker's scratch arena too (released with the
  // scope), so a warm chunk performs zero heap allocations end to end; the
  // embedding ops take raw pointers and copy only if a tape is recording.
  std::vector<int32_t> heap_ids;
  int32_t* static_ids;
  if (scratch.has_value()) {
    static_ids = core::ThreadScratchArena().AllocateInts(count * 3);
  } else {
    heap_ids.resize(count * 3);
    static_ids = heap_ids.data();
  }
  int32_t* cand_ids = static_ids + count * 2;
  for (size_t i = 0; i < count; ++i) {
    static_ids[2 * i] = ctx.user_index;
    static_ids[2 * i + 1] = space.CandidateIndex(candidates[begin + i]);
    cand_ids[i] = static_ids[2 * i + 1];
  }

  // Static view: candidate-dependent but tiny (two rows); this is the
  // identical computation the full forward runs.
  Variable e_static = view.static_embedding->Forward(static_ids, count, 2);
  Variable h_att = view.static_attention->Forward(e_static, Variable());
  Variable h_stat = view.ffn->Forward(ag::MeanAxis1(h_att, 2.0f),
                                      cfg.keep_prob, false, nullptr);

  // Cross view, candidate side.
  Variable e_cand = view.static_embedding->Forward(cand_ids, count, 1);
  Variable q_cand = ag::BmmShared(e_cand, view.cross_attention->wq());
  Variable k_cand = ag::BmmShared(e_cand, view.cross_attention->wk());
  Variable v_cand = ag::BmmShared(e_cand, view.cross_attention->wv());

  // Candidate static rows attend to every history column.
  Variable sc = ag::Scale(ag::Bmm(ag::Reshape(q_cand, {1, count, d}),
                                  ctx.k_dyn, false, true),
                          ctx.inv_sqrt_d);               // [1, count, n]
  Variable pc = ag::MaskedSoftmax(sc, Variable());
  Variable out_cand =
      ag::Reshape(ag::Bmm(pc, ctx.v_dyn), {count, 1, d});

  // History rows attend to the two static columns (user, candidate). The
  // user column is shared; only the candidate column changes per item.
  Variable s_user = ag::Bmm(ctx.q_dyn, ctx.k_user, false, true);  // [1,n,1]
  Variable s_user_tiled = ag::Reshape(
      ag::ExpandRows(ag::Reshape(s_user, {1, n}), count), {count * n, 1});
  Variable s_cand = ag::Reshape(
      ag::Bmm(ag::Reshape(k_cand, {1, count, d}), ctx.q_dyn, false, true),
      {count * n, 1});                                   // [c-major]
  Variable probs2 = ag::MaskedSoftmax(
      ag::Scale(ag::ConcatLastDim({s_user_tiled, s_cand}), ctx.inv_sqrt_d),
      Variable());                                       // [count*n, 2]

  Variable v_user_tiled = ag::Reshape(
      ag::ExpandRows(ag::Reshape(ctx.v_user, {1, d}), count * n),
      {count * n, 1, d});
  Variable v_cand_tiled = ag::Reshape(
      ag::ExpandRows(ag::Reshape(v_cand, {count, d}), n), {count * n, 1, d});
  Variable v_pairs = ag::ConcatAxis1(v_user_tiled, v_cand_tiled);
  Variable out_dyn = ag::Reshape(
      ag::Bmm(ag::Reshape(probs2, {count * n, 1, 2}), v_pairs),
      {count, n, d});

  // Reassemble the cross-attention output in the full path's row order
  // (user, candidate, history...), pool, and refine.
  Variable out_user_tiled = ag::Reshape(
      ag::ExpandRows(ag::Reshape(ctx.out_user, {1, d}), count),
      {count, 1, d});
  Variable cross_rows =
      ag::ConcatAxis1(ag::ConcatAxis1(out_user_tiled, out_cand), out_dyn);
  Variable pooled_cross =
      ag::MeanAxis1(cross_rows, static_cast<float>(2 + n));
  Variable h_cross =
      view.ffn->Forward(pooled_cross, cfg.keep_prob, false, nullptr);

  // Aggregation and the linear head, in the full path's operation order.
  Variable h_dyn_tiled = ag::Reshape(
      ag::ExpandRows(ag::Reshape(ctx.h_dyn, {1, d}), count), {count, d});
  Variable h_agg = ag::ConcatLastDim({h_stat, h_dyn_tiled, h_cross});
  Variable f = ag::MatMul(h_agg, view.p);
  Variable ws = ag::EmbeddingSumGather(view.w_static, static_ids, count, 2);
  Variable wd_one =
      ag::EmbeddingSumGather(view.w_dynamic, ctx.dynamic_ids, 1, n);
  Variable wd = ag::Reshape(
      ag::ExpandRows(ag::Reshape(wd_one, {1, 1}), count), {count, 1});
  Variable out = ag::AddBias(ag::Add(f, ag::Add(ws, wd)), view.w0);

  const float* src = out.value().data();
  for (size_t i = 0; i < count; ++i) out_scores[i] = src[i];
}

std::vector<float> Predictor::ScoreContext(
    const data::SequenceExample& ex,
    const std::vector<int32_t>& candidates) const {
  const ContextPtr ctx = AcquireContext(ex);
  const size_t total = candidates.size();
  const size_t chunk_size = options_.micro_batch;
  const size_t num_chunks = (total + chunk_size - 1) / chunk_size;
  std::vector<float> scores(total);

  util::ParallelFor(num_chunks, 1, [&](size_t c0, size_t c1) {
    for (size_t c = c0; c < c1; ++c) {
      const size_t begin = c * chunk_size;
      ScoreContextRange(*ctx, ex, candidates, begin,
                        std::min(total, begin + chunk_size),
                        scores.data() + begin);
    }
  });
  return scores;
}

std::vector<ScoredItem> SelectTopK(const std::vector<int32_t>& candidates,
                                   const std::vector<float>& scores,
                                   size_t k) {
  SEQFM_CHECK_EQ(candidates.size(), scores.size());
  k = std::min(k, candidates.size());
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  // RankBefore is the one serving-wide order (score desc, NaN last, ties by
  // candidate id then position): ranking here through the same comparator
  // the per-shard heaps and the cross-shard merge use is what makes sharded
  // results bit-identical to this function. Ties used to break by position,
  // which silently diverged from any sharded merge — see serve/shard.h.
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(k),
                    order.end(), [&](size_t a, size_t b) {
                      return RankBefore({scores[a], candidates[a], a},
                                        {scores[b], candidates[b], b});
                    });
  std::vector<ScoredItem> top(k);
  for (size_t i = 0; i < k; ++i) {
    top[i] = {candidates[order[i]], scores[order[i]]};
  }
  return top;
}

std::vector<ScoredItem> Predictor::TopK(const data::SequenceExample& ex,
                                        const std::vector<int32_t>& candidates,
                                        size_t k) const {
  return SelectTopK(candidates, ScoreCandidates(ex, candidates), k);
}

std::vector<ScoredItem> Predictor::TopKAll(const data::SequenceExample& ex,
                                           size_t k) const {
  return TopK(ex, full_catalog_, k);
}

}  // namespace serve
}  // namespace seqfm
