#include "optim/optimizer.h"

#include <cmath>

namespace seqfm {
namespace optim {

float Optimizer::ClipGradNorm(float max_norm) {
  double total_sq = 0.0;
  for (auto& p : params_) {
    const auto& g = p.grad();
    for (size_t i = 0; i < g.size(); ++i) {
      total_sq += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) p.mutable_grad().Scale(scale);
  }
  return norm;
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (auto& p : params_) {
      velocity_.push_back(tensor::Tensor::Zeros(p.value().shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    const auto& g = p.grad();
    float* w = p.mutable_value().data();
    const float* gd = g.data();
    const size_t n = g.size();
    if (momentum_ > 0.0f) {
      float* vel = velocity_[pi].data();
      for (size_t i = 0; i < n; ++i) {
        vel[i] = momentum_ * vel[i] + gd[i];
        w[i] -= lr_ * vel[i];
      }
    } else {
      for (size_t i = 0; i < n; ++i) w[i] -= lr_ * gd[i];
    }
  }
}

Adagrad::Adagrad(std::vector<autograd::Variable> params, float lr, float eps)
    : Optimizer(std::move(params), lr), eps_(eps) {
  accum_.reserve(params_.size());
  for (auto& p : params_) {
    accum_.push_back(tensor::Tensor::Zeros(p.value().shape()));
  }
}

void Adagrad::Step() {
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    const auto& g = p.grad();
    float* w = p.mutable_value().data();
    float* acc = accum_[pi].data();
    const float* gd = g.data();
    const size_t n = g.size();
    for (size_t i = 0; i < n; ++i) {
      acc[i] += gd[i] * gd[i];
      w[i] -= lr_ * gd[i] / (std::sqrt(acc[i]) + eps_);
    }
  }
}

Adam::Adam(std::vector<autograd::Variable> params, float lr, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.push_back(tensor::Tensor::Zeros(p.value().shape()));
    v_.push_back(tensor::Tensor::Zeros(p.value().shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    const auto& g = p.grad();
    float* w = p.mutable_value().data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const float* gd = g.data();
    const size_t n = g.size();
    for (size_t i = 0; i < n; ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * gd[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * gd[i] * gd[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace optim
}  // namespace seqfm
