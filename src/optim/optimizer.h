#ifndef SEQFM_OPTIM_OPTIMIZER_H_
#define SEQFM_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace seqfm {
namespace optim {

/// \brief Base class for gradient-descent optimizers.
///
/// Optimizers hold references to parameter Variables (leaf nodes with
/// requires_grad). The training loop runs Backward() on the loss, calls
/// Step() to update parameter values in place, then ZeroGrad().
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the currently accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  /// Rescales gradients so their global L2 norm is at most \p max_norm.
  /// Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

 protected:
  std::vector<autograd::Variable> params_;
  float lr_;
};

/// Plain SGD: p -= lr * g.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, float lr,
      float momentum = 0.0f);
  void Step() override;

 private:
  float momentum_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adagrad: per-element adaptive learning rate with accumulated squares.
class Adagrad : public Optimizer {
 public:
  Adagrad(std::vector<autograd::Variable> params, float lr,
          float eps = 1e-8f);
  void Step() override;

 private:
  float eps_;
  std::vector<tensor::Tensor> accum_;
};

/// Adam (Kingma & Ba, 2015) with bias correction — the optimizer the paper
/// uses (Sec. IV-D, lr = 1e-4, batch 512).
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  int64_t step_count() const { return t_; }

 private:
  float beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<tensor::Tensor> m_, v_;
};

/// Multiplies the learning rate by \p gamma every \p step_epochs epochs.
class StepDecaySchedule {
 public:
  StepDecaySchedule(Optimizer* opt, size_t step_epochs, float gamma)
      : opt_(opt), step_epochs_(step_epochs), gamma_(gamma) {}

  /// Call once at the end of each epoch (0-based index).
  void OnEpochEnd(size_t epoch) {
    if (step_epochs_ > 0 && (epoch + 1) % step_epochs_ == 0) {
      opt_->set_lr(opt_->lr() * gamma_);
    }
  }

 private:
  Optimizer* opt_;
  size_t step_epochs_;
  float gamma_;
};

}  // namespace optim
}  // namespace seqfm

#endif  // SEQFM_OPTIM_OPTIMIZER_H_
