#ifndef SEQFM_DATA_INTERACTION_H_
#define SEQFM_DATA_INTERACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace seqfm {
namespace data {

/// One (user, object) event with its timestamp; \p rating is used only by
/// the regression task (0 when absent).
struct Interaction {
  int32_t user = 0;
  int32_t object = 0;
  int64_t timestamp = 0;
  float rating = 0.0f;
};

/// Aggregate dataset statistics (the columns of Table I).
struct LogStats {
  size_t num_instances = 0;
  size_t num_users = 0;
  size_t num_objects = 0;
  /// Sparse feature count: users + candidate objects + dynamic objects.
  size_t num_sparse_features = 0;
  double avg_sequence_length = 0.0;
};

/// \brief Chronologically ordered per-user interaction sequences.
///
/// This is the canonical in-memory dataset representation: add events in any
/// order, Finalize() sorts each user's events by timestamp (stable on ties),
/// and downstream code reads per-user sequences.
class InteractionLog {
 public:
  InteractionLog(size_t num_users, size_t num_objects);

  size_t num_users() const { return sequences_.size(); }
  size_t num_objects() const { return num_objects_; }
  size_t num_interactions() const { return num_interactions_; }

  /// Appends an event; ids must lie in range.
  void Add(const Interaction& interaction);

  /// Sorts all user sequences chronologically. Must be called after the last
  /// Add and before reading sequences.
  void Finalize();

  /// Chronological events of one user (Finalize must have been called).
  const std::vector<Interaction>& UserSequence(int32_t user) const;

  bool finalized() const { return finalized_; }

  /// \brief Drops users with fewer than \p min_user_events events and
  /// objects interacted with by fewer than \p min_object_users distinct
  /// users (the paper's >=10 filtering, Sec. V-A), iterating until stable,
  /// then compacts ids. Returns the filtered log.
  Result<InteractionLog> Filter(size_t min_user_events,
                                size_t min_object_users) const;

  /// Table I style statistics.
  LogStats ComputeStats() const;

 private:
  size_t num_objects_;
  size_t num_interactions_ = 0;
  bool finalized_ = false;
  std::vector<std::vector<Interaction>> sequences_;
};

/// Parses "user,object,timestamp[,rating]" CSV lines (optional header) into a
/// log; ids are compacted automatically.
Result<InteractionLog> LoadInteractionCsv(const std::string& path);

}  // namespace data
}  // namespace seqfm

#endif  // SEQFM_DATA_INTERACTION_H_
