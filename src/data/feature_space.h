#ifndef SEQFM_DATA_FEATURE_SPACE_H_
#define SEQFM_DATA_FEATURE_SPACE_H_

#include <cstdint>
#include <cstddef>

#include "util/logging.h"

namespace seqfm {
namespace data {

/// \brief Layout of the sparse one-hot feature spaces (Sec. II / Eq. 20).
///
/// The static space concatenates the user one-hot, the candidate object
/// one-hot and optional categorical side features:
///   [ user (num_users) | candidate (num_objects) | side (num_side) ].
/// The dynamic space is the object vocabulary: each element of a user's
/// interaction history is one dynamic feature.
class FeatureSpace {
 public:
  /// Empty space; reassign before use.
  FeatureSpace() : FeatureSpace(0, 0, 0) {}

  FeatureSpace(size_t num_users, size_t num_objects, size_t num_side = 0)
      : num_users_(num_users), num_objects_(num_objects), num_side_(num_side) {}

  size_t num_users() const { return num_users_; }
  size_t num_objects() const { return num_objects_; }
  size_t num_side() const { return num_side_; }

  /// Dimension m_static of the static one-hot space.
  size_t static_dim() const { return num_users_ + num_objects_ + num_side_; }
  /// Dimension m_dynamic of the dynamic one-hot space.
  size_t dynamic_dim() const { return num_objects_; }
  /// Total sparse feature count m = m_static + m_dynamic (Table I column).
  size_t total_dim() const { return static_dim() + dynamic_dim(); }

  /// Static-space index of user \p u.
  int32_t UserIndex(int32_t u) const {
    SEQFM_DCHECK(u >= 0 && static_cast<size_t>(u) < num_users_);
    return u;
  }
  /// Static-space index of candidate object \p o.
  int32_t CandidateIndex(int32_t o) const {
    SEQFM_DCHECK(o >= 0 && static_cast<size_t>(o) < num_objects_);
    return static_cast<int32_t>(num_users_) + o;
  }
  /// Static-space index of side-feature category \p s.
  int32_t SideIndex(int32_t s) const {
    SEQFM_DCHECK(s >= 0 && static_cast<size_t>(s) < num_side_);
    return static_cast<int32_t>(num_users_ + num_objects_) + s;
  }
  /// Dynamic-space index of a history object \p o.
  int32_t DynamicIndex(int32_t o) const {
    SEQFM_DCHECK(o >= 0 && static_cast<size_t>(o) < num_objects_);
    return o;
  }

 private:
  size_t num_users_;
  size_t num_objects_;
  size_t num_side_;
};

}  // namespace data
}  // namespace seqfm

#endif  // SEQFM_DATA_FEATURE_SPACE_H_
