#include "data/dataset.h"

#include <algorithm>

namespace seqfm {
namespace data {

Result<TemporalDataset> TemporalDataset::FromLog(const InteractionLog& log) {
  if (!log.finalized()) {
    return Status::FailedPrecondition("FromLog requires a finalized log");
  }
  TemporalDataset ds;
  ds.num_users_ = log.num_users();
  ds.num_objects_ = log.num_objects();
  ds.interacted_.resize(log.num_users());

  for (size_t u = 0; u < log.num_users(); ++u) {
    const auto& seq = log.UserSequence(static_cast<int32_t>(u));
    auto& seen = ds.interacted_[u];
    seen.reserve(seq.size());
    for (const auto& it : seq) seen.push_back(it.object);
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());

    if (seq.empty()) continue;
    // Positions [0, T-3] train, T-2 validation, T-1 test (when they exist).
    const size_t len = seq.size();
    std::vector<int32_t> history;
    history.reserve(len);
    for (size_t t = 0; t < len; ++t) {
      SequenceExample ex;
      ex.user = static_cast<int32_t>(u);
      ex.target = seq[t].object;
      ex.rating = seq[t].rating;
      ex.history = history;
      if (len >= 3 && t == len - 1) {
        ds.test_.push_back(std::move(ex));
      } else if (len >= 3 && t == len - 2) {
        ds.validation_.push_back(std::move(ex));
      } else {
        ds.train_.push_back(std::move(ex));
      }
      history.push_back(seq[t].object);
    }
  }
  if (ds.train_.empty()) {
    return Status::InvalidArgument("log produced no training examples");
  }
  return ds;
}

bool TemporalDataset::Interacted(int32_t user, int32_t object) const {
  SEQFM_CHECK(user >= 0 && static_cast<size_t>(user) < interacted_.size());
  const auto& seen = interacted_[user];
  return std::binary_search(seen.begin(), seen.end(), object);
}

TemporalDataset TemporalDataset::WithTrainFraction(double fraction,
                                                   Rng* rng) const {
  SEQFM_CHECK(fraction > 0.0 && fraction <= 1.0);
  TemporalDataset out;
  out.num_users_ = num_users_;
  out.num_objects_ = num_objects_;
  out.validation_ = validation_;
  out.test_ = test_;
  out.interacted_ = interacted_;
  if (fraction >= 1.0) {
    out.train_ = train_;
    return out;
  }
  // Uniform subsample of training examples (temporal prefixes stay intact
  // inside each example's history).
  out.train_.reserve(static_cast<size_t>(train_.size() * fraction) + 1);
  for (const auto& ex : train_) {
    if (rng->Uniform() < fraction) out.train_.push_back(ex);
  }
  if (out.train_.empty()) out.train_.push_back(train_.front());
  return out;
}

int32_t NegativeSampler::Sample(int32_t user, Rng* rng) const {
  const size_t num_objects = dataset_->num_objects();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto candidate =
        static_cast<int32_t>(rng->UniformInt(static_cast<uint64_t>(num_objects)));
    if (!dataset_->Interacted(user, candidate)) return candidate;
  }
  // Degenerate user who interacted with almost everything: linear scan.
  for (size_t o = 0; o < num_objects; ++o) {
    if (!dataset_->Interacted(user, static_cast<int32_t>(o))) {
      return static_cast<int32_t>(o);
    }
  }
  return static_cast<int32_t>(rng->UniformInt(static_cast<uint64_t>(num_objects)));
}

std::vector<int32_t> NegativeSampler::SampleMany(int32_t user, size_t count,
                                                 Rng* rng) const {
  std::vector<int32_t> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(Sample(user, rng));
  return out;
}

Batch BatchBuilder::Build(
    const std::vector<const SequenceExample*>& examples,
    const std::vector<int32_t>* target_override) const {
  Batch batch;
  batch.batch_size = examples.size();
  batch.n_static = 2;  // user one-hot + candidate one-hot (Eq. 20).
  batch.n_seq = max_seq_len_;
  batch.n_unified = batch.n_static + batch.n_seq;
  batch.static_ids.assign(batch.batch_size * batch.n_static, -1);
  batch.dynamic_ids.assign(batch.batch_size * batch.n_seq, -1);
  batch.unified_ids.assign(batch.batch_size * batch.n_unified, -1);
  batch.labels.assign(batch.batch_size, 0.0f);
  if (target_override != nullptr) {
    SEQFM_CHECK_EQ(target_override->size(), examples.size());
  }

  const size_t static_dim = space_.static_dim();
  for (size_t b = 0; b < examples.size(); ++b) {
    const SequenceExample& ex = *examples[b];
    const int32_t target =
        target_override ? (*target_override)[b] : ex.target;
    batch.static_ids[b * batch.n_static + 0] = space_.UserIndex(ex.user);
    batch.static_ids[b * batch.n_static + 1] = space_.CandidateIndex(target);
    batch.labels[b] = ex.rating;

    // Top padding: most recent max_seq_len history objects go to the tail.
    const size_t len = std::min(ex.history.size(), max_seq_len_);
    const size_t start = ex.history.size() - len;
    for (size_t i = 0; i < len; ++i) {
      const int32_t obj = ex.history[start + i];
      batch.dynamic_ids[b * batch.n_seq + (max_seq_len_ - len) + i] =
          space_.DynamicIndex(obj);
    }

    // Unified layout for set-category FM baselines: static indices followed
    // by dynamic indices shifted past the static space.
    for (size_t i = 0; i < batch.n_static; ++i) {
      batch.unified_ids[b * batch.n_unified + i] =
          batch.static_ids[b * batch.n_static + i];
    }
    for (size_t i = 0; i < batch.n_seq; ++i) {
      const int32_t id = batch.dynamic_ids[b * batch.n_seq + i];
      batch.unified_ids[b * batch.n_unified + batch.n_static + i] =
          id < 0 ? -1 : static_cast<int32_t>(static_dim) + id;
    }
  }
  return batch;
}

}  // namespace data
}  // namespace seqfm
