#include "data/interaction.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "util/logging.h"

namespace seqfm {
namespace data {

InteractionLog::InteractionLog(size_t num_users, size_t num_objects)
    : num_objects_(num_objects), sequences_(num_users) {}

void InteractionLog::Add(const Interaction& interaction) {
  SEQFM_CHECK(interaction.user >= 0 &&
              static_cast<size_t>(interaction.user) < sequences_.size());
  SEQFM_CHECK(interaction.object >= 0 &&
              static_cast<size_t>(interaction.object) < num_objects_);
  sequences_[interaction.user].push_back(interaction);
  ++num_interactions_;
  finalized_ = false;
}

void InteractionLog::Finalize() {
  for (auto& seq : sequences_) {
    std::stable_sort(seq.begin(), seq.end(),
                     [](const Interaction& a, const Interaction& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  finalized_ = true;
}

const std::vector<Interaction>& InteractionLog::UserSequence(
    int32_t user) const {
  SEQFM_CHECK(finalized_) << "call Finalize() before reading sequences";
  SEQFM_CHECK(user >= 0 && static_cast<size_t>(user) < sequences_.size());
  return sequences_[user];
}

Result<InteractionLog> InteractionLog::Filter(size_t min_user_events,
                                              size_t min_object_users) const {
  if (!finalized_) {
    return Status::FailedPrecondition("Filter requires a finalized log");
  }
  std::vector<bool> user_alive(sequences_.size(), true);
  std::vector<bool> object_alive(num_objects_, true);

  // Alternate the two filters until a fixed point: removing unpopular
  // objects can push users below the event threshold and vice versa.
  bool changed = true;
  while (changed) {
    changed = false;
    // Count per-user surviving events.
    for (size_t u = 0; u < sequences_.size(); ++u) {
      if (!user_alive[u]) continue;
      size_t events = 0;
      for (const auto& it : sequences_[u]) {
        if (object_alive[it.object]) ++events;
      }
      if (events < min_user_events) {
        user_alive[u] = false;
        changed = true;
      }
    }
    // Count distinct surviving users per object.
    std::vector<size_t> users_per_object(num_objects_, 0);
    for (size_t u = 0; u < sequences_.size(); ++u) {
      if (!user_alive[u]) continue;
      std::vector<bool> seen(num_objects_, false);
      for (const auto& it : sequences_[u]) {
        if (object_alive[it.object] && !seen[it.object]) {
          seen[it.object] = true;
          ++users_per_object[it.object];
        }
      }
    }
    for (size_t o = 0; o < num_objects_; ++o) {
      if (object_alive[o] && users_per_object[o] < min_object_users) {
        object_alive[o] = false;
        changed = true;
      }
    }
  }

  // Compact ids.
  std::vector<int32_t> user_map(sequences_.size(), -1);
  std::vector<int32_t> object_map(num_objects_, -1);
  int32_t next_user = 0, next_object = 0;
  for (size_t u = 0; u < sequences_.size(); ++u) {
    if (user_alive[u]) user_map[u] = next_user++;
  }
  for (size_t o = 0; o < num_objects_; ++o) {
    if (object_alive[o]) object_map[o] = next_object++;
  }
  if (next_user == 0 || next_object == 0) {
    return Status::InvalidArgument("filter removed every user or object");
  }

  InteractionLog out(static_cast<size_t>(next_user),
                     static_cast<size_t>(next_object));
  for (size_t u = 0; u < sequences_.size(); ++u) {
    if (!user_alive[u]) continue;
    for (const auto& it : sequences_[u]) {
      if (!object_alive[it.object]) continue;
      Interaction mapped = it;
      mapped.user = user_map[u];
      mapped.object = object_map[it.object];
      out.Add(mapped);
    }
  }
  out.Finalize();
  return out;
}

LogStats InteractionLog::ComputeStats() const {
  LogStats stats;
  stats.num_users = sequences_.size();
  stats.num_objects = num_objects_;
  stats.num_instances = num_interactions_;
  // Static user one-hot + static candidate one-hot + dynamic object one-hot.
  stats.num_sparse_features = sequences_.size() + 2 * num_objects_;
  if (!sequences_.empty()) {
    stats.avg_sequence_length = static_cast<double>(num_interactions_) /
                                static_cast<double>(sequences_.size());
  }
  return stats;
}

Result<InteractionLog> LoadInteractionCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);

  struct Row {
    int64_t user, object, timestamp;
    float rating;
  };
  std::vector<Row> rows;
  std::map<int64_t, int32_t> user_ids, object_ids;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.find_first_not_of("0123456789,.-+ \t") !=
                            std::string::npos) {
      continue;  // header row
    }
    std::istringstream ls(line);
    std::string field;
    Row row{0, 0, 0, 0.0f};
    int col = 0;
    while (std::getline(ls, field, ',')) {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str()) {
        return Status::InvalidArgument("bad field on line " +
                                       std::to_string(line_no));
      }
      switch (col) {
        case 0: row.user = static_cast<int64_t>(v); break;
        case 1: row.object = static_cast<int64_t>(v); break;
        case 2: row.timestamp = static_cast<int64_t>(v); break;
        case 3: row.rating = static_cast<float>(v); break;
        default: break;
      }
      ++col;
    }
    if (col < 3) {
      return Status::InvalidArgument("need >=3 columns on line " +
                                     std::to_string(line_no));
    }
    user_ids.emplace(row.user, 0);
    object_ids.emplace(row.object, 0);
    rows.push_back(row);
  }
  if (rows.empty()) return Status::InvalidArgument("empty csv: " + path);

  int32_t next = 0;
  for (auto& [raw, id] : user_ids) id = next++;
  next = 0;
  for (auto& [raw, id] : object_ids) id = next++;

  InteractionLog log(user_ids.size(), object_ids.size());
  for (const auto& row : rows) {
    Interaction it;
    it.user = user_ids[row.user];
    it.object = object_ids[row.object];
    it.timestamp = row.timestamp;
    it.rating = row.rating;
    log.Add(it);
  }
  log.Finalize();
  return log;
}

}  // namespace data
}  // namespace seqfm
