#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace seqfm {
namespace data {

namespace {
/// Picks a successor option weighted by the user's static cluster
/// preference: users overwhelmingly continue into clusters they like.
int32_t PickSuccessor(const std::vector<int32_t>& options,
                      const std::vector<int32_t>& object_cluster,
                      const std::vector<double>& theta, Rng& rng) {
  std::vector<double> weights(options.size());
  for (size_t k = 0; k < options.size(); ++k) {
    const double pref = theta[object_cluster[options[k]]];
    weights[k] = pref * pref + 1e-3;  // sharpen toward preferred clusters
  }
  return options[rng.Categorical(weights)];
}
}  // namespace

Result<InteractionLog> SyntheticDatasetGenerator::Generate() const {
  const auto& cfg = config_;
  if (cfg.num_users == 0 || cfg.num_objects == 0 || cfg.num_clusters == 0) {
    return Status::InvalidArgument("synthetic sizes must be positive");
  }
  if (cfg.num_objects < cfg.num_clusters) {
    return Status::InvalidArgument("need at least one object per cluster");
  }
  if (cfg.min_seq_len < 3 || cfg.max_seq_len < cfg.min_seq_len) {
    return Status::InvalidArgument("bad sequence length range");
  }
  Rng rng(cfg.seed);
  const size_t c_count = cfg.num_clusters;

  // Object -> cluster assignment (round-robin keeps clusters balanced) and
  // per-cluster member lists with Zipf popularity inside each cluster.
  std::vector<int32_t> object_cluster(cfg.num_objects);
  std::vector<std::vector<int32_t>> cluster_objects(c_count);
  for (size_t o = 0; o < cfg.num_objects; ++o) {
    const size_t c = o % c_count;
    object_cluster[o] = static_cast<int32_t>(c);
    cluster_objects[c].push_back(static_cast<int32_t>(o));
  }
  // Shuffle members so object id does not encode popularity rank.
  for (auto& members : cluster_objects) rng.Shuffle(members);
  std::vector<ZipfSampler> cluster_zipf;
  cluster_zipf.reserve(c_count);
  for (size_t c = 0; c < c_count; ++c) {
    cluster_zipf.emplace_back(cluster_objects[c].size(), cfg.zipf_exponent);
  }

  // Object-level successor options: option k of object o lives in cluster
  // (c(o) + 1 + k), i.e. the options fan out along the ring. Which option a
  // user takes depends on their *static* cluster preference, so the next
  // object is a joint function of (recent items) x (user preference) — the
  // static-dynamic mutual interaction SeqFM's cross view is built for.
  // A single per-user translation (TFM) or a user-blind sequence reader
  // (SASRec) can each capture only part of this; set-category FMs miss the
  // sequential half entirely.
  SEQFM_CHECK_GT(cfg.successors_per_object, 0u);
  std::vector<std::vector<int32_t>> successors(cfg.num_objects);
  for (size_t o = 0; o < cfg.num_objects; ++o) {
    for (size_t s = 0; s < cfg.successors_per_object; ++s) {
      const size_t succ_cluster = (object_cluster[o] + 1 + s) % c_count;
      const auto& pool = cluster_objects[succ_cluster];
      successors[o].push_back(
          pool[rng.UniformInt(static_cast<uint64_t>(pool.size()))]);
    }
  }

  // Per-object rating bias for the regression task.
  std::vector<double> object_bias(cfg.num_objects, 0.0);
  if (cfg.with_ratings) {
    for (auto& b : object_bias) b = rng.Normal(0.0, 0.3);
  }

  InteractionLog log(cfg.num_users, cfg.num_objects);
  for (size_t u = 0; u < cfg.num_users; ++u) {
    // Static preference: two boosted clusters on a small uniform base.
    std::vector<double> theta(c_count, 0.3 / static_cast<double>(c_count));
    const size_t fav1 = rng.UniformInt(static_cast<uint64_t>(c_count));
    size_t fav2 = rng.UniformInt(static_cast<uint64_t>(c_count));
    if (fav2 == fav1) fav2 = (fav2 + 1) % c_count;
    theta[fav1] += 0.45;
    theta[fav2] += 0.25;
    const double user_bias = cfg.with_ratings ? rng.Normal(0.0, 0.25) : 0.0;

    const size_t len =
        cfg.min_seq_len +
        rng.UniformInt(static_cast<uint64_t>(cfg.max_seq_len - cfg.min_seq_len + 1));
    std::vector<int32_t> object_hist;
    object_hist.reserve(len);
    for (size_t t = 0; t < len; ++t) {
      // Pick the source of the next object from the mixture.
      const double w_markov = object_hist.empty() ? 0.0 : cfg.w_markov;
      const double w_long =
          object_hist.size() >= cfg.long_lag ? cfg.w_long : 0.0;
      const size_t source =
          rng.Categorical({cfg.w_static, w_markov, w_long, cfg.noise});

      int32_t object = 0;
      bool sequential_pick = false;
      switch (source) {
        case 0: {  // static cluster preference + popularity
          const size_t c = rng.Categorical(theta);
          object = cluster_objects[c][cluster_zipf[c].Sample(rng)];
          break;
        }
        case 1: {  // successor of a recent object, biased AWAY from the
                   // very last item (the paper's Fig. 1 scenario: the
                   // current intent follows the computer bought a few steps
                   // ago, not the mouse bought last).
          const size_t window =
              std::min<size_t>(cfg.markov_window, object_hist.size());
          size_t offset = 1;
          if (window > 1 && rng.Uniform() >= 0.25) {
            offset = 2 + rng.UniformInt(window - 1);
          }
          object = PickSuccessor(
              successors[object_hist[object_hist.size() - offset]],
              object_cluster, theta, rng);
          sequential_pick = true;
          break;
        }
        case 2: {  // successor of the object long_lag steps back
          object = PickSuccessor(
              successors[object_hist[object_hist.size() - cfg.long_lag]],
              object_cluster, theta, rng);
          sequential_pick = true;
          break;
        }
        default: {  // uniform exploration noise
          object = static_cast<int32_t>(
              rng.UniformInt(static_cast<uint64_t>(cfg.num_objects)));
          break;
        }
      }

      Interaction it;
      it.user = static_cast<int32_t>(u);
      it.object = object;
      it.timestamp = static_cast<int64_t>(t);
      if (cfg.with_ratings) {
        // Predictable part: user bias + object bias + static affinity +
        // a bonus when the pick continues the user's trajectory (which only
        // sequence readers can anticipate).
        const double affinity = theta[object_cluster[object]] * 2.0;
        double r = 3.0 + user_bias + object_bias[object] + 0.5 * affinity +
                   (sequential_pick ? 0.55 : -0.25) +
                   rng.Normal(0.0, cfg.rating_noise);
        it.rating = static_cast<float>(std::clamp(r, 1.0, 5.0));
      }
      log.Add(it);
      object_hist.push_back(object);
    }
  }
  log.Finalize();
  return log;
}

namespace {
SyntheticConfig BasePreset(const std::string& name) {
  SyntheticConfig cfg;
  cfg.name = name;
  if (name == "gowalla") {
    cfg.num_users = 240;
    cfg.num_objects = 400;
    cfg.num_clusters = 10;
    cfg.min_seq_len = 15;
    cfg.max_seq_len = 40;
    cfg.w_static = 0.20;
    cfg.w_markov = 0.55;
    cfg.w_long = 0.10;
    cfg.noise = 0.15;
    cfg.long_lag = 4;
    cfg.seed = 1001;
  } else if (name == "foursquare") {
    cfg.num_users = 200;
    cfg.num_objects = 360;
    cfg.num_clusters = 10;
    cfg.min_seq_len = 10;
    cfg.max_seq_len = 30;
    cfg.w_static = 0.20;
    cfg.w_markov = 0.50;
    cfg.w_long = 0.10;
    cfg.noise = 0.20;
    cfg.long_lag = 4;
    cfg.seed = 1002;
  } else if (name == "trivago") {
    cfg.num_users = 300;
    cfg.num_objects = 420;
    cfg.num_clusters = 12;
    cfg.min_seq_len = 20;
    cfg.max_seq_len = 50;
    cfg.w_static = 0.35;
    cfg.w_markov = 0.30;
    cfg.w_long = 0.20;
    cfg.noise = 0.15;
    cfg.long_lag = 5;
    cfg.seed = 1003;
  } else if (name == "taobao") {
    cfg.num_users = 280;
    cfg.num_objects = 440;
    cfg.num_clusters = 12;
    cfg.min_seq_len = 20;
    cfg.max_seq_len = 60;
    cfg.w_static = 0.40;
    cfg.w_markov = 0.25;
    cfg.w_long = 0.20;
    cfg.noise = 0.15;
    cfg.long_lag = 6;
    cfg.seed = 1004;
  } else if (name == "beauty") {
    cfg.num_users = 180;
    cfg.num_objects = 260;
    cfg.num_clusters = 8;
    cfg.min_seq_len = 8;
    cfg.max_seq_len = 25;
    cfg.w_static = 0.30;
    cfg.w_markov = 0.40;
    cfg.w_long = 0.10;
    cfg.noise = 0.20;
    cfg.long_lag = 3;
    cfg.with_ratings = true;
    cfg.seed = 1005;
  } else if (name == "toys") {
    cfg.num_users = 160;
    cfg.num_objects = 240;
    cfg.num_clusters = 8;
    cfg.min_seq_len = 8;
    cfg.max_seq_len = 20;
    cfg.w_static = 0.30;
    cfg.w_markov = 0.35;
    cfg.w_long = 0.12;
    cfg.noise = 0.23;
    cfg.long_lag = 3;
    cfg.with_ratings = true;
    cfg.seed = 1006;
  } else {
    cfg.name = "";
  }
  return cfg;
}
}  // namespace

Result<SyntheticConfig> SyntheticDatasetGenerator::Preset(
    const std::string& name, double scale) {
  SyntheticConfig cfg = BasePreset(name);
  if (cfg.name.empty()) {
    return Status::NotFound("unknown preset: " + name);
  }
  if (scale <= 0.0) return Status::InvalidArgument("scale must be positive");
  cfg.num_users = std::max<size_t>(
      8, static_cast<size_t>(std::lround(cfg.num_users * scale)));
  cfg.num_objects = std::max<size_t>(
      cfg.num_clusters * 4,
      static_cast<size_t>(std::lround(cfg.num_objects * std::sqrt(scale))));
  return cfg;
}

const std::vector<std::string>& SyntheticDatasetGenerator::PresetNames() {
  static const std::vector<std::string> kNames = {
      "gowalla", "foursquare", "trivago", "taobao", "beauty", "toys"};
  return kNames;
}

}  // namespace data
}  // namespace seqfm
