#ifndef SEQFM_DATA_DATASET_H_
#define SEQFM_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/feature_space.h"
#include "data/interaction.h"
#include "util/result.h"
#include "util/rng.h"

namespace seqfm {
namespace data {

/// One supervised example: predict \p target for \p user given the
/// chronological \p history of previously interacted objects.
struct SequenceExample {
  int32_t user = 0;
  int32_t target = 0;
  float rating = 0.0f;
  /// Objects interacted before the target, oldest first (untruncated; the
  /// BatchBuilder keeps the most recent max_seq_len entries).
  std::vector<int32_t> history;
};

/// \brief Leave-one-out temporal split (Sec. V-C): per user, the last record
/// is the test target, the second-last the validation target, and every
/// earlier record is a training target with its preceding prefix as history.
class TemporalDataset {
 public:
  /// Splits a finalized log. Users with fewer than 3 events contribute
  /// training examples only.
  static Result<TemporalDataset> FromLog(const InteractionLog& log);

  const std::vector<SequenceExample>& train() const { return train_; }
  const std::vector<SequenceExample>& validation() const { return validation_; }
  const std::vector<SequenceExample>& test() const { return test_; }

  size_t num_users() const { return num_users_; }
  size_t num_objects() const { return num_objects_; }

  /// True iff \p user interacted with \p object anywhere in the log
  /// (used to draw "never visited" negatives, Sec. V-C).
  bool Interacted(int32_t user, int32_t object) const;

  /// Keeps only the first \p fraction of users' training examples (per-user
  /// prefix truncation) — the Fig. 4 scalability sweep.
  TemporalDataset WithTrainFraction(double fraction, Rng* rng) const;

 private:
  size_t num_users_ = 0;
  size_t num_objects_ = 0;
  std::vector<SequenceExample> train_, validation_, test_;
  /// Per-user sorted object lists for Interacted().
  std::vector<std::vector<int32_t>> interacted_;
};

/// \brief Uniform sampler of objects a user has never interacted with.
class NegativeSampler {
 public:
  explicit NegativeSampler(const TemporalDataset* dataset)
      : dataset_(dataset) {}

  /// Draws one uniform negative object for the user.
  int32_t Sample(int32_t user, Rng* rng) const;

  /// Draws \p count distinct negatives (with replacement if the candidate
  /// pool is smaller than count).
  std::vector<int32_t> SampleMany(int32_t user, size_t count, Rng* rng) const;

 private:
  const TemporalDataset* dataset_;
};

/// \brief Mini-batch in the index format every model consumes.
///
/// static_ids is row-major [batch, n_static] over the static feature space;
/// dynamic_ids is row-major [batch, n_seq] over the dynamic space, top-padded
/// with -1 so the most recent object sits in the last row (Sec. III).
struct Batch {
  size_t batch_size = 0;
  size_t n_static = 0;
  size_t n_seq = 0;
  std::vector<int32_t> static_ids;
  std::vector<int32_t> dynamic_ids;
  std::vector<float> labels;

  /// Static and dynamic index vectors concatenated per sample — the layout
  /// plain set-category FM baselines use ([B, n_static + n_seq], dynamic
  /// part offset into the unified space).
  std::vector<int32_t> unified_ids;
  size_t n_unified = 0;
};

/// \brief Assembles Batches from SequenceExamples (Eq. 20/22/25 layout).
class BatchBuilder {
 public:
  BatchBuilder(const FeatureSpace& space, size_t max_seq_len)
      : space_(space), max_seq_len_(max_seq_len) {}

  /// Builds a batch; if \p target_override is non-null it must have one
  /// object per example and replaces each example's target (negative
  /// candidates for BPR / CTR sampling).
  Batch Build(const std::vector<const SequenceExample*>& examples,
              const std::vector<int32_t>* target_override = nullptr) const;

  const FeatureSpace& space() const { return space_; }
  size_t max_seq_len() const { return max_seq_len_; }

 private:
  FeatureSpace space_;
  size_t max_seq_len_;
};

}  // namespace data
}  // namespace seqfm

#endif  // SEQFM_DATA_DATASET_H_
