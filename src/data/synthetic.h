#ifndef SEQFM_DATA_SYNTHETIC_H_
#define SEQFM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/interaction.h"
#include "util/result.h"
#include "util/rng.h"

namespace seqfm {
namespace data {

/// \brief Parameters of the synthetic temporal-interaction generator.
///
/// The generator plants exactly the causal structure the paper's claims are
/// about (see DESIGN.md "Substitutions"):
///   * objects belong to latent clusters with Zipf popularity inside each
///     cluster (power-law object frequency as in the real logs);
///   * each user has a static cluster-preference distribution (recoverable
///     by any FM via the user x object interaction);
///   * each object has a small *successor set* drawn from the next cluster
///     on a ring; the next object is sampled from a mixture of (a) the
///     user's static cluster preference, (b) the successors of the *last*
///     objects in a recent window (last-item models like TFM capture only
///     the window's newest slot; full-sequence readers capture all of it),
///     and (c) the successors of the object visited `long_lag` steps
///     earlier (recoverable only by models that read the
///     whole ordered sequence, e.g. SeqFM / SASRec). Crucially, the
///     *identity* of the last object cannot be inferred from the unordered
///     history set, so set-category FMs cannot exploit (b) or (c);
///   * regression ratings combine user/object biases, static affinity and a
///     sequence-consistency term plus noise.
struct SyntheticConfig {
  std::string name = "synthetic";
  size_t num_users = 200;
  size_t num_objects = 300;
  size_t num_clusters = 10;
  size_t min_seq_len = 10;
  size_t max_seq_len = 30;
  double zipf_exponent = 0.5;
  /// Mixture weights over next-object sources; they need not sum to 1
  /// (normalized internally). `noise` adds a uniform component.
  double w_static = 0.25;
  double w_markov = 0.45;
  double w_long = 0.15;
  double noise = 0.15;
  size_t long_lag = 4;
  /// The Markov source picks an item among the last `markov_window` items
  /// (only 25% of the mass on the very last one — the paper's Fig. 1
  /// delayed-intent scenario) and emits one of its successors. A window of
  /// 1 degenerates to the pure last-item process (TFM's exact inductive
  /// bias); wider windows reward models that attend over the whole recent
  /// sequence.
  size_t markov_window = 3;
  /// Number of designated successor objects per object (drawn from the next
  /// cluster on the ring).
  size_t successors_per_object = 3;
  bool with_ratings = false;
  double rating_noise = 0.45;
  uint64_t seed = 42;
};

/// \brief Generates InteractionLogs from a SyntheticConfig.
class SyntheticDatasetGenerator {
 public:
  explicit SyntheticDatasetGenerator(SyntheticConfig config)
      : config_(std::move(config)) {}

  /// Generates the full log (already finalized). Deterministic in the seed.
  Result<InteractionLog> Generate() const;

  const SyntheticConfig& config() const { return config_; }

  /// Named presets mirroring the paper's six datasets (Table I) at reduced
  /// scale: "gowalla", "foursquare" (ranking), "trivago", "taobao"
  /// (classification), "beauty", "toys" (regression, with ratings).
  /// \p scale multiplies the user count (1.0 = default size).
  static Result<SyntheticConfig> Preset(const std::string& name,
                                        double scale = 1.0);

  /// All preset names in Table I order.
  static const std::vector<std::string>& PresetNames();

 private:
  SyntheticConfig config_;
};

}  // namespace data
}  // namespace seqfm

#endif  // SEQFM_DATA_SYNTHETIC_H_
