#include "autograd/ops.h"
#include "autograd/ops_common.h"
#include "tensor/ops.h"

namespace seqfm {
namespace autograd {

using internal::MakeNode;
using tensor::Tensor;

Variable ConcatLastDim(const std::vector<Variable>& parts) {
  SEQFM_CHECK(!parts.empty());
  const size_t batch = parts[0].dim(0);
  size_t total = 0;
  std::vector<NodePtr> parents;
  parents.reserve(parts.size());
  for (const auto& p : parts) {
    SEQFM_CHECK_EQ(p.rank(), 2u);
    SEQFM_CHECK_EQ(p.dim(0), batch);
    total += p.dim(1);
    parents.push_back(p.node());
  }
  Tensor out = internal::OutputBuffer({batch, total});
  size_t offset = 0;
  for (const auto& p : parts) {
    const size_t d = p.dim(1);
    for (size_t b = 0; b < batch; ++b) {
      const float* src = p.value().data() + b * d;
      float* dst = out.data() + b * total + offset;
      for (size_t j = 0; j < d; ++j) dst[j] = src[j];
    }
    offset += d;
  }
  auto node = MakeNode("concat_last", std::move(parents), std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, total]() {
    size_t offset = 0;
    for (auto& parent : self->parents) {
      Node* p = parent.get();
      const size_t d = p->value.dim(1);
      if (p->requires_grad) {
        p->EnsureGrad();
        for (size_t b = 0; b < batch; ++b) {
          const float* g = self->grad.data() + b * total + offset;
          float* dst = p->grad.data() + b * d;
          for (size_t j = 0; j < d; ++j) dst[j] += g[j];
        }
      }
      offset += d;
    }
  };
  return Variable(node);
}

Variable ConcatAxis1(const Variable& a, const Variable& b) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(b.rank(), 3u);
  SEQFM_CHECK_EQ(a.dim(0), b.dim(0));
  SEQFM_CHECK_EQ(a.dim(2), b.dim(2));
  const size_t batch = a.dim(0), na = a.dim(1), nb = b.dim(1), d = a.dim(2);
  Tensor out = internal::OutputBuffer({batch, na + nb, d});
  for (size_t i = 0; i < batch; ++i) {
    float* dst = out.BatchData(i);
    const float* sa = a.value().BatchData(i);
    const float* sb = b.value().BatchData(i);
    for (size_t j = 0; j < na * d; ++j) dst[j] = sa[j];
    for (size_t j = 0; j < nb * d; ++j) dst[na * d + j] = sb[j];
  }
  auto node = MakeNode("concat_axis1", {a.node(), b.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, na, nb, d]() {
    Node* pa = self->parents[0].get();
    Node* pb = self->parents[1].get();
    for (size_t i = 0; i < batch; ++i) {
      const float* g = self->grad.BatchData(i);
      if (pa->requires_grad) {
        pa->EnsureGrad();
        float* da = pa->grad.BatchData(i);
        for (size_t j = 0; j < na * d; ++j) da[j] += g[j];
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        float* db = pb->grad.BatchData(i);
        for (size_t j = 0; j < nb * d; ++j) db[j] += g[na * d + j];
      }
    }
  };
  return Variable(node);
}

namespace {
Variable ReduceAxis1(const Variable& x, float scale, const char* name) {
  SEQFM_CHECK_EQ(x.rank(), 3u);
  const size_t batch = x.dim(0), rows = x.dim(1), d = x.dim(2);
  Tensor out = internal::OutputBuffer({batch, d});
  tensor::SumAxis1(x.value(), scale, &out);
  TraceAttrs attrs;
  attrs.alpha = scale;
  auto node = MakeNode(name, {x.node()}, std::move(out), &attrs);
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, rows, d, scale]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    for (size_t b = 0; b < batch; ++b) {
      const float* g = self->grad.data() + b * d;
      float* dx = p->grad.BatchData(b);
      for (size_t i = 0; i < rows; ++i) {
        float* row = dx + i * d;
        for (size_t j = 0; j < d; ++j) row[j] += scale * g[j];
      }
    }
  };
  return Variable(node);
}
}  // namespace

Variable MeanAxis1(const Variable& x, float divisor) {
  SEQFM_CHECK_GT(divisor, 0.0f);
  return ReduceAxis1(x, 1.0f / divisor, "mean_axis1");
}

Variable SumAxis1(const Variable& x) { return ReduceAxis1(x, 1.0f, "sum_axis1"); }

Variable SliceRow(const Variable& x, size_t row) {
  SEQFM_CHECK_EQ(x.rank(), 3u);
  SEQFM_CHECK_LT(row, x.dim(1));
  const size_t batch = x.dim(0), d = x.dim(2);
  Tensor out = internal::OutputBuffer({batch, d});
  for (size_t b = 0; b < batch; ++b) {
    const float* src = x.value().BatchData(b) + row * d;
    float* dst = out.data() + b * d;
    for (size_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  TraceAttrs attrs;
  attrs.row = row;
  auto node = MakeNode("slice_row", {x.node()}, std::move(out), &attrs);
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, row, d]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    for (size_t b = 0; b < batch; ++b) {
      const float* g = self->grad.data() + b * d;
      float* dst = p->grad.BatchData(b) + row * d;
      for (size_t j = 0; j < d; ++j) dst[j] += g[j];
    }
  };
  return Variable(node);
}

Variable SumLastDimKeep(const Variable& x) {
  const size_t d = x.value().shape().back();
  const size_t rows = x.value().size() / d;
  std::vector<size_t> out_shape = x.value().shape();
  out_shape.back() = 1;
  Tensor out = internal::OutputBuffer(out_shape);
  tensor::SumLastDim(x.value(), &out);
  auto node = MakeNode("sum_last", {x.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, rows, d]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    for (size_t r = 0; r < rows; ++r) {
      const float g = self->grad.data()[r];
      float* dx = p->grad.data() + r * d;
      for (size_t j = 0; j < d; ++j) dx[j] += g;
    }
  };
  return Variable(node);
}

Variable Reshape(const Variable& x, std::vector<size_t> shape) {
  Tensor out;
  if (GradMode()) {
    // Taped path: the historical single-pass copy-construct.
    out = x.value();
    SEQFM_CHECK(out.ReshapeInPlace(std::move(shape)).ok())
        << "reshape must preserve element count";
  } else {
    // Tape-free path: copy through OutputBuffer so the buffer comes from
    // the scratch arena (reshape is all over the factored catalog program)
    // rather than the heap, and skips the zero-fill.
    size_t count = 1;
    for (size_t d : shape) count *= d;
    SEQFM_CHECK_EQ(count, x.value().size())
        << "reshape must preserve element count";
    out = internal::OutputBuffer(std::move(shape));
    const float* src = x.value().data();
    float* dst = out.data();
    const size_t n = out.size();
    for (size_t i = 0; i < n; ++i) dst[i] = src[i];
  }
  auto node = MakeNode("reshape", {x.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    // Same layout: accumulate flat.
    const size_t n = self->grad.size();
    const float* g = self->grad.data();
    float* dx = p->grad.data();
    for (size_t i = 0; i < n; ++i) dx[i] += g[i];
  };
  return Variable(node);
}

Variable ExpandRows(const Variable& x, size_t n) {
  SEQFM_CHECK_EQ(x.rank(), 2u);
  SEQFM_CHECK_GT(n, 0u);
  const size_t batch = x.dim(0), d = x.dim(1);
  Tensor out = internal::OutputBuffer({batch, n, d});
  for (size_t b = 0; b < batch; ++b) {
    const float* src = x.value().data() + b * d;
    float* dst = out.BatchData(b);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) dst[i * d + j] = src[j];
    }
  }
  auto node = MakeNode("expand_rows", {x.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, n, d]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    for (size_t b = 0; b < batch; ++b) {
      const float* g = self->grad.BatchData(b);
      float* dx = p->grad.data() + b * d;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < d; ++j) dx[j] += g[i * d + j];
      }
    }
  };
  return Variable(node);
}

namespace {
Variable ReduceAll(const Variable& x, float scale, const char* name) {
  Tensor out = internal::OutputBuffer({1});
  out.at(0) = tensor::SumAll(x.value()) * scale;
  auto node = MakeNode(name, {x.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, scale]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const float g = self->grad.at(0) * scale;
    float* dx = p->grad.data();
    const size_t n = p->grad.size();
    for (size_t i = 0; i < n; ++i) dx[i] += g;
  };
  return Variable(node);
}
}  // namespace

Variable SumAll(const Variable& x) { return ReduceAll(x, 1.0f, "sum_all"); }

Variable MeanAll(const Variable& x) {
  return ReduceAll(x, 1.0f / static_cast<float>(x.value().size()), "mean_all");
}

Variable PairwiseProductUpper(const Variable& x) {
  SEQFM_CHECK_EQ(x.rank(), 3u);
  const size_t batch = x.dim(0), n = x.dim(1), d = x.dim(2);
  SEQFM_CHECK_GE(n, 2u);
  const size_t pairs = n * (n - 1) / 2;
  Tensor out = internal::OutputBuffer({batch, pairs, d});
  for (size_t b = 0; b < batch; ++b) {
    const float* src = x.value().BatchData(b);
    float* dst = out.BatchData(b);
    size_t p = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j, ++p) {
        const float* xi = src + i * d;
        const float* xj = src + j * d;
        float* row = dst + p * d;
        for (size_t c = 0; c < d; ++c) row[c] = xi[c] * xj[c];
      }
    }
  }
  auto node = MakeNode("pairwise_upper", {x.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, n, d]() {
    Node* px = self->parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    for (size_t b = 0; b < batch; ++b) {
      const float* src = px->value.BatchData(b);
      const float* g = self->grad.BatchData(b);
      float* dx = px->grad.BatchData(b);
      size_t p = 0;
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j, ++p) {
          const float* gr = g + p * d;
          const float* xi = src + i * d;
          const float* xj = src + j * d;
          float* di = dx + i * d;
          float* dj = dx + j * d;
          for (size_t c = 0; c < d; ++c) {
            di[c] += gr[c] * xj[c];
            dj[c] += gr[c] * xi[c];
          }
        }
      }
    }
  };
  return Variable(node);
}

Variable PairwiseProductCross(const Variable& a, const Variable& b) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(b.rank(), 3u);
  SEQFM_CHECK_EQ(a.dim(0), b.dim(0));
  SEQFM_CHECK_EQ(a.dim(2), b.dim(2));
  const size_t batch = a.dim(0), h = a.dim(1), m = b.dim(1), d = a.dim(2);
  Tensor out = internal::OutputBuffer({batch, h * m, d});
  for (size_t bt = 0; bt < batch; ++bt) {
    const float* sa = a.value().BatchData(bt);
    const float* sb = b.value().BatchData(bt);
    float* dst = out.BatchData(bt);
    for (size_t i = 0; i < h; ++i) {
      for (size_t j = 0; j < m; ++j) {
        const float* xi = sa + i * d;
        const float* xj = sb + j * d;
        float* row = dst + (i * m + j) * d;
        for (size_t c = 0; c < d; ++c) row[c] = xi[c] * xj[c];
      }
    }
  }
  auto node = MakeNode("pairwise_cross", {a.node(), b.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, h, m, d]() {
    Node* pa = self->parents[0].get();
    Node* pb = self->parents[1].get();
    for (size_t bt = 0; bt < batch; ++bt) {
      const float* g = self->grad.BatchData(bt);
      const float* sa = pa->value.BatchData(bt);
      const float* sb = pb->value.BatchData(bt);
      for (size_t i = 0; i < h; ++i) {
        for (size_t j = 0; j < m; ++j) {
          const float* gr = g + (i * m + j) * d;
          if (pa->requires_grad) {
            pa->EnsureGrad();
            float* da = pa->grad.BatchData(bt) + i * d;
            const float* xj = sb + j * d;
            for (size_t c = 0; c < d; ++c) da[c] += gr[c] * xj[c];
          }
          if (pb->requires_grad) {
            pb->EnsureGrad();
            float* db = pb->grad.BatchData(bt) + j * d;
            const float* xi = sa + i * d;
            for (size_t c = 0; c < d; ++c) db[c] += gr[c] * xi[c];
          }
        }
      }
    }
  };
  return Variable(node);
}

}  // namespace autograd
}  // namespace seqfm
