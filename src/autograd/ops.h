#ifndef SEQFM_AUTOGRAD_OPS_H_
#define SEQFM_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "util/rng.h"

namespace seqfm {
namespace autograd {

/// Differentiable operations. Every function builds one graph node whose
/// backward closure implements the analytic gradient; all gradients are
/// verified against finite differences in tests/autograd_gradcheck_test.cc.

// ---------------------------------------------------------------------------
// Elementwise & broadcast arithmetic
// ---------------------------------------------------------------------------

/// c = a + b (same shape).
Variable Add(const Variable& a, const Variable& b);
/// c = a - b (same shape).
Variable Sub(const Variable& a, const Variable& b);
/// c = a ⊙ b (same shape).
Variable Mul(const Variable& a, const Variable& b);
/// c = alpha * a.
Variable Scale(const Variable& a, float alpha);
/// c = a + alpha (elementwise scalar shift).
Variable AddScalar(const Variable& a, float alpha);
/// Broadcast-add a rank-1 bias over the last dimension of x.
Variable AddBias(const Variable& x, const Variable& bias);
/// Broadcast-add a rank-2 [n, d] table over the batch dim of x [B, n, d]
/// (positional embeddings).
Variable AddBroadcastBatch(const Variable& x, const Variable& table);

/// Activations.
Variable Relu(const Variable& x);
Variable Sigmoid(const Variable& x);
Variable Tanh(const Variable& x);

// ---------------------------------------------------------------------------
// Matrix products
// ---------------------------------------------------------------------------

/// Rank-2 product: [m,k]·[k,n] -> [m,n].
Variable MatMul(const Variable& a, const Variable& b);

/// Rank-3 × rank-2 (shared weight) product: [B,n,k]·[k,m] -> [B,n,m].
Variable BmmShared(const Variable& a, const Variable& w);

/// Per-batch product with optional transposes:
/// [B,n,k]·[B,k,m] -> [B,n,m]; trans flags transpose the trailing two dims.
Variable Bmm(const Variable& a, const Variable& b, bool trans_a = false,
             bool trans_b = false);

/// Rank-2 × rank-3 left product: W [h2,h] applied per batch item of
/// p [B,h,d] -> [B,h2,d]. Used by the xDeepFM CIN layer.
Variable BmmLeftShared(const Variable& w, const Variable& p);

/// Row-wise dot product of two [B,d] tensors -> [B,1].
Variable RowDot(const Variable& a, const Variable& b);

// ---------------------------------------------------------------------------
// Softmax / normalization / regularization
// ---------------------------------------------------------------------------

/// Softmax over the last dim of (x + mask), mask broadcast over batch.
/// \p mask is a constant [rows, cols] additive tensor (entries 0 or -inf);
/// pass an empty Variable for unmasked softmax.
Variable MaskedSoftmax(const Variable& x, const Variable& mask);

/// Layer normalization over the last dimension with learnable gain/bias
/// (Eq. 16 of the paper): y = gamma ⊙ (x - mu)/sqrt(var + eps) + beta.
Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps = 1e-5f);

/// Inverted dropout. Keeps activations with probability \p keep_prob and
/// rescales by 1/keep_prob; identity when !training or keep_prob >= 1.
Variable Dropout(const Variable& x, float keep_prob, bool training, Rng* rng);

// ---------------------------------------------------------------------------
// Structural ops
// ---------------------------------------------------------------------------

/// Concatenates rank-2 [B,d_i] tensors along the last dim -> [B, sum d_i].
Variable ConcatLastDim(const std::vector<Variable>& parts);

/// Concatenates rank-3 [B,n_i,d] tensors along axis 1 -> [B, sum n_i, d]
/// (the cross-view E* = [E_static; E_dynamic], Eq. 12).
Variable ConcatAxis1(const Variable& a, const Variable& b);

/// Mean over axis 1 with an explicit divisor: [B,n,d] -> [B,d], each output
/// = (1/divisor) * sum of rows (intra-view pooling, Eq. 14).
Variable MeanAxis1(const Variable& x, float divisor);

/// Sum over axis 1: [B,n,d] -> [B,d].
Variable SumAxis1(const Variable& x);

/// Extracts row \p row from axis 1: [B,n,d] -> [B,d].
Variable SliceRow(const Variable& x, size_t row);

/// Sum over the last dim keeping a trailing 1: [B,d] -> [B,1] and
/// [B,n,d] -> [B,n,1].
Variable SumLastDimKeep(const Variable& x);

/// Reinterprets the tensor with a new shape of equal element count (row-major
/// layout is preserved, so this is free apart from one copy).
Variable Reshape(const Variable& x, std::vector<size_t> shape);

/// Repeats each row of a [B,d] tensor n times along a new axis 1 -> [B,n,d]
/// (gradient sums over the repeats). Used by DIN's candidate broadcast.
Variable ExpandRows(const Variable& x, size_t n);

/// Sum of all elements -> scalar [1].
Variable SumAll(const Variable& x);

/// Mean of all elements -> scalar [1].
Variable MeanAll(const Variable& x);

/// All ordered pairs i<j of rows multiplied elementwise:
/// [B,n,d] -> [B, n(n-1)/2, d]. Used by AFM's pairwise interaction layer.
Variable PairwiseProductUpper(const Variable& x);

/// Cross products of all row pairs from two stacks:
/// a [B,h,d], b [B,m,d] -> [B, h*m, d] with out[b, i*m+j] = a[b,i] ⊙ b[b,j].
/// Used by the xDeepFM CIN layer.
Variable PairwiseProductCross(const Variable& a, const Variable& b);

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

/// Gathers rows of \p table [V,d] by \p indices (length B*n, row-major
/// [B,n]); negative indices produce a zero row and receive no gradient
/// (padding). Result is [B,n,d]. The pointer overload does not require the
/// buffer to outlive the call (the backward closure copies when a tape is
/// recording), so serving can pass scratch-arena blocks.
Variable EmbeddingGather(const Variable& table, const int32_t* indices,
                         size_t batch, size_t n);
Variable EmbeddingGather(const Variable& table,
                         const std::vector<int32_t>& indices, size_t batch,
                         size_t n);

/// Gathers rows of a [V,1] weight column and sums per sample -> [B,1].
/// This is the first-order linear term of FMs; negative indices are skipped.
Variable EmbeddingSumGather(const Variable& weights, const int32_t* indices,
                            size_t batch, size_t n);
Variable EmbeddingSumGather(const Variable& weights,
                            const std::vector<int32_t>& indices, size_t batch,
                            size_t n);

// ---------------------------------------------------------------------------
// Losses (all return scalar [1], averaged over the batch)
// ---------------------------------------------------------------------------

/// BPR loss (Eq. 21): mean of -log sigmoid(pos - neg), inputs [B,1].
Variable BprLoss(const Variable& pos, const Variable& neg);

/// Binary cross-entropy on logits (Eq. 24): numerically stable
/// mean of softplus(x) - y*x, inputs [B,1], labels length B in {0,1}.
Variable BceWithLogitsLoss(const Variable& logits,
                           const std::vector<float>& labels);

/// Squared error loss (Eq. 26): mean of (pred - target)^2, inputs [B,1].
Variable MseLoss(const Variable& pred, const std::vector<float>& targets);

}  // namespace autograd
}  // namespace seqfm

#endif  // SEQFM_AUTOGRAD_OPS_H_
