#ifndef SEQFM_AUTOGRAD_VARIABLE_H_
#define SEQFM_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace seqfm {
namespace autograd {

/// \brief A node of the dynamically built computation graph.
///
/// Each forward op allocates one Node holding its output value, the parent
/// nodes it was computed from, and a closure that pushes the node's gradient
/// back into the parents' gradients. Nodes are reference-counted; dropping
/// the final Variable of a graph frees the whole graph while leaf parameter
/// nodes (owned by modules) survive.
class Node {
 public:
  tensor::Tensor value;
  tensor::Tensor grad;
  bool requires_grad = false;
  bool grad_allocated = false;
  /// Op name for debugging ("matmul", "softmax", ...; empty for leaves).
  std::string op;
  std::vector<std::shared_ptr<Node>> parents;
  /// Pushes this->grad into parents. Null for leaves.
  std::function<void()> backward_fn;

  /// Allocates and zeroes the gradient buffer on first use.
  void EnsureGrad() {
    if (!grad_allocated) {
      grad = tensor::Tensor::Zeros(value.shape());
      grad_allocated = true;
    }
  }

  /// grad += g (allocating if needed).
  void AccumulateGrad(const tensor::Tensor& g) {
    EnsureGrad();
    grad.AddScaled(g, 1.0f);
  }
};

using NodePtr = std::shared_ptr<Node>;

/// True while the calling thread records the computation graph (the default).
/// When false, ops still run their forward kernels but build detached nodes:
/// no parents, no backward closures, no saved intermediates — so each
/// intermediate tensor is freed as soon as its consumer finishes. This is the
/// serving fast path; results are bit-for-bit identical to the taped forward.
bool GradMode();

/// Sets the calling thread's grad mode and returns the previous value.
/// Prefer NoGradGuard; this exists for the guard and for tests.
bool SetGradMode(bool enabled);

/// \brief RAII scope that disables graph construction on the current thread.
///
/// \code
///   autograd::NoGradGuard guard;
///   Variable scores = model->Score(batch, /*training=*/false);
/// \endcode
///
/// Guards nest, and each restores the mode it found, so an inference-mode
/// forward interleaved between training steps never leaks into the tape.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(SetGradMode(false)) {}
  ~NoGradGuard() { SetGradMode(prev_); }

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// \brief Handle to a graph node; the user-facing autograd type.
///
/// Variables are cheap to copy (shared_ptr semantics). Leaf variables with
/// requires_grad=true act as trainable parameters: their value persists
/// across steps and optimizers update it in place using the accumulated
/// gradient.
class Variable {
 public:
  Variable() = default;
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

  /// Creates a leaf (no parents). Trainable iff \p requires_grad.
  static Variable Leaf(tensor::Tensor value, bool requires_grad) {
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->requires_grad = requires_grad;
    return Variable(std::move(node));
  }

  /// Creates a constant leaf (never receives gradient).
  static Variable Constant(tensor::Tensor value) {
    return Leaf(std::move(value), /*requires_grad=*/false);
  }

  bool defined() const { return node_ != nullptr; }
  const NodePtr& node() const { return node_; }

  const tensor::Tensor& value() const { return node_->value; }
  tensor::Tensor& mutable_value() { return node_->value; }

  /// Gradient accumulated by the last Backward() call. Allocates a zero
  /// buffer if backward never reached this node.
  const tensor::Tensor& grad() const {
    node_->EnsureGrad();
    return node_->grad;
  }
  tensor::Tensor& mutable_grad() {
    node_->EnsureGrad();
    return node_->grad;
  }

  bool requires_grad() const { return node_->requires_grad; }

  /// Zeroes the gradient buffer (parameters call this between steps).
  void ZeroGrad() {
    if (node_->grad_allocated) node_->grad.Zero();
  }

  /// Shape helpers forwarded to the value tensor.
  size_t rank() const { return value().rank(); }
  size_t dim(size_t i) const { return value().dim(i); }

 private:
  NodePtr node_;
};

/// Runs reverse-mode differentiation from \p root (must be scalar, i.e. a
/// single-element tensor). Seeds d(root)/d(root) = 1 and accumulates
/// gradients into every reachable node with requires_grad.
void Backward(const Variable& root);

/// Graph introspection used by tests: number of nodes reachable from root.
size_t GraphSize(const Variable& root);

}  // namespace autograd
}  // namespace seqfm

#endif  // SEQFM_AUTOGRAD_VARIABLE_H_
