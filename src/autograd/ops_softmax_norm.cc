#include <algorithm>
#include <cmath>
#include <vector>

#include "autograd/ops.h"
#include "autograd/ops_common.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace seqfm {
namespace autograd {

using internal::MakeNode;
using tensor::Tensor;

Variable MaskedSoftmax(const Variable& x, const Variable& mask) {
  Tensor out = internal::OutputBuffer(x.value().shape());
  const Tensor* mask_tensor = mask.defined() ? &mask.value() : nullptr;
  tensor::SoftmaxLastDim(x.value(), mask_tensor, &out);
  std::vector<NodePtr> parents = {x.node()};
  if (mask.defined()) parents.push_back(mask.node());
  auto node = MakeNode("masked_softmax", std::move(parents), std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* px = self->parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    const size_t cols = self->value.shape().back();
    const size_t rows = self->value.size() / cols;
    const float* p = self->value.data();
    const float* g = self->grad.data();
    float* dx = px->grad.data();
    // dx_j = p_j * (g_j - sum_k g_k p_k); masked entries have p_j = 0.
    // Rows are independent, so the row loop splits across the pool. The
    // g·p reduction goes through the dispatched lane-blocked dot.
    const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
    util::ParallelFor(rows, internal::GrainForRows(cols, internal::kMathGrain),
                      [=, &kt](size_t r0, size_t r1) {
      for (size_t r = r0; r < r1; ++r) {
        const float* pr = p + r * cols;
        const float* gr = g + r * cols;
        float* dr = dx + r * cols;
        const float dot = kt.dot(gr, pr, cols);
        for (size_t j = 0; j < cols; ++j) dr[j] += pr[j] * (gr[j] - dot);
      }
    });
  };
  return Variable(node);
}

Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps) {
  const size_t d = x.value().shape().back();
  SEQFM_CHECK_EQ(gamma.value().size(), d);
  SEQFM_CHECK_EQ(beta.value().size(), d);
  const size_t rows = x.value().size() / d;

  // The normalized activations and per-row inverse stddev are tape state:
  // only materialized when a backward pass can consume them. The tape-free
  // forward keeps the identical arithmetic in registers.
  const bool tape = internal::TapeActive({&x, &gamma, &beta});
  Tensor out = internal::OutputBuffer(x.value().shape());
  Tensor xhat = tape ? Tensor(x.value().shape()) : Tensor();
  std::vector<float> inv_std(tape ? rows : 0);
  const float* xv = x.value().data();
  const float* gv = gamma.value().data();
  const float* bv = beta.value().data();
  float* xhat_data = tape ? xhat.data() : nullptr;
  float* out_data = out.data();
  float* inv_std_data = tape ? inv_std.data() : nullptr;
  // Mean and variance use the dispatched lane-blocked reductions; the
  // normalize/affine pass is the dispatched row map. Identical bits at every
  // SIMD level and thread count.
  const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
  util::ParallelFor(rows, internal::GrainForRows(d, internal::kMathGrain),
                    [=, &kt](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* xr = xv + r * d;
      const float mean = kt.reduce_sum(xr, d) / static_cast<float>(d);
      const float var =
          kt.reduce_sum_sq_diff(xr, mean, d) / static_cast<float>(d);
      const float is = 1.0f / std::sqrt(var + eps);
      if (inv_std_data != nullptr) inv_std_data[r] = is;
      kt.layer_norm_row(xr, gv, bv, mean, is, d, out_data + r * d,
                        xhat_data != nullptr ? xhat_data + r * d : nullptr);
    }
  });

  TraceAttrs attrs;
  attrs.eps = eps;
  auto node = MakeNode("layer_norm", {x.node(), gamma.node(), beta.node()},
                       std::move(out), &attrs);
  Node* self = node.get();
  if (node->requires_grad)
    node->backward_fn = [self, d, rows, xhat = std::move(xhat),
                         inv_std = std::move(inv_std)]() {
    Node* px = self->parents[0].get();
    Node* pg = self->parents[1].get();
    Node* pb = self->parents[2].get();
    const float* g = self->grad.data();
    const float* gv = pg->value.data();
    // dgamma/dbeta reduce over rows into shared [d] buffers; that pass stays
    // serial so the accumulation order is independent of thread count. The
    // per-row dx math carries the heavy arithmetic and parallelizes cleanly.
    if (pg->requires_grad || pb->requires_grad) {
      for (size_t r = 0; r < rows; ++r) {
        const float* gr = g + r * d;
        const float* hr = xhat.data() + r * d;
        if (pg->requires_grad) {
          pg->EnsureGrad();
          float* dg = pg->grad.data();
          for (size_t j = 0; j < d; ++j) dg[j] += gr[j] * hr[j];
        }
        if (pb->requires_grad) {
          pb->EnsureGrad();
          float* db = pb->grad.data();
          for (size_t j = 0; j < d; ++j) db[j] += gr[j];
        }
      }
    }
    if (px->requires_grad) {
      px->EnsureGrad();
      float* dx_base = px->grad.data();
      const float* hbase = xhat.data();
      const float* is_base = inv_std.data();
      util::ParallelFor(rows,
                        internal::GrainForRows(d, internal::kMathGrain),
                        [=](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const float* gr = g + r * d;
          const float* hr = hbase + r * d;
          // dxhat = g ⊙ gamma;
          // dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat ⊙ xhat)).
          float mean_dh = 0.0f, mean_dh_h = 0.0f;
          for (size_t j = 0; j < d; ++j) {
            const float dh = gr[j] * gv[j];
            mean_dh += dh;
            mean_dh_h += dh * hr[j];
          }
          mean_dh /= static_cast<float>(d);
          mean_dh_h /= static_cast<float>(d);
          float* dx = dx_base + r * d;
          const float is = is_base[r];
          for (size_t j = 0; j < d; ++j) {
            const float dh = gr[j] * gv[j];
            dx[j] += is * (dh - mean_dh - hr[j] * mean_dh_h);
          }
        }
      });
    }
  };
  return Variable(node);
}

Variable Dropout(const Variable& x, float keep_prob, bool training, Rng* rng) {
  if (!training || keep_prob >= 1.0f) {
    return x;  // Identity: evaluation uses all neurons (Sec. III-F).
  }
  SEQFM_CHECK_GT(keep_prob, 0.0f);
  const size_t n = x.value().size();
  // mask entries are 0 (dropped) or 1/keep_prob (inverted dropout scaling).
  Tensor mask(x.value().shape());
  const float scale = 1.0f / keep_prob;
  float* mask_data = mask.data();
  constexpr size_t kDropoutChunk = 4096;
  constexpr size_t kDropoutParallelMin = util::kMinParallelWork;
  if (n < kDropoutParallelMin) {
    // Small tensors stay serial and keep the caller's stream untouched.
    for (size_t i = 0; i < n; ++i) {
      mask_data[i] = rng->Bernoulli(keep_prob) ? scale : 0.0f;
    }
  } else {
    // Large masks are generated in fixed-size chunks, each drawing from its
    // own child stream derived serially with Rng::SplitN BEFORE dispatch.
    // Chunk boundaries depend only on n, so for a fixed seed the mask is
    // identical at every thread count while still filling in parallel.
    const size_t num_chunks = (n + kDropoutChunk - 1) / kDropoutChunk;
    std::vector<Rng> streams = rng->SplitN(num_chunks);
    util::ParallelFor(num_chunks, 1, [&streams, mask_data, n, scale,
                                      keep_prob](size_t c0, size_t c1) {
      for (size_t c = c0; c < c1; ++c) {
        Rng& stream = streams[c];
        const size_t begin = c * kDropoutChunk;
        const size_t end = std::min(n, begin + kDropoutChunk);
        for (size_t i = begin; i < end; ++i) {
          mask_data[i] = stream.Bernoulli(keep_prob) ? scale : 0.0f;
        }
      }
    });
  }
  Tensor out = internal::OutputBuffer(x.value().shape());
  tensor::Mul(x.value(), mask, &out);
  auto node = MakeNode("dropout", {x.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad)
    node->backward_fn = [self, mask = std::move(mask)]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const size_t n = self->grad.size();
    const float* g = self->grad.data();
    const float* m = mask.data();
    float* dx = p->grad.data();
    const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
    util::ParallelFor(n, internal::kEwGrain, [=, &kt](size_t i0, size_t i1) {
      kt.madd(g + i0, m + i0, dx + i0, i1 - i0);
    });
  };
  return Variable(node);
}

}  // namespace autograd
}  // namespace seqfm
