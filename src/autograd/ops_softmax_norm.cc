#include <cmath>

#include "autograd/ops.h"
#include "autograd/ops_common.h"
#include "tensor/ops.h"

namespace seqfm {
namespace autograd {

using internal::MakeNode;
using tensor::Tensor;

Variable MaskedSoftmax(const Variable& x, const Variable& mask) {
  Tensor out(x.value().shape());
  const Tensor* mask_tensor = mask.defined() ? &mask.value() : nullptr;
  tensor::SoftmaxLastDim(x.value(), mask_tensor, &out);
  std::vector<NodePtr> parents = {x.node()};
  if (mask.defined()) parents.push_back(mask.node());
  auto node = MakeNode("masked_softmax", std::move(parents), std::move(out));
  Node* self = node.get();
  node->backward_fn = [self]() {
    Node* px = self->parents[0].get();
    if (!px->requires_grad) return;
    px->EnsureGrad();
    const size_t cols = self->value.shape().back();
    const size_t rows = self->value.size() / cols;
    const float* p = self->value.data();
    const float* g = self->grad.data();
    float* dx = px->grad.data();
    // dx_j = p_j * (g_j - sum_k g_k p_k); masked entries have p_j = 0.
    for (size_t r = 0; r < rows; ++r) {
      const float* pr = p + r * cols;
      const float* gr = g + r * cols;
      float* dr = dx + r * cols;
      float dot = 0.0f;
      for (size_t j = 0; j < cols; ++j) dot += gr[j] * pr[j];
      for (size_t j = 0; j < cols; ++j) dr[j] += pr[j] * (gr[j] - dot);
    }
  };
  return Variable(node);
}

Variable LayerNorm(const Variable& x, const Variable& gamma,
                   const Variable& beta, float eps) {
  const size_t d = x.value().shape().back();
  SEQFM_CHECK_EQ(gamma.value().size(), d);
  SEQFM_CHECK_EQ(beta.value().size(), d);
  const size_t rows = x.value().size() / d;

  Tensor out(x.value().shape());
  Tensor xhat(x.value().shape());
  std::vector<float> inv_std(rows);
  const float* xv = x.value().data();
  const float* gv = gamma.value().data();
  const float* bv = beta.value().data();
  for (size_t r = 0; r < rows; ++r) {
    const float* xr = xv + r * d;
    float mean = 0.0f;
    for (size_t j = 0; j < d; ++j) mean += xr[j];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (size_t j = 0; j < d; ++j) {
      const float c = xr[j] - mean;
      var += c * c;
    }
    var /= static_cast<float>(d);
    const float is = 1.0f / std::sqrt(var + eps);
    inv_std[r] = is;
    float* hr = xhat.data() + r * d;
    float* yr = out.data() + r * d;
    for (size_t j = 0; j < d; ++j) {
      hr[j] = (xr[j] - mean) * is;
      yr[j] = gv[j] * hr[j] + bv[j];
    }
  }

  auto node = MakeNode("layer_norm", {x.node(), gamma.node(), beta.node()},
                       std::move(out));
  Node* self = node.get();
  node->backward_fn = [self, d, rows, xhat = std::move(xhat),
                       inv_std = std::move(inv_std)]() {
    Node* px = self->parents[0].get();
    Node* pg = self->parents[1].get();
    Node* pb = self->parents[2].get();
    const float* g = self->grad.data();
    const float* gv = pg->value.data();
    for (size_t r = 0; r < rows; ++r) {
      const float* gr = g + r * d;
      const float* hr = xhat.data() + r * d;
      if (pg->requires_grad) {
        pg->EnsureGrad();
        float* dg = pg->grad.data();
        for (size_t j = 0; j < d; ++j) dg[j] += gr[j] * hr[j];
      }
      if (pb->requires_grad) {
        pb->EnsureGrad();
        float* db = pb->grad.data();
        for (size_t j = 0; j < d; ++j) db[j] += gr[j];
      }
      if (px->requires_grad) {
        px->EnsureGrad();
        // dxhat = g ⊙ gamma;
        // dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat ⊙ xhat)).
        float mean_dh = 0.0f, mean_dh_h = 0.0f;
        for (size_t j = 0; j < d; ++j) {
          const float dh = gr[j] * gv[j];
          mean_dh += dh;
          mean_dh_h += dh * hr[j];
        }
        mean_dh /= static_cast<float>(d);
        mean_dh_h /= static_cast<float>(d);
        float* dx = px->grad.data() + r * d;
        const float is = inv_std[r];
        for (size_t j = 0; j < d; ++j) {
          const float dh = gr[j] * gv[j];
          dx[j] += is * (dh - mean_dh - hr[j] * mean_dh_h);
        }
      }
    }
  };
  return Variable(node);
}

Variable Dropout(const Variable& x, float keep_prob, bool training, Rng* rng) {
  if (!training || keep_prob >= 1.0f) {
    return x;  // Identity: evaluation uses all neurons (Sec. III-F).
  }
  SEQFM_CHECK_GT(keep_prob, 0.0f);
  const size_t n = x.value().size();
  // mask entries are 0 (dropped) or 1/keep_prob (inverted dropout scaling).
  Tensor mask(x.value().shape());
  const float scale = 1.0f / keep_prob;
  for (size_t i = 0; i < n; ++i) {
    mask.data()[i] = rng->Bernoulli(keep_prob) ? scale : 0.0f;
  }
  Tensor out(x.value().shape());
  tensor::Mul(x.value(), mask, &out);
  auto node = MakeNode("dropout", {x.node()}, std::move(out));
  Node* self = node.get();
  node->backward_fn = [self, mask = std::move(mask)]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const size_t n = self->grad.size();
    const float* g = self->grad.data();
    const float* m = mask.data();
    float* dx = p->grad.data();
    for (size_t i = 0; i < n; ++i) dx[i] += g[i] * m[i];
  };
  return Variable(node);
}

}  // namespace autograd
}  // namespace seqfm
