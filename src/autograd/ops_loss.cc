#include <cmath>

#include "autograd/ops.h"
#include "autograd/ops_common.h"
#include "tensor/ops.h"

namespace seqfm {
namespace autograd {

using internal::MakeNode;
using tensor::Tensor;

Variable BprLoss(const Variable& pos, const Variable& neg) {
  SEQFM_CHECK(pos.value().SameShape(neg.value()));
  SEQFM_CHECK_EQ(pos.rank(), 2u);
  SEQFM_CHECK_EQ(pos.dim(1), 1u);
  const size_t batch = pos.dim(0);
  Tensor out({1});
  float total = 0.0f;
  for (size_t b = 0; b < batch; ++b) {
    const float diff = pos.value().at(b, 0) - neg.value().at(b, 0);
    total += -tensor::LogSigmoid(diff);
  }
  out.at(0) = total / static_cast<float>(batch);
  auto node = MakeNode("bpr_loss", {pos.node(), neg.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch]() {
    Node* pp = self->parents[0].get();
    Node* pn = self->parents[1].get();
    const float g = self->grad.at(0) / static_cast<float>(batch);
    for (size_t b = 0; b < batch; ++b) {
      const float diff = pp->value.at(b, 0) - pn->value.at(b, 0);
      // d/d(diff) of -log sigmoid(diff) = sigmoid(diff) - 1.
      const float d = (tensor::StableSigmoid(diff) - 1.0f) * g;
      if (pp->requires_grad) {
        pp->EnsureGrad();
        pp->grad.at(b, 0) += d;
      }
      if (pn->requires_grad) {
        pn->EnsureGrad();
        pn->grad.at(b, 0) -= d;
      }
    }
  };
  return Variable(node);
}

Variable BceWithLogitsLoss(const Variable& logits,
                           const std::vector<float>& labels) {
  SEQFM_CHECK_EQ(logits.rank(), 2u);
  SEQFM_CHECK_EQ(logits.dim(1), 1u);
  const size_t batch = logits.dim(0);
  SEQFM_CHECK_EQ(labels.size(), batch);
  Tensor out({1});
  float total = 0.0f;
  for (size_t b = 0; b < batch; ++b) {
    const float x = logits.value().at(b, 0);
    const float y = labels[b];
    // softplus(x) - y*x = max(x,0) - y*x + log(1 + exp(-|x|)).
    const float m = x > 0.0f ? x : 0.0f;
    total += m - y * x + std::log1p(std::exp(-std::abs(x)));
  }
  out.at(0) = total / static_cast<float>(batch);
  auto node = MakeNode("bce_loss", {logits.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, labels, batch]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const float g = self->grad.at(0) / static_cast<float>(batch);
    for (size_t b = 0; b < batch; ++b) {
      const float x = p->value.at(b, 0);
      p->grad.at(b, 0) += g * (tensor::StableSigmoid(x) - labels[b]);
    }
  };
  return Variable(node);
}

Variable MseLoss(const Variable& pred, const std::vector<float>& targets) {
  SEQFM_CHECK_EQ(pred.rank(), 2u);
  SEQFM_CHECK_EQ(pred.dim(1), 1u);
  const size_t batch = pred.dim(0);
  SEQFM_CHECK_EQ(targets.size(), batch);
  Tensor out({1});
  float total = 0.0f;
  for (size_t b = 0; b < batch; ++b) {
    const float e = pred.value().at(b, 0) - targets[b];
    total += e * e;
  }
  out.at(0) = total / static_cast<float>(batch);
  auto node = MakeNode("mse_loss", {pred.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, targets, batch]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const float g = self->grad.at(0) / static_cast<float>(batch);
    for (size_t b = 0; b < batch; ++b) {
      const float e = p->value.at(b, 0) - targets[b];
      p->grad.at(b, 0) += 2.0f * g * e;
    }
  };
  return Variable(node);
}

}  // namespace autograd
}  // namespace seqfm
