#ifndef SEQFM_AUTOGRAD_OPS_COMMON_H_
#define SEQFM_AUTOGRAD_OPS_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/trace.h"
#include "autograd/variable.h"
#include "core/scratch_arena.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace autograd {
namespace internal {

// Grain tuning for the parallel op loops lives next to ParallelFor; see
// util::kEwGrain / util::kMathGrain / util::GrainForRows.
using util::GrainForRows;
using util::kEwGrain;
using util::kMathGrain;

/// Allocates an op node: requires_grad is inherited from the parents, the
/// backward closure is attached by the caller after construction.
///
/// When the thread's grad mode is off (NoGradGuard), the node is detached:
/// parents are dropped and requires_grad stays false, so the graph is never
/// retained and every op file's `if (node->requires_grad)` backward guard
/// skips closure construction and tape buffers. Callers must gate backward
/// attachment on node->requires_grad, never on the parents directly.
inline NodePtr MakeNode(std::string op, std::vector<NodePtr> parents,
                        tensor::Tensor value,
                        const TraceAttrs* attrs = nullptr) {
  auto node = std::make_shared<Node>();
  node->op = std::move(op);
  node->value = std::move(value);
  // The IR tracer sees every op here, before the no-grad early return drops
  // the parents (tracing always runs tape-free).
  if (TracingActive()) TraceRecord(node, parents, attrs);
  if (!GradMode()) return node;
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  return node;
}

/// Output tensor for a kernel that overwrites every element. The taped path
/// keeps the historical zero-filled allocation. The tape-free path skips the
/// fill, and — inside a core::ScratchScope (the serving request scopes in
/// serve::Predictor) — skips the heap too, bump-allocating from the
/// thread's ScratchArena so a steady-state request performs zero tensor
/// heap allocations. Either way the kernel writes the same values, so
/// parity across modes is bit-for-bit. Arena-backed tensors must not
/// outlive their scope (ScratchScope documents the escape rules).
inline tensor::Tensor OutputBuffer(std::vector<size_t> shape) {
  if (GradMode()) return tensor::Tensor(std::move(shape));
  // While a trace is being recorded the instructions keep every node (and so
  // its value) alive past the enclosing scratch scope, so outputs must own
  // their storage; the arena would recycle it out from under the compiler.
  if (core::ScratchScopeActive() && !TracingActive()) {
    size_t count = 1;
    for (size_t d : shape) count *= d;
    float* buf = core::ThreadScratchArena().AllocateFloats(count);
    return tensor::Tensor::WrapExternal(std::move(shape), buf, count);
  }
  return tensor::Tensor::Uninitialized(std::move(shape));
}

/// True when the op being built must record tape state (saved intermediates,
/// backward closures) for at least one of its inputs.
inline bool TapeActive(std::initializer_list<const Variable*> inputs) {
  if (!GradMode()) return false;
  for (const Variable* v : inputs) {
    if (v->defined() && v->requires_grad()) return true;
  }
  return false;
}

}  // namespace internal
}  // namespace autograd
}  // namespace seqfm

#endif  // SEQFM_AUTOGRAD_OPS_COMMON_H_
