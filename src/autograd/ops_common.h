#ifndef SEQFM_AUTOGRAD_OPS_COMMON_H_
#define SEQFM_AUTOGRAD_OPS_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace autograd {
namespace internal {

// Grain tuning for the parallel op loops lives next to ParallelFor; see
// util::kEwGrain / util::kMathGrain / util::GrainForRows.
using util::GrainForRows;
using util::kEwGrain;
using util::kMathGrain;

/// Allocates an op node: requires_grad is inherited from the parents, the
/// backward closure is attached by the caller after construction.
inline NodePtr MakeNode(std::string op, std::vector<NodePtr> parents,
                        tensor::Tensor value) {
  auto node = std::make_shared<Node>();
  node->op = std::move(op);
  node->value = std::move(value);
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  return node;
}

}  // namespace internal
}  // namespace autograd
}  // namespace seqfm

#endif  // SEQFM_AUTOGRAD_OPS_COMMON_H_
