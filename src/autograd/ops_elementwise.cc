#include <cmath>

#include "autograd/ops.h"
#include "autograd/ops_common.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace seqfm {
namespace autograd {

using internal::MakeNode;
using tensor::Tensor;

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = internal::OutputBuffer(a.value().shape());
  tensor::Add(a.value(), b.value(), &out);
  auto node = MakeNode("add", {a.node(), b.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    for (int i = 0; i < 2; ++i) {
      Node* p = self->parents[i].get();
      if (p->requires_grad) p->AccumulateGrad(self->grad);
    }
  };
  return Variable(node);
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = internal::OutputBuffer(a.value().shape());
  tensor::Sub(a.value(), b.value(), &out);
  auto node = MakeNode("sub", {a.node(), b.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* pa = self->parents[0].get();
    Node* pb = self->parents[1].get();
    if (pa->requires_grad) pa->AccumulateGrad(self->grad);
    if (pb->requires_grad) {
      pb->EnsureGrad();
      pb->grad.AddScaled(self->grad, -1.0f);
    }
  };
  return Variable(node);
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = internal::OutputBuffer(a.value().shape());
  tensor::Mul(a.value(), b.value(), &out);
  auto node = MakeNode("mul", {a.node(), b.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* pa = self->parents[0].get();
    Node* pb = self->parents[1].get();
    const size_t n = self->grad.size();
    const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
    if (pa->requires_grad) {
      pa->EnsureGrad();
      const float* g = self->grad.data();
      const float* bv = pb->value.data();
      float* da = pa->grad.data();
      util::ParallelFor(n, internal::kEwGrain, [=, &kt](size_t i0, size_t i1) {
        kt.madd(g + i0, bv + i0, da + i0, i1 - i0);
      });
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      const float* g = self->grad.data();
      const float* av = pa->value.data();
      float* db = pb->grad.data();
      util::ParallelFor(n, internal::kEwGrain, [=, &kt](size_t i0, size_t i1) {
        kt.madd(g + i0, av + i0, db + i0, i1 - i0);
      });
    }
  };
  return Variable(node);
}

Variable Scale(const Variable& a, float alpha) {
  Tensor out = internal::OutputBuffer(a.value().shape());
  {
    const float* x = a.value().data();
    float* y = out.data();
    const size_t n = out.size();
    const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
    util::ParallelFor(n, internal::kEwGrain, [=, &kt](size_t i0, size_t i1) {
      kt.scale(alpha, x + i0, y + i0, i1 - i0);
    });
  }
  TraceAttrs attrs;
  attrs.alpha = alpha;
  auto node = MakeNode("scale", {a.node()}, std::move(out), &attrs);
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, alpha]() {
    Node* p = self->parents[0].get();
    if (p->requires_grad) {
      p->EnsureGrad();
      p->grad.AddScaled(self->grad, alpha);
    }
  };
  return Variable(node);
}

Variable AddScalar(const Variable& a, float alpha) {
  Tensor out = internal::OutputBuffer(a.value().shape());
  {
    const float* x = a.value().data();
    float* y = out.data();
    for (size_t i = 0; i < out.size(); ++i) y[i] = x[i] + alpha;
  }
  TraceAttrs attrs;
  attrs.alpha = alpha;
  auto node = MakeNode("add_scalar", {a.node()}, std::move(out), &attrs);
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* p = self->parents[0].get();
    if (p->requires_grad) p->AccumulateGrad(self->grad);
  };
  return Variable(node);
}

Variable AddBias(const Variable& x, const Variable& bias) {
  Tensor out = internal::OutputBuffer(x.value().shape());
  tensor::AddBiasLastDim(x.value(), bias.value(), &out);
  auto node = MakeNode("add_bias", {x.node(), bias.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* px = self->parents[0].get();
    Node* pb = self->parents[1].get();
    if (px->requires_grad) px->AccumulateGrad(self->grad);
    if (pb->requires_grad) {
      pb->EnsureGrad();
      const size_t d = pb->value.dim(0);
      const size_t rows = self->grad.size() / d;
      const float* g = self->grad.data();
      float* db = pb->grad.data();
      for (size_t r = 0; r < rows; ++r) {
        for (size_t j = 0; j < d; ++j) db[j] += g[r * d + j];
      }
    }
  };
  return Variable(node);
}

Variable AddBroadcastBatch(const Variable& x, const Variable& table) {
  SEQFM_CHECK_EQ(x.rank(), 3u);
  SEQFM_CHECK_EQ(table.rank(), 2u);
  SEQFM_CHECK_EQ(x.dim(1), table.dim(0));
  SEQFM_CHECK_EQ(x.dim(2), table.dim(1));
  const size_t batch = x.dim(0), rows = x.dim(1), d = x.dim(2);
  Tensor out = internal::OutputBuffer(x.value().shape());
  const float* src = table.value().data();
  util::ParallelFor(batch, internal::GrainForRows(rows * d, internal::kEwGrain),
                    [&out, &x, src, rows, d](size_t b0, size_t b1) {
    for (size_t b = b0; b < b1; ++b) {
      const float* xb = x.value().BatchData(b);
      float* dst = out.BatchData(b);
      for (size_t i = 0; i < rows * d; ++i) dst[i] = xb[i] + src[i];
    }
  });
  auto node =
      MakeNode("add_broadcast_batch", {x.node(), table.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, rows, d]() {
    Node* px = self->parents[0].get();
    Node* pt = self->parents[1].get();
    if (px->requires_grad) px->AccumulateGrad(self->grad);
    if (pt->requires_grad) {
      pt->EnsureGrad();
      // The table gradient sums over the batch into one shared buffer; it
      // stays serial so the reduction order never depends on thread count.
      float* dt = pt->grad.data();
      for (size_t b = 0; b < batch; ++b) {
        const float* g = self->grad.BatchData(b);
        for (size_t i = 0; i < rows * d; ++i) dt[i] += g[i];
      }
    }
  };
  return Variable(node);
}

Variable Relu(const Variable& x) {
  Tensor out = internal::OutputBuffer(x.value().shape());
  tensor::Relu(x.value(), &out);
  auto node = MakeNode("relu", {x.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const size_t n = self->grad.size();
    const float* g = self->grad.data();
    const float* xv = p->value.data();
    float* dx = p->grad.data();
    util::ParallelFor(n, internal::kEwGrain, [=](size_t i0, size_t i1) {
      for (size_t i = i0; i < i1; ++i) {
        if (xv[i] > 0.0f) dx[i] += g[i];
      }
    });
  };
  return Variable(node);
}

Variable Sigmoid(const Variable& x) {
  Tensor out = internal::OutputBuffer(x.value().shape());
  tensor::Sigmoid(x.value(), &out);
  auto node = MakeNode("sigmoid", {x.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const size_t n = self->grad.size();
    const float* g = self->grad.data();
    const float* y = self->value.data();
    float* dx = p->grad.data();
    util::ParallelFor(n, internal::kEwGrain, [=](size_t i0, size_t i1) {
      for (size_t i = i0; i < i1; ++i) dx[i] += g[i] * y[i] * (1.0f - y[i]);
    });
  };
  return Variable(node);
}

Variable Tanh(const Variable& x) {
  Tensor out = internal::OutputBuffer(x.value().shape());
  tensor::Tanh(x.value(), &out);
  auto node = MakeNode("tanh", {x.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const size_t n = self->grad.size();
    const float* g = self->grad.data();
    const float* y = self->value.data();
    float* dx = p->grad.data();
    util::ParallelFor(n, internal::kEwGrain, [=](size_t i0, size_t i1) {
      for (size_t i = i0; i < i1; ++i) dx[i] += g[i] * (1.0f - y[i] * y[i]);
    });
  };
  return Variable(node);
}

}  // namespace autograd
}  // namespace seqfm
