#ifndef SEQFM_AUTOGRAD_GRADCHECK_H_
#define SEQFM_AUTOGRAD_GRADCHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace seqfm {
namespace autograd {

/// Outcome of a finite-difference gradient verification.
struct GradCheckReport {
  bool passed = true;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  /// Flat element index (within the offending input) of the worst mismatch.
  size_t worst_input = 0;
  size_t worst_element = 0;
};

/// \brief Verifies analytic gradients of a scalar-valued function against
/// central finite differences.
///
/// \p fn rebuilds the graph from the given leaves and returns a scalar
/// Variable; it is invoked repeatedly with perturbed leaf values. Leaves must
/// have requires_grad=true. The check passes when for every element
/// |analytic - numeric| <= atol + rtol * |numeric|.
GradCheckReport GradCheck(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> leaves, float eps = 1e-2f, float atol = 1e-2f,
    float rtol = 5e-2f);

}  // namespace autograd
}  // namespace seqfm

#endif  // SEQFM_AUTOGRAD_GRADCHECK_H_
