#include "autograd/ops.h"
#include "autograd/ops_common.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace seqfm {
namespace autograd {

using internal::MakeNode;
using tensor::Tensor;

Variable MatMul(const Variable& a, const Variable& b) {
  SEQFM_CHECK_EQ(a.rank(), 2u);
  SEQFM_CHECK_EQ(b.rank(), 2u);
  Tensor out = internal::OutputBuffer({a.dim(0), b.dim(1)});
  tensor::MatMul(a.value(), b.value(), &out);
  auto node = MakeNode("matmul", {a.node(), b.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* pa = self->parents[0].get();
    Node* pb = self->parents[1].get();
    // dA = dC · B^T, dB = A^T · dC
    if (pa->requires_grad) {
      pa->EnsureGrad();
      tensor::MatMul(self->grad, pb->value, &pa->grad, /*trans_a=*/false,
                     /*trans_b=*/true, /*accumulate=*/true);
    }
    if (pb->requires_grad) {
      pb->EnsureGrad();
      tensor::MatMul(pa->value, self->grad, &pb->grad, /*trans_a=*/true,
                     /*trans_b=*/false, /*accumulate=*/true);
    }
  };
  return Variable(node);
}

Variable BmmShared(const Variable& a, const Variable& w) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(w.rank(), 2u);
  SEQFM_CHECK_EQ(a.dim(2), w.dim(0));
  Tensor out = internal::OutputBuffer({a.dim(0), a.dim(1), w.dim(1)});
  tensor::BatchedMatMulShared(a.value(), w.value(), &out);
  auto node = MakeNode("bmm_shared", {a.node(), w.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self]() {
    Node* pa = self->parents[0].get();
    Node* pw = self->parents[1].get();
    const size_t rows = pa->value.dim(0) * pa->value.dim(1);
    const size_t k = pa->value.dim(2);
    const size_t n = pw->value.dim(1);
    // Treat [B,n,k] as flattened [B*n,k]: dA = dC · W^T, dW = A^T · dC.
    if (pa->requires_grad) {
      pa->EnsureGrad();
      tensor::Gemm(self->grad.data(), pw->value.data(), pa->grad.data(), rows,
                   n, k, /*trans_a=*/false, /*trans_b=*/true,
                   /*accumulate=*/true);
    }
    if (pw->requires_grad) {
      pw->EnsureGrad();
      tensor::Gemm(pa->value.data(), self->grad.data(), pw->grad.data(), k,
                   rows, n, /*trans_a=*/true, /*trans_b=*/false,
                   /*accumulate=*/true);
    }
  };
  return Variable(node);
}

Variable Bmm(const Variable& a, const Variable& b, bool trans_a,
             bool trans_b) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(b.rank(), 3u);
  const size_t batch = a.dim(0);
  const size_t m = trans_a ? a.dim(2) : a.dim(1);
  const size_t k = trans_a ? a.dim(1) : a.dim(2);
  const size_t n = trans_b ? b.dim(1) : b.dim(2);
  Tensor out = internal::OutputBuffer({batch, m, n});
  tensor::BatchedMatMul(a.value(), b.value(), &out, trans_a, trans_b);
  TraceAttrs attrs;
  attrs.trans_a = trans_a;
  attrs.trans_b = trans_b;
  auto node = MakeNode("bmm", {a.node(), b.node()}, std::move(out), &attrs);
  Node* self = node.get();
  if (node->requires_grad)
    node->backward_fn = [self, trans_a, trans_b, batch, m, k, n]() {
    Node* pa = self->parents[0].get();
    Node* pb = self->parents[1].get();
    if (pa->requires_grad) pa->EnsureGrad();
    if (pb->requires_grad) pb->EnsureGrad();
    // For C = A'·B' (primed = possibly transposed):
    //   dA' = dC·B'^T and dB' = A'^T·dC, then un-transpose:
    //   trans_a ? dA = (dA')^T = B'·dC^T : dA = dC·B'^T
    // Each batch item owns disjoint slices of dA and dB, so the batch loop
    // splits across the pool (the inner Gemms then run inline).
    const size_t per_item = m * n * k;
    util::ParallelFor(batch,
                      internal::GrainForRows(per_item, util::kMinParallelWork),
                      [=](size_t b0, size_t b1) {
    for (size_t i = b0; i < b1; ++i) {
      const float* ga = self->grad.BatchData(i);
      const float* av = pa->value.BatchData(i);
      const float* bv = pb->value.BatchData(i);
      if (pa->requires_grad) {
        float* da = pa->grad.BatchData(i);
        if (!trans_a) {
          // dA[m,k] += dC[m,n] · (B')^T; B' is [k,n]:
          //   trans_b=false: B is [k,n], use trans_b=true on raw B.
          //   trans_b=true:  B is [n,k] and B' = B^T, so (B')^T = B.
          tensor::Gemm(ga, bv, da, m, n, k, false, !trans_b, true);
        } else {
          // A is [k,m]; dA[k,m] += B'[k,n] · dC^T[n,m].
          if (!trans_b) {
            tensor::Gemm(bv, ga, da, k, n, m, false, true, true);
          } else {
            tensor::Gemm(bv, ga, da, k, n, m, true, true, true);
          }
        }
      }
      if (pb->requires_grad) {
        float* db = pb->grad.BatchData(i);
        if (!trans_b) {
          // B is [k,n]; dB[k,n] += (A')^T[k,m] · dC[m,n].
          tensor::Gemm(av, ga, db, k, m, n, !trans_a, false, true);
        } else {
          // B is [n,k], B' = B^T; dB[n,k] += dC^T[n,m] · A'[m,k]
          //   = (dC^T · A'). Compute as Gemm with trans on dC.
          if (!trans_a) {
            tensor::Gemm(ga, av, db, n, m, k, true, false, true);
          } else {
            // A' = A^T with A [k,m]: dB[n,k] += dC^T[n,m] · A^T[m,k].
            tensor::Gemm(ga, av, db, n, m, k, true, true, true);
          }
        }
      }
    }
    });
  };
  return Variable(node);
}

Variable BmmLeftShared(const Variable& w, const Variable& p) {
  SEQFM_CHECK_EQ(w.rank(), 2u);
  SEQFM_CHECK_EQ(p.rank(), 3u);
  SEQFM_CHECK_EQ(w.dim(1), p.dim(1));
  const size_t batch = p.dim(0);
  const size_t h2 = w.dim(0), h = w.dim(1), d = p.dim(2);
  Tensor out = internal::OutputBuffer({batch, h2, d});
  util::ParallelFor(batch, internal::GrainForRows(h2 * h * d, util::kMinParallelWork),
                    [&, h2, h, d](size_t b0, size_t b1) {
    for (size_t b = b0; b < b1; ++b) {
      tensor::Gemm(w.value().data(), p.value().BatchData(b), out.BatchData(b),
                   h2, h, d, false, false, false);
    }
  });
  auto node = MakeNode("bmm_left_shared", {w.node(), p.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, h2, h, d]() {
    Node* pw = self->parents[0].get();
    Node* pp = self->parents[1].get();
    if (pw->requires_grad) {
      pw->EnsureGrad();
      // dW[h2,h] += dC[h2,d] · P^T[d,h] summed over the batch into one
      // shared buffer; serial so the reduction order never depends on
      // thread count.
      for (size_t b = 0; b < batch; ++b) {
        tensor::Gemm(self->grad.BatchData(b), pp->value.BatchData(b),
                     pw->grad.data(), h2, d, h, false, true, true);
      }
    }
    if (pp->requires_grad) {
      pp->EnsureGrad();
      // dP[h,d] += W^T[h,h2] · dC[h2,d]: disjoint per batch item.
      util::ParallelFor(batch,
                        internal::GrainForRows(h * h2 * d, util::kMinParallelWork),
                        [=](size_t b0, size_t b1) {
        for (size_t b = b0; b < b1; ++b) {
          tensor::Gemm(pw->value.data(), self->grad.BatchData(b),
                       pp->grad.BatchData(b), h, h2, d, true, false, true);
        }
      });
    }
  };
  return Variable(node);
}

Variable RowDot(const Variable& a, const Variable& b) {
  SEQFM_CHECK_EQ(a.rank(), 2u);
  SEQFM_CHECK(a.value().SameShape(b.value()));
  const size_t batch = a.dim(0), d = a.dim(1);
  Tensor out = internal::OutputBuffer({batch, 1});
  const float* av = a.value().data();
  const float* bv = b.value().data();
  float* out_data = out.data();
  // One dispatched lane-blocked dot per row.
  const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
  util::ParallelFor(batch, internal::GrainForRows(d, internal::kEwGrain),
                    [=, &kt](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      out_data[i] = kt.dot(av + i * d, bv + i * d, d);
    }
  });
  auto node = MakeNode("row_dot", {a.node(), b.node()}, std::move(out));
  Node* self = node.get();
  if (node->requires_grad) node->backward_fn = [self, batch, d]() {
    Node* pa = self->parents[0].get();
    Node* pb = self->parents[1].get();
    if (pa->requires_grad) pa->EnsureGrad();
    if (pb->requires_grad) pb->EnsureGrad();
    util::ParallelFor(batch, internal::GrainForRows(d, internal::kEwGrain),
                      [=](size_t i0, size_t i1) {
      const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
      for (size_t i = i0; i < i1; ++i) {
        const float g = self->grad.at(i, 0);
        if (pa->requires_grad) {
          kt.axpy(g, pb->value.data() + i * d, pa->grad.data() + i * d, d);
        }
        if (pb->requires_grad) {
          kt.axpy(g, pa->value.data() + i * d, pb->grad.data() + i * d, d);
        }
      }
    });
  };
  return Variable(node);
}

}  // namespace autograd
}  // namespace seqfm
