#ifndef SEQFM_AUTOGRAD_TRACE_H_
#define SEQFM_AUTOGRAD_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace seqfm {
namespace autograd {

/// \brief Trace hooks: how the serving compiler (src/ir/) observes the eager
/// forward.
///
/// The IR tracer runs a model's tape-free forward once with a thread-local
/// recording sink armed. internal::MakeNode calls TraceRecord for every op
/// node it builds — before the no-grad early return, so the parents are
/// visible even though the detached node drops them — and ops whose semantics
/// are not recoverable from shapes alone (scales, slices, gathers, ...) pass
/// a TraceAttrs alongside. The hook costs one thread-local load when no trace
/// is active, so training and plain serving never notice it (pinned by the
/// loss-curve invariance test in tests/ir_test.cc).
///
/// The sink itself lives in src/ir/trace.cc; this header only breaks the
/// dependency cycle (ir depends on autograd, not vice versa).

/// Per-op scalar attributes the tracer cannot derive from the recorded
/// shapes. Ops fill only the fields that apply.
struct TraceAttrs {
  /// scale / add_scalar alpha; mean_axis1 records 1/divisor here.
  float alpha = 0.0f;
  /// layer_norm epsilon.
  float eps = 0.0f;
  /// slice_row row index.
  size_t row = 0;
  /// bmm transpose flags.
  bool trans_a = false;
  bool trans_b = false;
  /// embedding gathers: the index matrix ([idx_batch, idx_n] row-major) and
  /// its logical shape. The pointer is only dereferenced synchronously inside
  /// TraceRecord (the tracer copies what it needs).
  const int32_t* indices = nullptr;
  size_t idx_batch = 0;
  size_t idx_n = 0;
};

/// True when the current thread has a recording sink armed.
bool TracingActive();

/// Records one executed op into the active sink (no-op when none is armed).
/// \p parents is the op's input nodes in positional order; \p node already
/// carries op name and output value.
void TraceRecord(const NodePtr& node, const std::vector<NodePtr>& parents,
                 const TraceAttrs* attrs);

/// How a Variable::Constant reachable from a serving forward may be handled
/// by the compiler. Constants with no annotation poison the trace (the
/// tracer cannot know whether their value depends on the request), which
/// makes the predictor fall back to the eager path for that model.
enum class ConstantKind : uint8_t {
  /// Fixed at model construction (causal/cross/zero masks): the compiler
  /// captures the tensor by value.
  kCaptureValue = 0,
  /// nn::MakeBatchPaddingMask(dynamic_ids, batch, n, causal): depends only
  /// on the request history; re-materialized by the executor.
  kPaddingMask = 1,
  /// nn::MakeHistoryPaddingMask(dynamic_ids, batch, n) ([batch, n] additive
  /// mask, DIN): depends only on the request history.
  kHistoryMask = 2,
  /// core::SeqFm's padding-aware cross-attention mask
  /// ([2, 2 + n] additive mask): depends only on the request history.
  kCrossPaddingMask = 3,
  /// Tensor::Zeros of a batch-scaled shape (GRU initial state).
  kZeroState = 4,
};

/// Declares how the constant \p v was built so the tracer can classify it.
/// For the input-derived kinds the builder passes the same \p causal flag it
/// was called with (unused otherwise). The annotation is stamped on the node
/// itself — not the sink — so constants built at model-construction time,
/// before any trace exists, are classified correctly by every later trace.
void TraceAnnotateConstant(const Variable& v, ConstantKind kind,
                           bool causal = false);

}  // namespace autograd
}  // namespace seqfm

#endif  // SEQFM_AUTOGRAD_TRACE_H_
