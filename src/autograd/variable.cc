#include "autograd/variable.h"

#include <unordered_set>

namespace seqfm {
namespace autograd {

namespace {

// Thread-scoped so a serving thread can run tape-free while a training
// thread keeps recording; NoGradGuard restores the previous value on exit.
thread_local bool g_grad_mode = true;

}  // namespace

bool GradMode() { return g_grad_mode; }

bool SetGradMode(bool enabled) {
  const bool prev = g_grad_mode;
  g_grad_mode = enabled;
  return prev;
}

namespace {

// Iterative post-order DFS producing a topological order (parents before
// children in the returned vector; we then walk it backwards).
void TopoSort(Node* root, std::vector<Node*>* order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order->push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Variable& root) {
  SEQFM_CHECK(root.defined());
  SEQFM_CHECK_EQ(root.value().size(), 1u)
      << "Backward requires a scalar root";
  std::vector<Node*> order;
  TopoSort(root.node().get(), &order);

  // Seed the root gradient.
  Node* root_node = root.node().get();
  root_node->EnsureGrad();
  root_node->grad.Fill(1.0f);

  // Post-order means parents come before children; reverse iteration visits
  // each node only after all of its consumers have contributed gradient.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->requires_grad) {
      node->EnsureGrad();
      node->backward_fn();
    }
  }
}

size_t GraphSize(const Variable& root) {
  if (!root.defined()) return 0;
  std::vector<Node*> order;
  TopoSort(root.node().get(), &order);
  return order.size();
}

}  // namespace autograd
}  // namespace seqfm
