#include "autograd/gradcheck.h"

#include <cmath>

namespace seqfm {
namespace autograd {

GradCheckReport GradCheck(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> leaves, float eps, float atol, float rtol) {
  GradCheckReport report;

  // Analytic pass.
  for (auto& leaf : leaves) leaf.ZeroGrad();
  Variable loss = fn(leaves);
  Backward(loss);
  std::vector<tensor::Tensor> analytic;
  analytic.reserve(leaves.size());
  for (auto& leaf : leaves) analytic.push_back(leaf.grad());

  // Numeric pass: central differences, one element at a time.
  for (size_t li = 0; li < leaves.size(); ++li) {
    auto& leaf = leaves[li];
    float* data = leaf.mutable_value().data();
    const size_t n = leaf.value().size();
    for (size_t i = 0; i < n; ++i) {
      const float saved = data[i];
      data[i] = saved + eps;
      const float up = fn(leaves).value().at(0);
      data[i] = saved - eps;
      const float down = fn(leaves).value().at(0);
      data[i] = saved;
      const float numeric = (up - down) / (2.0f * eps);
      const float got = analytic[li].data()[i];
      const float abs_err = std::abs(got - numeric);
      const float rel_err = abs_err / std::max(1e-8f, std::abs(numeric));
      if (abs_err > report.max_abs_error) {
        report.max_abs_error = abs_err;
        report.worst_input = li;
        report.worst_element = i;
      }
      report.max_rel_error = std::max(report.max_rel_error, rel_err);
      if (abs_err > atol + rtol * std::abs(numeric)) {
        report.passed = false;
      }
    }
  }
  return report;
}

}  // namespace autograd
}  // namespace seqfm
