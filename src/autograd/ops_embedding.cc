#include "autograd/ops.h"
#include "autograd/ops_common.h"

namespace seqfm {
namespace autograd {

using internal::MakeNode;
using tensor::Tensor;

Variable EmbeddingGather(const Variable& table,
                         const std::vector<int32_t>& indices, size_t batch,
                         size_t n) {
  SEQFM_CHECK_EQ(table.rank(), 2u);
  SEQFM_CHECK_EQ(indices.size(), batch * n);
  const size_t vocab = table.dim(0), d = table.dim(1);
  Tensor out({batch, n, d});
  const float* tv = table.value().data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int32_t idx = indices[i];
    float* dst = out.data() + i * d;
    if (idx < 0) continue;  // padding -> zero row (already zeroed)
    SEQFM_CHECK_LT(static_cast<size_t>(idx), vocab);
    const float* src = tv + static_cast<size_t>(idx) * d;
    for (size_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  auto node = MakeNode("embedding_gather", {table.node()}, std::move(out));
  Node* self = node.get();
  node->backward_fn = [self, indices, d]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const float* g = self->grad.data();
    float* dt = p->grad.data();
    for (size_t i = 0; i < indices.size(); ++i) {
      const int32_t idx = indices[i];
      if (idx < 0) continue;
      const float* gr = g + i * d;
      float* dst = dt + static_cast<size_t>(idx) * d;
      for (size_t j = 0; j < d; ++j) dst[j] += gr[j];
    }
  };
  return Variable(node);
}

Variable EmbeddingSumGather(const Variable& weights,
                            const std::vector<int32_t>& indices, size_t batch,
                            size_t n) {
  SEQFM_CHECK_EQ(weights.rank(), 2u);
  SEQFM_CHECK_EQ(weights.dim(1), 1u);
  SEQFM_CHECK_EQ(indices.size(), batch * n);
  const size_t vocab = weights.dim(0);
  Tensor out({batch, 1});
  const float* wv = weights.value().data();
  for (size_t b = 0; b < batch; ++b) {
    float acc = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      const int32_t idx = indices[b * n + i];
      if (idx < 0) continue;
      SEQFM_CHECK_LT(static_cast<size_t>(idx), vocab);
      acc += wv[idx];
    }
    out.at(b, 0) = acc;
  }
  auto node = MakeNode("embedding_sum_gather", {weights.node()}, std::move(out));
  Node* self = node.get();
  node->backward_fn = [self, indices, batch, n]() {
    Node* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    float* dw = p->grad.data();
    for (size_t b = 0; b < batch; ++b) {
      const float g = self->grad.at(b, 0);
      for (size_t i = 0; i < n; ++i) {
        const int32_t idx = indices[b * n + i];
        if (idx < 0) continue;
        dw[idx] += g;
      }
    }
  };
  return Variable(node);
}

}  // namespace autograd
}  // namespace seqfm
