#include "autograd/ops.h"
#include "autograd/ops_common.h"

namespace seqfm {
namespace autograd {

using internal::MakeNode;
using tensor::Tensor;

Variable EmbeddingGather(const Variable& table, const int32_t* indices,
                         size_t batch, size_t n) {
  SEQFM_CHECK_EQ(table.rank(), 2u);
  const size_t vocab = table.dim(0), d = table.dim(1);
  const size_t count = batch * n;
  Tensor out = internal::OutputBuffer({batch, n, d});
  const float* tv = table.value().data();
  float* out_data = out.data();
  // Gather rows are disjoint writes, so the index loop splits freely.
  util::ParallelFor(count, internal::GrainForRows(d, internal::kEwGrain),
                    [indices, out_data, tv, vocab, d](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const int32_t idx = indices[i];
      float* dst = out_data + i * d;
      if (idx < 0) {  // padding -> zero row (output may be uninitialized)
        for (size_t j = 0; j < d; ++j) dst[j] = 0.0f;
        continue;
      }
      SEQFM_CHECK_LT(static_cast<size_t>(idx), vocab);
      const float* src = tv + static_cast<size_t>(idx) * d;
      for (size_t j = 0; j < d; ++j) dst[j] = src[j];
    }
  });
  TraceAttrs attrs;
  attrs.indices = indices;
  attrs.idx_batch = batch;
  attrs.idx_n = n;
  auto node =
      MakeNode("embedding_gather", {table.node()}, std::move(out), &attrs);
  Node* self = node.get();
  // The caller's index buffer may not outlive the node (serving reuses a
  // scratch-arena block), so the backward closure owns a copy; tape-free
  // callers skip it entirely.
  if (node->requires_grad) {
    std::vector<int32_t> owned(indices, indices + count);
    node->backward_fn = [self, owned = std::move(owned), d]() {
      Node* p = self->parents[0].get();
      if (!p->requires_grad) return;
      p->EnsureGrad();
      const float* g = self->grad.data();
      float* dt = p->grad.data();
      // Scatter-add: duplicate indices collide on table rows, so the split is
      // over COLUMNS of the embedding dimension — each chunk scans every index
      // but owns a disjoint column slice. No atomics are needed and each
      // dt[row, j] accumulates in the same (ascending i) order for every
      // thread count, keeping training bit-for-bit reproducible.
      util::ParallelFor(d, internal::GrainForRows(owned.size(),
                                                  internal::kEwGrain),
                        [&owned, g, dt, d](size_t j0, size_t j1) {
        for (size_t i = 0; i < owned.size(); ++i) {
          const int32_t idx = owned[i];
          if (idx < 0) continue;
          const float* gr = g + i * d;
          float* dst = dt + static_cast<size_t>(idx) * d;
          for (size_t j = j0; j < j1; ++j) dst[j] += gr[j];
        }
      });
    };
  }
  return Variable(node);
}

Variable EmbeddingGather(const Variable& table,
                         const std::vector<int32_t>& indices, size_t batch,
                         size_t n) {
  SEQFM_CHECK_EQ(indices.size(), batch * n);
  return EmbeddingGather(table, indices.data(), batch, n);
}

Variable EmbeddingSumGather(const Variable& weights, const int32_t* indices,
                            size_t batch, size_t n) {
  SEQFM_CHECK_EQ(weights.rank(), 2u);
  SEQFM_CHECK_EQ(weights.dim(1), 1u);
  const size_t vocab = weights.dim(0);
  Tensor out = internal::OutputBuffer({batch, 1});
  const float* wv = weights.value().data();
  float* out_data = out.data();
  util::ParallelFor(batch, internal::GrainForRows(n, internal::kEwGrain),
                    [indices, out_data, wv, vocab, n](size_t b0, size_t b1) {
    for (size_t b = b0; b < b1; ++b) {
      float acc = 0.0f;
      for (size_t i = 0; i < n; ++i) {
        const int32_t idx = indices[b * n + i];
        if (idx < 0) continue;
        SEQFM_CHECK_LT(static_cast<size_t>(idx), vocab);
        acc += wv[idx];
      }
      out_data[b] = acc;
    }
  });
  TraceAttrs attrs;
  attrs.indices = indices;
  attrs.idx_batch = batch;
  attrs.idx_n = n;
  auto node = MakeNode("embedding_sum_gather", {weights.node()},
                       std::move(out), &attrs);
  Node* self = node.get();
  if (node->requires_grad) {
    std::vector<int32_t> owned(indices, indices + batch * n);
    node->backward_fn = [self, owned = std::move(owned), batch, n]() {
      Node* p = self->parents[0].get();
      if (!p->requires_grad) return;
      p->EnsureGrad();
      // Scalar weights leave no conflict-free axis to split (every chunk
      // would race on dw[idx]); the loop is cheap, so it stays serial.
      float* dw = p->grad.data();
      for (size_t b = 0; b < batch; ++b) {
        const float g = self->grad.at(b, 0);
        for (size_t i = 0; i < n; ++i) {
          const int32_t idx = owned[b * n + i];
          if (idx < 0) continue;
          dw[idx] += g;
        }
      }
    };
  }
  return Variable(node);
}

Variable EmbeddingSumGather(const Variable& weights,
                            const std::vector<int32_t>& indices, size_t batch,
                            size_t n) {
  SEQFM_CHECK_EQ(indices.size(), batch * n);
  return EmbeddingSumGather(weights, indices.data(), batch, n);
}

}  // namespace autograd
}  // namespace seqfm
