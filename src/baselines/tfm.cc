#include "baselines/tfm.h"

namespace seqfm {
namespace baselines {

using autograd::Variable;
using tensor::Tensor;

Tfm::Tfm(const data::FeatureSpace& space, const BaselineConfig& config)
    : config_(config), space_(space), rng_(config.seed) {
  const size_t d = config_.embedding_dim;
  item_embedding_ =
      std::make_unique<nn::Embedding>(space_.num_objects(), d, &rng_);
  user_translation_ =
      std::make_unique<nn::Embedding>(space_.num_users(), d, &rng_);
  RegisterModule("item_embedding", item_embedding_.get());
  RegisterModule("user_translation", user_translation_.get());
  item_bias_ =
      RegisterParameter("item_bias", Tensor::Zeros({space_.num_objects(), 1}));
  bias_ = RegisterParameter("bias", Tensor::Zeros({1}));
}

Variable Tfm::Score(const data::Batch& batch, bool training) {
  (void)training;
  const size_t batch_size = batch.batch_size;
  const size_t n = batch.n_seq;
  const size_t d = config_.embedding_dim;

  // Last (most recent) history item; an empty history leaves the zero
  // vector, so the translation alone anchors the score.
  Variable history =
      item_embedding_->Forward(batch.dynamic_ids, batch_size, n);
  Variable last = autograd::SliceRow(history, n - 1);  // [B, d]

  std::vector<int32_t> user_ids(batch_size), candidate_ids(batch_size);
  const auto num_users = static_cast<int32_t>(space_.num_users());
  for (size_t b = 0; b < batch_size; ++b) {
    user_ids[b] = batch.static_ids[b * batch.n_static + 0];
    candidate_ids[b] = batch.static_ids[b * batch.n_static + 1] - num_users;
  }
  Variable t_u = autograd::Reshape(
      user_translation_->Forward(user_ids, batch_size, 1), {batch_size, d});
  Variable v_i = autograd::Reshape(
      item_embedding_->Forward(candidate_ids, batch_size, 1), {batch_size, d});

  // -|| v_j + t_u - v_i ||^2 + beta_i + b.
  Variable diff = autograd::Sub(autograd::Add(last, t_u), v_i);
  Variable dist = autograd::SumLastDimKeep(autograd::Mul(diff, diff));
  Variable beta =
      autograd::EmbeddingSumGather(item_bias_, candidate_ids, batch_size, 1);
  Variable score = autograd::Add(autograd::Scale(dist, -1.0f), beta);
  return autograd::AddBias(score, bias_);
}

}  // namespace baselines
}  // namespace seqfm
