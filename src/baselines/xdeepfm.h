#ifndef SEQFM_BASELINES_XDEEPFM_H_
#define SEQFM_BASELINES_XDEEPFM_H_

#include "baselines/common.h"

namespace seqfm {
namespace baselines {

/// \brief xDeepFM (Lian et al. 2018, [19]): linear part + plain DNN +
/// Compressed Interaction Network (CIN).
///
/// CIN layer k maps X^{k-1} [h_{k-1}, d] and X^0 [m, d] to
/// X^k[h, :] = sum_{i,j} W^k[h, i*m+j] * (X^{k-1}[i] ⊙ X^0[j]); each layer's
/// feature maps are sum-pooled over d and concatenated into the CIN logit.
class XDeepFm : public UnifiedFmBase {
 public:
  XDeepFm(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::string name() const override { return "xDeepFM"; }

 private:
  size_t cin_maps_;                          // feature maps per CIN layer
  std::vector<autograd::Variable> cin_w_;    // [maps, h_{k-1} * m] per layer
  std::unique_ptr<nn::Mlp> dnn_;
  std::unique_ptr<nn::Linear> cin_out_;      // [layers * maps -> 1]
};

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_XDEEPFM_H_
