#ifndef SEQFM_BASELINES_TFM_H_
#define SEQFM_BASELINES_TFM_H_

#include "baselines/common.h"

namespace seqfm {
namespace baselines {

/// \brief Translation-based Factorization Machine (Pasricha & McAuley 2018,
/// [28]): each user owns a translation vector t_u; the score of candidate i
/// after last item j is  beta_i - || v_j + t_u - v_i ||^2  plus first-order
/// terms. Only the *most recent* history item enters the score — the
/// limitation Sec. I calls out and Table II quantifies against SeqFM.
class Tfm : public nn::Module, public core::Model {
 public:
  Tfm(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::vector<autograd::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "TFM"; }

 private:
  BaselineConfig config_;
  data::FeatureSpace space_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> item_embedding_;
  std::unique_ptr<nn::Embedding> user_translation_;
  autograd::Variable item_bias_;  // [num_objects, 1]
  autograd::Variable bias_;       // [1]
};

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_TFM_H_
