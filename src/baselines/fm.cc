#include "baselines/fm.h"

namespace seqfm {
namespace baselines {

using autograd::Variable;

Variable Fm::Score(const data::Batch& batch, bool training) {
  (void)training;  // FM has no train-only behaviour.
  Variable embedded = EmbedUnified(batch);
  Variable bi = BiInteraction(embedded);                 // [B, d]
  Variable pairwise = autograd::SumLastDimKeep(bi);      // [B, 1]
  return autograd::Add(LinearTerm(batch), pairwise);
}

Hofm::Hofm(const data::FeatureSpace& space, const BaselineConfig& config)
    : UnifiedFmBase(space, config) {
  embedding3_ = std::make_unique<nn::Embedding>(space_.total_dim(),
                                                config_.embedding_dim, &rng_);
  RegisterModule("embedding3", embedding3_.get());
}

Variable Hofm::Score(const data::Batch& batch, bool training) {
  (void)training;
  // Order-2 part (plain FM).
  Variable e2 = EmbedUnified(batch);
  Variable order2 = autograd::SumLastDimKeep(BiInteraction(e2));

  // Order-3 part via the ANOVA kernel identity on a separate table.
  Variable e3 = embedding3_->Forward(batch.unified_ids, batch.batch_size,
                                     batch.n_unified);
  Variable s1 = autograd::SumAxis1(e3);                    // sum v
  Variable sq = autograd::Mul(e3, e3);                     // v^2
  Variable s2 = autograd::SumAxis1(sq);                    // sum v^2
  Variable s3 = autograd::SumAxis1(autograd::Mul(sq, e3)); // sum v^3
  Variable s1_cubed = autograd::Mul(autograd::Mul(s1, s1), s1);
  Variable term = autograd::Add(
      autograd::Sub(s1_cubed, autograd::Scale(autograd::Mul(s1, s2), 3.0f)),
      autograd::Scale(s3, 2.0f));
  Variable order3 =
      autograd::SumLastDimKeep(autograd::Scale(term, 1.0f / 6.0f));

  return autograd::Add(LinearTerm(batch),
                       autograd::Add(order2, order3));
}

}  // namespace baselines
}  // namespace seqfm
