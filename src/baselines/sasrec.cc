#include "baselines/sasrec.h"

#include "tensor/init.h"

namespace seqfm {
namespace baselines {

using autograd::Variable;
using tensor::Tensor;

SasRec::SasRec(const data::FeatureSpace& space, const BaselineConfig& config)
    : config_(config), space_(space), rng_(config.seed) {
  const size_t d = config_.embedding_dim;
  // One table covers both history items and candidates (shared item space).
  item_embedding_ =
      std::make_unique<nn::Embedding>(space_.num_objects(), d, &rng_);
  RegisterModule("item_embedding", item_embedding_.get());
  Tensor pos({config_.max_seq_len, d});
  tensor::FillNormal(&pos, &rng_, 0.01f);
  positional_ = RegisterParameter("positional", std::move(pos));
  blocks_.resize(config_.num_blocks);
  for (size_t i = 0; i < blocks_.size(); ++i) {
    auto& b = blocks_[i];
    b.attention = std::make_unique<nn::SelfAttention>(d, &rng_);
    b.norm1 = std::make_unique<nn::LayerNorm>(d);
    b.norm2 = std::make_unique<nn::LayerNorm>(d);
    b.ff1 = std::make_unique<nn::Linear>(d, d, &rng_);
    b.ff2 = std::make_unique<nn::Linear>(d, d, &rng_);
    const std::string s = std::to_string(i);
    RegisterModule("block" + s + "_attention", b.attention.get());
    RegisterModule("block" + s + "_norm1", b.norm1.get());
    RegisterModule("block" + s + "_norm2", b.norm2.get());
    RegisterModule("block" + s + "_ff1", b.ff1.get());
    RegisterModule("block" + s + "_ff2", b.ff2.get());
  }
  bias_ = RegisterParameter("bias", Tensor::Zeros({1}));
}

Variable SasRec::Score(const data::Batch& batch, bool training) {
  const size_t batch_size = batch.batch_size;
  const size_t n = batch.n_seq;

  Variable x =
      item_embedding_->Forward(batch.dynamic_ids, batch_size, n);
  x = autograd::AddBroadcastBatch(x, positional_);
  x = autograd::Dropout(x, config_.keep_prob, training, &rng_);

  // Causal + padding-aware mask (padding items never serve as keys).
  Variable mask = nn::MakeBatchPaddingMask(batch.dynamic_ids, batch_size, n,
                                           /*causal=*/true);
  for (const auto& block : blocks_) {
    Variable attended = block.attention->Forward(block.norm1->Forward(x), mask);
    x = autograd::Add(x, attended);
    Variable ff = block.ff1->Forward(block.norm2->Forward(x));
    ff = autograd::Relu(ff);
    ff = autograd::Dropout(ff, config_.keep_prob, training, &rng_);
    ff = block.ff2->Forward(ff);
    x = autograd::Add(x, ff);
  }

  Variable last = autograd::SliceRow(x, n - 1);  // [B, d]

  // Candidate embedding from the shared item table: candidate object id is
  // the dynamic-space id of the static candidate slot.
  std::vector<int32_t> candidate_ids(batch_size);
  const auto num_users = static_cast<int32_t>(space_.num_users());
  for (size_t b = 0; b < batch_size; ++b) {
    candidate_ids[b] = batch.static_ids[b * batch.n_static + 1] - num_users;
  }
  Variable cand =
      item_embedding_->Forward(candidate_ids, batch_size, 1);  // [B, 1, d]
  cand = autograd::Reshape(cand, {batch_size, config_.embedding_dim});

  Variable score = autograd::RowDot(last, cand);
  return autograd::AddBias(score, bias_);
}

}  // namespace baselines
}  // namespace seqfm
