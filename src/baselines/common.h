#ifndef SEQFM_BASELINES_COMMON_H_
#define SEQFM_BASELINES_COMMON_H_

#include <memory>
#include <string>

#include "autograd/ops.h"
#include "core/model_interface.h"
#include "data/feature_space.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "util/rng.h"

namespace seqfm {
namespace baselines {

/// Hyperparameters shared by every baseline (kept deliberately aligned with
/// the SeqFM defaults so comparisons isolate the architecture).
struct BaselineConfig {
  size_t embedding_dim = 64;
  size_t max_seq_len = 20;
  /// Keep probability for dropout in DNN towers.
  float keep_prob = 0.8f;
  /// Hidden width of MLP towers (Wide&Deep, NFM, DeepCross, DIN, xDeepFM).
  size_t mlp_hidden = 64;
  /// Number of stacked blocks (DeepCross residual units, SASRec blocks,
  /// xDeepFM CIN layers).
  size_t num_blocks = 2;
  uint64_t seed = 7;
};

/// \brief Shared machinery of the FM family: one embedding table and one
/// first-order weight table over the *unified* feature space (static
/// features + dynamic set-category features, Sec. V-B: "set-category
/// features are used as input for all FM-based baseline models"), plus the
/// global bias.
class UnifiedFmBase : public nn::Module, public core::Model {
 public:
  UnifiedFmBase(const data::FeatureSpace& space, const BaselineConfig& config);

  std::vector<autograd::Variable> TrainableParameters() override {
    return Parameters();
  }

 protected:
  /// Embeds the unified index list: [B, n_unified, d]; padding rows zero.
  autograd::Variable EmbedUnified(const data::Batch& batch) const;

  /// First-order term + global bias: [B, 1].
  autograd::Variable LinearTerm(const data::Batch& batch) const;

  /// FM bi-interaction vector 0.5*((sum v)^2 - sum v^2): [B, d]. Padding
  /// rows embed to zero and vanish from both sums.
  autograd::Variable BiInteraction(const autograd::Variable& embedded) const;

  BaselineConfig config_;
  data::FeatureSpace space_;
  mutable Rng rng_;
  std::unique_ptr<nn::Embedding> embedding_;  // [total_dim, d]
  autograd::Variable weights_;                // [total_dim, 1]
  autograd::Variable bias_;                   // [1]
};

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_COMMON_H_
