#include "baselines/xdeepfm.h"

#include "tensor/init.h"

namespace seqfm {
namespace baselines {

using autograd::Variable;
using tensor::Tensor;

XDeepFm::XDeepFm(const data::FeatureSpace& space, const BaselineConfig& config)
    : UnifiedFmBase(space, config), cin_maps_(8) {
  const size_t m = config_.max_seq_len + 2;  // n_unified
  size_t prev = m;
  for (size_t k = 0; k < config_.num_blocks; ++k) {
    Tensor w({cin_maps_, prev * m});
    tensor::FillXavier(&w, &rng_);
    cin_w_.push_back(
        RegisterParameter("cin_w" + std::to_string(k), std::move(w)));
    prev = cin_maps_;
  }
  cin_out_ = std::make_unique<nn::Linear>(config_.num_blocks * cin_maps_, 1,
                                          &rng_);
  RegisterModule("cin_out", cin_out_.get());
  dnn_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{m * config_.embedding_dim, config_.mlp_hidden, 1},
      &rng_);
  RegisterModule("dnn", dnn_.get());
}

Variable XDeepFm::Score(const data::Batch& batch, bool training) {
  Variable x0 = EmbedUnified(batch);  // [B, m, d]

  // CIN tower.
  std::vector<Variable> pooled;
  Variable xk = x0;
  for (const auto& w : cin_w_) {
    // z = all pairwise row products of X^{k-1} and X^0: [B, h*m, d].
    Variable z = autograd::PairwiseProductCross(xk, x0);
    // Feature-map mixing: W [maps, h*m] applied per sample.
    xk = autograd::BmmLeftShared(w, z);  // [B, maps, d]
    // Sum-pool each map over the embedding dimension: [B, maps].
    Variable p = autograd::SumLastDimKeep(xk);       // [B, maps, 1]
    pooled.push_back(
        autograd::Reshape(p, {batch.batch_size, cin_maps_}));
  }
  Variable cin_vec = pooled.size() == 1 ? pooled[0]
                                        : autograd::ConcatLastDim(pooled);
  Variable cin_logit = cin_out_->Forward(cin_vec);

  // Plain DNN tower over the flattened embeddings.
  Variable flat = autograd::Reshape(
      x0, {batch.batch_size, batch.n_unified * config_.embedding_dim});
  Variable dnn_logit = dnn_->Forward(flat, config_.keep_prob, training, &rng_);

  return autograd::Add(LinearTerm(batch),
                       autograd::Add(cin_logit, dnn_logit));
}

}  // namespace baselines
}  // namespace seqfm
