#ifndef SEQFM_BASELINES_NFM_H_
#define SEQFM_BASELINES_NFM_H_

#include "baselines/common.h"

namespace seqfm {
namespace baselines {

/// \brief Neural Factorization Machine (He & Chua 2017, [11]): the FM
/// bi-interaction pooling vector is fed through an MLP whose scalar output
/// replaces the FM pairwise term.
class Nfm : public UnifiedFmBase {
 public:
  Nfm(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::string name() const override { return "NFM"; }

 private:
  std::unique_ptr<nn::Mlp> tower_;
};

/// \brief Attentional Factorization Machine (Xiao et al. 2017, [17]):
/// element-wise products of all feature pairs are weighted by an attention
/// network before sum pooling and projection.
class Afm : public UnifiedFmBase {
 public:
  Afm(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::string name() const override { return "AFM"; }

 private:
  size_t attention_dim_;
  std::unique_ptr<nn::Linear> att_proj_;  // [d -> t]
  autograd::Variable att_h_;              // [t, 1]
  autograd::Variable out_p_;              // [d, 1]
};

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_NFM_H_
