#ifndef SEQFM_BASELINES_DIN_H_
#define SEQFM_BASELINES_DIN_H_

#include "baselines/common.h"

namespace seqfm {
namespace baselines {

/// \brief Deep Interest Network (Zhou et al. 2018, [5]): the user history is
/// pooled with candidate-conditioned attention — each history item's weight
/// comes from an activation MLP over [item, candidate, item ⊙ candidate,
/// item - candidate] — and the pooled interest joins the user and candidate
/// embeddings in a final MLP.
///
/// DIN treats history as a *set* conditioned on the candidate: it activates
/// relevant items but has no positional / order information, which is what
/// separates it from SeqFM in the CTR experiments (Table III).
class Din : public nn::Module, public core::Model {
 public:
  Din(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::vector<autograd::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "DIN"; }

 private:
  BaselineConfig config_;
  data::FeatureSpace space_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> static_embedding_;   // users + candidates
  std::unique_ptr<nn::Embedding> dynamic_embedding_;  // history objects
  std::unique_ptr<nn::Mlp> activation_;  // [4d -> hidden -> 1]
  std::unique_ptr<nn::Mlp> tower_;       // [3d -> hidden -> 1]
  autograd::Variable bias_;
};

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_DIN_H_
