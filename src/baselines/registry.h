#ifndef SEQFM_BASELINES_REGISTRY_H_
#define SEQFM_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "util/result.h"

namespace seqfm {
namespace baselines {

/// Creates a baseline by its paper name ("FM", "Wide&Deep", "DeepCross",
/// "NFM", "AFM", "SASRec", "TFM", "DIN", "xDeepFM", "RRN", "HOFM").
Result<std::unique_ptr<core::Model>> CreateBaseline(
    const std::string& name, const data::FeatureSpace& space,
    const BaselineConfig& config);

/// Baselines compared per task, in the row order of Tables II-IV.
const std::vector<std::string>& RankingBaselines();
const std::vector<std::string>& ClassificationBaselines();
const std::vector<std::string>& RegressionBaselines();

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_REGISTRY_H_
