#include "baselines/rrn.h"

namespace seqfm {
namespace baselines {

using autograd::Variable;
using tensor::Tensor;

Rrn::Rrn(const data::FeatureSpace& space, const BaselineConfig& config)
    : config_(config), space_(space), rng_(config.seed) {
  const size_t d = config_.embedding_dim;
  item_embedding_ =
      std::make_unique<nn::Embedding>(space_.num_objects(), d, &rng_);
  user_embedding_ =
      std::make_unique<nn::Embedding>(space_.num_users(), d, &rng_);
  RegisterModule("item_embedding", item_embedding_.get());
  RegisterModule("user_embedding", user_embedding_.get());
  gru_ = std::make_unique<nn::Gru>(d, d, &rng_);
  RegisterModule("gru", gru_.get());
  head_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{3 * d, config_.mlp_hidden, 1}, &rng_);
  RegisterModule("head", head_.get());
  bias_ = RegisterParameter("bias", Tensor::Zeros({1}));
}

Variable Rrn::Score(const data::Batch& batch, bool training) {
  const size_t batch_size = batch.batch_size;
  const size_t n = batch.n_seq;
  const size_t d = config_.embedding_dim;

  Variable history =
      item_embedding_->Forward(batch.dynamic_ids, batch_size, n);
  Variable state = gru_->Forward(history);  // [B, d] dynamic user state

  std::vector<int32_t> user_ids(batch_size), candidate_ids(batch_size);
  const auto num_users = static_cast<int32_t>(space_.num_users());
  for (size_t b = 0; b < batch_size; ++b) {
    user_ids[b] = batch.static_ids[b * batch.n_static + 0];
    candidate_ids[b] = batch.static_ids[b * batch.n_static + 1] - num_users;
  }
  Variable user = autograd::Reshape(
      user_embedding_->Forward(user_ids, batch_size, 1), {batch_size, d});
  Variable cand = autograd::Reshape(
      item_embedding_->Forward(candidate_ids, batch_size, 1), {batch_size, d});

  Variable top = autograd::ConcatLastDim({state, user, cand});
  Variable out = head_->Forward(top, config_.keep_prob, training, &rng_);
  return autograd::AddBias(out, bias_);
}

}  // namespace baselines
}  // namespace seqfm
