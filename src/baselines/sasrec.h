#ifndef SEQFM_BASELINES_SASREC_H_
#define SEQFM_BASELINES_SASREC_H_

#include "baselines/common.h"
#include "nn/masks.h"

namespace seqfm {
namespace baselines {

/// \brief Self-Attentive Sequential Recommendation (Kang & McAuley 2018,
/// [25]): item embeddings + learned positional embeddings pass through
/// stacked causal self-attention blocks with pointwise feed-forward layers;
/// the last position's hidden state is dotted with the candidate embedding.
///
/// Padding key positions are masked out of the attention (the original
/// zeroes padded timesteps after every block; masking keys is equivalent
/// for the last-position read-out used here).
class SasRec : public nn::Module, public core::Model {
 public:
  SasRec(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::vector<autograd::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "SASRec"; }

 private:
  struct Block {
    std::unique_ptr<nn::SelfAttention> attention;
    std::unique_ptr<nn::LayerNorm> norm1;
    std::unique_ptr<nn::LayerNorm> norm2;
    std::unique_ptr<nn::Linear> ff1;
    std::unique_ptr<nn::Linear> ff2;
  };

  BaselineConfig config_;
  data::FeatureSpace space_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> item_embedding_;
  autograd::Variable positional_;  // [n, d]
  std::vector<Block> blocks_;
  autograd::Variable bias_;
};

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_SASREC_H_
