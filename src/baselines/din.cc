#include "baselines/din.h"

#include "nn/masks.h"

namespace seqfm {
namespace baselines {

using autograd::Variable;
using tensor::Tensor;

Din::Din(const data::FeatureSpace& space, const BaselineConfig& config)
    : config_(config), space_(space), rng_(config.seed) {
  const size_t d = config_.embedding_dim;
  static_embedding_ =
      std::make_unique<nn::Embedding>(space_.static_dim(), d, &rng_);
  dynamic_embedding_ =
      std::make_unique<nn::Embedding>(space_.dynamic_dim(), d, &rng_);
  RegisterModule("static_embedding", static_embedding_.get());
  RegisterModule("dynamic_embedding", dynamic_embedding_.get());
  activation_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{4 * d, config_.mlp_hidden, 1}, &rng_);
  RegisterModule("activation", activation_.get());
  tower_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{3 * d, config_.mlp_hidden, 1}, &rng_);
  RegisterModule("tower", tower_.get());
  bias_ = RegisterParameter("bias", Tensor::Zeros({1}));
}

Variable Din::Score(const data::Batch& batch, bool training) {
  const size_t batch_size = batch.batch_size;
  const size_t n = batch.n_seq;
  const size_t d = config_.embedding_dim;

  Variable e_static =
      static_embedding_->Forward(batch.static_ids, batch_size, batch.n_static);
  Variable user = autograd::SliceRow(e_static, 0);       // [B, d]
  Variable candidate = autograd::SliceRow(e_static, 1);  // [B, d]
  Variable history =
      dynamic_embedding_->Forward(batch.dynamic_ids, batch_size, n);

  // Activation-unit features per history item, flattened to rank 2.
  Variable cand_rows = autograd::ExpandRows(candidate, n);     // [B, n, d]
  Variable hist_flat = autograd::Reshape(history, {batch_size * n, d});
  Variable cand_flat = autograd::Reshape(cand_rows, {batch_size * n, d});
  Variable feats = autograd::ConcatLastDim(
      {hist_flat, cand_flat, autograd::Mul(hist_flat, cand_flat),
       autograd::Sub(hist_flat, cand_flat)});                  // [B*n, 4d]
  Variable logits =
      activation_->Forward(feats, config_.keep_prob, training, &rng_);
  logits = autograd::Reshape(logits, {batch_size, 1, n});

  // Per-sample mask excluding padding history slots from the softmax.
  Variable alpha = autograd::MaskedSoftmax(
      logits,
      nn::MakeHistoryPaddingMask(batch.dynamic_ids, batch_size, n));  // [B,1,n]

  // Attention-pooled interest: [B,1,n] x [B,n,d] -> [B,d].
  Variable interest = autograd::Reshape(autograd::Bmm(alpha, history),
                                        {batch_size, d});

  Variable top = autograd::ConcatLastDim({user, candidate, interest});
  Variable out = tower_->Forward(top, config_.keep_prob, training, &rng_);
  return autograd::AddBias(out, bias_);
}

}  // namespace baselines
}  // namespace seqfm
