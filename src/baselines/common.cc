#include "baselines/common.h"

namespace seqfm {
namespace baselines {

using autograd::Variable;
using tensor::Tensor;

UnifiedFmBase::UnifiedFmBase(const data::FeatureSpace& space,
                             const BaselineConfig& config)
    : config_(config), space_(space), rng_(config.seed) {
  embedding_ = std::make_unique<nn::Embedding>(space_.total_dim(),
                                               config_.embedding_dim, &rng_);
  RegisterModule("embedding", embedding_.get());
  weights_ =
      RegisterParameter("weights", Tensor::Zeros({space_.total_dim(), 1}));
  bias_ = RegisterParameter("bias", Tensor::Zeros({1}));
}

Variable UnifiedFmBase::EmbedUnified(const data::Batch& batch) const {
  return embedding_->Forward(batch.unified_ids, batch.batch_size,
                             batch.n_unified);
}

Variable UnifiedFmBase::LinearTerm(const data::Batch& batch) const {
  Variable first = autograd::EmbeddingSumGather(
      weights_, batch.unified_ids, batch.batch_size, batch.n_unified);
  return autograd::AddBias(first, bias_);
}

Variable UnifiedFmBase::BiInteraction(const Variable& embedded) const {
  Variable sum = autograd::SumAxis1(embedded);              // [B, d]
  Variable sum_sq = autograd::Mul(sum, sum);                // (sum v)^2
  Variable sq = autograd::Mul(embedded, embedded);          // v^2
  Variable sq_sum = autograd::SumAxis1(sq);                 // sum v^2
  return autograd::Scale(autograd::Sub(sum_sq, sq_sum), 0.5f);
}

}  // namespace baselines
}  // namespace seqfm
