#ifndef SEQFM_BASELINES_FM_H_
#define SEQFM_BASELINES_FM_H_

#include "baselines/common.h"

namespace seqfm {
namespace baselines {

/// \brief The plain Factorization Machine (Rendle 2010, Eq. 2): global bias
/// + first-order weights + pairwise dot-product interactions computed with
/// the O(n d) sum-of-squares identity.
class Fm : public UnifiedFmBase {
 public:
  Fm(const data::FeatureSpace& space, const BaselineConfig& config)
      : UnifiedFmBase(space, config) {}

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::string name() const override { return "FM"; }
};

/// \brief Higher-Order FM (Blondel et al. 2016, [41]): the plain FM plus a
/// third-order term computed with the degree-3 ANOVA-kernel identity
///   A3 = (s1^3 - 3 s1 s2 + 2 s3) / 6,  s_k = sum_i v_i^k (elementwise),
/// using a separate order-3 embedding table.
class Hofm : public UnifiedFmBase {
 public:
  Hofm(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::string name() const override { return "HOFM"; }

 private:
  std::unique_ptr<nn::Embedding> embedding3_;  // order-3 factors
};

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_FM_H_
