#include "baselines/wide_deep.h"

namespace seqfm {
namespace baselines {

using autograd::Variable;

WideDeep::WideDeep(const data::FeatureSpace& space,
                   const BaselineConfig& config)
    : UnifiedFmBase(space, config) {
  const size_t in =
      (config_.max_seq_len + 2) * config_.embedding_dim;  // n_unified * d
  deep_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{in, config_.mlp_hidden, config_.mlp_hidden, 1},
      &rng_);
  RegisterModule("deep", deep_.get());
}

Variable WideDeep::Score(const data::Batch& batch, bool training) {
  Variable embedded = EmbedUnified(batch);  // [B, n, d]
  Variable flat = autograd::Reshape(
      embedded, {batch.batch_size, batch.n_unified * config_.embedding_dim});
  Variable deep = deep_->Forward(flat, config_.keep_prob, training, &rng_);
  return autograd::Add(LinearTerm(batch), deep);
}

DeepCross::DeepCross(const data::FeatureSpace& space,
                     const BaselineConfig& config)
    : UnifiedFmBase(space, config) {
  const size_t in = (config_.max_seq_len + 2) * config_.embedding_dim;
  const size_t width = config_.mlp_hidden;
  input_proj_ = std::make_unique<nn::Linear>(in, width, &rng_);
  RegisterModule("input_proj", input_proj_.get());
  units_.resize(config_.num_blocks);
  for (size_t i = 0; i < units_.size(); ++i) {
    units_[i].fc1 = std::make_unique<nn::Linear>(width, width, &rng_);
    units_[i].fc2 = std::make_unique<nn::Linear>(width, width, &rng_);
    RegisterModule("unit" + std::to_string(i) + "_fc1", units_[i].fc1.get());
    RegisterModule("unit" + std::to_string(i) + "_fc2", units_[i].fc2.get());
  }
  scorer_ = std::make_unique<nn::Linear>(width, 1, &rng_);
  RegisterModule("scorer", scorer_.get());
}

Variable DeepCross::Score(const data::Batch& batch, bool training) {
  Variable embedded = EmbedUnified(batch);
  Variable x = autograd::Reshape(
      embedded, {batch.batch_size, batch.n_unified * config_.embedding_dim});
  x = autograd::Relu(input_proj_->Forward(x));
  for (const auto& unit : units_) {
    // Residual unit: x = ReLU(x + F(x)) with a two-layer F.
    Variable inner = autograd::Relu(unit.fc1->Forward(x));
    inner = autograd::Dropout(inner, config_.keep_prob, training, &rng_);
    inner = unit.fc2->Forward(inner);
    x = autograd::Relu(autograd::Add(x, inner));
  }
  Variable deep = scorer_->Forward(x);
  // Deep Crossing has no wide component; only the global bias joins the
  // deep score (first-order weights stay unused to match the original).
  return autograd::AddBias(deep, bias_);
}

}  // namespace baselines
}  // namespace seqfm
