#include "baselines/nfm.h"

#include "tensor/init.h"

namespace seqfm {
namespace baselines {

using autograd::Variable;
using tensor::Tensor;

Nfm::Nfm(const data::FeatureSpace& space, const BaselineConfig& config)
    : UnifiedFmBase(space, config) {
  tower_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{config_.embedding_dim, config_.mlp_hidden, 1},
      &rng_);
  RegisterModule("tower", tower_.get());
}

Variable Nfm::Score(const data::Batch& batch, bool training) {
  Variable embedded = EmbedUnified(batch);
  Variable bi = BiInteraction(embedded);  // [B, d]
  bi = autograd::Dropout(bi, config_.keep_prob, training, &rng_);
  Variable deep = tower_->Forward(bi, config_.keep_prob, training, &rng_);
  return autograd::Add(LinearTerm(batch), deep);
}

Afm::Afm(const data::FeatureSpace& space, const BaselineConfig& config)
    : UnifiedFmBase(space, config), attention_dim_(config.mlp_hidden) {
  att_proj_ = std::make_unique<nn::Linear>(config_.embedding_dim,
                                           attention_dim_, &rng_);
  RegisterModule("att_proj", att_proj_.get());
  Tensor h({attention_dim_, 1});
  tensor::FillXavier(&h, &rng_);
  att_h_ = RegisterParameter("att_h", std::move(h));
  Tensor p({config_.embedding_dim, 1});
  tensor::FillXavier(&p, &rng_);
  out_p_ = RegisterParameter("out_p", std::move(p));
}

Variable Afm::Score(const data::Batch& batch, bool training) {
  const size_t batch_size = batch.batch_size;
  Variable embedded = EmbedUnified(batch);           // [B, n, d]
  Variable pairs = autograd::PairwiseProductUpper(embedded);  // [B, P, d]
  const size_t num_pairs = pairs.dim(1);

  // Attention scores a_ij = h^T ReLU(W p_ij + b) over all pairs.
  Variable act = autograd::Relu(att_proj_->Forward(pairs));   // [B, P, t]
  Variable scores = autograd::BmmShared(act, att_h_);         // [B, P, 1]
  // Softmax over the pair axis: [B, P, 1] has the same layout as [B, 1, P].
  scores = autograd::Reshape(scores, {batch_size, 1, num_pairs});
  Variable alpha = autograd::MaskedSoftmax(scores, Variable());
  alpha = autograd::Dropout(alpha, config_.keep_prob, training, &rng_);

  // Weighted pair pooling: [B,1,P] x [B,P,d] -> [B,1,d] -> [B,d].
  Variable pooled = autograd::Bmm(alpha, pairs);
  pooled =
      autograd::Reshape(pooled, {batch_size, config_.embedding_dim});
  Variable interaction = autograd::MatMul(pooled, out_p_);    // [B, 1]
  return autograd::Add(LinearTerm(batch), interaction);
}

}  // namespace baselines
}  // namespace seqfm
