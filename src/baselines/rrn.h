#ifndef SEQFM_BASELINES_RRN_H_
#define SEQFM_BASELINES_RRN_H_

#include "baselines/common.h"

namespace seqfm {
namespace baselines {

/// \brief Recurrent Recommender Network (Wu et al. 2017, [1]), adapted to
/// the shared pipeline: a GRU consumes the embedded rating history to
/// produce the user's dynamic state, which is combined with stationary user
/// and item embeddings in a small MLP head (the paper's stationary +
/// dynamic factor decomposition; we use one GRU over the user sequence
/// rather than dual user/item LSTMs — see DESIGN.md substitutions).
class Rrn : public nn::Module, public core::Model {
 public:
  Rrn(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::vector<autograd::Variable> TrainableParameters() override {
    return Parameters();
  }
  std::string name() const override { return "RRN"; }

 private:
  BaselineConfig config_;
  data::FeatureSpace space_;
  Rng rng_;
  std::unique_ptr<nn::Embedding> item_embedding_;
  std::unique_ptr<nn::Embedding> user_embedding_;
  std::unique_ptr<nn::Gru> gru_;
  std::unique_ptr<nn::Mlp> head_;  // [3d -> hidden -> 1]
  autograd::Variable bias_;
};

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_RRN_H_
