#include "baselines/registry.h"

#include "baselines/din.h"
#include "baselines/fm.h"
#include "baselines/nfm.h"
#include "baselines/rrn.h"
#include "baselines/sasrec.h"
#include "baselines/tfm.h"
#include "baselines/wide_deep.h"
#include "baselines/xdeepfm.h"

namespace seqfm {
namespace baselines {

Result<std::unique_ptr<core::Model>> CreateBaseline(
    const std::string& name, const data::FeatureSpace& space,
    const BaselineConfig& config) {
  std::unique_ptr<core::Model> model;
  if (name == "FM") {
    model = std::make_unique<Fm>(space, config);
  } else if (name == "HOFM") {
    model = std::make_unique<Hofm>(space, config);
  } else if (name == "NFM") {
    model = std::make_unique<Nfm>(space, config);
  } else if (name == "AFM") {
    model = std::make_unique<Afm>(space, config);
  } else if (name == "Wide&Deep") {
    model = std::make_unique<WideDeep>(space, config);
  } else if (name == "DeepCross") {
    model = std::make_unique<DeepCross>(space, config);
  } else if (name == "xDeepFM") {
    model = std::make_unique<XDeepFm>(space, config);
  } else if (name == "DIN") {
    model = std::make_unique<Din>(space, config);
  } else if (name == "SASRec") {
    model = std::make_unique<SasRec>(space, config);
  } else if (name == "TFM") {
    model = std::make_unique<Tfm>(space, config);
  } else if (name == "RRN") {
    model = std::make_unique<Rrn>(space, config);
  } else {
    return Status::NotFound("unknown baseline: " + name);
  }
  return model;
}

const std::vector<std::string>& RankingBaselines() {
  static const std::vector<std::string> kNames = {
      "FM", "Wide&Deep", "DeepCross", "NFM", "AFM", "SASRec", "TFM"};
  return kNames;
}

const std::vector<std::string>& ClassificationBaselines() {
  static const std::vector<std::string> kNames = {
      "FM", "Wide&Deep", "DeepCross", "NFM", "AFM", "DIN", "xDeepFM"};
  return kNames;
}

const std::vector<std::string>& RegressionBaselines() {
  static const std::vector<std::string> kNames = {
      "FM", "Wide&Deep", "DeepCross", "NFM", "AFM", "RRN", "HOFM"};
  return kNames;
}

}  // namespace baselines
}  // namespace seqfm
