#ifndef SEQFM_BASELINES_WIDE_DEEP_H_
#define SEQFM_BASELINES_WIDE_DEEP_H_

#include "baselines/common.h"

namespace seqfm {
namespace baselines {

/// \brief Wide&Deep (Cheng et al. 2016, [18]): a wide first-order linear
/// part plus a deep MLP over the concatenated feature embeddings.
class WideDeep : public UnifiedFmBase {
 public:
  WideDeep(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::string name() const override { return "Wide&Deep"; }

 private:
  std::unique_ptr<nn::Mlp> deep_;
};

/// \brief DeepCross / Deep Crossing (Shan et al. 2016, [7]): stacked
/// two-layer residual units over the concatenated feature embeddings,
/// followed by a scoring layer.
class DeepCross : public UnifiedFmBase {
 public:
  DeepCross(const data::FeatureSpace& space, const BaselineConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;
  std::string name() const override { return "DeepCross"; }

 private:
  struct ResidualUnit {
    std::unique_ptr<nn::Linear> fc1;
    std::unique_ptr<nn::Linear> fc2;
  };
  std::vector<ResidualUnit> units_;
  std::unique_ptr<nn::Linear> input_proj_;
  std::unique_ptr<nn::Linear> scorer_;
};

}  // namespace baselines
}  // namespace seqfm

#endif  // SEQFM_BASELINES_WIDE_DEEP_H_
