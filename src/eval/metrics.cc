#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace seqfm {
namespace eval {

size_t RankOfFirst(const std::vector<float>& scores) {
  SEQFM_CHECK(!scores.empty()) << "RankOfFirst: empty score vector";
  const float gt = scores[0];
  size_t rank = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > gt) ++rank;
  }
  return rank;
}

double NdcgAt(size_t rank, size_t k) {
  if (rank >= k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

double Auc(const std::vector<float>& positive_scores,
           const std::vector<float>& negative_scores) {
  SEQFM_CHECK(!positive_scores.empty())
      << "Auc: no positive scores (statistic would be 0/0)";
  SEQFM_CHECK(!negative_scores.empty())
      << "Auc: no negative scores (statistic would be 0/0)";
  // Sort negatives once; for each positive, count strictly smaller negatives
  // plus half of the ties: O((P+N) log N).
  std::vector<float> neg = negative_scores;
  std::sort(neg.begin(), neg.end());
  double wins = 0.0;
  for (float p : positive_scores) {
    const auto lo = std::lower_bound(neg.begin(), neg.end(), p);
    const auto hi = std::upper_bound(neg.begin(), neg.end(), p);
    wins += static_cast<double>(lo - neg.begin());
    wins += 0.5 * static_cast<double>(hi - lo);
  }
  return wins / (static_cast<double>(positive_scores.size()) *
                 static_cast<double>(neg.size()));
}

double Rmse(const std::vector<float>& predictions,
            const std::vector<float>& targets) {
  SEQFM_CHECK_EQ(predictions.size(), targets.size());
  SEQFM_CHECK(!predictions.empty()) << "Rmse: empty input (mean would be 0/0)";
  double acc = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double e = static_cast<double>(predictions[i]) - targets[i];
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(predictions.size()));
}

double Mae(const std::vector<float>& predictions,
           const std::vector<float>& targets) {
  SEQFM_CHECK_EQ(predictions.size(), targets.size());
  SEQFM_CHECK(!predictions.empty()) << "Mae: empty input (mean would be 0/0)";
  double acc = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    acc += std::abs(static_cast<double>(predictions[i]) - targets[i]);
  }
  return acc / static_cast<double>(predictions.size());
}

double Rrse(const std::vector<float>& predictions,
            const std::vector<float>& targets) {
  SEQFM_CHECK_EQ(predictions.size(), targets.size());
  SEQFM_CHECK(!predictions.empty()) << "Rrse: empty input (ratio would be 0/0)";
  double mean = 0.0;
  for (float t : targets) mean += t;
  mean /= static_cast<double>(targets.size());
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double e = static_cast<double>(predictions[i]) - targets[i];
    num += e * e;
    const double c = static_cast<double>(targets[i]) - mean;
    den += c * c;
  }
  SEQFM_CHECK_GT(den, 0.0) << "targets have zero variance";
  return std::sqrt(num / den);
}

}  // namespace eval
}  // namespace seqfm
