#ifndef SEQFM_EVAL_METRICS_H_
#define SEQFM_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace seqfm {
namespace eval {

/// Pure metric functions (Eqs. 27-28). All are deterministic and covered by
/// hand-computed unit tests.
///
/// Degenerate inputs are programmer errors, not silent NaNs: every function
/// here SEQFM_CHECK-fails on empty inputs (and on mismatched lengths /
/// zero-variance targets where those apply) instead of returning a 0/0. The
/// checks are always on — eval_test pins the behavior with death tests.

/// 0-based rank of element 0 (the ground truth) when \p scores is sorted
/// descending; ties count items strictly greater only, so the ground truth
/// wins ties (consistent with the leave-one-out protocols in [25], [37]).
/// Check-fails on an empty score vector.
size_t RankOfFirst(const std::vector<float>& scores);

/// HR@K for one test case given the ground-truth rank (Eq. 27).
inline double HitAt(size_t rank, size_t k) { return rank < k ? 1.0 : 0.0; }

/// NDCG@K for one test case given the ground-truth rank (Eq. 27):
/// 1/log2(rank+2) when rank < K else 0.
double NdcgAt(size_t rank, size_t k);

/// Area under the ROC curve via the Mann-Whitney statistic; ties contribute
/// 1/2. Requires at least one positive and one negative score — with either
/// class empty the statistic is 0/0, so the function check-fails rather
/// than returning NaN.
double Auc(const std::vector<float>& positive_scores,
           const std::vector<float>& negative_scores);

/// Root mean squared error. Check-fails on empty or mismatched-length
/// inputs (the empty mean would be 0/0).
double Rmse(const std::vector<float>& predictions,
            const std::vector<float>& targets);

/// Mean absolute error (Eq. 28). Check-fails on empty or mismatched-length
/// inputs.
double Mae(const std::vector<float>& predictions,
           const std::vector<float>& targets);

/// Root relative squared error (Eq. 28): sqrt(sum (p-t)^2 / sum (t-mean)^2).
/// Check-fails on empty or mismatched-length inputs and on zero-variance
/// targets (the denominator would make any prediction score 0/0 or x/0).
double Rrse(const std::vector<float>& predictions,
            const std::vector<float>& targets);

}  // namespace eval
}  // namespace seqfm

#endif  // SEQFM_EVAL_METRICS_H_
