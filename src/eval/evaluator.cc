#include "eval/evaluator.h"

#include <cmath>

#include "autograd/variable.h"
#include "eval/metrics.h"
#include "serve/predictor.h"
#include "tensor/ops.h"

namespace seqfm {
namespace eval {

std::vector<float> ScoreExamples(
    core::Model* model, const data::BatchBuilder& builder,
    const std::vector<const data::SequenceExample*>& examples,
    const std::vector<int32_t>* target_override, size_t batch_size) {
  // Evaluation never backpropagates, so every forward here takes the
  // tape-free path; results are bit-for-bit identical to the taped forward.
  autograd::NoGradGuard no_grad;
  std::vector<float> scores;
  scores.reserve(examples.size());
  for (size_t start = 0; start < examples.size(); start += batch_size) {
    const size_t end = std::min(examples.size(), start + batch_size);
    std::vector<const data::SequenceExample*> chunk(
        examples.begin() + static_cast<ptrdiff_t>(start),
        examples.begin() + static_cast<ptrdiff_t>(end));
    std::vector<int32_t> override_chunk;
    const std::vector<int32_t>* override_ptr = nullptr;
    if (target_override != nullptr) {
      override_chunk.assign(
          target_override->begin() + static_cast<ptrdiff_t>(start),
          target_override->begin() + static_cast<ptrdiff_t>(end));
      override_ptr = &override_chunk;
    }
    data::Batch batch = builder.Build(chunk, override_ptr);
    autograd::Variable out = model->Score(batch, /*training=*/false);
    SEQFM_CHECK_EQ(out.value().size(), chunk.size());
    for (size_t i = 0; i < chunk.size(); ++i) {
      scores.push_back(out.value().data()[i]);
    }
  }
  return scores;
}

// ---------------------------------------------------------------------------
// RankingEvaluator
// ---------------------------------------------------------------------------

const std::vector<data::SequenceExample>& RankingEvaluator::Examples() const {
  return use_validation_ ? dataset_->validation() : dataset_->test();
}

RankingEvaluator::RankingEvaluator(const data::TemporalDataset* dataset,
                                   const data::BatchBuilder* builder,
                                   size_t num_negatives, uint64_t seed,
                                   bool use_validation)
    : dataset_(dataset), builder_(builder), use_validation_(use_validation) {
  Rng rng(seed);
  data::NegativeSampler sampler(dataset);
  candidates_.reserve(Examples().size());
  for (const auto& ex : Examples()) {
    std::vector<int32_t> cands;
    cands.reserve(num_negatives + 1);
    cands.push_back(ex.target);
    auto negs = sampler.SampleMany(ex.user, num_negatives, &rng);
    cands.insert(cands.end(), negs.begin(), negs.end());
    candidates_.push_back(std::move(cands));
  }
}

RankingEvaluator::Metrics RankingEvaluator::EvaluateWith(
    const std::function<std::vector<float>(
        const data::SequenceExample&, const std::vector<int32_t>&)>& score_fn,
    const std::vector<size_t>& ks) const {
  Metrics metrics;
  for (size_t k : ks) {
    metrics.hr[k] = 0.0;
    metrics.ndcg[k] = 0.0;
  }
  const auto& test = Examples();
  SEQFM_CHECK_EQ(test.size(), candidates_.size());
  if (test.empty()) return metrics;

  for (size_t i = 0; i < test.size(); ++i) {
    // Score [ground truth, negatives...] with the same history.
    std::vector<float> scores = score_fn(test[i], candidates_[i]);
    const size_t rank = RankOfFirst(scores);
    for (size_t k : ks) {
      metrics.hr[k] += HitAt(rank, k);
      metrics.ndcg[k] += NdcgAt(rank, k);
    }
  }
  const double denom = static_cast<double>(test.size());
  for (size_t k : ks) {
    metrics.hr[k] /= denom;
    metrics.ndcg[k] /= denom;
  }
  return metrics;
}

RankingEvaluator::Metrics RankingEvaluator::Evaluate(
    core::Model* model, const std::vector<size_t>& ks) const {
  return EvaluateWith(
      [&](const data::SequenceExample& ex, const std::vector<int32_t>& cands) {
        std::vector<const data::SequenceExample*> repeated(cands.size(), &ex);
        return ScoreExamples(model, *builder_, repeated, &cands);
      },
      ks);
}

RankingEvaluator::Metrics RankingEvaluator::Evaluate(
    const serve::Predictor& predictor, const std::vector<size_t>& ks) const {
  return EvaluateWith(
      [&](const data::SequenceExample& ex, const std::vector<int32_t>& cands) {
        return predictor.ScoreCandidates(ex, cands);
      },
      ks);
}

// ---------------------------------------------------------------------------
// ClassificationEvaluator
// ---------------------------------------------------------------------------

const std::vector<data::SequenceExample>&
ClassificationEvaluator::Examples() const {
  return use_validation_ ? dataset_->validation() : dataset_->test();
}

ClassificationEvaluator::ClassificationEvaluator(
    const data::TemporalDataset* dataset, const data::BatchBuilder* builder,
    uint64_t seed, bool use_validation)
    : dataset_(dataset), builder_(builder), use_validation_(use_validation) {
  Rng rng(seed);
  data::NegativeSampler sampler(dataset);
  negatives_.reserve(Examples().size());
  for (const auto& ex : Examples()) {
    negatives_.push_back(sampler.Sample(ex.user, &rng));
  }
}

ClassificationEvaluator::Metrics ClassificationEvaluator::Evaluate(
    core::Model* model) const {
  Metrics metrics;
  const auto& test = Examples();
  SEQFM_CHECK_EQ(test.size(), negatives_.size());
  if (test.empty()) return metrics;

  std::vector<const data::SequenceExample*> examples;
  examples.reserve(test.size());
  for (const auto& ex : test) examples.push_back(&ex);

  std::vector<float> pos_logits =
      ScoreExamples(model, *builder_, examples, nullptr);
  std::vector<float> neg_logits =
      ScoreExamples(model, *builder_, examples, &negatives_);

  // AUC on raw logits (monotone in probability).
  metrics.auc = Auc(pos_logits, neg_logits);

  // RMSE and log loss on sigmoid probabilities vs. the 1/0 labels (Eq. 23).
  std::vector<float> probs, labels;
  probs.reserve(2 * test.size());
  labels.reserve(2 * test.size());
  double logloss = 0.0;
  for (float x : pos_logits) {
    probs.push_back(tensor::StableSigmoid(x));
    labels.push_back(1.0f);
    logloss += -tensor::LogSigmoid(x);
  }
  for (float x : neg_logits) {
    probs.push_back(tensor::StableSigmoid(x));
    labels.push_back(0.0f);
    logloss += -tensor::LogSigmoid(-x);
  }
  metrics.rmse = Rmse(probs, labels);
  metrics.logloss = logloss / static_cast<double>(probs.size());
  return metrics;
}

// ---------------------------------------------------------------------------
// RegressionEvaluator
// ---------------------------------------------------------------------------

RegressionEvaluator::RegressionEvaluator(const data::TemporalDataset* dataset,
                                         const data::BatchBuilder* builder,
                                         bool use_validation)
    : dataset_(dataset), builder_(builder), use_validation_(use_validation) {}

RegressionEvaluator::Metrics RegressionEvaluator::Evaluate(
    core::Model* model) const {
  Metrics metrics;
  const auto& test =
      use_validation_ ? dataset_->validation() : dataset_->test();
  if (test.empty()) return metrics;
  std::vector<const data::SequenceExample*> examples;
  std::vector<float> targets;
  examples.reserve(test.size());
  targets.reserve(test.size());
  for (const auto& ex : test) {
    examples.push_back(&ex);
    targets.push_back(ex.rating);
  }
  std::vector<float> preds = ScoreExamples(model, *builder_, examples);
  metrics.mae = Mae(preds, targets);
  metrics.rrse = Rrse(preds, targets);
  metrics.rmse = Rmse(preds, targets);
  return metrics;
}

}  // namespace eval
}  // namespace seqfm
