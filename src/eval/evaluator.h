#ifndef SEQFM_EVAL_EVALUATOR_H_
#define SEQFM_EVAL_EVALUATOR_H_

#include <functional>
#include <map>
#include <vector>

#include "core/model_interface.h"
#include "data/dataset.h"
#include "util/rng.h"

namespace seqfm {

namespace serve {
class Predictor;
}  // namespace serve

namespace eval {

/// \brief Next-object ranking evaluation (Sec. V-C): each test positive is
/// mixed with J objects the user never interacted with; HR@K and NDCG@K are
/// computed from the ground truth's rank (Eq. 27).
///
/// The candidate negatives are drawn once at construction with a fixed seed
/// so every model is ranked against identical candidate sets.
class RankingEvaluator {
 public:
  /// Evaluates on the test split by default; pass use_validation=true to
  /// score the held-out second-last records instead (used for epoch
  /// selection during training, Sec. V-C).
  RankingEvaluator(const data::TemporalDataset* dataset,
                   const data::BatchBuilder* builder, size_t num_negatives,
                   uint64_t seed, bool use_validation = false);

  /// Returns {K -> (HR@K, NDCG@K)} over the test split.
  struct Metrics {
    std::map<size_t, double> hr;
    std::map<size_t, double> ndcg;
  };
  Metrics Evaluate(core::Model* model, const std::vector<size_t>& ks) const;

  /// Same metrics computed through the serving fast path: candidate sets are
  /// scored by the Predictor (tape-free micro-batches, and the factored
  /// catalog program for SeqFM). Scores are bit-for-bit identical to the
  /// Model::Score path, so both overloads report identical metrics.
  Metrics Evaluate(const serve::Predictor& predictor,
                   const std::vector<size_t>& ks) const;

 private:
  const std::vector<data::SequenceExample>& Examples() const;

  /// Shared metric loop; the overloads only differ in how a candidate set is
  /// scored.
  Metrics EvaluateWith(
      const std::function<std::vector<float>(
          const data::SequenceExample&, const std::vector<int32_t>&)>&
          score_fn,
      const std::vector<size_t>& ks) const;

  const data::TemporalDataset* dataset_;
  const data::BatchBuilder* builder_;
  bool use_validation_;
  /// candidates_[i] = {ground truth, negatives...} for example i.
  std::vector<std::vector<int32_t>> candidates_;
};

/// \brief CTR-style classification evaluation (Sec. V-C): each test positive
/// is paired with one never-clicked negative; AUC and RMSE over the sigmoid
/// probabilities are reported (Table III).
class ClassificationEvaluator {
 public:
  ClassificationEvaluator(const data::TemporalDataset* dataset,
                          const data::BatchBuilder* builder, uint64_t seed,
                          bool use_validation = false);

  struct Metrics {
    double auc = 0.0;
    double rmse = 0.0;
    double logloss = 0.0;
  };
  Metrics Evaluate(core::Model* model) const;

 private:
  const std::vector<data::SequenceExample>& Examples() const;

  const data::TemporalDataset* dataset_;
  const data::BatchBuilder* builder_;
  bool use_validation_;
  std::vector<int32_t> negatives_;  // one per example
};

/// \brief Rating-prediction evaluation (Table IV): MAE and RRSE of the raw
/// model outputs against the held-out ratings (Eq. 28).
class RegressionEvaluator {
 public:
  RegressionEvaluator(const data::TemporalDataset* dataset,
                      const data::BatchBuilder* builder,
                      bool use_validation = false);

  struct Metrics {
    double mae = 0.0;
    double rrse = 0.0;
    double rmse = 0.0;
  };
  Metrics Evaluate(core::Model* model) const;

 private:
  const data::TemporalDataset* dataset_;
  const data::BatchBuilder* builder_;
  bool use_validation_;
};

/// Scores an arbitrary example list in mini-batches and returns the flat
/// score vector (shared helper; also useful in examples).
std::vector<float> ScoreExamples(
    core::Model* model, const data::BatchBuilder& builder,
    const std::vector<const data::SequenceExample*>& examples,
    const std::vector<int32_t>* target_override = nullptr,
    size_t batch_size = 256);

}  // namespace eval
}  // namespace seqfm

#endif  // SEQFM_EVAL_EVALUATOR_H_
