#include "core/trainer.h"

#include <algorithm>
#include <limits>

#include "autograd/ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace core {

Trainer::Trainer(Model* model, const data::BatchBuilder* builder,
                 const data::TemporalDataset* dataset,
                 const TrainConfig& config)
    : model_(model), builder_(builder), dataset_(dataset), config_(config),
      rng_(config.seed), sampler_(dataset) {
  SEQFM_CHECK_GT(config_.epochs, 0u);
  SEQFM_CHECK_GT(config_.batch_size, 0u);
  // One pool per process: sizing it here lets every kernel the step touches
  // (forward, backward, optimizer-side tensor ops) share the same workers.
  if (config_.num_threads > 0) {
    util::SetGlobalThreads(config_.num_threads);
  }
  optimizer_ = std::make_unique<optim::Adam>(model_->TrainableParameters(),
                                             config_.learning_rate);
}

double Trainer::TrainStep(
    const std::vector<const data::SequenceExample*>& chunk) {
  autograd::Variable loss;
  switch (config_.task) {
    case Task::kRanking: {
      // One BPR triple per (example occurrence): positive vs one sampled
      // negative. The example list already repeats each positive
      // num_negatives times per epoch.
      std::vector<int32_t> negatives(chunk.size());
      for (size_t i = 0; i < chunk.size(); ++i) {
        negatives[i] = sampler_.Sample(chunk[i]->user, &rng_);
      }
      data::Batch pos_batch = builder_->Build(chunk);
      data::Batch neg_batch = builder_->Build(chunk, &negatives);
      autograd::Variable pos = model_->Score(pos_batch, /*training=*/true);
      autograd::Variable neg = model_->Score(neg_batch, /*training=*/true);
      loss = autograd::BprLoss(pos, neg);
      break;
    }
    case Task::kClassification: {
      // Positive with label 1 and one sampled negative with label 0 per
      // occurrence (the occurrence list supplies the 5x negative ratio).
      std::vector<int32_t> negatives(chunk.size());
      for (size_t i = 0; i < chunk.size(); ++i) {
        negatives[i] = sampler_.Sample(chunk[i]->user, &rng_);
      }
      data::Batch pos_batch = builder_->Build(chunk);
      data::Batch neg_batch = builder_->Build(chunk, &negatives);
      autograd::Variable pos = model_->Score(pos_batch, /*training=*/true);
      autograd::Variable neg = model_->Score(neg_batch, /*training=*/true);
      const std::vector<float> ones(chunk.size(), 1.0f);
      const std::vector<float> zeros(chunk.size(), 0.0f);
      loss = autograd::Add(autograd::BceWithLogitsLoss(pos, ones),
                           autograd::BceWithLogitsLoss(neg, zeros));
      loss = autograd::Scale(loss, 0.5f);
      break;
    }
    case Task::kRegression: {
      data::Batch batch = builder_->Build(chunk);
      std::vector<float> targets(chunk.size());
      for (size_t i = 0; i < chunk.size(); ++i) {
        targets[i] = chunk[i]->rating;
      }
      autograd::Variable pred = model_->Score(batch, /*training=*/true);
      loss = autograd::MseLoss(pred, targets);
      break;
    }
  }
  const double loss_value = loss.value().at(0);
  optimizer_->ZeroGrad();
  autograd::Backward(loss);
  if (config_.grad_clip > 0.0f) {
    optimizer_->ClipGradNorm(config_.grad_clip);
  }
  optimizer_->Step();
  return loss_value;
}

EpochStats Trainer::TrainEpoch() {
  Stopwatch watch;
  const auto& train = dataset_->train();
  SEQFM_CHECK(!train.empty());

  // Occurrence list: ranking/classification repeat each positive once per
  // negative sample (Sec. IV-D); regression uses each example once.
  const size_t repeats =
      config_.task == Task::kRegression ? 1 : std::max<size_t>(1, config_.num_negatives);
  std::vector<const data::SequenceExample*> occurrences;
  occurrences.reserve(train.size() * repeats);
  for (size_t r = 0; r < repeats; ++r) {
    for (const auto& ex : train) occurrences.push_back(&ex);
  }
  rng_.Shuffle(occurrences);

  EpochStats stats;
  double total_loss = 0.0;
  for (size_t start = 0; start < occurrences.size();
       start += config_.batch_size) {
    const size_t end =
        std::min(occurrences.size(), start + config_.batch_size);
    std::vector<const data::SequenceExample*> chunk(
        occurrences.begin() + static_cast<ptrdiff_t>(start),
        occurrences.begin() + static_cast<ptrdiff_t>(end));
    total_loss += TrainStep(chunk);
    ++stats.steps;
  }
  stats.mean_loss = total_loss / static_cast<double>(stats.steps);
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

TrainResult Trainer::Train() {
  TrainResult result;
  std::vector<tensor::Tensor> best_params;
  const bool selecting =
      config_.validate_every > 0 && validation_scorer_ != nullptr;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    EpochStats stats = TrainEpoch();
    result.total_seconds += stats.seconds;
    if (config_.verbose) {
      SEQFM_LOG(Info) << model_->name() << " epoch " << (epoch + 1) << "/"
                      << config_.epochs << " loss=" << stats.mean_loss
                      << " (" << stats.seconds << "s)";
    }
    result.epochs.push_back(stats);
    const bool last = (epoch + 1 == config_.epochs);
    if (selecting && ((epoch + 1) % config_.validate_every == 0 || last)) {
      const double score = validation_scorer_();
      if (score > best_score) {
        best_score = score;
        result.best_epoch = epoch + 1;
        best_params.clear();
        for (const auto& p : model_->TrainableParameters()) {
          best_params.push_back(p.value());
        }
      }
    }
  }
  if (selecting && !best_params.empty()) {
    auto params = model_->TrainableParameters();
    SEQFM_CHECK_EQ(params.size(), best_params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value() = best_params[i];
    }
    result.best_validation = best_score;
  }
  result.final_loss = result.epochs.back().mean_loss;
  return result;
}

}  // namespace core
}  // namespace seqfm
