#include "core/scratch_arena.h"

#include <atomic>
#include <new>

#include "util/logging.h"

// ASan integration: rewound arena ranges are poisoned so use-after-rewind
// (a tensor escaping its ScratchScope) crashes loudly under the sanitizer
// CI job instead of reading recycled scratch.
#if defined(__SANITIZE_ADDRESS__)
#define SEQFM_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SEQFM_ARENA_ASAN 1
#endif
#endif

#ifdef SEQFM_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define SEQFM_ARENA_POISON(p, n) __asan_poison_memory_region((p), (n))
#define SEQFM_ARENA_UNPOISON(p, n) __asan_unpoison_memory_region((p), (n))
#else
#define SEQFM_ARENA_POISON(p, n) ((void)0)
#define SEQFM_ARENA_UNPOISON(p, n) ((void)0)
#endif

namespace seqfm {
namespace core {

namespace {

/// First block size; later blocks double (or jump straight to an oversized
/// request). 1 MiB covers small-model serving without growth while staying
/// negligible per thread.
constexpr size_t kInitialBlockBytes = size_t{1} << 20;

/// Memory order audit: every access below is relaxed, which is sound —
/// these are monotonic statistics counters that publish no data and gate no
/// control flow; readers (stats snapshots) tolerate torn cross-counter
/// views by design (ScratchStats documents "process-wide snapshot").
std::atomic<uint64_t> g_allocations{0};
std::atomic<uint64_t> g_heap_refills{0};
std::atomic<size_t> g_bytes_reserved{0};
std::atomic<size_t> g_high_water{0};

void UpdateHighWater(size_t in_use) {
  size_t cur = g_high_water.load(std::memory_order_relaxed);
  while (in_use > cur &&
         !g_high_water.compare_exchange_weak(cur, in_use,
                                             std::memory_order_relaxed)) {
  }
}

size_t RoundUp(size_t bytes) {
  return (bytes + ScratchArena::kAlignment - 1) &
         ~(ScratchArena::kAlignment - 1);
}

}  // namespace

ScratchArena::~ScratchArena() {
  for (Block& b : blocks_) {
    SEQFM_ARENA_UNPOISON(b.data, b.capacity);
    g_bytes_reserved.fetch_sub(b.capacity, std::memory_order_relaxed);
    ::operator delete(b.data, std::align_val_t{kAlignment});
  }
}

size_t ScratchArena::bytes_reserved() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

void* ScratchArena::Allocate(size_t bytes) {
  bytes = RoundUp(bytes == 0 ? 1 : bytes);
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // Reuse reserved capacity first: bump in the current block, else move on
  // to the next reserved block (earlier requests may have left several).
  while (current_ < blocks_.size()) {
    Block& b = blocks_[current_];
    if (b.used + bytes <= b.capacity) {
      char* p = b.data + b.used;
      b.used += bytes;
      in_use_ += bytes;
      UpdateHighWater(in_use_);
      SEQFM_ARENA_UNPOISON(p, bytes);
      return p;
    }
    ++current_;
  }
  // Refill: geometric growth so any request shape settles after O(log)
  // refills; counted globally so tests can assert steady state needs none.
  size_t capacity = blocks_.empty() ? kInitialBlockBytes
                                    : blocks_.back().capacity * 2;
  if (capacity < bytes) capacity = RoundUp(bytes);
  Block b;
  b.data = static_cast<char*>(
      ::operator new(capacity, std::align_val_t{kAlignment}));
  b.capacity = capacity;
  b.used = bytes;
  SEQFM_ARENA_POISON(b.data, b.capacity);
  SEQFM_ARENA_UNPOISON(b.data, bytes);
  current_ = blocks_.size();
  blocks_.push_back(b);
  in_use_ += bytes;
  UpdateHighWater(in_use_);
  g_heap_refills.fetch_add(1, std::memory_order_relaxed);
  g_bytes_reserved.fetch_add(capacity, std::memory_order_relaxed);
  return b.data;
}

void ScratchArena::RewindTo(const Mark& m) {
  SEQFM_DCHECK(m.block <= blocks_.size());
  for (size_t i = blocks_.size(); i-- > m.block + 1;) {
    Block& b = blocks_[i];
    SEQFM_ARENA_POISON(b.data, b.capacity);
    b.used = 0;
  }
  if (m.block < blocks_.size()) {
    Block& b = blocks_[m.block];
    SEQFM_DCHECK(m.used <= b.used);
    SEQFM_ARENA_POISON(b.data + m.used, b.capacity - m.used);
    b.used = m.used;
  }
  current_ = m.block;
  in_use_ = m.in_use;
}

namespace {
thread_local bool t_scope_active = false;
}  // namespace

ScratchArena& ThreadScratchArena() {
  thread_local ScratchArena arena;
  return arena;
}

bool ScratchScopeActive() { return t_scope_active; }

ScratchScope::ScratchScope()
    : mark_(ThreadScratchArena().mark()), prev_active_(t_scope_active) {
  t_scope_active = true;
}

ScratchScope::~ScratchScope() {
  ThreadScratchArena().RewindTo(mark_);
  t_scope_active = prev_active_;
}

ScratchStats GlobalScratchStats() {
  ScratchStats stats;
  stats.allocations = g_allocations.load(std::memory_order_relaxed);
  stats.heap_refills = g_heap_refills.load(std::memory_order_relaxed);
  stats.bytes_reserved = g_bytes_reserved.load(std::memory_order_relaxed);
  stats.high_water = g_high_water.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace core
}  // namespace seqfm
