#ifndef SEQFM_CORE_TRAINER_H_
#define SEQFM_CORE_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/model_interface.h"
#include "optim/optimizer.h"
#include "data/dataset.h"
#include "util/rng.h"

namespace seqfm {
namespace core {

/// The three application scenarios of Sec. IV.
enum class Task {
  kRanking,         // BPR loss (Eq. 21)
  kClassification,  // sigmoid + log loss (Eqs. 23-24)
  kRegression,      // squared error (Eq. 26)
};

/// Training-loop hyperparameters (Sec. IV-D).
struct TrainConfig {
  Task task = Task::kRanking;
  size_t epochs = 5;
  size_t batch_size = 256;
  float learning_rate = 1e-3f;
  /// Negative samples drawn per positive for ranking/classification
  /// (paper: 5).
  size_t num_negatives = 5;
  /// Global gradient-norm clip; <= 0 disables.
  float grad_clip = 5.0f;
  /// When > 0 and a validation scorer is set, the validation metric is
  /// computed every `validate_every` epochs and the parameters of the best
  /// epoch are restored after training (the paper's use of the held-out
  /// second-last records, Sec. V-C).
  size_t validate_every = 0;
  /// Size of the process-global util::ThreadPool shared by the forward and
  /// backward kernels. 0 keeps the current pool (SEQFM_THREADS env or
  /// hardware concurrency). A non-zero value recreates the pool at Trainer
  /// construction, so do not construct a Trainer with it while another
  /// thread is mid-training (see util::SetGlobalThreads). Loss curves are
  /// bit-for-bit identical for every value — see the determinism contract
  /// in util/thread_pool.h.
  size_t num_threads = 0;
  uint64_t seed = 42;
  bool verbose = false;
};

/// Per-epoch loss and wall-clock time (Fig. 4 uses the time series).
struct EpochStats {
  double mean_loss = 0.0;
  double seconds = 0.0;
  size_t steps = 0;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double total_seconds = 0.0;
  double final_loss = 0.0;
  /// 1-based epoch whose parameters were kept (0 when selection is off).
  size_t best_epoch = 0;
  double best_validation = 0.0;
};

/// \brief Task-generic mini-batch Adam training loop.
///
/// One Trainer serves SeqFM and every baseline: models only expose raw
/// scores, the trainer applies the task head. Ranking builds (positive,
/// negative) score pairs for BPR; classification scores the positive batch
/// with label 1 and `num_negatives` sampled batches with label 0; regression
/// regresses raw scores onto ratings.
class Trainer {
 public:
  Trainer(Model* model, const data::BatchBuilder* builder,
          const data::TemporalDataset* dataset, const TrainConfig& config);

  /// Sets the validation scorer used for epoch selection (higher = better;
  /// negate error metrics). Must outlive Train().
  void SetValidationScorer(std::function<double()> scorer) {
    validation_scorer_ = std::move(scorer);
  }

  /// Runs the configured number of epochs and returns loss/time stats.
  TrainResult Train();

  /// Runs a single epoch (exposed for the scalability bench).
  EpochStats TrainEpoch();

 private:
  double TrainStep(const std::vector<const data::SequenceExample*>& chunk);

  Model* model_;
  const data::BatchBuilder* builder_;
  const data::TemporalDataset* dataset_;
  TrainConfig config_;
  Rng rng_;
  data::NegativeSampler sampler_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  std::function<double()> validation_scorer_;
};

}  // namespace core
}  // namespace seqfm

#endif  // SEQFM_CORE_TRAINER_H_
