#ifndef SEQFM_CORE_SEQFM_H_
#define SEQFM_CORE_SEQFM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "core/model_interface.h"
#include "data/feature_space.h"
#include "nn/layers.h"
#include "nn/masks.h"
#include "nn/module.h"
#include "util/rng.h"

namespace seqfm {
namespace core {

/// \brief Hyperparameters of SeqFM (Sec. IV-D) plus the Table V ablation
/// switches.
struct SeqFmConfig {
  /// Latent dimension d (paper default 64).
  size_t embedding_dim = 64;
  /// Depth l of the shared residual feed-forward network (paper default 1).
  size_t ffn_layers = 1;
  /// Maximum dynamic sequence length n. (paper default 20). Must equal the
  /// BatchBuilder's max_seq_len.
  size_t max_seq_len = 20;
  /// Dropout ratio rho interpreted as the KEEP probability (paper default
  /// 0.6; Sec. VI-B observes that smaller rho blocks more neurons, i.e. rho
  /// is the kept fraction — see DESIGN.md).
  float keep_prob = 0.6f;

  /// Table V ablations: "Remove SV/DV/CV/RC/LN".
  bool use_static_view = true;
  bool use_dynamic_view = true;
  bool use_cross_view = true;
  bool use_residual = true;
  bool use_layer_norm = true;

  /// Optional extension (not in the paper): also mask attention *to*
  /// padding positions in the dynamic and cross views.
  bool mask_padding_keys = false;

  uint64_t seed = 42;
};

/// \brief Candidate-invariant state of one factored catalog request:
/// everything the (user, history) context determines, computed once per
/// request by SeqFm::ComputeSharedContext and re-used for every candidate.
///
/// This is the serving analogue of an LLM server's KV cache: the dynamic
/// view and the history-side cross projections do not depend on the
/// candidate, so serve::Predictor computes them once and serve::ContextCache
/// memoizes them across requests keyed on (user, history hash). Variables
/// hold detached (tape-free) tensors; the struct is immutable after
/// construction and safe to share across scoring threads.
struct SharedContext {
  size_t n = 0;          // max_seq_len
  size_t d = 0;          // embedding dim
  float inv_sqrt_d = 1.0f;
  int32_t user_index = 0;
  std::vector<int32_t> dynamic_ids;  // builder layout, length n
  autograd::Variable h_dyn;   // dynamic-view output, [1, d]
  autograd::Variable q_dyn;   // cross-view projections of the history rows,
  autograd::Variable k_dyn;   //   [1, n, d]
  autograd::Variable v_dyn;
  autograd::Variable k_user;  // cross-view projections of the user row,
  autograd::Variable v_user;  //   [1, 1, d]
  autograd::Variable out_user;  // cross-view output of the user row, [1, 1, d]

  /// Compiled-program contexts (ir::Engine::MakeContext): the prologue's
  /// candidate-invariant output tensors, in slot order, plus the uid of the
  /// engine whose body programs may consume them. Works for ANY compilable
  /// model, not just SeqFM; the hand-factored fields above stay empty then.
  std::vector<tensor::Tensor> slots;
  uint64_t engine_uid = 0;

  /// Resident bytes of the context's tensors + id buffer — the unit of
  /// serve::ContextCache's byte budget.
  size_t ApproxBytes() const;
};

/// \brief Sequence-Aware Factorization Machine (the paper's model, Eq. 19):
///
///   y(x) = w0 + [ (G_s w_s)^T ; (G_d w_d)^T ] 1 + <p, h_agg>
///
/// where h_agg concatenates the static-, dynamic- and cross-view
/// representations produced by multi-view self-attention (Eqs. 6-13),
/// intra-view mean pooling (Eq. 14) and a shared residual feed-forward
/// network (Eq. 15). The raw score is returned for all tasks; task heads
/// (BPR / sigmoid+logloss / squared error) are applied by the Trainer.
class SeqFm : public nn::Module, public Model {
 public:
  SeqFm(const data::FeatureSpace& space, const SeqFmConfig& config);

  autograd::Variable Score(const data::Batch& batch, bool training) override;

  std::vector<autograd::Variable> TrainableParameters() override {
    return Parameters();
  }

  std::string name() const override { return "SeqFM"; }

  const SeqFmConfig& config() const { return config_; }

  /// Number of views enabled by the configuration (1..3).
  size_t num_views() const;

  /// \brief Read-only handles to the model internals consumed by the serving
  /// fast path (serve::Predictor's factored catalog program).
  ///
  /// Attention pointers are null for views disabled by the config. Variables
  /// are cheap shared handles to the live parameters, so a checkpoint load
  /// into this model is immediately visible through the view.
  struct ServingView {
    const nn::Embedding* static_embedding = nullptr;
    const nn::Embedding* dynamic_embedding = nullptr;
    const nn::SelfAttention* static_attention = nullptr;
    const nn::SelfAttention* dynamic_attention = nullptr;
    const nn::SelfAttention* cross_attention = nullptr;
    const nn::ResidualFeedForward* ffn = nullptr;
    autograd::Variable w0, w_static, w_dynamic, p;
    autograd::Variable causal_mask;
  };
  ServingView serving_view() const;

  /// \brief Computes the candidate-invariant SharedContext for one request.
  ///
  /// \p user_index is the static-space index of the user row and
  /// \p dynamic_ids the BatchBuilder-layout history row (length max_seq_len,
  /// -1 padding) — both exactly as BatchBuilder::Build lays them out, so
  /// factored scores stay bit-for-bit identical to the batched forward.
  /// Runs tape-free (NoGradGuard internally) regardless of the caller's grad
  /// mode: contexts outlive the request inside serve::ContextCache, and a
  /// cached autograd tape would pin the whole graph. Preconditions (checked):
  /// all three views enabled, mask_padding_keys off, dynamic_ids.size() ==
  /// max_seq_len.
  SharedContext ComputeSharedContext(int32_t user_index,
                                     std::vector<int32_t> dynamic_ids) const;

 private:
  /// Intra-view pooling + shared FFN for one view's attention output.
  autograd::Variable PoolAndRefine(const autograd::Variable& h, float divisor,
                                   bool training);

  SeqFmConfig config_;
  data::FeatureSpace space_;
  Rng rng_;

  std::unique_ptr<nn::Embedding> static_embedding_;
  std::unique_ptr<nn::Embedding> dynamic_embedding_;
  std::unique_ptr<nn::SelfAttention> static_attention_;
  std::unique_ptr<nn::SelfAttention> dynamic_attention_;
  std::unique_ptr<nn::SelfAttention> cross_attention_;
  std::unique_ptr<nn::ResidualFeedForward> ffn_;

  autograd::Variable w0_;        // [1] global bias
  autograd::Variable w_static_;  // [m_static, 1] first-order weights
  autograd::Variable w_dynamic_; // [m_dynamic, 1]
  autograd::Variable p_;         // [num_views * d, 1] output projection

  autograd::Variable causal_mask_;  // [n., n.] (Eq. 10)
  autograd::Variable cross_mask_;   // [(n_s+n.), (n_s+n.)] (Eq. 13)
};

}  // namespace core
}  // namespace seqfm

#endif  // SEQFM_CORE_SEQFM_H_
