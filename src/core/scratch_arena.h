#ifndef SEQFM_CORE_SCRATCH_ARENA_H_
#define SEQFM_CORE_SCRATCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace seqfm {
namespace core {

/// Aggregate scratch-arena counters (process-wide across every thread's
/// arena, monotonic unless stated otherwise). Exposed through
/// serve::Predictor::scratch_stats() / serve::BatchServerStats so operators
/// can watch serving settle into the allocation-free steady state: after
/// warm-up, heap_refills stops moving while allocations keeps counting.
struct ScratchStats {
  /// Bump allocations served (one per op output in a scratch scope).
  uint64_t allocations = 0;
  /// Heap blocks ever reserved by arenas. Constant in steady state — the
  /// allocation-free-serving tests assert its delta is zero.
  uint64_t heap_refills = 0;
  /// Bytes currently reserved by live arenas (their block capacities).
  size_t bytes_reserved = 0;
  /// Largest bytes-in-use ever observed in a single arena — the working-set
  /// high-water mark a request needs.
  size_t high_water = 0;
};

/// \brief Thread-local bump allocator backing tape-free op outputs.
///
/// A request-scoped scratch space: allocations are pointer bumps inside
/// 64-byte-aligned blocks, nothing is freed individually, and a ScratchScope
/// rewinds the arena wholesale when the request (or chunk) is done. Blocks
/// are kept across rewinds — the high-water-mark reuse that makes a serving
/// thread's steady state completely heap-allocation-free: after the first
/// request at a given shape, every later request bumps through the same
/// memory. Under AddressSanitizer the rewound region is poisoned, so a
/// tensor that outlives its scope trips ASan instead of silently reading
/// recycled scratch.
///
/// Not thread-safe (by design: one arena per thread; see
/// ThreadScratchArena). Grows geometrically when a request outgrows the
/// reserve, counting each growth in ScratchStats::heap_refills.
class ScratchArena {
 public:
  /// Matches tensor::internal::kTensorAlignment so wrapped tensors see the
  /// same alignment guarantee as owned ones.
  static constexpr size_t kAlignment = 64;

  ScratchArena() = default;
  ~ScratchArena();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Bump-allocates \p bytes (rounded up to kAlignment), refilling from the
  /// heap only when no reserved block fits.
  void* Allocate(size_t bytes);
  /// Allocate() for n floats.
  float* AllocateFloats(size_t n) {
    return static_cast<float*>(Allocate(n * sizeof(float)));
  }
  /// Allocate() for n int32 ids (per-chunk candidate/static id vectors).
  int32_t* AllocateInts(size_t n) {
    return static_cast<int32_t*>(Allocate(n * sizeof(int32_t)));
  }

  /// A rewind point: which block was active and how much of it was used.
  struct Mark {
    size_t block = 0;
    size_t used = 0;
    size_t in_use = 0;
  };
  Mark mark() const { return {current_, CurrentUsed(), in_use_}; }
  /// Releases everything allocated after \p m (stack discipline; scopes
  /// nest). Block capacity is retained for reuse; the freed range is
  /// ASan-poisoned.
  void RewindTo(const Mark& m);

  /// Bytes currently allocated from this arena.
  size_t bytes_in_use() const { return in_use_; }
  /// Bytes of block capacity this arena holds.
  size_t bytes_reserved() const;

 private:
  struct Block {
    char* data = nullptr;
    size_t capacity = 0;
    size_t used = 0;
  };

  size_t CurrentUsed() const {
    return current_ < blocks_.size() ? blocks_[current_].used : 0;
  }

  std::vector<Block> blocks_;
  /// Index of the block Allocate bumps; blocks before it are (near-)full.
  size_t current_ = 0;
  size_t in_use_ = 0;
};

/// The calling thread's arena (created on first use, lives until thread
/// exit). Pool workers are long-lived, so their arenas amortize across the
/// process lifetime.
ScratchArena& ThreadScratchArena();

/// True when a ScratchScope is active on this thread — the signal
/// autograd::internal::OutputBuffer uses to draw op outputs from the arena.
bool ScratchScopeActive();

/// \brief RAII activation of arena-backed op outputs on the current thread.
///
/// \code
///   core::ScratchScope scratch;        // + NoGradGuard, see OutputBuffer
///   Variable scores = model->Score(batch, /*training=*/false);
///   CopyOut(scores.value());           // results must be copied out...
/// \endcode                             // ...before the scope closes
///
/// Everything allocated inside the scope is released at once by the
/// destructor's rewind. Scopes nest (inner scopes rewind to their own
/// entry). The contract mirrors Tensor::WrapExternal: no tensor allocated
/// inside may escape by move or reference — copies are fine, they own heap
/// memory. Only meaningful together with grad-mode-off; OutputBuffer
/// ignores the scope when a tape is being built.
class ScratchScope {
 public:
  ScratchScope();
  ~ScratchScope();

  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

 private:
  ScratchArena::Mark mark_;
  bool prev_active_;
};

/// Process-wide aggregate over every arena (atomics, cheap).
ScratchStats GlobalScratchStats();

}  // namespace core
}  // namespace seqfm

#endif  // SEQFM_CORE_SCRATCH_ARENA_H_
