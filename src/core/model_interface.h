#ifndef SEQFM_CORE_MODEL_INTERFACE_H_
#define SEQFM_CORE_MODEL_INTERFACE_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "data/dataset.h"

namespace seqfm {
namespace core {

/// \brief Interface every scoring model implements (SeqFM and all eleven
/// baselines).
///
/// A model maps a Batch of (static features, dynamic sequence) to one raw
/// score per sample, [B, 1]. Task heads are applied outside the model: the
/// trainer wraps scores with the BPR / log / squared losses (Sec. IV) and
/// evaluators rank or threshold them, so the same model runs all three tasks.
class Model {
 public:
  virtual ~Model() = default;

  /// Returns raw scores [batch, 1]. \p training enables dropout and other
  /// train-only behaviour; evaluation must be deterministic.
  virtual autograd::Variable Score(const data::Batch& batch,
                                   bool training) = 0;

  /// All trainable parameters (for the optimizer).
  virtual std::vector<autograd::Variable> TrainableParameters() = 0;

  /// Short display name used in bench tables ("SeqFM", "FM", ...).
  virtual std::string name() const = 0;
};

}  // namespace core
}  // namespace seqfm

#endif  // SEQFM_CORE_MODEL_INTERFACE_H_
