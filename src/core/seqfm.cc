#include "core/seqfm.h"

#include <cmath>
#include <limits>
#include <utility>

#include "autograd/ops.h"
#include "autograd/trace.h"
#include "tensor/init.h"

namespace seqfm {
namespace core {

using autograd::Variable;
using tensor::Tensor;

SeqFm::SeqFm(const data::FeatureSpace& space, const SeqFmConfig& config)
    : config_(config), space_(space), rng_(config.seed) {
  SEQFM_CHECK_GT(config_.embedding_dim, 0u);
  SEQFM_CHECK_GT(config_.max_seq_len, 0u);
  SEQFM_CHECK(config_.use_static_view || config_.use_dynamic_view ||
              config_.use_cross_view)
      << "at least one view must be enabled";
  const size_t d = config_.embedding_dim;

  static_embedding_ =
      std::make_unique<nn::Embedding>(space_.static_dim(), d, &rng_);
  dynamic_embedding_ =
      std::make_unique<nn::Embedding>(space_.dynamic_dim(), d, &rng_);
  RegisterModule("static_embedding", static_embedding_.get());
  RegisterModule("dynamic_embedding", dynamic_embedding_.get());

  if (config_.use_static_view) {
    static_attention_ = std::make_unique<nn::SelfAttention>(d, &rng_);
    RegisterModule("static_attention", static_attention_.get());
  }
  if (config_.use_dynamic_view) {
    dynamic_attention_ = std::make_unique<nn::SelfAttention>(d, &rng_);
    RegisterModule("dynamic_attention", dynamic_attention_.get());
  }
  if (config_.use_cross_view) {
    cross_attention_ = std::make_unique<nn::SelfAttention>(d, &rng_);
    RegisterModule("cross_attention", cross_attention_.get());
  }
  ffn_ = std::make_unique<nn::ResidualFeedForward>(
      d, config_.ffn_layers, &rng_, config_.use_residual,
      config_.use_layer_norm);
  RegisterModule("shared_ffn", ffn_.get());

  w0_ = RegisterParameter("w0", Tensor::Zeros({1}));
  w_static_ =
      RegisterParameter("w_static", Tensor::Zeros({space_.static_dim(), 1}));
  w_dynamic_ =
      RegisterParameter("w_dynamic", Tensor::Zeros({space_.dynamic_dim(), 1}));
  Tensor p({num_views() * d, 1});
  tensor::FillXavier(&p, &rng_);
  p_ = RegisterParameter("p", std::move(p));

  causal_mask_ = nn::MakeCausalMask(config_.max_seq_len);
  if (config_.use_cross_view) {
    // Materialize the cross mask for the standard BatchBuilder layout
    // (n_static = 2: user + candidate one-hots) so concurrent tape-free
    // Score calls never hit the lazy rebuild below — that write is the one
    // piece of mutable state in an otherwise read-only eval forward.
    cross_mask_ = nn::MakeCrossMask(2, config_.max_seq_len);
  }
}

SeqFm::ServingView SeqFm::serving_view() const {
  ServingView view;
  view.static_embedding = static_embedding_.get();
  view.dynamic_embedding = dynamic_embedding_.get();
  view.static_attention = static_attention_.get();
  view.dynamic_attention = dynamic_attention_.get();
  view.cross_attention = cross_attention_.get();
  view.ffn = ffn_.get();
  view.w0 = w0_;
  view.w_static = w_static_;
  view.w_dynamic = w_dynamic_;
  view.p = p_;
  view.causal_mask = causal_mask_;
  return view;
}

size_t SharedContext::ApproxBytes() const {
  size_t total = dynamic_ids.size() * sizeof(int32_t) + sizeof(*this);
  for (const autograd::Variable* v :
       {&h_dyn, &q_dyn, &k_dyn, &v_dyn, &k_user, &v_user, &out_user}) {
    if (v->defined()) total += v->value().size() * sizeof(float);
  }
  for (const tensor::Tensor& t : slots) total += t.size() * sizeof(float);
  return total;
}

SharedContext SeqFm::ComputeSharedContext(
    int32_t user_index, std::vector<int32_t> dynamic_ids) const {
  namespace ag = autograd;
  SEQFM_CHECK(config_.use_static_view && config_.use_dynamic_view &&
              config_.use_cross_view && !config_.mask_padding_keys)
      << "SharedContext requires the default three-view configuration";
  SEQFM_CHECK_EQ(dynamic_ids.size(), config_.max_seq_len);

  SharedContext ctx;
  ctx.n = config_.max_seq_len;
  ctx.d = config_.embedding_dim;
  ctx.inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(ctx.d));
  ctx.user_index = user_index;
  ctx.dynamic_ids = std::move(dynamic_ids);

  // Tape-free no matter the caller's mode: cached contexts must not pin an
  // autograd graph, and results are bit-identical either way.
  ag::NoGradGuard no_grad;

  // Dynamic view: depends only on the history, so one row suffices.
  Variable e_dyn =
      dynamic_embedding_->Forward(ctx.dynamic_ids, 1, ctx.n);
  Variable h = dynamic_attention_->Forward(e_dyn, causal_mask_);
  Variable pooled = ag::MeanAxis1(h, static_cast<float>(ctx.n));
  ctx.h_dyn = ffn_->Forward(pooled, config_.keep_prob, /*training=*/false,
                            /*rng=*/nullptr);

  // Cross view, history side: projections of the dynamic rows and the full
  // output of the user row (a static row attends only to dynamic columns,
  // none of which involve the candidate).
  ctx.q_dyn = ag::BmmShared(e_dyn, cross_attention_->wq());
  ctx.k_dyn = ag::BmmShared(e_dyn, cross_attention_->wk());
  ctx.v_dyn = ag::BmmShared(e_dyn, cross_attention_->wv());

  const std::vector<int32_t> user_only = {ctx.user_index};
  Variable e_user = static_embedding_->Forward(user_only, 1, 1);
  Variable q_user = ag::BmmShared(e_user, cross_attention_->wq());
  ctx.k_user = ag::BmmShared(e_user, cross_attention_->wk());
  ctx.v_user = ag::BmmShared(e_user, cross_attention_->wv());

  Variable su = ag::Scale(ag::Bmm(q_user, ctx.k_dyn, false, true),
                          ctx.inv_sqrt_d);               // [1, 1, n]
  Variable pu = ag::MaskedSoftmax(su, Variable());
  ctx.out_user = ag::Bmm(pu, ctx.v_dyn);                 // [1, 1, d]
  return ctx;
}

size_t SeqFm::num_views() const {
  return (config_.use_static_view ? 1u : 0u) +
         (config_.use_dynamic_view ? 1u : 0u) +
         (config_.use_cross_view ? 1u : 0u);
}

Variable SeqFm::PoolAndRefine(const Variable& h, float divisor,
                              bool training) {
  // Eq. 14: intra-view mean pooling with the fixed view length as divisor.
  Variable pooled = autograd::MeanAxis1(h, divisor);
  // Eq. 15: shared residual feed-forward refinement with dropout.
  return ffn_->Forward(pooled, config_.keep_prob, training, &rng_);
}

namespace {

/// Per-sample cross-view mask [B*(ns+nd), ns+nd] that blocks same-category
/// pairs (Eq. 13) and, additionally, attention to dynamic padding keys.
Variable MakePaddingAwareCrossMask(const std::vector<int32_t>& dynamic_ids,
                                   size_t batch, size_t ns, size_t nd) {
  const float kNegInf = -std::numeric_limits<float>::infinity();
  const size_t n = ns + nd;
  Tensor mask({batch * n, n});
  for (size_t b = 0; b < batch; ++b) {
    for (size_t i = 0; i < n; ++i) {
      float* row = mask.data() + (b * n + i) * n;
      const bool i_static = i < ns;
      bool any_open = false;
      for (size_t j = 0; j < n; ++j) {
        const bool j_static = j < ns;
        bool blocked = (i_static == j_static);
        if (!j_static && dynamic_ids[b * nd + (j - ns)] < 0) blocked = true;
        row[j] = blocked ? kNegInf : 0.0f;
        any_open = any_open || !blocked;
      }
      if (!any_open) row[i] = 0.0f;
    }
  }
  Variable v = Variable::Constant(std::move(mask));
  autograd::TraceAnnotateConstant(v, autograd::ConstantKind::kCrossPaddingMask);
  return v;
}

}  // namespace

Variable SeqFm::Score(const data::Batch& batch, bool training) {
  SEQFM_CHECK_EQ(batch.n_seq, config_.max_seq_len)
      << "batch built with a different max_seq_len";
  const size_t batch_size = batch.batch_size;
  const size_t ns = batch.n_static;
  const size_t nd = batch.n_seq;

  Variable e_static =
      static_embedding_->Forward(batch.static_ids, batch_size, ns);
  Variable e_dynamic =
      dynamic_embedding_->Forward(batch.dynamic_ids, batch_size, nd);

  std::vector<Variable> views;
  views.reserve(3);
  if (config_.use_static_view) {
    // Eq. 8: unmasked self-attention over static features.
    Variable h = static_attention_->Forward(e_static, Variable());
    views.push_back(PoolAndRefine(h, static_cast<float>(ns), training));
  }
  if (config_.use_dynamic_view) {
    // Eqs. 9-10: causally masked self-attention over the sequence.
    Variable mask = config_.mask_padding_keys
                        ? nn::MakeBatchPaddingMask(batch.dynamic_ids,
                                                   batch_size, nd,
                                                   /*causal=*/true)
                        : causal_mask_;
    Variable h = dynamic_attention_->Forward(e_dynamic, mask);
    views.push_back(PoolAndRefine(h, static_cast<float>(nd), training));
  }
  if (config_.use_cross_view) {
    // Eqs. 11-13: stacked features with the cross-block mask.
    Variable e_cross = autograd::ConcatAxis1(e_static, e_dynamic);
    Variable mask;
    if (config_.mask_padding_keys) {
      mask = MakePaddingAwareCrossMask(batch.dynamic_ids, batch_size, ns, nd);
    } else {
      if (!cross_mask_.defined() ||
          cross_mask_.value().dim(0) != ns + nd) {
        cross_mask_ = nn::MakeCrossMask(ns, nd);
      }
      mask = cross_mask_;
    }
    Variable h = cross_attention_->Forward(e_cross, mask);
    views.push_back(PoolAndRefine(h, static_cast<float>(ns + nd), training));
  }

  // Eq. 17-18: view-wise aggregation and projection to a scalar.
  Variable h_agg =
      views.size() == 1 ? views[0] : autograd::ConcatLastDim(views);
  Variable f = autograd::MatMul(h_agg, p_);

  // Eq. 19 linear terms: global bias + first-order feature weights.
  Variable linear = autograd::Add(
      autograd::EmbeddingSumGather(w_static_, batch.static_ids, batch_size, ns),
      autograd::EmbeddingSumGather(w_dynamic_, batch.dynamic_ids, batch_size,
                                   nd));
  return autograd::AddBias(autograd::Add(f, linear), w0_);
}

}  // namespace core
}  // namespace seqfm
