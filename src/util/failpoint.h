#ifndef SEQFM_UTIL_FAILPOINT_H_
#define SEQFM_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

/// Build gate: -DSEQFM_FAILPOINTS_ENABLED=0 (the CMake SEQFM_FAILPOINTS=OFF
/// option) compiles every Trigger to a constant 0. Defaults ON — this repo
/// never defines NDEBUG either; the disarmed cost is one relaxed load.
#ifndef SEQFM_FAILPOINTS_ENABLED
#define SEQFM_FAILPOINTS_ENABLED 1
#endif

namespace seqfm {
namespace util {

/// \brief Deterministic fault-injection registry (the "failpoint" discipline
/// of production KV/serving stacks): named sites compiled into every I/O
/// boundary, armed per-test or via the SEQFM_FAILPOINTS environment variable.
///
/// A site is a call to `FailPoint::Trigger("rpc.client.send")` at the point
/// where a fault would be observed. Disarmed (the steady state), Trigger is
/// one relaxed atomic load of a process-wide armed-site count and a compare
/// against zero — no lock, no string hash, no map lookup — so sites are free
/// to live on hot paths in release builds. Armed, Trigger consults the
/// site's schedule under a mutex and returns the spec's errno payload when
/// the schedule says this hit fails, 0 otherwise.
///
/// Schedules are DETERMINISTIC functions of the site's hit index (and, for
/// the probability mode, a seqfm::Rng stream fixed by the spec's seed):
///   - kNth:    hit N fails, all others pass (1-based; N=1 = first hit).
///   - kEveryK: every K-th hit fails (K, 2K, 3K, ...).
///   - kProb:   each hit fails with probability p, drawn from a per-site
///              Rng seeded by the spec — the same seed reproduces the exact
///              fail/pass sequence by hit index, independent of wall clock
///              or other sites.
/// An optional limit bounds the number of injected failures, after which
/// the site passes everything (models a transient fault burst that heals).
///
/// Env activation: SEQFM_FAILPOINTS holds ';'-separated specs
///   site=nth:3 | site=every:5 | site=prob:0.25[:seed=7][:err=110][:limit=2]
/// parsed by ArmFromEnv() — tests and the chaos harness call it explicitly;
/// nothing arms behind the build's back at static-init time.
///
/// Builds with SEQFM_FAILPOINTS=OFF compile Trigger to a constant 0 so the
/// whole layer (including the atomic load) folds away; the registry API
/// remains callable and inert so test helpers still link.
class FailPoint {
 public:
  enum class Mode : uint8_t {
    kNth,     // exactly hit `n` fails
    kEveryK,  // hits n, 2n, 3n, ... fail
    kProb,    // each hit fails with probability `p` (seeded stream)
  };

  struct Spec {
    Mode mode = Mode::kNth;
    /// kNth: the 1-based failing hit. kEveryK: the period. Ignored by kProb.
    uint64_t n = 1;
    /// kProb: per-hit failure probability in [0, 1].
    double p = 0.0;
    /// kProb: seed of the site's private Rng stream.
    uint64_t seed = 42;
    /// errno-style payload Trigger returns on an injected failure. Sites
    /// translate it into their layer's error (a Status, a short read, ...).
    int error = 5;  // EIO
    /// Injected failures are capped at this count (0 = unlimited); the site
    /// passes everything afterwards — a fault burst that heals.
    uint64_t limit = 0;
  };

  /// Per-site observability, for asserting a schedule actually executed.
  struct SiteStats {
    uint64_t hits = 0;      // Trigger calls while armed
    uint64_t failures = 0;  // hits that returned non-zero
  };

  /// Fault decision for \p site: 0 = proceed, non-zero = the armed spec's
  /// errno payload for this hit. Disarmed sites cost one relaxed load.
  static inline int Trigger(const char* site) {
#if SEQFM_FAILPOINTS_ENABLED
    if (armed_count_.load(std::memory_order_relaxed) == 0) return 0;
    return TriggerSlow(site);
#else
    (void)site;
    return 0;
#endif
  }

  /// Arms (or re-arms, resetting hit counts) \p site with \p spec.
  static void Arm(const std::string& site, const Spec& spec);

  /// Disarms \p site; a no-op when it was not armed.
  static void Disarm(const std::string& site);

  /// Disarms every site and clears all stats. Tests call this in teardown so
  /// schedules never leak across test cases.
  static void DisarmAll();

  /// Parses one `site=mode:value[:seed=N][:err=N][:limit=N]` spec and arms
  /// it. Returns false (arming nothing) on a malformed spec.
  static bool ArmFromString(const std::string& spec);

  /// Arms every ';'-separated spec in the SEQFM_FAILPOINTS environment
  /// variable. Returns the number of sites armed; malformed entries are
  /// skipped with a warning.
  static int ArmFromEnv();

  /// Stats for \p site (zeros when never armed since the last DisarmAll).
  static SiteStats Stats(const std::string& site);

  /// Every site currently armed (diagnostic / schedule logging).
  static std::vector<std::string> ArmedSites();

 private:
  static int TriggerSlow(const char* site);
  static std::atomic<int> armed_count_;
};

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor, so a failing ASSERT cannot leak a schedule into later tests.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string site, const FailPoint::Spec& spec)
      : site_(std::move(site)) {
    FailPoint::Arm(site_, spec);
  }
  ~ScopedFailPoint() { FailPoint::Disarm(site_); }
  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

 private:
  std::string site_;
};

}  // namespace util
}  // namespace seqfm

#endif  // SEQFM_UTIL_FAILPOINT_H_
