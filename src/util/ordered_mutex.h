#ifndef SEQFM_UTIL_ORDERED_MUTEX_H_
#define SEQFM_UTIL_ORDERED_MUTEX_H_

#include <mutex>
#include <vector>

#include "util/logging.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace util {

/// \brief Lock-rank checking mutex: deadlock-by-construction prevention.
///
/// Every OrderedMutex carries a name and an integer rank; a thread may only
/// acquire ranks in strictly increasing order. A violation check-fails
/// immediately, naming both locks — so a lock-order inversion (the raw
/// material of an ABBA deadlock) dies deterministically in any test that
/// executes the path once, instead of deadlocking one run in a thousand
/// under the right interleaving. Re-entrant acquisition of the same rank
/// (including the same mutex) fails the same way.
///
/// The held-lock stack is thread-local and at most a few entries deep, so
/// the check is a handful of compares per acquisition — cheap enough to
/// keep on in release builds (this codebase never defines NDEBUG).
///
/// Works with util::CondVar: condition_variable_any drives lock()/unlock()
/// directly, so the bookkeeping stays correct across a wait's internal
/// unlock/relock.
namespace lock_rank {

/// The process-wide acquisition order, outermost (lowest) to innermost
/// (highest). One source of truth — mirrored in README "Correctness
/// tooling". Observed nestings this order legalizes:
///   RpcServer::Shutdown:   shutdown_mu_  -> BatchServer::mu_ (drain)
///   BatchServer dispatch:  serve_mu_     -> mu_ (wave pop, stats)
///   ServeWave callbacks:   serve_mu_     -> RpcServer::mu_ (completions)
///                          serve_mu_     -> mu_ (re-submit from callback)
///   ServeWave scoring:     serve_mu_     -> ContextCache::mu_ (LRU)
///   lazy body compile:     (none held)   -> ir::Engine::mu_ (publication
///                          only; compiles never run under the engine lock)
/// The thread pool's internal locks stay unranked plain util::Mutex: they
/// are leaf locks by construction (never held across user callbacks).
///
/// Coordinator locks sit BELOW the whole single-replica serving stack
/// (< 100, per the rank reservation in ROADMAP.md): a coordinator fans out
/// while holding its own state lock, and each replica channel's mutex is
/// taken by the fan-out workers — both orders must legalize nesting into
/// an in-process replica's kRpcShutdown and below. The health lock sits
/// between them: plan building nests mu_ -> health_mu_ (circuit state is
/// consulted while routing), and outcome reporting takes health_mu_ alone
/// after the backend call returned — never across one, so a stuck replica
/// cannot wedge health updates for the rest of the fleet.
constexpr int kCoordinator = 40;        // serve::Coordinator::mu_
constexpr int kCoordinatorHealth = 45;  // serve::Coordinator::health_mu_
constexpr int kReplicaChannel = 50;     // serve::RemoteReplicaBackend::mu_
constexpr int kRpcShutdown = 100;     // serve::RpcServer::shutdown_mu_
constexpr int kBatchServe = 200;      // serve::BatchServer::serve_mu_
constexpr int kBatchQueue = 300;      // serve::BatchServer::mu_
constexpr int kRpcCompletions = 400;  // serve::RpcServer::mu_
constexpr int kContextCache = 500;    // serve::ContextCache::mu_
constexpr int kIrEngine = 600;        // ir::Engine::mu_

}  // namespace lock_rank

class SEQFM_CAPABILITY("mutex") OrderedMutex {
 public:
  OrderedMutex(const char* name, int rank) : name_(name), rank_(rank) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() SEQFM_ACQUIRE() {
    CheckRankAgainstHeld();
    mu_.lock();
    Held().push_back(this);
  }

  void unlock() SEQFM_RELEASE() {
    // Search from the back: release order need not mirror acquisition
    // order (e.g. a scoped lock released while an outer one stays held).
    std::vector<const OrderedMutex*>& held = Held();
    bool found = false;
    for (size_t i = held.size(); i-- > 0;) {
      if (held[i] == this) {
        held.erase(held.begin() + static_cast<ptrdiff_t>(i));
        found = true;
        break;
      }
    }
    SEQFM_CHECK(found) << "OrderedMutex: releasing '" << name_
                       << "' which this thread does not hold";
    mu_.unlock();
  }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  static std::vector<const OrderedMutex*>& Held() {
    static thread_local std::vector<const OrderedMutex*> held;
    return held;
  }

  void CheckRankAgainstHeld() const {
    for (const OrderedMutex* h : Held()) {
      SEQFM_CHECK(h->rank_ < rank_)
          << "OrderedMutex: lock-rank inversion: acquiring '" << name_
          << "' (rank " << rank_ << ") while holding '" << h->name_
          << "' (rank " << h->rank_
          << "); acquisition order must follow util::lock_rank";
    }
  }

  std::mutex mu_;
  const char* const name_;
  const int rank_;
};

/// RAII lock for OrderedMutex, scoped-capability annotated like MutexLock.
class SEQFM_SCOPED_CAPABILITY OrderedMutexLock {
 public:
  explicit OrderedMutexLock(OrderedMutex& mu) SEQFM_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~OrderedMutexLock() SEQFM_RELEASE() { mu_.unlock(); }
  OrderedMutexLock(const OrderedMutexLock&) = delete;
  OrderedMutexLock& operator=(const OrderedMutexLock&) = delete;

 private:
  OrderedMutex& mu_;
};

}  // namespace util
}  // namespace seqfm

#endif  // SEQFM_UTIL_ORDERED_MUTEX_H_
