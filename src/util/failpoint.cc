#include "util/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "util/logging.h"
#include "util/rng.h"

namespace seqfm {
namespace util {

namespace {

struct SiteState {
  FailPoint::Spec spec;
  // Probability mode draws from this site-private stream, so the fail/pass
  // sequence is a pure function of (seed, hit index) — other sites, threads
  // and wall clock cannot perturb it.
  Rng rng{42};
  uint64_t hits = 0;
  uint64_t failures = 0;
};

// One mutex for the whole registry: Trigger only reaches it when at least
// one site is armed (tests and chaos runs), never in production steady
// state, so contention is not a concern and ordering stays trivially safe.
// A plain std::mutex (not OrderedMutex) keeps failpoints usable inside any
// code region regardless of which ranked locks the caller already holds.
std::mutex& RegistryMu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, SiteState>& Registry() {
  static auto* registry = new std::map<std::string, SiteState>();
  return *registry;
}

// Parses "key=N" style suffix fields; returns false on garbage.
bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

}  // namespace

std::atomic<int> FailPoint::armed_count_{0};

void FailPoint::Arm(const std::string& site, const Spec& spec) {
  SEQFM_CHECK(!site.empty()) << "FailPoint::Arm: empty site name";
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto [it, inserted] = Registry().emplace(site, SiteState{});
  it->second.spec = spec;
  it->second.rng = Rng(spec.seed);
  it->second.hits = 0;
  it->second.failures = 0;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FailPoint::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  if (Registry().erase(site) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoint::DisarmAll() {
  std::lock_guard<std::mutex> lock(RegistryMu());
  armed_count_.fetch_sub(static_cast<int>(Registry().size()),
                         std::memory_order_relaxed);
  Registry().clear();
}

int FailPoint::TriggerSlow(const char* site) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto it = Registry().find(site);
  if (it == Registry().end()) return 0;
  SiteState& state = it->second;
  const Spec& spec = state.spec;
  const uint64_t hit = ++state.hits;  // 1-based
  if (spec.limit != 0 && state.failures >= spec.limit) return 0;
  bool fail = false;
  switch (spec.mode) {
    case Mode::kNth:
      fail = (hit == spec.n);
      break;
    case Mode::kEveryK:
      fail = (spec.n != 0 && hit % spec.n == 0);
      break;
    case Mode::kProb:
      fail = state.rng.Bernoulli(spec.p);
      break;
  }
  if (!fail) return 0;
  ++state.failures;
  return spec.error;
}

bool FailPoint::ArmFromString(const std::string& text) {
  // site=mode:value[:seed=N][:err=N][:limit=N]
  const size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const std::string site = text.substr(0, eq);
  std::vector<std::string> fields;
  for (size_t begin = eq + 1; begin <= text.size();) {
    const size_t colon = text.find(':', begin);
    const size_t end = colon == std::string::npos ? text.size() : colon;
    fields.push_back(text.substr(begin, end - begin));
    begin = end + 1;
    if (colon == std::string::npos) break;
  }
  if (fields.size() < 2) return false;
  Spec spec;
  const std::string& mode = fields[0];
  const std::string& value = fields[1];
  if (mode == "nth") {
    spec.mode = Mode::kNth;
    if (!ParseUint(value, &spec.n) || spec.n == 0) return false;
  } else if (mode == "every") {
    spec.mode = Mode::kEveryK;
    if (!ParseUint(value, &spec.n) || spec.n == 0) return false;
  } else if (mode == "prob") {
    spec.mode = Mode::kProb;
    if (!ParseDouble(value, &spec.p) || spec.p < 0.0 || spec.p > 1.0) {
      return false;
    }
  } else {
    return false;
  }
  for (size_t f = 2; f < fields.size(); ++f) {
    const size_t feq = fields[f].find('=');
    if (feq == std::string::npos) return false;
    const std::string key = fields[f].substr(0, feq);
    const std::string val = fields[f].substr(feq + 1);
    uint64_t num = 0;
    if (!ParseUint(val, &num)) return false;
    if (key == "seed") {
      spec.seed = num;
    } else if (key == "err") {
      spec.error = static_cast<int>(num);
    } else if (key == "limit") {
      spec.limit = num;
    } else {
      return false;
    }
  }
  Arm(site, spec);
  return true;
}

int FailPoint::ArmFromEnv() {
  const char* env = std::getenv("SEQFM_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return 0;
  int armed = 0;
  const std::string all(env);
  for (size_t begin = 0; begin <= all.size();) {
    const size_t semi = all.find(';', begin);
    const size_t end = semi == std::string::npos ? all.size() : semi;
    const std::string one = all.substr(begin, end - begin);
    if (!one.empty()) {
      if (ArmFromString(one)) {
        ++armed;
      } else {
        SEQFM_LOG(Warning) << "SEQFM_FAILPOINTS: skipping malformed spec '"
                           << one << "'";
      }
    }
    begin = end + 1;
    if (semi == std::string::npos) break;
  }
  return armed;
}

FailPoint::SiteStats FailPoint::Stats(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto it = Registry().find(site);
  if (it == Registry().end()) return SiteStats{};
  return SiteStats{it->second.hits, it->second.failures};
}

std::vector<std::string> FailPoint::ArmedSites() {
  std::lock_guard<std::mutex> lock(RegistryMu());
  std::vector<std::string> sites;
  sites.reserve(Registry().size());
  for (const auto& [site, state] : Registry()) sites.push_back(site);
  return sites;
}

}  // namespace util
}  // namespace seqfm
