#ifndef SEQFM_UTIL_MUTEX_H_
#define SEQFM_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace seqfm {
namespace util {

/// \brief std::mutex with clang capability annotations.
///
/// libstdc++'s std::mutex carries no thread-safety attributes, so members
/// guarded by one are invisible to -Wthread-safety. This wrapper is the
/// annotated drop-in: same storage, same fast path (lock/unlock inline to
/// the std calls), but acquiring/releasing is visible to the analysis.
/// Waiting uses util::CondVar (condition_variable_any over this type).
class SEQFM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SEQFM_ACQUIRE() { mu_.lock(); }
  void unlock() SEQFM_RELEASE() { mu_.unlock(); }
  bool try_lock() SEQFM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for util::Mutex, visible to the analysis as a scoped
/// capability (std::lock_guard<util::Mutex> would lock correctly but the
/// analysis does not look through template constructors).
class SEQFM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SEQFM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SEQFM_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with util::Mutex and util::OrderedMutex (any
/// BasicLockable). Wait() is annotated as requiring the mutex: the analysis
/// treats the capability as held across the internal unlock/relock, which is
/// sound for the guarded-predicate pattern — the predicate only runs with
/// the lock held. Predicate lambdas touching guarded members must carry
/// SEQFM_REQUIRES(mu) themselves (the analysis checks lambda bodies
/// separately from the enclosing function).
class CondVar {
 public:
  template <typename M>
  void Wait(M& mu) SEQFM_REQUIRES(mu) {
    cv_.wait(mu);
  }
  template <typename M, typename Pred>
  void Wait(M& mu, Pred pred) SEQFM_REQUIRES(mu) {
    while (!pred()) cv_.wait(mu);
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace util
}  // namespace seqfm

#endif  // SEQFM_UTIL_MUTEX_H_
