#ifndef SEQFM_UTIL_RESULT_H_
#define SEQFM_UTIL_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace seqfm {

/// \brief Value-or-Status carrier, the return type of fallible factories.
///
/// Usage:
/// \code
///   Result<Tensor> r = Tensor::FromShape({2, 3});
///   if (!r.ok()) return r.status();
///   Tensor t = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    SEQFM_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if the result holds an error.
  const T& ValueOrDie() const& {
    SEQFM_CHECK(ok()) << "ValueOrDie on error result: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    SEQFM_CHECK(ok()) << "ValueOrDie on error result: " << status_.ToString();
    return *value_;
  }
  T ValueOrDie() && {
    SEQFM_CHECK(ok()) << "ValueOrDie on error result: " << status_.ToString();
    return std::move(*value_);
  }

  /// Shorthand operators for accessing the value.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression or returns its error status.
#define SEQFM_ASSIGN_OR_RETURN(lhs, expr)            \
  SEQFM_ASSIGN_OR_RETURN_IMPL(                       \
      SEQFM_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define SEQFM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define SEQFM_CONCAT_NAME(x, y) SEQFM_CONCAT_NAME_IMPL(x, y)
#define SEQFM_CONCAT_NAME_IMPL(x, y) x##y

}  // namespace seqfm

#endif  // SEQFM_UTIL_RESULT_H_
