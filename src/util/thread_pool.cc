#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/logging.h"

namespace seqfm {
namespace util {

namespace {
/// True while the current thread is executing pool work (worker or
/// submitter); nested ParallelFor calls from such threads run inline.
thread_local bool t_in_pool_work = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  SEQFM_CHECK_GE(num_threads, 1u);
  StartWorkers(num_threads);
}

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::StartWorkers(size_t num_threads) {
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  num_threads_.store(num_threads, std::memory_order_release);
}

void ThreadPool::StopWorkers() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
  workers_.clear();
  {
    // Reset so Resize can start a fresh worker set on the same object.
    MutexLock lock(mu_);
    shutdown_ = false;
  }
}

void ThreadPool::Resize(size_t num_threads) {
  SEQFM_CHECK_GE(num_threads, 1u);
  // Resizing from inside pool work would deadlock on region_mu_ (the outer
  // ParallelFor holds it for the whole region); fail loudly instead.
  SEQFM_CHECK(!t_in_pool_work)
      << "ThreadPool::Resize called from inside pool work";
  // Waits until no parallel region is active, and keeps new regions out
  // while workers are being swapped. Threads already holding a reference to
  // this pool stay valid: the object is never destroyed, only re-staffed.
  MutexLock region_lock(region_mu_);
  if (num_threads == this->num_threads()) return;
  StopWorkers();
  StartWorkers(num_threads);
}

void ThreadPool::RunChunks() {
  for (;;) {
    size_t b, e;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    {
      MutexLock lock(mu_);
      if (next_ >= end_) return;
      b = next_;
      e = std::min(end_, b + chunk_);
      next_ = e;
      ++active_;
      // Read the region body under the lock that claims the chunk. The
      // submitter clears fn_ only after observing active_ == 0 with
      // next_ >= end_ under mu_, so the pointer stays valid for this chunk.
      fn = fn_;
    }
    const bool was_in_pool_work = t_in_pool_work;
    t_in_pool_work = true;
    (*fn)(b, e);
    t_in_pool_work = was_in_pool_work;
    {
      MutexLock lock(mu_);
      --active_;
      if (next_ >= end_ && active_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::WorkerLoop() {
  mu_.lock();
  for (;;) {
    work_cv_.Wait(mu_, [this]() SEQFM_REQUIRES(mu_) {
      return shutdown_ || (fn_ != nullptr && next_ < end_);
    });
    if (shutdown_) {
      mu_.unlock();
      return;
    }
    mu_.unlock();
    RunChunks();
    mu_.lock();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  const size_t n = end - begin;
  grain = std::max<size_t>(1, grain);
  // num_threads() (not workers_.size()) so the check never races with a
  // concurrent Resize; a stale read is benign — the work either runs inline
  // or serializes against the resize on region_mu_ below.
  if (num_threads() == 1 || n <= grain || t_in_pool_work) {
    // Inline execution. Note t_in_pool_work stays as-is: a range that is
    // merely too small to split (e.g. a batch dimension of 1) must not
    // suppress parallelism in nested calls that do have enough work.
    fn(begin, end);
    return;
  }
  const size_t max_chunks = (n + grain - 1) / grain;
  const size_t chunks = std::min(num_threads(), max_chunks);
  MutexLock region_lock(region_mu_);
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    next_ = begin;
    end_ = end;
    chunk_ = (n + chunks - 1) / chunks;
    active_ = 0;
  }
  work_cv_.NotifyAll();
  RunChunks();
  {
    MutexLock lock(mu_);
    done_cv_.Wait(mu_, [this]() SEQFM_REQUIRES(mu_) {
      return next_ >= end_ && active_ == 0;
    });
    fn_ = nullptr;
  }
}

size_t DefaultThreads() {
  if (const char* env = std::getenv("SEQFM_THREADS")) {
    // endptr check: "4garbage" must hit the warning path below, not silently
    // become 4 (strtol stops at the first non-digit and reports success).
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<size_t>(parsed);
    }
    SEQFM_LOG(Warning) << "ignoring invalid SEQFM_THREADS='" << env << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

namespace {
Mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool SEQFM_GUARDED_BY(g_pool_mu);

ThreadPool& GetOrCreatePool() {
  MutexLock lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(DefaultThreads());
  return *g_pool;
}
}  // namespace

ThreadPool& GlobalPool() { return GetOrCreatePool(); }

void SetGlobalThreads(size_t num_threads) {
  SEQFM_CHECK_GE(num_threads, 1u);
  // Never destroy the pool: other threads may hold the ThreadPool& returned
  // by GlobalPool() or be mid-ParallelFor (replacing the object was a
  // use-after-free window). Resize re-staffs the same object after draining
  // the active region. The resize runs outside g_pool_mu — the pointer is
  // stable once created, and holding g_pool_mu through the drain could
  // deadlock against a region whose body lazily calls GlobalThreads().
  ThreadPool* pool = nullptr;
  {
    MutexLock lock(g_pool_mu);
    if (!g_pool) {
      g_pool = std::make_unique<ThreadPool>(num_threads);
      return;
    }
    pool = g_pool.get();
  }
  pool->Resize(num_threads);
}

size_t GlobalThreads() { return GetOrCreatePool().num_threads(); }

bool InParallelRegion() { return t_in_pool_work; }

namespace internal {
void ParallelForImpl(size_t n, size_t grain,
                     const std::function<void(size_t, size_t)>& fn) {
  GetOrCreatePool().ParallelFor(0, n, grain, fn);
}
}  // namespace internal

}  // namespace util
}  // namespace seqfm
