#ifndef SEQFM_UTIL_STOPWATCH_H_
#define SEQFM_UTIL_STOPWATCH_H_

#include <chrono>

namespace seqfm {

/// \brief Wall-clock timer used by the trainer and the scalability bench
/// (Fig. 4 reproduction).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace seqfm

#endif  // SEQFM_UTIL_STOPWATCH_H_
