#ifndef SEQFM_UTIL_THREAD_POOL_H_
#define SEQFM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace util {

/// \brief Fixed-size thread pool backing every parallel loop in the library.
///
/// Deliberately simple: no work stealing and no futures. Work is submitted as
/// a contiguous index range through ParallelFor, which splits it into chunks,
/// lets the calling thread participate, and blocks until every chunk has run.
///
/// Determinism contract: kernels dispatched through the pool must compute
/// each output element entirely within one chunk (no cross-chunk floating
/// point reductions), so results are bit-for-bit identical for any thread
/// count. See tensor/ops.cc for the canonical example.
class ThreadPool {
 public:
  /// Creates a pool that runs work on \p num_threads threads total: the
  /// calling thread plus num_threads - 1 workers. num_threads must be >= 1;
  /// a pool of 1 runs everything inline.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute ParallelFor work (workers + caller). Safe to
  /// call concurrently with Resize.
  size_t num_threads() const {
    return num_threads_.load(std::memory_order_acquire);
  }

  /// Resizes the pool in place: waits for the active parallel region (if
  /// any) to finish, joins the old workers, and starts new ones. References
  /// to the pool stay valid across the call, and a ParallelFor racing with
  /// the resize simply runs before or after it. Must not be called from
  /// inside pool work (it would deadlock on its own region; check-fails
  /// loudly instead). No-op when the size is unchanged.
  void Resize(size_t num_threads);

  /// Runs fn(chunk_begin, chunk_end) over disjoint chunks covering
  /// [begin, end) and blocks until all chunks are done. Ranges of at most
  /// \p grain elements (and all work when the pool has a single thread) run
  /// inline on the caller. Nested calls from inside pool work also run
  /// inline, so kernels may call ParallelFor unconditionally.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();
  /// Pulls chunks of the active region until none remain. Both workers and
  /// the submitting thread execute this.
  void RunChunks();
  /// Spawns workers for a total of \p num_threads threads (ctor / Resize).
  void StartWorkers(size_t num_threads);
  /// Joins and clears all workers, leaving the pool restartable.
  void StopWorkers();

  /// Touched only single-threaded (ctor/dtor) or under region_mu_ (Resize),
  /// so it carries no GUARDED_BY: the analysis cannot express "guarded
  /// except during construction", and annotating it would force spurious
  /// locking in the constructor.
  std::vector<std::thread> workers_;
  /// Mirrors workers_.size() + 1 so num_threads() is race-free while Resize
  /// mutates the vector.
  std::atomic<size_t> num_threads_{1};

  /// Serializes parallel regions: only one ParallelFor is active at a time.
  /// Deliberately unranked (plain Mutex, not OrderedMutex): it is taken
  /// around user callbacks, which may acquire any ranked serve-layer lock —
  /// see util::lock_rank in ordered_mutex.h.
  Mutex region_mu_;

  Mutex mu_;
  CondVar work_cv_;  // workers: "a region has chunks left"
  CondVar done_cv_;  // submitter: "all chunks finished"
  /// Active region descriptor. fn_ is read under mu_ when a chunk is
  /// claimed; the submitter clears it only after observing active_ == 0 and
  /// next_ >= end_ under the same lock.
  const std::function<void(size_t, size_t)>* fn_ SEQFM_GUARDED_BY(mu_) =
      nullptr;
  size_t next_ SEQFM_GUARDED_BY(mu_) = 0;   // first index not yet claimed
  size_t end_ SEQFM_GUARDED_BY(mu_) = 0;    // one past the region's last
  size_t chunk_ SEQFM_GUARDED_BY(mu_) = 0;  // chunk size for the region
  size_t active_ SEQFM_GUARDED_BY(mu_) = 0;  // chunks currently executing
  bool shutdown_ SEQFM_GUARDED_BY(mu_) = false;
};

/// Number of threads the process-global pool should use: the SEQFM_THREADS
/// environment variable when it parses as a whole positive integer (no
/// trailing garbage), otherwise the hardware concurrency. Malformed values
/// are rejected with a warning, never silently truncated.
size_t DefaultThreads();

/// The process-global pool shared by forward, backward, and the benches.
/// Lazily constructed with DefaultThreads() on first use. The returned
/// reference stays valid for the life of the process — SetGlobalThreads
/// resizes the pool in place instead of replacing it.
ThreadPool& GlobalPool();

/// Resizes the global pool (used by --threads flags and TrainConfig).
/// Safe to call while other threads hold the GlobalPool() reference or are
/// mid-ParallelFor: the resize drains the active region first and never
/// destroys the pool object. Calling it from inside pool work check-fails.
void SetGlobalThreads(size_t num_threads);

/// Current size of the global pool (constructs it if needed).
size_t GlobalThreads();

/// True while the current thread is executing pool work; nested parallel
/// loops run inline in that case.
bool InParallelRegion();

namespace internal {
/// Type-erased slow path of the free ParallelFor (dispatches to GlobalPool).
void ParallelForImpl(size_t n, size_t grain,
                     const std::function<void(size_t, size_t)>& fn);
}  // namespace internal

/// Convenience wrapper: GlobalPool().ParallelFor(0, n, grain, fn). A
/// template so the serial fast path (small n, nested call, 1-thread pool)
/// invokes the body directly without materializing a std::function — op
/// kernels call this on every tensor, most of which sit below the grain.
template <typename Fn>
void ParallelFor(size_t n, size_t grain, Fn&& fn) {
  if (n == 0) return;
  if (n <= (grain == 0 ? 1 : grain) || InParallelRegion() ||
      GlobalThreads() == 1) {
    fn(size_t{0}, n);
    return;
  }
  internal::ParallelForImpl(n, grain,
                            std::function<void(size_t, size_t)>(
                                std::forward<Fn>(fn)));
}

/// Shared grain sizes for the compute kernels: loops with fewer elements
/// than the grain stay serial so small tensors never pay dispatch overhead.
/// Transcendental loops (exp/tanh/softmax rows) use the smaller cutoff
/// because each element is more expensive.
constexpr size_t kEwGrain = size_t{1} << 14;
constexpr size_t kMathGrain = size_t{1} << 12;
/// Minimum units of heavy inner work (GEMM multiply-adds, RNG draws) a
/// loop must carry before it is worth dispatching to the pool at all.
constexpr size_t kMinParallelWork = size_t{1} << 15;

/// Outer-loop grain so each parallel chunk carries at least `min_work`
/// elements of inner work.
inline size_t GrainForRows(size_t inner_work, size_t min_work) {
  const size_t grain = min_work / (inner_work == 0 ? 1 : inner_work);
  return grain == 0 ? 1 : grain;
}

}  // namespace util
}  // namespace seqfm

#endif  // SEQFM_UTIL_THREAD_POOL_H_
