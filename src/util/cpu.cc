#include "util/cpu.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace seqfm {
namespace util {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  // FMA is probed alongside AVX2 because the kernel TU is built with both
  // flags; a (hypothetical) AVX2-without-FMA part must stay on scalar.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdLevel ResolveSimdChoice(const char* env_value, bool cpu_has_avx2,
                            bool* warning) {
  *warning = false;
  const SimdLevel best = cpu_has_avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  if (env_value == nullptr || std::strcmp(env_value, "auto") == 0 ||
      env_value[0] == '\0') {
    return best;
  }
  if (std::strcmp(env_value, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env_value, "avx2") == 0) {
    if (cpu_has_avx2) return SimdLevel::kAvx2;
    *warning = true;  // asked for AVX2 on hardware without it
    return SimdLevel::kScalar;
  }
  *warning = true;  // unrecognized value: behave like auto
  return best;
}

namespace {

// -1 = unresolved; otherwise a SimdLevel. Resolved once from the environment,
// overridable afterwards by SetSimdLevel (tests/benches).
std::atomic<int> g_level{-1};

SimdLevel ResolveFromEnvironment() {
  const char* env = std::getenv("SEQFM_SIMD");
  bool warning = false;
  const SimdLevel level = ResolveSimdChoice(env, CpuHasAvx2(), &warning);
  if (warning) {
    SEQFM_LOG(Warning) << "SEQFM_SIMD=" << env << " cannot be honored "
                       << "(want auto|scalar|avx2 supported by this CPU); "
                       << "using " << SimdLevelName(level);
  }
  return level;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  int v = g_level.load(std::memory_order_acquire);
  if (v < 0) {
    const SimdLevel resolved = ResolveFromEnvironment();
    int expected = -1;
    // On a lost race keep the first resolution (both racers computed the
    // same value anyway; the environment does not change mid-process).
    if (g_level.compare_exchange_strong(expected, static_cast<int>(resolved),
                                        std::memory_order_acq_rel)) {
      return resolved;
    }
    v = g_level.load(std::memory_order_acquire);
  }
  return static_cast<SimdLevel>(v);
}

SimdLevel SetSimdLevel(SimdLevel level) {
  SEQFM_CHECK(level != SimdLevel::kAvx2 || CpuHasAvx2())
      << "SetSimdLevel(avx2) on a CPU without AVX2+FMA";
  const SimdLevel prev = ActiveSimdLevel();
  g_level.store(static_cast<int>(level), std::memory_order_release);
  return prev;
}

}  // namespace util
}  // namespace seqfm
