#ifndef SEQFM_UTIL_HASH_H_
#define SEQFM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace seqfm {
namespace util {

/// 64-bit FNV-1a: cheap, streaming, and strong enough to catch bit rot,
/// truncation-with-padding, and to key caches on id sequences. This is an
/// integrity/bucketing hash, not a cryptographic one — collision-sensitive
/// callers (serve::ContextCache) must still compare full keys on lookup.
inline constexpr uint64_t kFnv64Offset = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv64Prime = 0x00000100000001b3ull;

/// Folds \p len bytes at \p data into a running FNV-1a state. Start from
/// kFnv64Offset (or use Fnv1a64) and chain calls to hash multi-part keys.
inline uint64_t FnvUpdate(uint64_t hash, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnv64Prime;
  }
  return hash;
}

/// One-shot FNV-1a over a byte range.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  return FnvUpdate(kFnv64Offset, data, len);
}

}  // namespace util
}  // namespace seqfm

#endif  // SEQFM_UTIL_HASH_H_
