#ifndef SEQFM_UTIL_STATUS_H_
#define SEQFM_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace seqfm {

/// Error categories used across the library. Mirrors the coarse-grained codes
/// used by Arrow / RocksDB style Status objects.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIoError,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
};

/// \brief Lightweight success/error carrier returned by fallible operations.
///
/// The library does not throw exceptions on hot paths; constructors that can
/// fail are replaced by static factory functions returning Status or
/// Result<T>. An OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string for logs and test output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Propagates a non-OK status to the caller.
#define SEQFM_RETURN_NOT_OK(expr)             \
  do {                                        \
    ::seqfm::Status _st = (expr);             \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace seqfm

#endif  // SEQFM_UTIL_STATUS_H_
