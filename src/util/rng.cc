#include "util/rng.h"

#include <algorithm>

#include "util/logging.h"

namespace seqfm {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  has_cached_normal_ = false;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t n) {
  SEQFM_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SEQFM_CHECK_GE(w, 0.0);
    total += w;
  }
  SEQFM_CHECK_GT(total, 0.0);
  double draw = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (draw < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split() {
  // Seed the child through SplitMix64 rather than copying raw xoshiro
  // outputs into its state: raw outputs of nearby draws are correlated
  // across lanes, while the remix gives every child a well-mixed state.
  uint64_t sm = NextUint64();
  Rng child(0);
  for (auto& lane : child.s_) lane = SplitMix64(sm);
  child.has_cached_normal_ = false;
  return child;
}

std::vector<Rng> Rng::SplitN(size_t n) {
  std::vector<Rng> children;
  children.reserve(n);
  for (size_t i = 0; i < n; ++i) children.push_back(Split());
  return children;
}

ZipfSampler::ZipfSampler(size_t num_items, double exponent) {
  SEQFM_CHECK_GT(num_items, 0u);
  cdf_.resize(num_items);
  double acc = 0.0;
  for (size_t i = 0; i < num_items; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace seqfm
