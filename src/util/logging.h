#ifndef SEQFM_UTIL_LOGGING_H_
#define SEQFM_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace seqfm {
namespace internal {

/// Severity levels for the minimal logging facility.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are discarded. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// \brief Stream-style log sink. Fatal messages abort the process.
///
/// Not intended for direct use; use the SEQFM_LOG / SEQFM_CHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a LogMessage stream chain so the ternary in SEQFM_CHECK has a
/// void type on both arms (the glog "voidify" trick; & binds looser than <<).
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace seqfm

#define SEQFM_LOG(level)                                            \
  ::seqfm::internal::LogMessage(::seqfm::internal::LogLevel::k##level, \
                                __FILE__, __LINE__)

/// Invariant check: always on (used for shape checks and API contracts).
/// Aborts with a message when the condition fails.
#define SEQFM_CHECK(cond)                                          \
  (cond) ? (void)0                                                 \
         : ::seqfm::internal::LogMessageVoidify() &                \
               ::seqfm::internal::LogMessage(                      \
                   ::seqfm::internal::LogLevel::kFatal, __FILE__,  \
                   __LINE__)                                       \
                   << "Check failed: " #cond " "

#define SEQFM_CHECK_EQ(a, b) SEQFM_CHECK((a) == (b))
#define SEQFM_CHECK_NE(a, b) SEQFM_CHECK((a) != (b))
#define SEQFM_CHECK_LT(a, b) SEQFM_CHECK((a) < (b))
#define SEQFM_CHECK_LE(a, b) SEQFM_CHECK((a) <= (b))
#define SEQFM_CHECK_GT(a, b) SEQFM_CHECK((a) > (b))
#define SEQFM_CHECK_GE(a, b) SEQFM_CHECK((a) >= (b))

#ifndef NDEBUG
#define SEQFM_DCHECK(cond) SEQFM_CHECK(cond)
#else
#define SEQFM_DCHECK(cond) \
  while (false) SEQFM_CHECK(cond)
#endif

#endif  // SEQFM_UTIL_LOGGING_H_
