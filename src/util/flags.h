#ifndef SEQFM_UTIL_FLAGS_H_
#define SEQFM_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace seqfm {

/// \brief Minimal command-line flag parser for the bench/example binaries.
///
/// Accepts "--name=value" and bare "--name" (boolean true). Unrecognized
/// positional arguments are collected in positional().
class FlagParser {
 public:
  /// Parses argv; returns InvalidArgument on malformed flags.
  Status Parse(int argc, const char* const* argv);

  /// True if --name was supplied.
  bool Has(const std::string& name) const;

  /// Typed getters with defaults.
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of every flag that was supplied, sorted. Lets binaries reject
  /// unknown flags instead of silently ignoring a typo.
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace seqfm

#endif  // SEQFM_UTIL_FLAGS_H_
