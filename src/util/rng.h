#ifndef SEQFM_UTIL_RNG_H_
#define SEQFM_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace seqfm {

/// \brief Deterministic pseudo-random number generator (splitmix64-seeded
/// xoshiro256**), the single source of randomness across the library.
///
/// All stochastic components (initializers, dropout, samplers, synthetic data
/// generators) take an Rng or a seed explicitly so that every experiment is
/// reproducible bit-for-bit on a fixed seed.
class Rng {
 public:
  /// Creates a generator whose stream is fully determined by \p seed.
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator, restarting its stream.
  void Seed(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (cached second draw).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index from unnormalized non-negative weights.
  /// Requires a strictly positive total weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Geometric-like draw: samples from a Zipf(s) distribution over [0, n)
  /// by inverse-CDF on precomputed weights. For ad-hoc use prefer
  /// ZipfSampler which amortizes the table.
  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent generator (for parallel or nested streams).
  /// The child state is produced by an independent SplitMix64 remix of one
  /// parent draw — never raw xoshiro outputs — so sibling streams do not
  /// share correlated state lanes.
  Rng Split();

  /// Derives \p n independent child generators in one call. This is the
  /// entry point for parallel work: derive one child per CHUNK (by chunk
  /// index, serially, before dispatching to the thread pool), never one per
  /// worker thread, so the streams each chunk consumes are fixed by the
  /// seed alone and results are identical for every thread count. See
  /// autograd::Dropout for the canonical use.
  std::vector<Rng> SplitN(size_t n);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// \brief Amortized sampler from a Zipf(exponent) distribution over
/// [0, num_items), used to give synthetic objects a power-law popularity.
class ZipfSampler {
 public:
  ZipfSampler(size_t num_items, double exponent);

  /// Draws one item index; more popular (lower) indices are likelier.
  size_t Sample(Rng& rng) const;

  size_t num_items() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace seqfm

#endif  // SEQFM_UTIL_RNG_H_
