#include "util/flags.h"

#include <cerrno>
#include <cstdlib>

#include "util/logging.h"

namespace seqfm {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      std::string name = arg.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("flag with empty name: --" + arg);
      }
      values_[name] = arg.substr(eq + 1);
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::vector<std::string> FlagParser::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    (void)value;
    keys.push_back(name);  // std::map iterates in sorted order
  }
  return keys;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& text = it->second;
  // strtoll with a null endptr silently accepts trailing garbage ("4abc")
  // and clamps overflow; validate the full token and fall back to the
  // default on any malformed value, matching the SEQFM_THREADS policy.
  errno = 0;
  char* end = nullptr;
  const int64_t value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    SEQFM_LOG(Warning) << "flag --" << name << "=" << text
                       << " is not a valid integer; using default " << def;
    return def;
  }
  return value;
}

double FlagParser::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    SEQFM_LOG(Warning) << "flag --" << name << "=" << text
                       << " is not a valid number; using default " << def;
    return def;
  }
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace seqfm
