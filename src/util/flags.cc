#include "util/flags.h"

#include <cstdlib>

namespace seqfm {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      std::string name = arg.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("flag with empty name: --" + arg);
      }
      values_[name] = arg.substr(eq + 1);
    }
  }
  return Status::OK();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::vector<std::string> FlagParser::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    (void)value;
    keys.push_back(name);  // std::map iterates in sorted order
  }
  return keys;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace seqfm
