#ifndef SEQFM_UTIL_CPU_H_
#define SEQFM_UTIL_CPU_H_

namespace seqfm {
namespace util {

/// \brief Runtime ISA selection for the dispatched kernel layer.
///
/// The library ships two implementations of every hot inner loop (see
/// tensor/kernels.h): a portable scalar one and an AVX2 one compiled into a
/// separate translation unit with -mavx2. Which one runs is decided once at
/// startup from the CPU and the SEQFM_SIMD environment variable, then read
/// through a function-pointer table on every op — never via per-call cpuid.
///
/// Both implementations follow the same lane-blocked reduction order (eight
/// partial accumulators combined in a fixed tree; tensor/kernels.h documents
/// the contract), so switching levels never changes a single output bit.
/// That is what makes the override safe to flip in CI and in tests.
enum class SimdLevel {
  kScalar = 0,  ///< Portable C++; the only level on non-x86 hardware.
  kAvx2 = 1,    ///< 8-wide AVX2 (requires avx2+fma at runtime).
};

/// Human-readable name: "scalar" / "avx2".
const char* SimdLevelName(SimdLevel level);

/// True when this CPU executes AVX2 + FMA instructions. Pure cpuid probe;
/// whether AVX2 kernels were compiled into the binary is a separate question
/// answered by tensor::kernels::Avx2KernelsAvailable().
bool CpuHasAvx2();

/// The level dispatch uses. First call resolves the SEQFM_SIMD environment
/// variable:
///   auto (default) — kAvx2 when the CPU supports it, else kScalar;
///   avx2           — force kAvx2; falls back to kScalar with a warning when
///                    the CPU lacks it;
///   scalar         — force kScalar.
/// Unrecognized values warn and behave like auto. Subsequent calls return
/// the cached (or SetSimdLevel-overridden) value.
SimdLevel ActiveSimdLevel();

/// Overrides the active level and returns the previous one. Requesting
/// kAvx2 on a CPU without AVX2 check-fails (tests guard on CpuHasAvx2()).
/// Exists for tests and benches that compare levels inside one process;
/// production selection belongs to SEQFM_SIMD.
SimdLevel SetSimdLevel(SimdLevel level);

/// Pure resolution logic behind ActiveSimdLevel, exposed for tests:
/// maps a SEQFM_SIMD value (nullptr = unset) and a CPU capability to the
/// level that should run. *warning is set to true when the value was
/// unrecognized or asked for an unsupported level (the caller logs).
SimdLevel ResolveSimdChoice(const char* env_value, bool cpu_has_avx2,
                            bool* warning);

}  // namespace util
}  // namespace seqfm

#endif  // SEQFM_UTIL_CPU_H_
