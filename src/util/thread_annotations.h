#ifndef SEQFM_UTIL_THREAD_ANNOTATIONS_H_
#define SEQFM_UTIL_THREAD_ANNOTATIONS_H_

/// \brief Clang thread-safety analysis annotations.
///
/// Wraps clang's -Wthread-safety attribute vocabulary (capability analysis)
/// so lock discipline is checked at compile time on clang builds and costs
/// nothing elsewhere. gcc compiles the same sources with every macro
/// expanding to nothing. The clang CI leg builds with
/// -Wthread-safety -Werror=thread-safety, so a guarded member read outside
/// its mutex is a build break, not a code-review hope.
///
/// Conventions in this codebase:
///   - every mutex is a util::Mutex or util::OrderedMutex (std::mutex has no
///     capability annotations in libstdc++, so the analysis cannot see it);
///   - data members name their guard with SEQFM_GUARDED_BY(mu_);
///   - private member functions called with the lock held are annotated
///     SEQFM_REQUIRES(mu_) instead of re-locking;
///   - lambdas that touch guarded state from inside CondVar::Wait predicates
///     or ParallelFor bodies carry the same SEQFM_REQUIRES attribute.

#if defined(__clang__) && defined(__has_attribute)
#define SEQFM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SEQFM_THREAD_ANNOTATION_(x)
#endif

/// Type is a lockable capability ("mutex").
#define SEQFM_CAPABILITY(x) SEQFM_THREAD_ANNOTATION_(capability(x))

/// RAII type that acquires in its constructor and releases in its destructor.
#define SEQFM_SCOPED_CAPABILITY SEQFM_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only with the named capability held.
#define SEQFM_GUARDED_BY(x) SEQFM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define SEQFM_PT_GUARDED_BY(x) SEQFM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the capability (and did not hold it on entry).
#define SEQFM_ACQUIRE(...) \
  SEQFM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define SEQFM_RELEASE(...) \
  SEQFM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define SEQFM_TRY_ACQUIRE(...) \
  SEQFM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability across the call.
#define SEQFM_REQUIRES(...) \
  SEQFM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (function locks it itself, or a
/// deadlock would follow).
#define SEQFM_EXCLUDES(...) SEQFM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (init/teardown paths
/// proven single-threaded, happens-before via thread join). Every use must
/// carry a comment proving why it is sound.
#define SEQFM_NO_THREAD_SAFETY_ANALYSIS \
  SEQFM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SEQFM_UTIL_THREAD_ANNOTATIONS_H_
