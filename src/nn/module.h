#ifndef SEQFM_NN_MODULE_H_
#define SEQFM_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "util/status.h"

namespace seqfm {
namespace nn {

/// \brief Base class for trainable components.
///
/// A Module owns leaf Variables (parameters) and child modules; Parameters()
/// flattens the tree so optimizers and serialization can treat any model
/// uniformly. Registration order is deterministic, which makes checkpoints
/// stable across runs.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its children, depth-first.
  std::vector<autograd::Variable> Parameters() const;

  /// (qualified name, parameter) pairs, depth-first.
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters()
      const;

  /// Total number of trainable scalars.
  size_t NumParameters() const;

  /// Zeroes the gradients of every parameter.
  void ZeroGrad();

  /// Writes all parameters to a binary checkpoint (thin wrapper over
  /// serve::Checkpoint::Save, which documents the versioned format).
  Status SaveParameters(const std::string& path) const;
  /// Restores parameters from a checkpoint written by SaveParameters; names,
  /// order, and shapes must match exactly. Wrapper over
  /// serve::Checkpoint::Load.
  Status LoadParameters(const std::string& path);

 protected:
  /// Registers a trainable leaf initialized with \p init.
  autograd::Variable RegisterParameter(std::string name, tensor::Tensor init);

  /// Registers a child whose parameters are included in Parameters(). The
  /// child must outlive this module (typically a data member).
  void RegisterModule(std::string name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, autograd::Variable>>*
                        out) const;

  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace nn
}  // namespace seqfm

#endif  // SEQFM_NN_MODULE_H_
