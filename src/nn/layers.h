#ifndef SEQFM_NN_LAYERS_H_
#define SEQFM_NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/module.h"
#include "util/rng.h"

namespace seqfm {
namespace nn {

using autograd::Variable;

/// \brief Affine map y = xW + b. Accepts rank-2 [B,in] or rank-3 [B,n,in]
/// input (the weight is shared over axis 1 for rank-3).
class Linear : public Module {
 public:
  Linear(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias = true);

  Variable Forward(const Variable& x) const;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  const Variable& weight() const { return weight_; }

 private:
  size_t in_dim_, out_dim_;
  bool use_bias_;
  Variable weight_;  // [in, out]
  Variable bias_;    // [out]
};

/// \brief Dense embedding table; negative indices embed to the zero vector
/// and receive no gradient (used for top-padded dynamic sequences).
class Embedding : public Module {
 public:
  Embedding(size_t vocab, size_t dim, Rng* rng, float stddev = 0.05f);

  /// Gathers rows: indices laid out row-major [batch, n] -> [batch, n, dim].
  Variable Forward(const std::vector<int32_t>& indices, size_t batch,
                   size_t n) const;
  /// Pointer form: \p indices need not outlive the call (scratch arenas).
  Variable Forward(const int32_t* indices, size_t batch, size_t n) const;

  const Variable& table() const { return table_; }
  size_t vocab() const { return vocab_; }
  size_t dim() const { return dim_; }

 private:
  size_t vocab_, dim_;
  Variable table_;  // [vocab, dim]
};

/// \brief Layer normalization over the last dimension with learnable
/// gain/bias (Eq. 16).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(size_t dim);

  Variable Forward(const Variable& x) const;

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  Variable gamma_;  // [dim], init 1
  Variable beta_;   // [dim], init 0
};

/// \brief Single-head scaled dot-product self-attention (Eqs. 6-13):
/// H = softmax(E Wq (E Wk)^T / sqrt(d) + M) E Wv.
///
/// The mask M is passed per call (static view: none; dynamic view: causal;
/// cross view: cross-block mask) so one class serves all three views.
class SelfAttention : public Module {
 public:
  SelfAttention(size_t dim, Rng* rng);

  /// \p e is [B, n, d]; \p mask is a constant [n, n] additive mask or an
  /// empty Variable for the unmasked static view.
  Variable Forward(const Variable& e, const Variable& mask) const;

  size_t dim() const { return dim_; }

  /// Projection weights, exposed read-only for the serving fast path
  /// (serve::Predictor's factored catalog program applies them to row
  /// subsets without rebuilding the full attention input).
  const Variable& wq() const { return wq_; }
  const Variable& wk() const { return wk_; }
  const Variable& wv() const { return wv_; }

 private:
  size_t dim_;
  Variable wq_, wk_, wv_;  // [d, d] each
};

/// \brief The paper's shared residual feed-forward network (Eq. 15):
/// h_t = h_{t-1} + Dropout(ReLU(LN(h_{t-1}) W_t + b_t)).
///
/// One instance is shared by the three views; residual connections and layer
/// normalization can be disabled for the Table V ablations.
class ResidualFeedForward : public Module {
 public:
  ResidualFeedForward(size_t dim, size_t num_layers, Rng* rng,
                      bool use_residual = true, bool use_layer_norm = true);

  /// \p h is [B, d]. Dropout is active only when \p training.
  Variable Forward(const Variable& h, float keep_prob, bool training,
                   Rng* rng) const;

  size_t num_layers() const { return layers_.size(); }

 private:
  struct Layer {
    Variable weight;  // [d, d]
    Variable bias;    // [d]
    Variable gamma;   // [d]
    Variable beta;    // [d]
  };
  size_t dim_;
  bool use_residual_, use_layer_norm_;
  std::vector<Layer> layers_;
};

/// \brief Plain multi-layer perceptron used by the DNN-based baselines
/// (Wide&Deep, NFM, DeepCross towers, DIN, xDeepFM).
class Mlp : public Module {
 public:
  /// \p dims = {in, hidden..., out}. ReLU between layers; the final layer is
  /// linear (no activation).
  Mlp(const std::vector<size_t>& dims, Rng* rng);

  Variable Forward(const Variable& x, float keep_prob, bool training,
                   Rng* rng) const;

 private:
  std::vector<Linear*> layer_ptrs_;
  std::vector<std::unique_ptr<Linear>> layers_;
};

/// \brief Minimal GRU used by the RRN baseline. Processes a [B, n, d]
/// sequence and returns the final hidden state [B, hidden].
class Gru : public Module {
 public:
  Gru(size_t input_dim, size_t hidden_dim, Rng* rng);

  Variable Forward(const Variable& seq) const;

  size_t hidden_dim() const { return hidden_dim_; }

 private:
  Variable Step(const Variable& x, const Variable& h) const;

  size_t input_dim_, hidden_dim_;
  Variable wz_, uz_, bz_;
  Variable wr_, ur_, br_;
  Variable wh_, uh_, bh_;
};

}  // namespace nn
}  // namespace seqfm

#endif  // SEQFM_NN_LAYERS_H_
