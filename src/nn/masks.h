#ifndef SEQFM_NN_MASKS_H_
#define SEQFM_NN_MASKS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace seqfm {
namespace nn {

/// Additive attention masks (entries are 0 or -infinity) wrapped as constant
/// Variables so they can be fed to autograd::MaskedSoftmax. A [n, n] mask is
/// broadcast over the batch; a [batch*n, n] mask is applied per sample.

/// Causal mask for the dynamic view (Eq. 10): entry (i, j) is 0 when i >= j
/// (feature i may attend to earlier-or-equal positions) and -inf otherwise.
autograd::Variable MakeCausalMask(size_t n);

/// Cross-view mask (Eq. 13) over n_static + n_dynamic stacked features:
/// entry (i, j) is 0 exactly when one of i, j indexes a static feature and
/// the other a dynamic feature; same-category interactions are blocked.
autograd::Variable MakeCrossMask(size_t n_static, size_t n_dynamic);

/// All-zero mask of size [n, n] (no-op; useful in tests).
autograd::Variable MakeZeroMask(size_t n);

/// Per-sample mask of shape [batch*n, n] that combines the causal structure
/// (when \p causal) with blocking attention *to* padding key positions
/// (indices[b*n + j] < 0). A row whose every entry would be blocked keeps its
/// diagonal entry open so softmax stays well defined. This powers the
/// optional `mask_padding_keys` extension (see DESIGN.md).
autograd::Variable MakeBatchPaddingMask(const std::vector<int32_t>& indices,
                                        size_t batch, size_t n, bool causal);

/// Per-sample history mask of shape [batch, n]: entry (b, i) is -inf when the
/// history slot is padding (indices[b*n + i] < 0). A sample with an entirely
/// empty history keeps its last slot open so softmax stays well defined
/// (DIN's attention pooling).
autograd::Variable MakeHistoryPaddingMask(const std::vector<int32_t>& indices,
                                          size_t batch, size_t n);

}  // namespace nn
}  // namespace seqfm

#endif  // SEQFM_NN_MASKS_H_
