#include "nn/module.h"

// Deliberate layering exception: the checkpoint format lives in serve/ (its
// consumer), and these convenience wrappers keep the original Module API.
// The cycle is .cc-level only — serve/checkpoint.h forward-declares Module —
// and both sides live in the single seqfm_core target.
#include "serve/checkpoint.h"

namespace seqfm {
namespace nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, var] : NamedParameters()) {
    (void)name;
    out.push_back(var);
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, autograd::Variable>>* out) const {
  for (const auto& [name, var] : params_) {
    out->emplace_back(prefix + name, var);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

size_t Module::NumParameters() const {
  size_t total = 0;
  for (const auto& v : Parameters()) total += v.value().size();
  return total;
}

void Module::ZeroGrad() {
  for (auto& v : Parameters()) v.ZeroGrad();
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             tensor::Tensor init) {
  auto var = autograd::Variable::Leaf(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), var);
  return var;
}

void Module::RegisterModule(std::string name, Module* child) {
  SEQFM_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

Status Module::SaveParameters(const std::string& path) const {
  return serve::Checkpoint::Save(*this, path);
}

Status Module::LoadParameters(const std::string& path) {
  return serve::Checkpoint::Load(this, path);
}

}  // namespace nn
}  // namespace seqfm
