#include "nn/module.h"

#include <cstdint>
#include <fstream>

namespace seqfm {
namespace nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, var] : NamedParameters()) {
    (void)name;
    out.push_back(var);
  }
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, autograd::Variable>>* out) const {
  for (const auto& [name, var] : params_) {
    out->emplace_back(prefix + name, var);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix + name + ".", out);
  }
}

size_t Module::NumParameters() const {
  size_t total = 0;
  for (const auto& v : Parameters()) total += v.value().size();
  return total;
}

void Module::ZeroGrad() {
  for (auto& v : Parameters()) v.ZeroGrad();
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             tensor::Tensor init) {
  auto var = autograd::Variable::Leaf(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), var);
  return var;
}

void Module::RegisterModule(std::string name, Module* child) {
  SEQFM_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

namespace {
constexpr uint32_t kMagic = 0x5345514d;  // "SEQM"
}  // namespace

Status Module::SaveParameters(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const auto named = NamedParameters();
  const uint32_t magic = kMagic;
  const uint64_t count = named.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, var] : named) {
    const uint64_t name_len = name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), static_cast<std::streamsize>(name_len));
    const auto& t = var.value();
    const uint64_t rank = t.rank();
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (size_t i = 0; i < t.rank(); ++i) {
      const uint64_t d = t.dim(i);
      out.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status Module::LoadParameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    return Status::IoError("bad checkpoint header: " + path);
  }
  auto named = NamedParameters();
  if (count != named.size()) {
    return Status::InvalidArgument("checkpoint parameter count mismatch");
  }
  for (auto& [expected_name, var] : named) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (name != expected_name) {
      return Status::InvalidArgument("checkpoint name mismatch: expected " +
                                     expected_name + ", got " + name);
    }
    uint64_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    auto& t = var.mutable_value();
    if (rank != t.rank()) {
      return Status::InvalidArgument("checkpoint rank mismatch for " + name);
    }
    for (size_t i = 0; i < t.rank(); ++i) {
      uint64_t d = 0;
      in.read(reinterpret_cast<char*>(&d), sizeof(d));
      if (d != t.dim(i)) {
        return Status::InvalidArgument("checkpoint shape mismatch for " + name);
      }
    }
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated checkpoint: " + path);
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace seqfm
