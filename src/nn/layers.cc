#include "nn/layers.h"

#include <cmath>

#include "autograd/trace.h"
#include "tensor/init.h"

namespace seqfm {
namespace nn {

using autograd::Variable;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias)
    : in_dim_(in_dim), out_dim_(out_dim), use_bias_(use_bias) {
  Tensor w({in_dim, out_dim});
  tensor::FillXavier(&w, rng);
  weight_ = RegisterParameter("weight", std::move(w));
  if (use_bias_) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_dim}));
  }
}

Variable Linear::Forward(const Variable& x) const {
  Variable y;
  if (x.rank() == 2) {
    y = autograd::MatMul(x, weight_);
  } else {
    y = autograd::BmmShared(x, weight_);
  }
  if (use_bias_) y = autograd::AddBias(y, bias_);
  return y;
}

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

Embedding::Embedding(size_t vocab, size_t dim, Rng* rng, float stddev)
    : vocab_(vocab), dim_(dim) {
  Tensor t({vocab, dim});
  tensor::FillNormal(&t, rng, stddev);
  table_ = RegisterParameter("table", std::move(t));
}

Variable Embedding::Forward(const std::vector<int32_t>& indices, size_t batch,
                            size_t n) const {
  return autograd::EmbeddingGather(table_, indices, batch, n);
}

Variable Embedding::Forward(const int32_t* indices, size_t batch,
                            size_t n) const {
  return autograd::EmbeddingGather(table_, indices, batch, n);
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

LayerNorm::LayerNorm(size_t dim) : dim_(dim) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
}

Variable LayerNorm::Forward(const Variable& x) const {
  return autograd::LayerNorm(x, gamma_, beta_);
}

// ---------------------------------------------------------------------------
// SelfAttention
// ---------------------------------------------------------------------------

SelfAttention::SelfAttention(size_t dim, Rng* rng) : dim_(dim) {
  Tensor wq({dim, dim}), wk({dim, dim}), wv({dim, dim});
  tensor::FillXavier(&wq, rng);
  tensor::FillXavier(&wk, rng);
  tensor::FillXavier(&wv, rng);
  wq_ = RegisterParameter("wq", std::move(wq));
  wk_ = RegisterParameter("wk", std::move(wk));
  wv_ = RegisterParameter("wv", std::move(wv));
}

Variable SelfAttention::Forward(const Variable& e, const Variable& mask) const {
  SEQFM_CHECK_EQ(e.rank(), 3u);
  SEQFM_CHECK_EQ(e.dim(2), dim_);
  Variable q = autograd::BmmShared(e, wq_);
  Variable k = autograd::BmmShared(e, wk_);
  Variable v = autograd::BmmShared(e, wv_);
  // scores = Q K^T / sqrt(d)  (Eq. 6).
  Variable scores = autograd::Bmm(q, k, /*trans_a=*/false, /*trans_b=*/true);
  scores = autograd::Scale(scores, 1.0f / std::sqrt(static_cast<float>(dim_)));
  Variable probs = autograd::MaskedSoftmax(scores, mask);
  return autograd::Bmm(probs, v);
}

// ---------------------------------------------------------------------------
// ResidualFeedForward
// ---------------------------------------------------------------------------

ResidualFeedForward::ResidualFeedForward(size_t dim, size_t num_layers,
                                         Rng* rng, bool use_residual,
                                         bool use_layer_norm)
    : dim_(dim), use_residual_(use_residual), use_layer_norm_(use_layer_norm) {
  layers_.reserve(num_layers);
  for (size_t i = 0; i < num_layers; ++i) {
    Layer layer;
    Tensor w({dim, dim});
    tensor::FillXavier(&w, rng);
    const std::string suffix = std::to_string(i);
    layer.weight = RegisterParameter("w" + suffix, std::move(w));
    layer.bias = RegisterParameter("b" + suffix, Tensor::Zeros({dim}));
    layer.gamma = RegisterParameter("gamma" + suffix, Tensor::Ones({dim}));
    layer.beta = RegisterParameter("beta" + suffix, Tensor::Zeros({dim}));
    layers_.push_back(std::move(layer));
  }
}

Variable ResidualFeedForward::Forward(const Variable& h, float keep_prob,
                                      bool training, Rng* rng) const {
  Variable cur = h;
  for (const auto& layer : layers_) {
    Variable inner = cur;
    if (use_layer_norm_) {
      inner = autograd::LayerNorm(inner, layer.gamma, layer.beta);
    }
    inner = autograd::MatMul(inner, layer.weight);
    inner = autograd::AddBias(inner, layer.bias);
    inner = autograd::Relu(inner);
    inner = autograd::Dropout(inner, keep_prob, training, rng);
    cur = use_residual_ ? autograd::Add(cur, inner) : inner;
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Mlp
// ---------------------------------------------------------------------------

Mlp::Mlp(const std::vector<size_t>& dims, Rng* rng) {
  SEQFM_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("fc" + std::to_string(i), layers_.back().get());
    layer_ptrs_.push_back(layers_.back().get());
  }
}

Variable Mlp::Forward(const Variable& x, float keep_prob, bool training,
                      Rng* rng) const {
  Variable cur = x;
  for (size_t i = 0; i < layer_ptrs_.size(); ++i) {
    cur = layer_ptrs_[i]->Forward(cur);
    const bool last = (i + 1 == layer_ptrs_.size());
    if (!last) {
      cur = autograd::Relu(cur);
      cur = autograd::Dropout(cur, keep_prob, training, rng);
    }
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Gru
// ---------------------------------------------------------------------------

namespace {
Variable GruGate(const Variable& x, const Variable& w, const Variable& h,
                 const Variable& u, const Variable& b) {
  Variable pre = autograd::Add(autograd::MatMul(x, w), autograd::MatMul(h, u));
  return autograd::AddBias(pre, b);
}
}  // namespace

Gru::Gru(size_t input_dim, size_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  auto make_weight = [&](size_t rows, size_t cols) {
    Tensor t({rows, cols});
    tensor::FillXavier(&t, rng);
    return t;
  };
  wz_ = RegisterParameter("wz", make_weight(input_dim, hidden_dim));
  uz_ = RegisterParameter("uz", make_weight(hidden_dim, hidden_dim));
  bz_ = RegisterParameter("bz", Tensor::Zeros({hidden_dim}));
  wr_ = RegisterParameter("wr", make_weight(input_dim, hidden_dim));
  ur_ = RegisterParameter("ur", make_weight(hidden_dim, hidden_dim));
  br_ = RegisterParameter("br", Tensor::Zeros({hidden_dim}));
  wh_ = RegisterParameter("wh", make_weight(input_dim, hidden_dim));
  uh_ = RegisterParameter("uh", make_weight(hidden_dim, hidden_dim));
  bh_ = RegisterParameter("bh", Tensor::Zeros({hidden_dim}));
}

Variable Gru::Step(const Variable& x, const Variable& h) const {
  Variable z = autograd::Sigmoid(GruGate(x, wz_, h, uz_, bz_));
  Variable r = autograd::Sigmoid(GruGate(x, wr_, h, ur_, br_));
  Variable rh = autograd::Mul(r, h);
  Variable cand = autograd::Tanh(GruGate(x, wh_, rh, uh_, bh_));
  // h' = h + z ⊙ (cand - h)  ==  (1-z) ⊙ h + z ⊙ cand.
  return autograd::Add(h, autograd::Mul(z, autograd::Sub(cand, h)));
}

Variable Gru::Forward(const Variable& seq) const {
  SEQFM_CHECK_EQ(seq.rank(), 3u);
  SEQFM_CHECK_EQ(seq.dim(2), input_dim_);
  const size_t batch = seq.dim(0), steps = seq.dim(1);
  Variable h = Variable::Constant(Tensor::Zeros({batch, hidden_dim_}));
  autograd::TraceAnnotateConstant(h, autograd::ConstantKind::kZeroState);
  for (size_t t = 0; t < steps; ++t) {
    Variable x = autograd::SliceRow(seq, t);
    h = Step(x, h);
  }
  return h;
}

}  // namespace nn
}  // namespace seqfm
