#include "nn/masks.h"

#include <limits>

#include "autograd/trace.h"
#include "tensor/tensor.h"

namespace seqfm {
namespace nn {

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();
}  // namespace

autograd::Variable MakeCausalMask(size_t n) {
  tensor::Tensor mask({n, n});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      mask.at(i, j) = (i >= j) ? 0.0f : kNegInf;
    }
  }
  autograd::Variable v = autograd::Variable::Constant(std::move(mask));
  autograd::TraceAnnotateConstant(v, autograd::ConstantKind::kCaptureValue);
  return v;
}

autograd::Variable MakeCrossMask(size_t n_static, size_t n_dynamic) {
  const size_t n = n_static + n_dynamic;
  tensor::Tensor mask({n, n});
  for (size_t i = 0; i < n; ++i) {
    const bool i_static = i < n_static;
    for (size_t j = 0; j < n; ++j) {
      const bool j_static = j < n_static;
      // Eq. 13: keep only static <-> dynamic interactions.
      mask.at(i, j) = (i_static != j_static) ? 0.0f : kNegInf;
    }
  }
  autograd::Variable v = autograd::Variable::Constant(std::move(mask));
  autograd::TraceAnnotateConstant(v, autograd::ConstantKind::kCaptureValue);
  return v;
}

autograd::Variable MakeZeroMask(size_t n) {
  autograd::Variable v =
      autograd::Variable::Constant(tensor::Tensor::Zeros({n, n}));
  autograd::TraceAnnotateConstant(v, autograd::ConstantKind::kCaptureValue);
  return v;
}

autograd::Variable MakeBatchPaddingMask(const std::vector<int32_t>& indices,
                                        size_t batch, size_t n, bool causal) {
  SEQFM_CHECK_EQ(indices.size(), batch * n);
  tensor::Tensor mask({batch * n, n});
  for (size_t b = 0; b < batch; ++b) {
    for (size_t i = 0; i < n; ++i) {
      float* row = mask.data() + (b * n + i) * n;
      bool any_open = false;
      for (size_t j = 0; j < n; ++j) {
        const bool blocked_causal = causal && i < j;
        const bool blocked_pad = indices[b * n + j] < 0;
        row[j] = (blocked_causal || blocked_pad) ? kNegInf : 0.0f;
        any_open = any_open || row[j] == 0.0f;
      }
      if (!any_open) row[i] = 0.0f;  // keep the diagonal open
    }
  }
  autograd::Variable v = autograd::Variable::Constant(std::move(mask));
  autograd::TraceAnnotateConstant(v, autograd::ConstantKind::kPaddingMask,
                                  causal);
  return v;
}

autograd::Variable MakeHistoryPaddingMask(const std::vector<int32_t>& indices,
                                          size_t batch, size_t n) {
  SEQFM_CHECK_EQ(indices.size(), batch * n);
  tensor::Tensor mask({batch, n});
  for (size_t b = 0; b < batch; ++b) {
    bool any = false;
    for (size_t i = 0; i < n; ++i) {
      const bool pad = indices[b * n + i] < 0;
      mask.at(b, i) = pad ? kNegInf : 0.0f;
      any = any || !pad;
    }
    if (!any) mask.at(b, n - 1) = 0.0f;  // degenerate empty history
  }
  autograd::Variable v = autograd::Variable::Constant(std::move(mask));
  autograd::TraceAnnotateConstant(v, autograd::ConstantKind::kHistoryMask);
  return v;
}

}  // namespace nn
}  // namespace seqfm
