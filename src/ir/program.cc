#include "ir/program.h"

#include <atomic>
#include <limits>

#include "util/logging.h"

namespace seqfm {
namespace ir {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd: return "add";
    case OpKind::kSub: return "sub";
    case OpKind::kMul: return "mul";
    case OpKind::kScale: return "scale";
    case OpKind::kAddScalar: return "add_scalar";
    case OpKind::kAddBias: return "add_bias";
    case OpKind::kAddBroadcastBatch: return "add_broadcast_batch";
    case OpKind::kRelu: return "relu";
    case OpKind::kSigmoid: return "sigmoid";
    case OpKind::kTanh: return "tanh";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kBmmShared: return "bmm_shared";
    case OpKind::kBmm: return "bmm";
    case OpKind::kBmmLeftShared: return "bmm_left_shared";
    case OpKind::kRowDot: return "row_dot";
    case OpKind::kMaskedSoftmax: return "masked_softmax";
    case OpKind::kLayerNorm: return "layer_norm";
    case OpKind::kConcatLast: return "concat_last";
    case OpKind::kConcatAxis1: return "concat_axis1";
    case OpKind::kReduceAxis1: return "reduce_axis1";
    case OpKind::kSliceRow: return "slice_row";
    case OpKind::kSumLast: return "sum_last";
    case OpKind::kReshape: return "reshape";
    case OpKind::kExpandRows: return "expand_rows";
    case OpKind::kPairwiseUpper: return "pairwise_upper";
    case OpKind::kPairwiseCross: return "pairwise_cross";
    case OpKind::kEmbeddingGather: return "embedding_gather";
    case OpKind::kEmbeddingSumGather: return "embedding_sum_gather";
    case OpKind::kPaddingMask: return "padding_mask";
    case OpKind::kHistoryMask: return "history_mask";
    case OpKind::kCrossPaddingMask: return "cross_padding_mask";
    case OpKind::kZeros: return "zeros";
    case OpKind::kTileRows: return "tile_rows";
  }
  return "?";
}

uint64_t NextProgramUid() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/// One-sample padding mask block [n, n] (nn::MakeBatchPaddingMask row b).
void PaddingMaskBlock(bool causal, const int32_t* dyn, size_t n, float* dst) {
  for (size_t i = 0; i < n; ++i) {
    float* row = dst + i * n;
    bool any_open = false;
    for (size_t j = 0; j < n; ++j) {
      const bool blocked_causal = causal && i < j;
      const bool blocked_pad = dyn[j] < 0;
      row[j] = (blocked_causal || blocked_pad) ? kNegInf : 0.0f;
      any_open = any_open || row[j] == 0.0f;
    }
    if (!any_open) row[i] = 0.0f;
  }
}

/// One-sample history mask row [n] (nn::MakeHistoryPaddingMask row b).
void HistoryMaskBlock(const int32_t* dyn, size_t n, float* dst) {
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    const bool pad = dyn[i] < 0;
    dst[i] = pad ? kNegInf : 0.0f;
    any = any || !pad;
  }
  if (!any) dst[n - 1] = 0.0f;
}

/// One-sample padding-aware cross mask block [(ns+n), (ns+n)]
/// (core::SeqFm's MakePaddingAwareCrossMask row b).
void CrossMaskBlock(size_t ns, const int32_t* dyn, size_t nd, float* dst) {
  const size_t n = ns + nd;
  for (size_t i = 0; i < n; ++i) {
    float* row = dst + i * n;
    const bool i_static = i < ns;
    bool any_open = false;
    for (size_t j = 0; j < n; ++j) {
      const bool j_static = j < ns;
      bool blocked = (i_static == j_static);
      if (!j_static && dyn[j - ns] < 0) blocked = true;
      row[j] = blocked ? kNegInf : 0.0f;
      any_open = any_open || !blocked;
    }
    if (!any_open) row[i] = 0.0f;
  }
}
}  // namespace

void MaterializeMask(OpKind kind, bool causal, size_t ns,
                     const int32_t* dynamic_ids, size_t batch, size_t n,
                     size_t total, float* dst) {
  size_t block = 0;
  switch (kind) {
    case OpKind::kZeros:
      for (size_t i = 0; i < total; ++i) dst[i] = 0.0f;
      return;
    case OpKind::kPaddingMask:
      block = n * n;
      SEQFM_CHECK_EQ(batch * block, total);
      PaddingMaskBlock(causal, dynamic_ids, n, dst);
      break;
    case OpKind::kHistoryMask:
      block = n;
      SEQFM_CHECK_EQ(batch * block, total);
      HistoryMaskBlock(dynamic_ids, n, dst);
      break;
    case OpKind::kCrossPaddingMask:
      block = (ns + n) * (ns + n);
      SEQFM_CHECK_EQ(batch * block, total);
      CrossMaskBlock(ns, dynamic_ids, n, dst);
      break;
    default:
      SEQFM_CHECK(false) << "not a synthesized constant: "
                         << OpKindName(kind);
  }
  // All samples of a serving chunk share one history, so the block repeats.
  for (size_t b = 1; b < batch; ++b) {
    float* out = dst + b * block;
    for (size_t i = 0; i < block; ++i) out[i] = dst[i];
  }
}

}  // namespace ir
}  // namespace seqfm
