#ifndef SEQFM_IR_PROGRAM_H_
#define SEQFM_IR_PROGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace seqfm {
namespace ir {

/// \brief The serving compiler's flat op program.
///
/// A Program is a straight-line SSA-ish instruction list recorded by tracing
/// one tape-free model forward (trace.h), then rewritten by the optimization
/// passes (passes.h) and executed allocation-free by the VM (exec.h). Every
/// instruction reads and writes Value ids; shapes are static — a program is
/// specialized to one candidate count and recompiled (cheaply) for another.

/// Instruction opcode. The first block mirrors the autograd op vocabulary
/// one-to-one (the executor replicates each eager forward bit-for-bit); the
/// second block exists only in compiled programs.
enum class OpKind : uint8_t {
  kAdd,
  kSub,
  kMul,
  kScale,
  kAddScalar,
  kAddBias,
  kAddBroadcastBatch,
  kRelu,
  kSigmoid,
  kTanh,
  kMatMul,
  kBmmShared,
  kBmm,
  kBmmLeftShared,
  kRowDot,
  kMaskedSoftmax,
  kLayerNorm,
  kConcatLast,
  kConcatAxis1,
  kReduceAxis1,  // mean_axis1 / sum_axis1; alpha carries the scale
  kSliceRow,
  kSumLast,
  kReshape,
  kExpandRows,
  kPairwiseUpper,
  kPairwiseCross,
  kEmbeddingGather,
  kEmbeddingSumGather,
  // --- compiler-synthesized (no eager counterpart) ----------------------
  kPaddingMask,       // nn::MakeBatchPaddingMask(dynamic_ids, B, n, causal)
  kHistoryMask,       // nn::MakeHistoryPaddingMask(dynamic_ids, B, n)
  kCrossPaddingMask,  // SeqFM's padding-aware cross mask (ns in Instr::row)
  kZeros,             // zero tensor (GRU initial state)
  kTileRows,          // repeat the whole input buffer out.size/in.size times
};

/// Name of an op kind ("scale", "tile_rows", ...) for logs and tests.
const char* OpKindName(OpKind kind);

/// How a Value resolves to a tensor at execution time.
enum class ValueKind : uint8_t {
  kLocal,     // planned offset in the execution frame's arena block
  kParam,     // live parameter Node (survives checkpoint reloads)
  kConstant,  // captured by value into Program::constants
  kSlot,      // candidate-invariant prologue output, SharedContext::slots
};

/// Which request index array an embedding gather reads.
enum class IndexSource : uint8_t { kNone, kStatic, kDynamic, kUnified };

/// Affine per-column binding of a gather's index matrix to one request index
/// array: idx[b, j] == src[b, cols[j]] + deltas[j], except negative source
/// entries (padding) stay negative untouched. Fitted at trace time against a
/// real Batch and re-verified on every trace; the executor synthesizes the
/// source arrays per chunk, so gathers need no per-request index vectors.
struct IndexBinding {
  IndexSource source = IndexSource::kNone;
  std::vector<uint32_t> cols;
  std::vector<int32_t> deltas;

  bool operator==(const IndexBinding& o) const {
    return source == o.source && cols == o.cols && deltas == o.deltas;
  }
  bool operator!=(const IndexBinding& o) const { return !(*this == o); }
};

constexpr uint32_t kNoValue = 0xffffffffu;

struct Instr {
  OpKind kind = OpKind::kAdd;
  std::vector<uint32_t> in;  // input value ids, positional
  uint32_t out = 0;
  // Scalar attributes (only the fields the kind needs are meaningful).
  float alpha = 0.0f;    // scale / add_scalar / reduce_axis1
  float eps = 0.0f;      // layer_norm
  uint32_t row = 0;      // slice_row; cross-padding mask's n_static
  bool trans_a = false;  // bmm
  bool trans_b = false;
  bool causal = false;  // padding mask
  IndexBinding binding;  // embedding gathers
  /// Gathers only: the index matrix observed at trace time, kept so passes
  /// can re-verify the binding against other traces. Not used at execution.
  std::vector<int32_t> traced_indices;
};

struct Value {
  ValueKind kind = ValueKind::kLocal;
  std::vector<size_t> shape;
  /// kParam: the live node (raw; Program::param_nodes keeps it alive).
  autograd::Node* param = nullptr;
  /// kConstant / kSlot: index into Program::constants / SharedContext::slots.
  uint32_t index = 0;
  /// kLocal: planned float offset into the frame block (passes::PlanArena);
  /// kNoOffset until planned or for dead values.
  size_t offset = 0;
  /// Fusion: when != kNoValue this local shares its buffer with that value
  /// (in-place elementwise chains, copy-elided reshapes).
  uint32_t alias_of = kNoValue;

  size_t size() const {
    size_t n = 1;
    for (size_t d : shape) n *= d;
    return n;
  }
};

constexpr size_t kNoOffset = static_cast<size_t>(-1);

struct Program {
  std::vector<Value> values;
  std::vector<Instr> instrs;
  std::vector<tensor::Tensor> constants;
  /// Keepalives for the raw Node* in Value::param. Checkpoint reloads move
  /// new storage into the same nodes, so params are read live per execution.
  std::vector<autograd::NodePtr> param_nodes;
  /// Value id of the score tensor (bodies) — unused by prologues.
  uint32_t output = kNoValue;
  /// Value ids written into SharedContext::slots, in slot order (prologues).
  std::vector<uint32_t> slot_outputs;

  /// Candidate count the trace ran at, and the Batch index geometry the
  /// executor synthesizes per chunk.
  size_t count = 0;
  size_t n_static = 0;
  size_t n_seq = 0;
  size_t n_unified = 0;

  /// Planned frame block size in floats (passes::PlanArena).
  size_t frame_floats = 0;
  /// Key for the per-thread execution frame cache.
  uint64_t uid = 0;
};

/// Process-unique program id for frame caching.
uint64_t NextProgramUid();

/// Materializes a compiler-synthesized mask/zeros instruction into \p dst
/// (size \p batch * rows_per_sample * cols as implied by the kind) from the
/// request history. Shared by the executor and the trace-time verification
/// so the re-materialization rule is pinned in one place.
///   kPaddingMask:      [batch*n, n], causal per Instr::causal
///   kHistoryMask:      [batch, n]
///   kCrossPaddingMask: [batch*(ns+n), ns+n], ns = Instr::row
///   kZeros:            all zero
/// \p dynamic_ids is one history row of length \p n (every sample of a
/// serving chunk shares it).
void MaterializeMask(OpKind kind, bool causal, size_t ns,
                     const int32_t* dynamic_ids, size_t batch, size_t n,
                     size_t total, float* dst);

}  // namespace ir
}  // namespace seqfm

#endif  // SEQFM_IR_PROGRAM_H_
