#ifndef SEQFM_IR_EXEC_H_
#define SEQFM_IR_EXEC_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model_interface.h"
#include "core/seqfm.h"
#include "data/dataset.h"
#include "ir/program.h"
#include "util/ordered_mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace seqfm {
namespace ir {

/// \brief The serving VM: executes arena-planned programs allocation-free.
///
/// An Engine owns the factored (prologue, body) program pair compiled from
/// two traces of one model. serve::Predictor drives it: MakeContext runs the
/// prologue once per (user, history) and parks the candidate-invariant slot
/// tensors in the SharedContext (cached by serve::ContextCache); ScoreRange
/// replays the per-candidate body over a catalog chunk. Execution state lives
/// in thread-local frames sized by PlanArena, so steady-state scoring
/// performs zero heap allocations and is trivially thread-safe.

/// Evaluates one pure instruction (no request-dependent inputs) by
/// replicating the corresponding eager forward exactly — same kernels, same
/// ParallelFor grains, same reduction order — so compiled results are
/// bit-identical to the taped forward at every thread count and SIMD level.
/// Returns false for kinds that are not pure functions of their tensor
/// inputs (gathers, synthesized masks, tile_rows), which the executor and
/// the constant folder handle themselves.
bool EvalPure(const Instr& instr, const std::vector<const tensor::Tensor*>& in,
              tensor::Tensor* out);

/// Compile-time facts about an engine, surfaced in bench_serving --json.
struct EngineStats {
  size_t prologue_instrs = 0;
  size_t body_instrs = 0;       // for the initial count-2 body
  size_t slots = 0;             // candidate-invariant values hoisted
  size_t prologue_frame_floats = 0;
  size_t body_frame_floats = 0;  // for the initial count-2 body
  size_t folded = 0;             // constant-folded instructions (both halves)
  size_t dce_removed = 0;        // dead instructions removed (both halves)
  size_t fused = 0;              // elementwise links aliased in place
  size_t compiled_counts = 0;    // distinct candidate counts compiled so far
};

/// A compiled serving program for one model. Thread-safe after construction:
/// ScoreRange may be called concurrently from shard threads; per-count body
/// compilation is serialized internally.
class Engine {
 public:
  /// Traces \p model at candidate counts 1 and 2, factors the program into a
  /// candidate-invariant prologue and a per-candidate body, runs the pass
  /// pipeline, and self-checks both halves bit-for-bit against the traced
  /// tensors. Returns null (with \p error set) when the model is not
  /// compilable — unknown op, unannotated constant, unbindable gather — in
  /// which case the caller keeps the eager path. Requires at least two
  /// catalog objects (two distinct probe candidates are what disambiguate
  /// the candidate column in gather bindings).
  static std::unique_ptr<Engine> Compile(core::Model* model,
                                         const data::BatchBuilder* builder,
                                         size_t num_objects,
                                         std::string* error);

  /// Runs the prologue for one (user, history) request and fills
  /// \p ctx with the slot tensors (deep copies — the context outlives the
  /// execution frame), ids, and this engine's uid. \p dynamic_ids is the
  /// BatchBuilder-layout history row (length max_seq_len, -1 padding).
  void MakeContext(int32_t user_index, const std::vector<int32_t>& dynamic_ids,
                   core::SharedContext* ctx) const;

  /// Scores candidates[begin..end) against \p ctx into out[0..end-begin).
  /// Lazily compiles (and self-checks) a body for this chunk's candidate
  /// count on first use. Returns false with \p error set if that compile
  /// fails — the caller falls back to the eager path for the chunk.
  bool ScoreRange(const core::SharedContext& ctx,
                  const std::vector<int32_t>& candidates, size_t begin,
                  size_t end, float* out, std::string* error) const;

  /// Number of slot tensors a context carries.
  size_t num_slots() const { return prologue_.slot_outputs.size(); }

  /// Re-checks the slot ABI between the prologue and every compiled body:
  /// each body value of kind kSlot must name a slot the prologue actually
  /// produces, with the exact shape the prologue parks in the context. The
  /// initial Compile establishes this by construction; serving re-verifies
  /// it at every checkpoint reload (Predictor::ReloadCheckpoint) because a
  /// body scoring through a stale or miswired slot reads the wrong floats
  /// — garbage rankings, no crash. Returns Internal naming the first
  /// mismatched (body count, value, slot).
  Status ReverifySlotAbi() const SEQFM_EXCLUDES(mu_);

  /// Test hook: miswires the first kSlot value of some compiled body —
  /// \p corrupt_shape distorts its shape, otherwise its slot index is
  /// pushed out of range. Exists so reload tests can prove ReverifySlotAbi
  /// catches both failure classes; never called outside tests.
  void CorruptSlotWiringForTest(bool corrupt_shape) SEQFM_EXCLUDES(mu_);

  uint64_t uid() const { return uid_; }

  EngineStats stats() const;

 private:
  Engine() = default;

  /// Traces fresh at counts 1 and \p count, factors, optimizes, verifies,
  /// and self-checks. Fresh traces (not stored ones) keep the verification
  /// honest after checkpoint reloads swap parameter storage. Runs WITHOUT
  /// mu_ held — tracing dispatches ParallelFor work, and holding the engine
  /// lock across a pool region inverts against wave chunk tasks that call
  /// ScoreRange from inside pool work (see util::lock_rank). On success the
  /// body is published into bodies_[count] under a short mu_ critical
  /// section; concurrent compiles of the same count are tolerated
  /// (first insert wins, both results are bit-identical).
  bool CompileCount(size_t count, bool adopt_prologue,
                    std::string* error) const SEQFM_EXCLUDES(mu_);

  core::Model* model_ = nullptr;
  const data::BatchBuilder* builder_ = nullptr;
  size_t num_objects_ = 0;
  // Probe request used for (re)tracing: user 0, history {0}.
  std::vector<int32_t> probe_history_;
  // Index synthesis geometry (see RunProgram in exec.cc).
  int32_t cand_base_ = 0;         // FeatureSpace::CandidateIndex(0)
  int32_t unified_dyn_base_ = 0;  // static_dim: unified id of dynamic 0
  size_t n_seq_ = 0;
  uint64_t uid_ = 0;

  // mutable: written once by Compile's initial CompileCount call, via the
  // same const path ScoreRange uses for lazy per-count bodies. Immutable
  // after Compile returns (the engine is not published until Compile
  // completes, and checkpoint reloads build a new Engine), so readers need
  // no lock; not GUARDED_BY for that reason.
  mutable Program prologue_;

  /// Innermost rank: acquired for bodies_/stats_ publication and lookup
  /// only, never held across a compile or a pool region.
  mutable util::OrderedMutex mu_{"ir::Engine::mu_",
                                 util::lock_rank::kIrEngine};
  mutable std::unordered_map<size_t, std::unique_ptr<Program>> bodies_
      SEQFM_GUARDED_BY(mu_);
  mutable EngineStats stats_ SEQFM_GUARDED_BY(mu_);
};

}  // namespace ir
}  // namespace seqfm

#endif  // SEQFM_IR_EXEC_H_
