#ifndef SEQFM_IR_VERIFY_H_
#define SEQFM_IR_VERIFY_H_

#include <cstddef>

#include "ir/program.h"
#include "util/status.h"

namespace seqfm {
namespace ir {

/// \brief Structural verifier for compiled op programs.
///
/// The serving compiler's end-to-end defense is the bit-parity self-check in
/// Engine::CompileCount (replay vs. traced forward, cross-probe). Verify is
/// the complementary *structural* defense: it proves, per program, that the
/// instruction list is well-formed independent of any particular request, so
/// a pass bug surfaces as a precise diagnostic at the pass that introduced it
/// instead of as a downstream bit mismatch (or, worse, a clean-looking read
/// of clobbered memory that happens to match). Engine::CompileCount runs it
/// after every pass; any failure aborts the compile and the Predictor falls
/// back to the eager path — never wrong bits.
///
/// Checked invariants:
///   - instruction/value table integrity: every referenced value id is in
///     range, instruction outputs are kLocal, each id is defined at most
///     once (SSA), every read of a local happens after its definition;
///   - per-op agreement with the executor's shape contracts (arity, ranks,
///     inner-dimension matches, elementwise size equality — the same
///     relations EvalPure / RunProgram index by);
///   - value-kind soundness: params are live non-null nodes, constant
///     indices address Program::constants with matching element counts,
///     kSlot reads appear only where the caller allows them and stay inside
///     the prologue's slot count;
///   - IndexBinding soundness: gathers carry a binding with a real source,
///     cols/deltas agree in length, and every column addresses inside the
///     synthesized index row (n_static / n_seq / n_unified);
///   - fusion-aliasing legality: alias chains are acyclic and land on a
///     defined kLocal root of equal element count, an aliased value is
///     defined by a pointwise op reading its alias target as in[0], and no
///     value is read after its buffer was overwritten in place;
///   - arena-plan soundness (check_arena): lifetimes are recomputed from
///     uses, and every planned root gets a 64-byte-aligned in-bounds frame
///     range that overlaps no simultaneously-live root; aliases share their
///     root's offset and dead locals carry kNoOffset.
struct VerifyOptions {
  /// Verify PlanArena's output (offsets, frame_floats). Off for programs
  /// that have not been planned yet — Value::offset defaults to 0, so an
  /// unplanned program is indistinguishable from one planned at offset 0.
  bool check_arena = false;
  /// Body programs read prologue outputs as kSlot values; everywhere else a
  /// kSlot value is a compiler bug.
  bool allow_slots = false;
  /// When allow_slots: number of slots the paired prologue writes. kSlot
  /// indices must stay below this.
  size_t num_slots = 0;
};

/// Returns OK iff \p program satisfies every invariant above. The error
/// message pinpoints the instruction / value id and the violated rule.
Status Verify(const Program& program, const VerifyOptions& options = {});

}  // namespace ir
}  // namespace seqfm

#endif  // SEQFM_IR_VERIFY_H_
