#include "ir/trace.h"

#include <cstring>
#include <unordered_map>
#include <utility>

#include "autograd/trace.h"
#include "util/logging.h"

namespace seqfm {
namespace ir {

namespace {

/// Constant-annotation tags. TraceAnnotateConstant stores these in Node::op
/// (empty for ordinary leaves), so classification survives the gap between
/// model construction and the first trace.
constexpr const char kTagCapture[] = "const:capture";
constexpr const char kTagPaddingMask[] = "const:padding_mask";
constexpr const char kTagPaddingMaskCausal[] = "const:padding_mask_causal";
constexpr const char kTagHistoryMask[] = "const:history_mask";
constexpr const char kTagCrossPaddingMask[] = "const:cross_padding_mask";
constexpr const char kTagZeroState[] = "const:zero_state";

bool OpKindFromName(const std::string& name, OpKind* kind, float* alpha_sign) {
  struct Entry {
    const char* name;
    OpKind kind;
  };
  static const Entry kTable[] = {
      {"add", OpKind::kAdd},
      {"sub", OpKind::kSub},
      {"mul", OpKind::kMul},
      {"scale", OpKind::kScale},
      {"add_scalar", OpKind::kAddScalar},
      {"add_bias", OpKind::kAddBias},
      {"add_broadcast_batch", OpKind::kAddBroadcastBatch},
      {"relu", OpKind::kRelu},
      {"sigmoid", OpKind::kSigmoid},
      {"tanh", OpKind::kTanh},
      {"matmul", OpKind::kMatMul},
      {"bmm_shared", OpKind::kBmmShared},
      {"bmm", OpKind::kBmm},
      {"bmm_left_shared", OpKind::kBmmLeftShared},
      {"row_dot", OpKind::kRowDot},
      {"masked_softmax", OpKind::kMaskedSoftmax},
      {"layer_norm", OpKind::kLayerNorm},
      {"concat_last", OpKind::kConcatLast},
      {"concat_axis1", OpKind::kConcatAxis1},
      {"mean_axis1", OpKind::kReduceAxis1},
      {"sum_axis1", OpKind::kReduceAxis1},
      {"slice_row", OpKind::kSliceRow},
      {"sum_last", OpKind::kSumLast},
      {"reshape", OpKind::kReshape},
      {"expand_rows", OpKind::kExpandRows},
      {"pairwise_upper", OpKind::kPairwiseUpper},
      {"pairwise_cross", OpKind::kPairwiseCross},
      {"embedding_gather", OpKind::kEmbeddingGather},
      {"embedding_sum_gather", OpKind::kEmbeddingSumGather},
  };
  (void)alpha_sign;
  for (const Entry& e : kTable) {
    if (name == e.name) {
      *kind = e.kind;
      return true;
    }
  }
  return false;
}

/// Checks \p binding against an observed index matrix [batch, n] and the
/// request arrays it claims to derive from. Negative entries mean padding to
/// every gather, so they only need to agree in sign.
bool BindingMatches(const IndexBinding& binding, const int32_t* idx,
                    size_t batch, size_t n, const data::Batch& src_batch) {
  const std::vector<int32_t>* src = nullptr;
  size_t w = 0;
  switch (binding.source) {
    case IndexSource::kDynamic:
      src = &src_batch.dynamic_ids;
      w = src_batch.n_seq;
      break;
    case IndexSource::kStatic:
      src = &src_batch.static_ids;
      w = src_batch.n_static;
      break;
    case IndexSource::kUnified:
      src = &src_batch.unified_ids;
      w = src_batch.n_unified;
      break;
    case IndexSource::kNone:
      return false;
  }
  if (binding.cols.size() != n || binding.deltas.size() != n) return false;
  if (src->size() != batch * w) return false;
  for (size_t j = 0; j < n; ++j) {
    if (binding.cols[j] >= w) return false;
    for (size_t b = 0; b < batch; ++b) {
      const int32_t s = (*src)[b * w + binding.cols[j]];
      const int32_t v = idx[b * n + j];
      if (s < 0 ? v >= 0 : v != s + binding.deltas[j]) return false;
    }
  }
  return true;
}

/// The recording sink MakeNode reports into (one per tracing thread).
struct TraceSink {
  Program prog;
  std::vector<autograd::NodePtr> value_nodes;
  std::unordered_map<const autograd::Node*, uint32_t> ids;
  const data::Batch* batch = nullptr;
  std::string error;

  void Fail(const std::string& why) {
    if (error.empty()) error = why;
  }

  uint32_t NewValue(ValueKind kind, std::vector<size_t> shape,
                    autograd::NodePtr node) {
    Value v;
    v.kind = kind;
    v.shape = std::move(shape);
    v.offset = kNoOffset;
    prog.values.push_back(std::move(v));
    value_nodes.push_back(std::move(node));
    return static_cast<uint32_t>(prog.values.size() - 1);
  }

  /// Fits one gather's index matrix to a request array, trying sources in a
  /// fixed priority so repeated traces of one model pick the same binding.
  bool FitBinding(const int32_t* idx, size_t batch_rows, size_t n,
                  IndexBinding* out) const {
    if (batch_rows != batch->batch_size || n == 0) return false;
    const struct {
      IndexSource source;
      const std::vector<int32_t>* arr;
      size_t w;
    } kSources[] = {
        {IndexSource::kDynamic, &batch->dynamic_ids, batch->n_seq},
        {IndexSource::kStatic, &batch->static_ids, batch->n_static},
        {IndexSource::kUnified, &batch->unified_ids, batch->n_unified},
    };
    // Two fitting passes: a source whose every column fits with delta 0
    // (direct reads — the overwhelmingly common case) always beats one that
    // needs free deltas. Without the preference, CONSTANT index columns (the
    // user id, say) would fit any constant source column via an arbitrary
    // delta — a fit that holds at the probe request and reads garbage at
    // serving. Within a pass, columns are tried tail-aligned first (c = j +
    // w - n, the natural position when a gather reads a suffix of a wider
    // array), then identity (c = j), then left-to-right, so columns with
    // repeated probe values still bind positionally.
    for (const bool require_zero_delta : {true, false}) {
      for (const auto& s : kSources) {
        if (s.w == 0 || s.arr->size() != batch_rows * s.w) continue;
        IndexBinding binding;
        binding.source = s.source;
        binding.cols.assign(n, 0);
        binding.deltas.assign(n, 0);
        bool all_fit = true;
        for (size_t j = 0; j < n && all_fit; ++j) {
          bool col_found = false;
          auto try_col = [&](size_t c) {
            if (col_found || c >= s.w) return;
            // Delta from the first row where both sides are non-padding.
            int32_t delta = 0;
            bool have_delta = false;
            for (size_t b = 0; b < batch_rows; ++b) {
              const int32_t sv = (*s.arr)[b * s.w + c];
              const int32_t iv = idx[b * n + j];
              if (sv < 0 || iv < 0) {
                if ((sv < 0) != (iv < 0)) return;
                continue;
              }
              if (!have_delta) {
                delta = iv - sv;
                have_delta = true;
              } else if (iv != sv + delta) {
                return;
              }
            }
            if (require_zero_delta && delta != 0) return;
            binding.cols[j] = static_cast<uint32_t>(c);
            binding.deltas[j] = delta;
            col_found = true;
          };
          if (s.w >= n) try_col(j + (s.w - n));
          try_col(j);
          for (size_t c = 0; c < s.w; ++c) try_col(c);
          all_fit = col_found;
        }
        if (all_fit) {
          *out = std::move(binding);
          return true;
        }
      }
    }
    return false;
  }

  /// Classifies a leaf node (parameter or constant) into a value, emitting a
  /// synthesized mask/zeros instruction for request-derived constants.
  uint32_t LeafValue(const autograd::NodePtr& node) {
    if (node->requires_grad) {
      const uint32_t id =
          NewValue(ValueKind::kParam, node->value.shape(), node);
      prog.values[id].param = node.get();
      prog.param_nodes.push_back(node);
      ids[node.get()] = id;
      return id;
    }
    const std::string& tag = node->op;
    if (tag == kTagCapture) {
      const uint32_t id =
          NewValue(ValueKind::kConstant, node->value.shape(), node);
      prog.values[id].index = static_cast<uint32_t>(prog.constants.size());
      prog.constants.push_back(node->value);
      ids[node.get()] = id;
      return id;
    }
    OpKind kind;
    bool causal = false;
    std::vector<size_t> want_shape;
    const size_t B = batch->batch_size, n = batch->n_seq,
                 ns = batch->n_static;
    if (tag == kTagPaddingMask || tag == kTagPaddingMaskCausal) {
      kind = OpKind::kPaddingMask;
      causal = tag == kTagPaddingMaskCausal;
      want_shape = {B * n, n};
    } else if (tag == kTagHistoryMask) {
      kind = OpKind::kHistoryMask;
      want_shape = {B, n};
    } else if (tag == kTagCrossPaddingMask) {
      kind = OpKind::kCrossPaddingMask;
      want_shape = {B * (ns + n), ns + n};
    } else if (tag == kTagZeroState) {
      kind = OpKind::kZeros;
      want_shape = node->value.shape();
    } else {
      Fail("unannotated constant in traced forward (shape " +
           node->value.ToString(0) + ")");
      return kNoValue;
    }
    if (node->value.shape() != want_shape) {
      Fail(std::string("synthesized constant '") + OpKindName(kind) +
           "' has unexpected shape " + node->value.ToString(0));
      return kNoValue;
    }
    // Re-materialize from the request history and demand bit-equality with
    // what the model actually built; any drift would silently corrupt
    // compiled serving, so it poisons the trace instead.
    tensor::Tensor check = tensor::Tensor::Uninitialized(want_shape);
    MaterializeMask(kind, causal, ns, batch->dynamic_ids.data(), B, n,
                    check.size(), check.data());
    if (std::memcmp(check.data(), node->value.data(),
                    check.size() * sizeof(float)) != 0) {
      Fail(std::string("synthesized constant '") + OpKindName(kind) +
           "' does not re-materialize bit-exactly (non-uniform batch?)");
      return kNoValue;
    }
    Instr instr;
    instr.kind = kind;
    instr.causal = causal;
    if (kind == OpKind::kCrossPaddingMask) {
      instr.row = static_cast<uint32_t>(ns);
    }
    const uint32_t id = NewValue(ValueKind::kLocal, want_shape, node);
    instr.out = id;
    prog.instrs.push_back(std::move(instr));
    ids[node.get()] = id;
    return id;
  }

  uint32_t ValueFor(const autograd::NodePtr& node) {
    auto it = ids.find(node.get());
    if (it != ids.end()) return it->second;
    return LeafValue(node);
  }

  void Record(const autograd::NodePtr& node,
              const std::vector<autograd::NodePtr>& parents,
              const autograd::TraceAttrs* attrs) {
    if (!error.empty()) return;
    OpKind kind;
    if (!OpKindFromName(node->op, &kind, nullptr)) {
      Fail("untraceable op '" + node->op + "'");
      return;
    }
    Instr instr;
    instr.kind = kind;
    instr.in.reserve(parents.size());
    for (const autograd::NodePtr& p : parents) {
      const uint32_t id = ValueFor(p);
      if (id == kNoValue) return;
      instr.in.push_back(id);
    }
    if (attrs != nullptr) {
      instr.alpha = attrs->alpha;
      instr.eps = attrs->eps;
      instr.row = static_cast<uint32_t>(attrs->row);
      instr.trans_a = attrs->trans_a;
      instr.trans_b = attrs->trans_b;
    }
    if (kind == OpKind::kEmbeddingGather ||
        kind == OpKind::kEmbeddingSumGather) {
      SEQFM_CHECK(attrs != nullptr && attrs->indices != nullptr);
      instr.traced_indices.assign(
          attrs->indices, attrs->indices + attrs->idx_batch * attrs->idx_n);
      if (!FitBinding(attrs->indices, attrs->idx_batch, attrs->idx_n,
                      &instr.binding)) {
        Fail("gather indices do not derive from the request arrays");
        return;
      }
    }
    instr.out = NewValue(ValueKind::kLocal, node->value.shape(), node);
    ids[node.get()] = instr.out;
    prog.instrs.push_back(std::move(instr));
  }
};

thread_local TraceSink* g_sink = nullptr;

class ScopedSink {
 public:
  explicit ScopedSink(TraceSink* sink) : prev_(g_sink) { g_sink = sink; }
  ~ScopedSink() { g_sink = prev_; }

 private:
  TraceSink* prev_;
};

}  // namespace

bool VerifyIndexBinding(const IndexBinding& binding, const int32_t* idx,
                        size_t batch, size_t n,
                        const data::Batch& src_batch) {
  return BindingMatches(binding, idx, batch, n, src_batch);
}

TraceResult Trace(core::Model* model, const data::Batch& batch) {
  TraceResult res;
  SEQFM_CHECK(g_sink == nullptr) << "nested traces are not supported";
  TraceSink sink;
  sink.batch = &batch;
  sink.prog.count = batch.batch_size;
  sink.prog.n_static = batch.n_static;
  sink.prog.n_seq = batch.n_seq;
  sink.prog.n_unified = batch.n_unified;
  sink.prog.uid = NextProgramUid();

  autograd::Variable out;
  {
    autograd::NoGradGuard no_grad;
    ScopedSink scope(&sink);
    out = model->Score(batch, /*training=*/false);
  }
  if (!sink.error.empty()) {
    res.error = std::move(sink.error);
    return res;
  }
  if (!out.defined()) {
    res.error = "model returned an undefined score";
    return res;
  }
  auto it = sink.ids.find(out.node().get());
  if (it == sink.ids.end()) {
    res.error = "model output was not produced by a traced op";
    return res;
  }
  sink.prog.output = it->second;
  res.program = std::move(sink.prog);
  res.value_nodes = std::move(sink.value_nodes);
  return res;
}

}  // namespace ir

namespace autograd {

bool TracingActive() { return ir::g_sink != nullptr; }

void TraceRecord(const NodePtr& node, const std::vector<NodePtr>& parents,
                 const TraceAttrs* attrs) {
  if (ir::g_sink != nullptr) ir::g_sink->Record(node, parents, attrs);
}

void TraceAnnotateConstant(const Variable& v, ConstantKind kind, bool causal) {
  // Stamped on the node itself (the leaf op string is otherwise unused), so
  // constants built at model-construction time — long before any trace is
  // armed — are still classifiable when a later trace encounters them.
  const char* tag = ir::kTagCapture;
  switch (kind) {
    case ConstantKind::kCaptureValue:
      tag = ir::kTagCapture;
      break;
    case ConstantKind::kPaddingMask:
      tag = causal ? ir::kTagPaddingMaskCausal : ir::kTagPaddingMask;
      break;
    case ConstantKind::kHistoryMask:
      tag = ir::kTagHistoryMask;
      break;
    case ConstantKind::kCrossPaddingMask:
      tag = ir::kTagCrossPaddingMask;
      break;
    case ConstantKind::kZeroState:
      tag = ir::kTagZeroState;
      break;
  }
  v.node()->op = tag;
}

}  // namespace autograd
}  // namespace seqfm
