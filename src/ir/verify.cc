#include "ir/verify.h"

#include <algorithm>
#include <string>
#include <vector>

namespace seqfm {
namespace ir {
namespace {

constexpr size_t kNoDef = static_cast<size_t>(-1);

std::string V(uint32_t id) { return "%" + std::to_string(id); }

/// Error prefix pinning the failure to one instruction: "instr #3 (matmul)".
std::string At(size_t i, const Instr& ins) {
  return "instr #" + std::to_string(i) + " (" + OpKindName(ins.kind) + "): ";
}

size_t Rank(const Value& v) { return v.shape.size(); }
size_t Dim(const Value& v, size_t d) { return v.shape[d]; }

/// Ops that compute out[i] from in[0][i] alone, so writing the output into
/// the input's buffer is sound. Must stay in sync with the switch in
/// passes::FuseElementwise — the verifier re-derives in-place legality
/// instead of trusting the pass that introduced the alias.
bool IsPointwiseInPlace(OpKind k) {
  switch (k) {
    case OpKind::kRelu:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kScale:
    case OpKind::kAddScalar:
    case OpKind::kReshape:
      return true;
    default:
      return false;
  }
}

bool IsGather(OpKind k) {
  return k == OpKind::kEmbeddingGather || k == OpKind::kEmbeddingSumGather;
}

/// Width of the synthesized index row a binding source resolves to — the
/// bound the executor indexes src[b * width + cols[j]] against.
size_t SourceWidth(const Program& p, IndexSource s) {
  switch (s) {
    case IndexSource::kStatic: return p.n_static;
    case IndexSource::kDynamic: return p.n_seq;
    case IndexSource::kUnified: return p.n_unified;
    case IndexSource::kNone: break;
  }
  return 0;
}

Status CheckBinding(const Program& p, size_t i, const Instr& ins) {
  const IndexBinding& b = ins.binding;
  if (b.source == IndexSource::kNone) {
    return Status::Internal(At(i, ins) + "gather has no index binding");
  }
  if (b.cols.size() != b.deltas.size()) {
    return Status::Internal(At(i, ins) + "binding cols/deltas length mismatch (" +
                            std::to_string(b.cols.size()) + " vs " +
                            std::to_string(b.deltas.size()) + ")");
  }
  const size_t width = SourceWidth(p, b.source);
  if (width == 0) {
    return Status::Internal(At(i, ins) + "binding source has zero width");
  }
  for (size_t j = 0; j < b.cols.size(); ++j) {
    if (b.cols[j] >= width) {
      return Status::Internal(
          At(i, ins) + "binding column " + std::to_string(b.cols[j]) +
          " (position " + std::to_string(j) + ") exceeds source width " +
          std::to_string(width));
    }
  }
  return Status::OK();
}

/// Per-op agreement with the executor's shape contracts. Mirrors what
/// EvalPure / RunProgram index by: every dim() read there has a matching
/// relation here, so a malformed program fails verification instead of
/// reading out of bounds at serving time.
Status CheckInstrShapes(const Program& p, size_t i, const Instr& ins) {
  const Value& out = p.values[ins.out];
  auto err = [&](const std::string& msg) {
    return Status::Internal(At(i, ins) + msg);
  };
  auto in_val = [&](size_t j) -> const Value& { return p.values[ins.in[j]]; };
  auto want_arity = [&](size_t n) {
    return ins.in.size() == n
               ? Status::OK()
               : err("expects " + std::to_string(n) + " inputs, has " +
                     std::to_string(ins.in.size()));
  };
  auto same_size = [&](size_t j) {
    return in_val(j).size() == out.size()
               ? Status::OK()
               : err("shape mismatch: in[" + std::to_string(j) + "] " +
                     V(ins.in[j]) + " has " +
                     std::to_string(in_val(j).size()) + " elements, out " +
                     V(ins.out) + " has " + std::to_string(out.size()));
  };
  auto want_rank = [&](size_t j, size_t r) {
    return Rank(in_val(j)) == r
               ? Status::OK()
               : err("shape mismatch: in[" + std::to_string(j) + "] " +
                     V(ins.in[j]) + " must be rank-" + std::to_string(r) +
                     ", is rank-" + std::to_string(Rank(in_val(j))));
  };

  switch (ins.kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
    case OpKind::kMul:
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(same_size(0));
      SEQFM_RETURN_NOT_OK(same_size(1));
      return Status::OK();
    case OpKind::kScale:
    case OpKind::kAddScalar:
    case OpKind::kRelu:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kReshape:
      SEQFM_RETURN_NOT_OK(want_arity(1));
      return same_size(0);
    case OpKind::kAddBias: {
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(same_size(0));
      if (out.shape.empty() || in_val(1).size() != out.shape.back()) {
        return err("shape mismatch: bias " + V(ins.in[1]) + " has " +
                   std::to_string(in_val(1).size()) +
                   " elements, last dim of out is " +
                   std::to_string(out.shape.empty() ? 0 : out.shape.back()));
      }
      return Status::OK();
    }
    case OpKind::kAddBroadcastBatch: {
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(want_rank(0, 3));
      SEQFM_RETURN_NOT_OK(same_size(0));
      const Value& x = in_val(0);
      if (in_val(1).size() != Dim(x, 1) * Dim(x, 2)) {
        return err("shape mismatch: broadcast operand " + V(ins.in[1]) +
                   " does not cover one batch block");
      }
      return Status::OK();
    }
    case OpKind::kMatMul: {
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(want_rank(0, 2));
      SEQFM_RETURN_NOT_OK(want_rank(1, 2));
      const Value& a = in_val(0);
      const Value& b = in_val(1);
      if (Dim(a, 1) != Dim(b, 0)) {
        return err("shape mismatch: inner dims " + std::to_string(Dim(a, 1)) +
                   " vs " + std::to_string(Dim(b, 0)));
      }
      if (out.size() != Dim(a, 0) * Dim(b, 1)) {
        return err("shape mismatch: out is not [m, n]");
      }
      return Status::OK();
    }
    case OpKind::kBmmShared: {
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(want_rank(0, 3));
      SEQFM_RETURN_NOT_OK(want_rank(1, 2));
      const Value& a = in_val(0);
      const Value& w = in_val(1);
      if (Dim(a, 2) != Dim(w, 0)) {
        return err("shape mismatch: inner dims " + std::to_string(Dim(a, 2)) +
                   " vs " + std::to_string(Dim(w, 0)));
      }
      if (out.size() != Dim(a, 0) * Dim(a, 1) * Dim(w, 1)) {
        return err("shape mismatch: out is not [batch, m, n]");
      }
      return Status::OK();
    }
    case OpKind::kBmm: {
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(want_rank(0, 3));
      SEQFM_RETURN_NOT_OK(want_rank(1, 3));
      const Value& a = in_val(0);
      const Value& b = in_val(1);
      if (Dim(a, 0) != Dim(b, 0)) return err("shape mismatch: batch dims");
      const size_t m = ins.trans_a ? Dim(a, 2) : Dim(a, 1);
      const size_t ka = ins.trans_a ? Dim(a, 1) : Dim(a, 2);
      const size_t kb = ins.trans_b ? Dim(b, 2) : Dim(b, 1);
      const size_t n = ins.trans_b ? Dim(b, 1) : Dim(b, 2);
      if (ka != kb) {
        return err("shape mismatch: inner dims " + std::to_string(ka) +
                   " vs " + std::to_string(kb));
      }
      if (out.size() != Dim(a, 0) * m * n) {
        return err("shape mismatch: out is not [batch, m, n]");
      }
      return Status::OK();
    }
    case OpKind::kBmmLeftShared: {
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(want_rank(0, 2));
      SEQFM_RETURN_NOT_OK(want_rank(1, 3));
      const Value& w = in_val(0);
      const Value& x = in_val(1);
      if (Dim(w, 1) != Dim(x, 1)) {
        return err("shape mismatch: inner dims " + std::to_string(Dim(w, 1)) +
                   " vs " + std::to_string(Dim(x, 1)));
      }
      if (out.size() != Dim(x, 0) * Dim(w, 0) * Dim(x, 2)) {
        return err("shape mismatch: out is not [batch, h2, d]");
      }
      return Status::OK();
    }
    case OpKind::kRowDot: {
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(want_rank(0, 2));
      if (in_val(0).size() != in_val(1).size()) {
        return err("shape mismatch: operand sizes differ");
      }
      if (out.size() != Dim(in_val(0), 0)) {
        return err("shape mismatch: out is not one value per row");
      }
      return Status::OK();
    }
    case OpKind::kMaskedSoftmax: {
      if (ins.in.size() != 1 && ins.in.size() != 2) {
        return err("expects 1 or 2 inputs, has " +
                   std::to_string(ins.in.size()));
      }
      SEQFM_RETURN_NOT_OK(same_size(0));
      if (ins.in.size() == 2) {
        const size_t msize = in_val(1).size();
        if (msize == 0 || out.size() % msize != 0) {
          return err("shape mismatch: mask " + V(ins.in[1]) +
                     " does not broadcast over the logits");
        }
      }
      return Status::OK();
    }
    case OpKind::kLayerNorm: {
      SEQFM_RETURN_NOT_OK(want_arity(3));
      SEQFM_RETURN_NOT_OK(same_size(0));
      const size_t d = out.shape.empty() ? 0 : out.shape.back();
      if (d == 0 || in_val(1).size() != d || in_val(2).size() != d) {
        return err("shape mismatch: gamma/beta must match the last dim");
      }
      return Status::OK();
    }
    case OpKind::kConcatLast: {
      if (ins.in.empty()) return err("expects >= 1 input");
      if (Rank(out) != 2) return err("shape mismatch: out must be rank-2");
      size_t total = 0;
      for (size_t j = 0; j < ins.in.size(); ++j) {
        SEQFM_RETURN_NOT_OK(want_rank(j, 2));
        if (Dim(in_val(j), 0) != Dim(out, 0)) {
          return err("shape mismatch: batch dims differ at in[" +
                     std::to_string(j) + "]");
        }
        total += Dim(in_val(j), 1);
      }
      if (total != Dim(out, 1)) {
        return err("shape mismatch: concatenated width " +
                   std::to_string(total) + " vs out width " +
                   std::to_string(Dim(out, 1)));
      }
      return Status::OK();
    }
    case OpKind::kConcatAxis1: {
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(want_rank(0, 3));
      SEQFM_RETURN_NOT_OK(want_rank(1, 3));
      const Value& a = in_val(0);
      const Value& b = in_val(1);
      if (Dim(a, 0) != Dim(b, 0) || Dim(a, 2) != Dim(b, 2)) {
        return err("shape mismatch: operands disagree outside axis 1");
      }
      if (out.size() != Dim(a, 0) * (Dim(a, 1) + Dim(b, 1)) * Dim(a, 2)) {
        return err("shape mismatch: out is not the axis-1 concatenation");
      }
      return Status::OK();
    }
    case OpKind::kReduceAxis1: {
      SEQFM_RETURN_NOT_OK(want_arity(1));
      SEQFM_RETURN_NOT_OK(want_rank(0, 3));
      const Value& x = in_val(0);
      if (out.size() != Dim(x, 0) * Dim(x, 2)) {
        return err("shape mismatch: out is not [batch, cols]");
      }
      return Status::OK();
    }
    case OpKind::kSliceRow: {
      SEQFM_RETURN_NOT_OK(want_arity(1));
      SEQFM_RETURN_NOT_OK(want_rank(0, 3));
      const Value& x = in_val(0);
      if (ins.row >= Dim(x, 1)) {
        return err("row " + std::to_string(ins.row) + " out of range for " +
                   std::to_string(Dim(x, 1)) + " rows");
      }
      if (out.size() != Dim(x, 0) * Dim(x, 2)) {
        return err("shape mismatch: out is not [batch, d]");
      }
      return Status::OK();
    }
    case OpKind::kSumLast: {
      SEQFM_RETURN_NOT_OK(want_arity(1));
      const Value& x = in_val(0);
      const size_t d = x.shape.empty() ? 0 : x.shape.back();
      if (d == 0 || out.size() != x.size() / d) {
        return err("shape mismatch: out is not one value per row");
      }
      return Status::OK();
    }
    case OpKind::kExpandRows: {
      SEQFM_RETURN_NOT_OK(want_arity(1));
      if (Rank(out) != 3) return err("shape mismatch: out must be rank-3");
      if (in_val(0).size() != Dim(out, 0) * Dim(out, 2)) {
        return err("shape mismatch: input does not cover [batch, d]");
      }
      return Status::OK();
    }
    case OpKind::kPairwiseUpper: {
      SEQFM_RETURN_NOT_OK(want_arity(1));
      SEQFM_RETURN_NOT_OK(want_rank(0, 3));
      const Value& x = in_val(0);
      const size_t n = Dim(x, 1);
      if (out.size() != Dim(x, 0) * (n * (n - 1) / 2) * Dim(x, 2)) {
        return err("shape mismatch: out is not the upper pair triangle");
      }
      return Status::OK();
    }
    case OpKind::kPairwiseCross: {
      SEQFM_RETURN_NOT_OK(want_arity(2));
      SEQFM_RETURN_NOT_OK(want_rank(0, 3));
      SEQFM_RETURN_NOT_OK(want_rank(1, 3));
      const Value& a = in_val(0);
      const Value& b = in_val(1);
      if (Dim(a, 0) != Dim(b, 0) || Dim(a, 2) != Dim(b, 2)) {
        return err("shape mismatch: operands disagree in batch or depth");
      }
      if (out.size() != Dim(a, 0) * Dim(a, 1) * Dim(b, 1) * Dim(a, 2)) {
        return err("shape mismatch: out is not the full cross product");
      }
      return Status::OK();
    }
    case OpKind::kEmbeddingGather: {
      SEQFM_RETURN_NOT_OK(want_arity(1));
      SEQFM_RETURN_NOT_OK(want_rank(0, 2));
      if (Rank(out) != 3) return err("shape mismatch: out must be rank-3");
      const Value& table = in_val(0);
      if (Dim(out, 2) != Dim(table, 1)) {
        return err("shape mismatch: out depth " + std::to_string(Dim(out, 2)) +
                   " vs table depth " + std::to_string(Dim(table, 1)));
      }
      if (Dim(out, 0) != p.count) {
        return err("batch " + std::to_string(Dim(out, 0)) +
                   " diverges from program count " + std::to_string(p.count));
      }
      SEQFM_RETURN_NOT_OK(CheckBinding(p, i, ins));
      if (ins.binding.cols.size() != Dim(out, 1)) {
        return err("binding covers " +
                   std::to_string(ins.binding.cols.size()) +
                   " columns but out has " + std::to_string(Dim(out, 1)) +
                   " rows per sample");
      }
      return Status::OK();
    }
    case OpKind::kEmbeddingSumGather: {
      SEQFM_RETURN_NOT_OK(want_arity(1));
      if (Rank(out) == 0 || Dim(out, 0) != p.count ||
          out.size() != Dim(out, 0)) {
        return err("shape mismatch: out is not one value per sample of the "
                   "program count");
      }
      return CheckBinding(p, i, ins);
    }
    case OpKind::kPaddingMask: {
      SEQFM_RETURN_NOT_OK(want_arity(0));
      const size_t block = p.n_seq * p.n_seq;
      if (block == 0 || out.size() % block != 0) {
        return err("shape mismatch: out is not whole [n, n] blocks");
      }
      return Status::OK();
    }
    case OpKind::kHistoryMask: {
      SEQFM_RETURN_NOT_OK(want_arity(0));
      if (p.n_seq == 0 || out.size() % p.n_seq != 0) {
        return err("shape mismatch: out is not whole history rows");
      }
      return Status::OK();
    }
    case OpKind::kCrossPaddingMask: {
      SEQFM_RETURN_NOT_OK(want_arity(0));
      const size_t side = ins.row + p.n_seq;
      if (side == 0 || out.size() % (side * side) != 0) {
        return err("shape mismatch: out is not whole cross-mask blocks");
      }
      return Status::OK();
    }
    case OpKind::kZeros:
      return want_arity(0);
    case OpKind::kTileRows: {
      SEQFM_RETURN_NOT_OK(want_arity(1));
      const size_t s = in_val(0).size();
      if (s == 0 || out.size() % s != 0) {
        return err("shape mismatch: out is not a whole-number tiling of " +
                   V(ins.in[0]));
      }
      return Status::OK();
    }
  }
  return Status::Internal(At(i, ins) + "unknown op kind");
}

}  // namespace

Status Verify(const Program& p, const VerifyOptions& opt) {
  const size_t nvals = p.values.size();
  const size_t ninstr = p.instrs.size();

  // --- Value-table statics: every non-local value must be resolvable. ---
  for (uint32_t id = 0; id < nvals; ++id) {
    const Value& v = p.values[id];
    switch (v.kind) {
      case ValueKind::kLocal:
        break;
      case ValueKind::kParam:
        if (v.param == nullptr) {
          return Status::Internal("value " + V(id) + ": null param node");
        }
        break;
      case ValueKind::kConstant:
        if (v.index >= p.constants.size()) {
          return Status::Internal(
              "value " + V(id) + ": constant index " +
              std::to_string(v.index) + " out of range (have " +
              std::to_string(p.constants.size()) + " constants)");
        }
        if (p.constants[v.index].size() != v.size()) {
          return Status::Internal(
              "value " + V(id) + ": constant size " +
              std::to_string(p.constants[v.index].size()) +
              " disagrees with declared shape (" + std::to_string(v.size()) +
              " elements)");
        }
        break;
      case ValueKind::kSlot:
        if (!opt.allow_slots) {
          return Status::Internal("value " + V(id) +
                                  ": kSlot value in a program that takes no "
                                  "slots");
        }
        if (v.index >= opt.num_slots) {
          return Status::Internal(
              "value " + V(id) + ": slot index " + std::to_string(v.index) +
              " out of range (prologue writes " +
              std::to_string(opt.num_slots) + " slots)");
        }
        break;
    }
    if (v.alias_of != kNoValue && v.kind != ValueKind::kLocal) {
      return Status::Internal("value " + V(id) +
                              ": non-local value carries a fusion alias");
    }
  }

  // --- Instruction table: id ranges, SSA single definition. ---
  std::vector<size_t> def(nvals, kNoDef);
  for (size_t i = 0; i < ninstr; ++i) {
    const Instr& ins = p.instrs[i];
    if (ins.out >= nvals) {
      return Status::Internal(At(i, ins) + "out of range output value id " +
                              std::to_string(ins.out));
    }
    for (uint32_t u : ins.in) {
      if (u >= nvals) {
        return Status::Internal(At(i, ins) + "out of range input value id " +
                                std::to_string(u));
      }
    }
    if (p.values[ins.out].kind != ValueKind::kLocal) {
      return Status::Internal(At(i, ins) + "writes non-local value " +
                              V(ins.out));
    }
    if (def[ins.out] != kNoDef) {
      return Status::Internal(At(i, ins) + "value " + V(ins.out) +
                              " defined twice (SSA violation; first at instr "
                              "#" + std::to_string(def[ins.out]) + ")");
    }
    def[ins.out] = i;
  }

  // --- Fusion aliases: acyclic chains onto a defined local root, written
  // by a pointwise op reading the alias target as in[0]. ---
  std::vector<uint32_t> root(nvals);
  for (uint32_t id = 0; id < nvals; ++id) {
    uint32_t r = id;
    size_t steps = 0;
    while (p.values[r].alias_of != kNoValue) {
      const uint32_t next = p.values[r].alias_of;
      if (next >= nvals) {
        return Status::Internal("value " + V(id) + ": alias target " +
                                std::to_string(next) + " out of range");
      }
      r = next;
      if (++steps > nvals) {
        return Status::Internal("value " + V(id) + ": alias chain cycle");
      }
    }
    root[id] = r;
  }
  for (uint32_t id = 0; id < nvals; ++id) {
    const Value& v = p.values[id];
    if (v.alias_of == kNoValue) continue;
    const Value& target = p.values[v.alias_of];
    if (target.kind != ValueKind::kLocal) {
      return Status::Internal("value " + V(id) + ": aliases non-local value " +
                              V(v.alias_of));
    }
    if (v.size() != target.size()) {
      return Status::Internal("value " + V(id) + ": aliases " + V(v.alias_of) +
                              " of different size (" +
                              std::to_string(v.size()) + " vs " +
                              std::to_string(target.size()) + " elements)");
    }
    if (def[id] == kNoDef) {
      return Status::Internal("value " + V(id) +
                              ": aliased value has no defining instruction");
    }
    const Instr& d = p.instrs[def[id]];
    if (!IsPointwiseInPlace(d.kind) || d.in.empty() ||
        d.in[0] != v.alias_of) {
      return Status::Internal(
          At(def[id], d) + "illegal fusion alias: " + V(id) +
          " must be defined by a pointwise op reading " + V(v.alias_of) +
          " as in[0]");
    }
  }

  // --- Reads: def-before-use, slot gating, per-op shape contracts, and
  // no read of a buffer after an in-place redefinition clobbered it. For
  // each local, the next in-place overwrite of its alias root bounds the
  // last instruction allowed to read it (program outputs read at ninstr). ---
  std::vector<size_t> overwritten_at(nvals, kNoDef);  // next def on my root
  std::vector<uint32_t> overwritten_by(nvals, kNoValue);
  for (uint32_t id = 0; id < nvals; ++id) {
    if (p.values[id].kind != ValueKind::kLocal || def[id] == kNoDef) continue;
    for (uint32_t other = 0; other < nvals; ++other) {
      if (other == id || root[other] != root[id]) continue;
      if (def[other] == kNoDef || def[other] <= def[id]) continue;
      if (def[other] < overwritten_at[id]) {
        overwritten_at[id] = def[other];
        overwritten_by[id] = other;
      }
    }
  }
  auto check_read = [&](uint32_t u, size_t at,
                        const std::string& where) -> Status {
    const Value& v = p.values[u];
    if (v.kind == ValueKind::kSlot && !opt.allow_slots) {
      return Status::Internal(where + "reads slot value " + V(u) +
                              " but the program takes no slots");
    }
    if (v.kind != ValueKind::kLocal) return Status::OK();
    if (def[u] == kNoDef) {
      return Status::Internal(where + "reads undefined value " + V(u));
    }
    if (def[u] >= at) {
      return Status::Internal(where + "reads value " + V(u) +
                              " before its definition at instr #" +
                              std::to_string(def[u]));
    }
    // A read at the overwriting instruction itself is the legal in-place
    // input; anything later sees the new value's bits.
    if (overwritten_at[u] != kNoDef && at > overwritten_at[u]) {
      return Status::Internal(
          where + "reads value " + V(u) +
          " after its buffer was overwritten in place by " +
          V(overwritten_by[u]) + " at instr #" +
          std::to_string(overwritten_at[u]));
    }
    return Status::OK();
  };
  for (size_t i = 0; i < ninstr; ++i) {
    const Instr& ins = p.instrs[i];
    for (uint32_t u : ins.in) {
      SEQFM_RETURN_NOT_OK(check_read(u, i, At(i, ins)));
    }
    if (!IsGather(ins.kind) && ins.binding.source != IndexSource::kNone) {
      return Status::Internal(At(i, ins) +
                              "non-gather op carries an index binding");
    }
    SEQFM_RETURN_NOT_OK(CheckInstrShapes(p, i, ins));
  }

  // --- Externally visible results exist and survive to the end. ---
  if (p.output != kNoValue) {
    if (p.output >= nvals) {
      return Status::Internal("program output id " +
                              std::to_string(p.output) + " out of range");
    }
    SEQFM_RETURN_NOT_OK(check_read(p.output, ninstr, "program output: "));
    if (p.values[p.output].kind != ValueKind::kLocal) {
      return Status::Internal("program output " + V(p.output) +
                              " is not a defined local");
    }
  }
  for (size_t s = 0; s < p.slot_outputs.size(); ++s) {
    const uint32_t id = p.slot_outputs[s];
    const std::string where =
        "slot output " + std::to_string(s) + ": ";
    if (id >= nvals) {
      return Status::Internal(where + "value id " + std::to_string(id) +
                              " out of range");
    }
    if (p.values[id].kind != ValueKind::kLocal || def[id] == kNoDef) {
      return Status::Internal(where + "dangling slot: value " + V(id) +
                              " is not a defined local");
    }
    SEQFM_RETURN_NOT_OK(check_read(id, ninstr, where));
  }

  if (!opt.check_arena) return Status::OK();

  // --- Arena plan: recompute lifetimes exactly as PlanArena does (per
  // alias root, definition to last read, outputs live past the end) and
  // prove every planned range is aligned, in bounds, and disjoint from
  // every simultaneously-live root. ---
  constexpr size_t kAlignFloats = 16;  // 64-byte lanes, as planned
  std::vector<size_t> rdef(nvals, kNoDef);
  std::vector<size_t> rend(nvals, 0);
  for (size_t i = 0; i < ninstr; ++i) {
    const Instr& ins = p.instrs[i];
    const uint32_t r = root[ins.out];
    if (rdef[r] == kNoDef) rdef[r] = i;
    rend[r] = std::max(rend[r], i);
    for (uint32_t u : ins.in) {
      if (p.values[u].kind != ValueKind::kLocal) continue;
      rend[root[u]] = std::max(rend[root[u]], i);
    }
  }
  if (p.output != kNoValue &&
      p.values[p.output].kind == ValueKind::kLocal) {
    rend[root[p.output]] = ninstr;
  }
  for (uint32_t s : p.slot_outputs) {
    if (p.values[s].kind == ValueKind::kLocal) rend[root[s]] = ninstr;
  }

  std::vector<uint32_t> live_roots;
  for (uint32_t id = 0; id < nvals; ++id) {
    const Value& v = p.values[id];
    if (v.kind != ValueKind::kLocal) continue;
    if (v.alias_of != kNoValue) {
      if (v.offset != p.values[root[id]].offset) {
        return Status::Internal("arena: aliased value " + V(id) +
                                " does not share its root's offset");
      }
      continue;
    }
    if (rdef[id] == kNoDef) {
      if (v.offset != kNoOffset) {
        return Status::Internal("arena: dead local " + V(id) +
                                " carries a planned offset");
      }
      continue;
    }
    if (v.offset == kNoOffset) {
      return Status::Internal("arena: live local " + V(id) + " is unplanned");
    }
    if (v.offset % kAlignFloats != 0) {
      return Status::Internal("arena: value " + V(id) + " offset " +
                              std::to_string(v.offset) +
                              " breaks 64-byte alignment");
    }
    const size_t aligned =
        (v.size() + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
    if (v.offset + aligned > p.frame_floats) {
      return Status::Internal(
          "arena: value " + V(id) + " range [" + std::to_string(v.offset) +
          ", " + std::to_string(v.offset + aligned) + ") exceeds frame of " +
          std::to_string(p.frame_floats) + " floats");
    }
    live_roots.push_back(id);
  }
  for (size_t a = 0; a < live_roots.size(); ++a) {
    for (size_t b = a + 1; b < live_roots.size(); ++b) {
      const uint32_t x = live_roots[a];
      const uint32_t y = live_roots[b];
      if (rdef[x] > rend[y] || rdef[y] > rend[x]) continue;  // disjoint lives
      const Value& vx = p.values[x];
      const Value& vy = p.values[y];
      const size_t ax =
          (vx.size() + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
      const size_t ay =
          (vy.size() + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
      if (vx.offset < vy.offset + ay && vy.offset < vx.offset + ax) {
        return Status::Internal(
            "arena: simultaneously live values " + V(x) + " and " + V(y) +
            " overlap (ranges [" + std::to_string(vx.offset) + ", " +
            std::to_string(vx.offset + ax) + ") and [" +
            std::to_string(vy.offset) + ", " +
            std::to_string(vy.offset + ay) + "))");
      }
    }
  }
  return Status::OK();
}

}  // namespace ir
}  // namespace seqfm
