#include "ir/exec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "core/scratch_arena.h"
#include "ir/passes.h"
#include "ir/trace.h"
#include "ir/verify.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/ordered_mutex.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace ir {

// ---------------------------------------------------------------------------
// EvalPure: one instruction, replicated from the eager forward it was traced
// from. Every loop mirrors its src/autograd/ops_*.cc counterpart exactly —
// same kernel-table calls, same ParallelFor grains, same serial reductions —
// which is what makes compiled scores bit-identical to the taped forward at
// every thread count and SIMD level.
// ---------------------------------------------------------------------------

bool EvalPure(const Instr& instr, const std::vector<const tensor::Tensor*>& in,
              tensor::Tensor* out) {
  switch (instr.kind) {
    case OpKind::kAdd:
      tensor::Add(*in[0], *in[1], out);
      return true;
    case OpKind::kSub:
      tensor::Sub(*in[0], *in[1], out);
      return true;
    case OpKind::kMul:
      tensor::Mul(*in[0], *in[1], out);
      return true;
    case OpKind::kScale: {
      const float* x = in[0]->data();
      float* y = out->data();
      const size_t n = out->size();
      const float alpha = instr.alpha;
      const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
      util::ParallelFor(n, util::kEwGrain, [=, &kt](size_t i0, size_t i1) {
        kt.scale(alpha, x + i0, y + i0, i1 - i0);
      });
      return true;
    }
    case OpKind::kAddScalar: {
      const float* x = in[0]->data();
      float* y = out->data();
      const float alpha = instr.alpha;
      for (size_t i = 0; i < out->size(); ++i) y[i] = x[i] + alpha;
      return true;
    }
    case OpKind::kAddBias:
      tensor::AddBiasLastDim(*in[0], *in[1], out);
      return true;
    case OpKind::kAddBroadcastBatch: {
      const tensor::Tensor& x = *in[0];
      const size_t batch = x.dim(0), rows = x.dim(1), d = x.dim(2);
      const float* src = in[1]->data();
      util::ParallelFor(batch, util::GrainForRows(rows * d, util::kEwGrain),
                        [out, &x, src, rows, d](size_t b0, size_t b1) {
        for (size_t b = b0; b < b1; ++b) {
          const float* xb = x.BatchData(b);
          float* dst = out->BatchData(b);
          for (size_t i = 0; i < rows * d; ++i) dst[i] = xb[i] + src[i];
        }
      });
      return true;
    }
    case OpKind::kRelu:
      tensor::Relu(*in[0], out);
      return true;
    case OpKind::kSigmoid:
      tensor::Sigmoid(*in[0], out);
      return true;
    case OpKind::kTanh:
      tensor::Tanh(*in[0], out);
      return true;
    case OpKind::kMatMul:
      tensor::MatMul(*in[0], *in[1], out);
      return true;
    case OpKind::kBmmShared:
      tensor::BatchedMatMulShared(*in[0], *in[1], out);
      return true;
    case OpKind::kBmm:
      tensor::BatchedMatMul(*in[0], *in[1], out, instr.trans_a, instr.trans_b);
      return true;
    case OpKind::kBmmLeftShared: {
      const tensor::Tensor& w = *in[0];
      const tensor::Tensor& p = *in[1];
      const size_t batch = p.dim(0);
      const size_t h2 = w.dim(0), h = w.dim(1), d = p.dim(2);
      util::ParallelFor(batch,
                        util::GrainForRows(h2 * h * d, util::kMinParallelWork),
                        [&, h2, h, d](size_t b0, size_t b1) {
        for (size_t b = b0; b < b1; ++b) {
          tensor::Gemm(w.data(), p.BatchData(b), out->BatchData(b), h2, h, d,
                       false, false, false);
        }
      });
      return true;
    }
    case OpKind::kRowDot: {
      const size_t batch = in[0]->dim(0), d = in[0]->dim(1);
      const float* av = in[0]->data();
      const float* bv = in[1]->data();
      float* out_data = out->data();
      const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
      util::ParallelFor(batch, util::GrainForRows(d, util::kEwGrain),
                        [=, &kt](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
          out_data[i] = kt.dot(av + i * d, bv + i * d, d);
        }
      });
      return true;
    }
    case OpKind::kMaskedSoftmax:
      tensor::SoftmaxLastDim(*in[0], in.size() > 1 ? in[1] : nullptr, out);
      return true;
    case OpKind::kLayerNorm: {
      const size_t d = in[0]->shape().back();
      const size_t rows = in[0]->size() / d;
      const float* xv = in[0]->data();
      const float* gv = in[1]->data();
      const float* bv = in[2]->data();
      float* out_data = out->data();
      const float eps = instr.eps;
      const tensor::kernels::KernelTable& kt = tensor::kernels::Active();
      util::ParallelFor(rows, util::GrainForRows(d, util::kMathGrain),
                        [=, &kt](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
          const float* xr = xv + r * d;
          const float mean = kt.reduce_sum(xr, d) / static_cast<float>(d);
          const float var =
              kt.reduce_sum_sq_diff(xr, mean, d) / static_cast<float>(d);
          const float is = 1.0f / std::sqrt(var + eps);
          kt.layer_norm_row(xr, gv, bv, mean, is, d, out_data + r * d,
                            nullptr);
        }
      });
      return true;
    }
    case OpKind::kConcatLast: {
      const size_t batch = out->dim(0), total = out->dim(1);
      size_t offset = 0;
      for (const tensor::Tensor* p : in) {
        const size_t d = p->dim(1);
        for (size_t b = 0; b < batch; ++b) {
          const float* src = p->data() + b * d;
          float* dst = out->data() + b * total + offset;
          for (size_t j = 0; j < d; ++j) dst[j] = src[j];
        }
        offset += d;
      }
      return true;
    }
    case OpKind::kConcatAxis1: {
      const size_t batch = in[0]->dim(0), na = in[0]->dim(1),
                   nb = in[1]->dim(1), d = in[0]->dim(2);
      for (size_t i = 0; i < batch; ++i) {
        float* dst = out->BatchData(i);
        const float* sa = in[0]->BatchData(i);
        const float* sb = in[1]->BatchData(i);
        for (size_t j = 0; j < na * d; ++j) dst[j] = sa[j];
        for (size_t j = 0; j < nb * d; ++j) dst[na * d + j] = sb[j];
      }
      return true;
    }
    case OpKind::kReduceAxis1:
      tensor::SumAxis1(*in[0], instr.alpha, out);
      return true;
    case OpKind::kSliceRow: {
      const size_t batch = in[0]->dim(0), d = in[0]->dim(2);
      const size_t row = instr.row;
      for (size_t b = 0; b < batch; ++b) {
        const float* src = in[0]->BatchData(b) + row * d;
        float* dst = out->data() + b * d;
        for (size_t j = 0; j < d; ++j) dst[j] = src[j];
      }
      return true;
    }
    case OpKind::kSumLast:
      tensor::SumLastDim(*in[0], out);
      return true;
    case OpKind::kReshape: {
      if (out->data() == in[0]->data()) return true;  // fused: copy elided
      const float* src = in[0]->data();
      float* dst = out->data();
      const size_t n = out->size();
      for (size_t i = 0; i < n; ++i) dst[i] = src[i];
      return true;
    }
    case OpKind::kExpandRows: {
      const size_t batch = out->dim(0), n = out->dim(1), d = out->dim(2);
      for (size_t b = 0; b < batch; ++b) {
        const float* src = in[0]->data() + b * d;
        float* dst = out->BatchData(b);
        for (size_t i = 0; i < n; ++i) {
          for (size_t j = 0; j < d; ++j) dst[i * d + j] = src[j];
        }
      }
      return true;
    }
    case OpKind::kPairwiseUpper: {
      const size_t batch = in[0]->dim(0), n = in[0]->dim(1), d = in[0]->dim(2);
      for (size_t b = 0; b < batch; ++b) {
        const float* src = in[0]->BatchData(b);
        float* dst = out->BatchData(b);
        size_t p = 0;
        for (size_t i = 0; i < n; ++i) {
          for (size_t j = i + 1; j < n; ++j, ++p) {
            const float* xi = src + i * d;
            const float* xj = src + j * d;
            float* row = dst + p * d;
            for (size_t c = 0; c < d; ++c) row[c] = xi[c] * xj[c];
          }
        }
      }
      return true;
    }
    case OpKind::kPairwiseCross: {
      const size_t batch = in[0]->dim(0), h = in[0]->dim(1),
                   m = in[1]->dim(1), d = in[0]->dim(2);
      for (size_t bt = 0; bt < batch; ++bt) {
        const float* sa = in[0]->BatchData(bt);
        const float* sb = in[1]->BatchData(bt);
        float* dst = out->BatchData(bt);
        for (size_t i = 0; i < h; ++i) {
          for (size_t j = 0; j < m; ++j) {
            const float* xi = sa + i * d;
            const float* xj = sb + j * d;
            float* row = dst + (i * m + j) * d;
            for (size_t c = 0; c < d; ++c) row[c] = xi[c] * xj[c];
          }
        }
      }
      return true;
    }
    case OpKind::kEmbeddingGather:
    case OpKind::kEmbeddingSumGather:
    case OpKind::kPaddingMask:
    case OpKind::kHistoryMask:
    case OpKind::kCrossPaddingMask:
    case OpKind::kZeros:
    case OpKind::kTileRows:
      return false;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Execution frames: one per (thread, program). The block tensor backs every
// planned local at its PlanArena offset; the index arrays are the synthesized
// replacements for BatchBuilder's per-request vectors. Sized once, reused for
// every request — the steady-state scoring loop allocates nothing.
// ---------------------------------------------------------------------------

struct Frame {
  tensor::Tensor block;
  std::vector<tensor::Tensor> locals;  // WrapExternal views into block
  std::vector<int32_t> sids, dids, uids;
  bool needs_static = false;
  bool needs_dynamic = false;
  bool needs_unified = false;
};

Frame* FrameFor(const Program& prog) {
  thread_local std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames;
  auto it = frames.find(prog.uid);
  if (it != frames.end()) return it->second.get();

  auto frame = std::make_unique<Frame>();
  frame->block =
      tensor::Tensor::Uninitialized({std::max<size_t>(prog.frame_floats, 1)});
  frame->locals.resize(prog.values.size());
  for (size_t i = 0; i < prog.values.size(); ++i) {
    const Value& v = prog.values[i];
    if (v.kind != ValueKind::kLocal || v.offset == kNoOffset) continue;
    frame->locals[i] = tensor::Tensor::WrapExternal(
        v.shape, frame->block.data() + v.offset, v.size());
  }
  for (const Instr& ins : prog.instrs) {
    switch (ins.binding.source) {
      case IndexSource::kStatic: frame->needs_static = true; break;
      case IndexSource::kDynamic: frame->needs_dynamic = true; break;
      case IndexSource::kUnified: frame->needs_unified = true; break;
      case IndexSource::kNone: break;
    }
  }
  if (frame->needs_static) frame->sids.resize(prog.count * prog.n_static);
  if (frame->needs_dynamic) frame->dids.resize(prog.count * prog.n_seq);
  if (frame->needs_unified) frame->uids.resize(prog.count * prog.n_unified);

  Frame* raw = frame.get();
  frames.emplace(prog.uid, std::move(frame));
  return raw;
}

/// Synthesizes the BatchBuilder index layout for a serving chunk straight
/// into the frame arrays: every row shares (user, history) and differs only
/// in the candidate column. \p cands is one object id per row (null for
/// prologues, whose gathers provably never read the candidate column).
void FillIndexArrays(const Program& prog, Frame* f, int32_t user_index,
                     const int32_t* history, const int32_t* cands,
                     int32_t cand_base, int32_t unified_dyn_base) {
  const size_t count = prog.count;
  if (f->needs_static) {
    for (size_t b = 0; b < count; ++b) {
      int32_t* row = f->sids.data() + b * prog.n_static;
      row[0] = user_index;
      row[1] = cand_base + (cands != nullptr ? cands[b] : 0);
    }
  }
  if (f->needs_dynamic) {
    for (size_t b = 0; b < count; ++b) {
      std::memcpy(f->dids.data() + b * prog.n_seq, history,
                  prog.n_seq * sizeof(int32_t));
    }
  }
  if (f->needs_unified) {
    for (size_t b = 0; b < count; ++b) {
      int32_t* row = f->uids.data() + b * prog.n_unified;
      row[0] = user_index;
      row[1] = cand_base + (cands != nullptr ? cands[b] : 0);
      for (size_t j = 0; j < prog.n_seq; ++j) {
        const int32_t id = history[j];
        row[2 + j] = id < 0 ? -1 : unified_dyn_base + id;
      }
    }
  }
}

/// Runs one program against a frame. \p slots backs kSlot reads (bodies);
/// \p cands is the per-row candidate array (null for prologues). The whole
/// run sits inside a ScratchScope so any kernel-internal scratch (the GEMM
/// trans-A pack buffer) comes from the thread arena, not the heap.
void RunProgram(const Program& prog, Frame* f,
                const std::vector<tensor::Tensor>* slots, int32_t user_index,
                const int32_t* history, const int32_t* cands,
                int32_t cand_base, int32_t unified_dyn_base) {
  core::ScratchScope scratch_scope;
  FillIndexArrays(prog, f, user_index, history, cands, cand_base,
                  unified_dyn_base);

  auto resolve = [&](uint32_t id) -> const tensor::Tensor* {
    const Value& v = prog.values[id];
    switch (v.kind) {
      case ValueKind::kLocal: return &f->locals[id];
      case ValueKind::kParam: return &v.param->value;
      case ValueKind::kConstant: return &prog.constants[v.index];
      case ValueKind::kSlot: return &(*slots)[v.index];
    }
    return nullptr;
  };
  auto index_source = [&](const IndexBinding& b,
                          size_t* width) -> const int32_t* {
    switch (b.source) {
      case IndexSource::kStatic: *width = prog.n_static; return f->sids.data();
      case IndexSource::kDynamic: *width = prog.n_seq; return f->dids.data();
      case IndexSource::kUnified:
        *width = prog.n_unified;
        return f->uids.data();
      case IndexSource::kNone: break;
    }
    *width = 0;
    return static_cast<const int32_t*>(nullptr);
  };

  std::vector<const tensor::Tensor*> in;
  for (const Instr& ins : prog.instrs) {
    tensor::Tensor& out = f->locals[ins.out];
    switch (ins.kind) {
      case OpKind::kEmbeddingGather: {
        // Mirrors autograd::EmbeddingGather, with the index matrix computed
        // on the fly from the binding instead of a per-request vector.
        const tensor::Tensor& table = *resolve(ins.in[0]);
        const size_t vocab = table.dim(0), d = table.dim(1);
        const size_t batch = out.dim(0), n = out.dim(1);
        const float* tv = table.data();
        float* out_data = out.data();
        const uint32_t* cols = ins.binding.cols.data();
        const int32_t* deltas = ins.binding.deltas.data();
        size_t w = 0;
        const int32_t* src = index_source(ins.binding, &w);
        util::ParallelFor(batch * n, util::GrainForRows(d, util::kEwGrain),
                          [=](size_t i0, size_t i1) {
          for (size_t i = i0; i < i1; ++i) {
            const size_t b = i / n, j = i % n;
            const int32_t sv = src[b * w + cols[j]];
            const int32_t idx = sv < 0 ? sv : sv + deltas[j];
            float* dst = out_data + i * d;
            if (idx < 0) {  // padding -> zero row
              for (size_t c = 0; c < d; ++c) dst[c] = 0.0f;
              continue;
            }
            SEQFM_CHECK_LT(static_cast<size_t>(idx), vocab);
            const float* srow = tv + static_cast<size_t>(idx) * d;
            for (size_t c = 0; c < d; ++c) dst[c] = srow[c];
          }
        });
        break;
      }
      case OpKind::kEmbeddingSumGather: {
        const tensor::Tensor& weights = *resolve(ins.in[0]);
        const size_t vocab = weights.dim(0);
        const size_t batch = out.dim(0);
        const size_t n = ins.binding.cols.size();
        const float* wv = weights.data();
        float* out_data = out.data();
        const uint32_t* cols = ins.binding.cols.data();
        const int32_t* deltas = ins.binding.deltas.data();
        size_t w = 0;
        const int32_t* src = index_source(ins.binding, &w);
        util::ParallelFor(batch, util::GrainForRows(n, util::kEwGrain),
                          [=](size_t b0, size_t b1) {
          for (size_t b = b0; b < b1; ++b) {
            float acc = 0.0f;
            for (size_t i = 0; i < n; ++i) {
              const int32_t sv = src[b * w + cols[i]];
              const int32_t idx = sv < 0 ? sv : sv + deltas[i];
              if (idx < 0) continue;
              SEQFM_CHECK_LT(static_cast<size_t>(idx), vocab);
              acc += wv[idx];
            }
            out_data[b] = acc;
          }
        });
        break;
      }
      case OpKind::kPaddingMask: {
        const size_t n = prog.n_seq;
        MaterializeMask(ins.kind, ins.causal, 0, history,
                        out.size() / (n * n), n, out.size(), out.data());
        break;
      }
      case OpKind::kHistoryMask: {
        const size_t n = prog.n_seq;
        MaterializeMask(ins.kind, false, 0, history, out.size() / n, n,
                        out.size(), out.data());
        break;
      }
      case OpKind::kCrossPaddingMask: {
        const size_t n = prog.n_seq;
        const size_t ns = ins.row;
        const size_t block = (ns + n) * (ns + n);
        MaterializeMask(ins.kind, false, ns, history, out.size() / block, n,
                        out.size(), out.data());
        break;
      }
      case OpKind::kZeros:
        MaterializeMask(OpKind::kZeros, false, 0, history, 1, prog.n_seq,
                        out.size(), out.data());
        break;
      case OpKind::kTileRows: {
        const tensor::Tensor& src = *resolve(ins.in[0]);
        const size_t s = src.size();
        const size_t rep = out.size() / s;
        for (size_t r = 0; r < rep; ++r) {
          std::memcpy(out.data() + r * s, src.data(), s * sizeof(float));
        }
        break;
      }
      default: {
        in.clear();
        for (uint32_t u : ins.in) in.push_back(resolve(u));
        SEQFM_CHECK(EvalPure(ins, in, &out))
            << "unexecutable op " << OpKindName(ins.kind);
        break;
      }
    }
  }
}

bool BindingReadsCandidate(const IndexBinding& b) {
  if (b.source != IndexSource::kStatic && b.source != IndexSource::kUnified) {
    return false;
  }
  for (uint32_t c : b.cols) {
    if (c == 1) return true;
  }
  return false;
}

bool BitEqual(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Structural verification gate between passes: a rejected program aborts
/// the compile (the Predictor falls back to eager scoring) with a diagnostic
/// naming the pass that broke it.
bool VerifyStage(const Program& p, const char* stage, const char* half,
                 const VerifyOptions& options, std::string* error) {
  const Status st = Verify(p, options);
  if (st.ok()) return true;
  *error = std::string("verify after ") + stage + " (" + half +
           "): " + st.message();
  SEQFM_LOG(Warning) << "ir: " << *error;
  return false;
}

std::string CheckArrays(const Frame& f, const data::Batch& batch) {
  if (f.needs_static && f.sids != batch.static_ids) {
    return "synthesized static ids diverge from BatchBuilder layout";
  }
  if (f.needs_dynamic && f.dids != batch.dynamic_ids) {
    return "synthesized dynamic ids diverge from BatchBuilder layout";
  }
  if (f.needs_unified && f.uids != batch.unified_ids) {
    return "synthesized unified ids diverge from BatchBuilder layout";
  }
  return std::string();
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

std::unique_ptr<Engine> Engine::Compile(core::Model* model,
                                        const data::BatchBuilder* builder,
                                        size_t num_objects,
                                        std::string* error) {
  SEQFM_CHECK(model != nullptr && builder != nullptr && error != nullptr);
  if (num_objects < 2) {
    *error = "compile: need >= 2 catalog objects to disambiguate the "
             "candidate column";
    return nullptr;
  }
  std::unique_ptr<Engine> e(new Engine());
  e->model_ = model;
  e->builder_ = builder;
  e->num_objects_ = num_objects;
  // The probe history gather bindings are fitted against: full length (a
  // padded -1 column would fit ANY padding source column), nonzero ids (the
  // probe user is 0, and a history value equal to the user value makes the
  // user column ambiguous), and mutually distinct whenever the catalog has
  // enough objects, so every position is identifiable by value.
  {
    const size_t n = builder->max_seq_len();
    const size_t span = num_objects - 1;  // ids drawn from [1, num_objects)
    e->probe_history_.resize(n);
    for (size_t j = 0; j < n; ++j) {
      e->probe_history_[j] = static_cast<int32_t>(1 + (j % span));
    }
  }
  const data::FeatureSpace& space = builder->space();
  e->cand_base_ = space.CandidateIndex(0);
  e->unified_dyn_base_ = static_cast<int32_t>(space.static_dim());
  e->n_seq_ = builder->max_seq_len();
  e->uid_ = NextProgramUid();
  if (!e->CompileCount(2, /*adopt_prologue=*/true, error)) return nullptr;
  return e;
}

bool Engine::CompileCount(size_t count, bool adopt_prologue,
                          std::string* error) const {
  SEQFM_CHECK_GE(count, 2u);
  data::SequenceExample probe;
  probe.user = 0;
  probe.target = 0;
  probe.history = probe_history_;
  std::vector<const data::SequenceExample*> ex1(1, &probe);
  std::vector<const data::SequenceExample*> exC(count, &probe);
  std::vector<int32_t> ovr1 = {0};
  std::vector<int32_t> ovrC(count);
  for (size_t i = 0; i < count; ++i) {
    ovrC[i] = static_cast<int32_t>(i % num_objects_);
  }
  const data::Batch batch1 = builder_->Build(ex1, &ovr1);
  const data::Batch batchC = builder_->Build(exC, &ovrC);

  // Both counts are traced fresh on every compile (never against stored
  // tensors): parameters live in the model's nodes, so traces made before a
  // checkpoint reload would verify against stale values.
  TraceResult t1 = Trace(model_, batch1);
  if (!t1.ok()) {
    *error = t1.error;
    return false;
  }
  TraceResult tC = Trace(model_, batchC);
  if (!tC.ok()) {
    *error = tC.error;
    return false;
  }
  if (t1.program.n_static != 2 ||
      t1.program.n_unified != 2 + t1.program.n_seq) {
    *error = "compile: unexpected batch index geometry";
    return false;
  }
  const VerifyOptions trace_opts;  // no slots, no arena plan yet
  if (!VerifyStage(t1.program, "trace", "count 1", trace_opts, error) ||
      !VerifyStage(tC.program, "trace", "count C", trace_opts, error)) {
    return false;
  }

  FactorResult f = Factor(t1, tC, batch1, batchC);
  if (!f.ok()) {
    *error = f.error;
    return false;
  }
  const VerifyOptions prologue_opts;
  VerifyOptions body_opts;
  body_opts.allow_slots = true;
  body_opts.num_slots = f.prologue.slot_outputs.size();
  if (!VerifyStage(f.prologue, "factor", "prologue", prologue_opts, error) ||
      !VerifyStage(f.body, "factor", "body", body_opts, error)) {
    return false;
  }
  // Belt and braces: an invariant (prologue) gather must never read the
  // candidate column — the prologue runs once per request with no candidate.
  for (const Instr& ins : f.prologue.instrs) {
    if (BindingReadsCandidate(ins.binding)) {
      *error = "compile: prologue gather reads the candidate column";
      return false;
    }
  }

  EngineStats delta;
  for (Program* p : {&f.prologue, &f.body}) {
    const bool is_body = p == &f.body;
    const char* half = is_body ? "body" : "prologue";
    VerifyOptions opts = is_body ? body_opts : prologue_opts;
    delta.folded += FoldConstants(p);
    if (!VerifyStage(*p, "fold_constants", half, opts, error)) return false;
    delta.dce_removed += DeadCodeElim(p);
    if (!VerifyStage(*p, "dead_code_elim", half, opts, error)) return false;
    delta.fused += FuseElementwise(p);
    if (!VerifyStage(*p, "fuse_elementwise", half, opts, error)) return false;
    PlanArena(p);
    opts.check_arena = true;
    if (!VerifyStage(*p, "plan_arena", half, opts, error)) return false;
  }

  if (!adopt_prologue) {
    // A later per-count compile must reproduce the factoring the engine was
    // built with: same slots, same prologue skeleton. Anything else means
    // cached contexts would feed the wrong tensors into this body.
    if (f.prologue.slot_outputs != prologue_.slot_outputs ||
        f.prologue.instrs.size() != prologue_.instrs.size()) {
      *error = "compile: factoring diverged across candidate counts";
      return false;
    }
    for (size_t i = 0; i < f.prologue.instrs.size(); ++i) {
      if (f.prologue.instrs[i].kind != prologue_.instrs[i].kind ||
          f.prologue.instrs[i].out != prologue_.instrs[i].out) {
        *error = "compile: factoring diverged across candidate counts";
        return false;
      }
    }
  }

  // Self-check, prologue half: replay it for the probe request and demand
  // bit-identical slot tensors and BatchBuilder-identical index arrays.
  const int32_t probe_user = batch1.static_ids[0];
  const int32_t* probe_hist = batch1.dynamic_ids.data();
  Frame* pf = FrameFor(f.prologue);
  RunProgram(f.prologue, pf, nullptr, probe_user, probe_hist, nullptr,
             cand_base_, unified_dyn_base_);
  std::string arrays = CheckArrays(*pf, batch1);
  if (!arrays.empty()) {
    *error = "compile (prologue): " + arrays;
    return false;
  }
  std::vector<tensor::Tensor> slots;
  slots.reserve(f.prologue.slot_outputs.size());
  for (uint32_t id : f.prologue.slot_outputs) {
    if (!BitEqual(pf->locals[id], t1.value_nodes[id]->value)) {
      *error = "compile: prologue slot diverges from traced forward";
      return false;
    }
    slots.push_back(pf->locals[id]);  // deep copy
  }

  // Self-check, body half: replay it over the probe candidates against the
  // freshly computed slots and demand the traced scores, bit-for-bit.
  Frame* bf = FrameFor(f.body);
  RunProgram(f.body, bf, &slots, probe_user, probe_hist, ovrC.data(),
             cand_base_, unified_dyn_base_);
  arrays = CheckArrays(*bf, batchC);
  if (!arrays.empty()) {
    *error = "compile (body): " + arrays;
    return false;
  }
  if (!BitEqual(bf->locals[f.body.output],
                tC.value_nodes[f.body.output]->value)) {
    *error = "compile: body output diverges from traced forward";
    return false;
  }

  // Cross-probe verification: the gather bindings, captured constants, and
  // the invariant/variant split were all inferred from probe A. Replay the
  // compiled halves end-to-end for a SECOND request — different user,
  // different history, different candidates — and demand the traced scores
  // bit-for-bit. Any inference that held only coincidentally at probe A dies
  // here, so the Predictor falls back to the eager path instead of silently
  // serving wrong bits.
  {
    data::SequenceExample probe_b;
    probe_b.user = builder_->space().num_users() > 1 ? 1 : 0;
    probe_b.target = 0;
    const size_t span = num_objects_ - 1;
    probe_b.history.resize(n_seq_);
    for (size_t j = 0; j < n_seq_; ++j) {
      probe_b.history[j] = static_cast<int32_t>(1 + ((5 * j + 3) % span));
    }
    std::vector<const data::SequenceExample*> exB(count, &probe_b);
    std::vector<int32_t> ovrB(count);
    for (size_t i = 0; i < count; ++i) {
      ovrB[i] = static_cast<int32_t>((i + 1) % num_objects_);
    }
    const data::Batch batchB = builder_->Build(exB, &ovrB);
    TraceResult tB = Trace(model_, batchB);
    if (!tB.ok()) {
      *error = "compile (cross-probe): " + tB.error;
      return false;
    }
    if (tB.program.instrs.size() != tC.program.instrs.size() ||
        tB.program.values.size() != tC.program.values.size()) {
      *error = "compile: program structure varies across requests";
      return false;
    }
    for (size_t i = 0; i < tB.program.instrs.size(); ++i) {
      if (tB.program.instrs[i].kind != tC.program.instrs[i].kind ||
          tB.program.instrs[i].out != tC.program.instrs[i].out) {
        *error = "compile: program structure varies across requests";
        return false;
      }
    }
    const int32_t user_b = batchB.static_ids[0];
    const int32_t* hist_b = batchB.dynamic_ids.data();
    RunProgram(f.prologue, pf, nullptr, user_b, hist_b, nullptr, cand_base_,
               unified_dyn_base_);
    std::vector<tensor::Tensor> slots_b;
    slots_b.reserve(f.prologue.slot_outputs.size());
    for (uint32_t id : f.prologue.slot_outputs) {
      slots_b.push_back(pf->locals[id]);
    }
    RunProgram(f.body, bf, &slots_b, user_b, hist_b, ovrB.data(), cand_base_,
               unified_dyn_base_);
    arrays = CheckArrays(*bf, batchB);
    if (!arrays.empty()) {
      *error = "compile (cross-probe body): " + arrays;
      return false;
    }
    if (!BitEqual(bf->locals[f.body.output],
                  tB.value_nodes[f.body.output]->value)) {
      *error = "compile: compiled program does not generalize across "
               "requests (cross-probe output mismatch)";
      return false;
    }
  }

  // Publication is the only part of a compile that needs the engine lock.
  // Everything above (tracing, passes, self-checks) runs lock-free: tracing
  // takes the thread pool's region lock via ParallelFor, and ScoreRange is
  // itself called from inside pool regions, so holding mu_ across the heavy
  // work would invert the pool/engine lock order (see ordered_mutex.h).
  {
    util::OrderedMutexLock lock(mu_);
    if (adopt_prologue) {
      stats_.prologue_instrs = f.prologue.instrs.size();
      stats_.body_instrs = f.body.instrs.size();
      stats_.slots = f.prologue.slot_outputs.size();
      stats_.prologue_frame_floats = f.prologue.frame_floats;
      stats_.body_frame_floats = f.body.frame_floats;
      prologue_ = std::move(f.prologue);
    }
    if (bodies_.find(count) == bodies_.end()) {
      stats_.folded += delta.folded;
      stats_.dce_removed += delta.dce_removed;
      stats_.fused += delta.fused;
      stats_.compiled_counts += 1;
      bodies_[count] = std::make_unique<Program>(std::move(f.body));
    }
    // else: a concurrent ScoreRange compiled this count first. Both compiles
    // trace the same deterministic model, so the programs are equivalent;
    // keeping the first insertion keeps frame uids stable.
  }
  return true;
}

void Engine::MakeContext(int32_t user_index,
                         const std::vector<int32_t>& dynamic_ids,
                         core::SharedContext* ctx) const {
  SEQFM_CHECK_EQ(dynamic_ids.size(), n_seq_);
  Frame* pf = FrameFor(prologue_);
  RunProgram(prologue_, pf, nullptr, user_index, dynamic_ids.data(), nullptr,
             cand_base_, unified_dyn_base_);
  ctx->slots.clear();
  ctx->slots.reserve(prologue_.slot_outputs.size());
  for (uint32_t id : prologue_.slot_outputs) {
    ctx->slots.push_back(pf->locals[id]);  // deep copy: outlives the frame
  }
  ctx->engine_uid = uid_;
  ctx->n = n_seq_;
  ctx->user_index = user_index;
  ctx->dynamic_ids = dynamic_ids;
}

bool Engine::ScoreRange(const core::SharedContext& ctx,
                        const std::vector<int32_t>& candidates, size_t begin,
                        size_t end, float* out, std::string* error) const {
  const size_t count = end - begin;
  if (count == 0) return true;
  if (ctx.engine_uid != uid_) {
    *error = "score: context was built by a different engine";
    return false;
  }
  // Bodies are specialized to >= 2 candidates (compile needs two distinct
  // probes); a single-candidate chunk rides the count-2 body with the
  // candidate doubled. Rows are independent in every op, so row 0's bits
  // match the single-row program exactly.
  const size_t body_count = std::max<size_t>(count, 2);
  int32_t padded[2];
  const int32_t* cands = candidates.data() + begin;
  if (count == 1) {
    padded[0] = padded[1] = candidates[begin];
    cands = padded;
  }

  // Look up the body under the lock, but never compile under it: a wave
  // chunk task calling in here already holds the pool's region lock, and a
  // fresh compile takes that same lock through tracing's ParallelFor — the
  // old hold-mu_-across-compile shape deadlocked against exactly that.
  // Losing a duplicate-compile race costs one discarded program, not bits.
  const Program* body = nullptr;
  {
    util::OrderedMutexLock lock(mu_);
    auto it = bodies_.find(body_count);
    if (it != bodies_.end()) body = it->second.get();
  }
  if (body == nullptr) {
    if (!CompileCount(body_count, /*adopt_prologue=*/false, error)) {
      return false;
    }
    util::OrderedMutexLock lock(mu_);
    auto it = bodies_.find(body_count);
    SEQFM_CHECK(it != bodies_.end());
    body = it->second.get();  // unique_ptr target: stable after unlock
  }

  Frame* bf = FrameFor(*body);
  RunProgram(*body, bf, &ctx.slots, ctx.user_index, ctx.dynamic_ids.data(),
             cands, cand_base_, unified_dyn_base_);
  std::memcpy(out, bf->locals[body->output].data(), count * sizeof(float));
  return true;
}

EngineStats Engine::stats() const {
  util::OrderedMutexLock lock(mu_);
  return stats_;
}

Status Engine::ReverifySlotAbi() const {
  util::OrderedMutexLock lock(mu_);
  const size_t slots = prologue_.slot_outputs.size();
  for (const auto& [count, body] : bodies_) {
    for (size_t v = 0; v < body->values.size(); ++v) {
      const Value& val = body->values[v];
      if (val.kind != ValueKind::kSlot) continue;
      if (val.index >= slots) {
        return Status::Internal(
            "slot ABI: body for count " + std::to_string(count) + " value " +
            std::to_string(v) + " reads slot " + std::to_string(val.index) +
            " but the prologue produces only " + std::to_string(slots) +
            " slots");
      }
      const Value& produced =
          prologue_.values[prologue_.slot_outputs[val.index]];
      if (val.shape != produced.shape) {
        auto shape_str = [](const std::vector<size_t>& s) {
          std::string r = "[";
          for (size_t i = 0; i < s.size(); ++i) {
            if (i) r += ", ";
            r += std::to_string(s[i]);
          }
          return r + "]";
        };
        return Status::Internal(
            "slot ABI: body for count " + std::to_string(count) + " value " +
            std::to_string(v) + " expects slot " + std::to_string(val.index) +
            " with shape " + shape_str(val.shape) +
            " but the prologue produces " + shape_str(produced.shape));
      }
    }
  }
  return Status::OK();
}

void Engine::CorruptSlotWiringForTest(bool corrupt_shape) {
  util::OrderedMutexLock lock(mu_);
  for (auto& [count, body] : bodies_) {
    (void)count;
    for (Value& val : body->values) {
      if (val.kind != ValueKind::kSlot) continue;
      if (corrupt_shape) {
        val.shape.push_back(3);
      } else {
        val.index =
            static_cast<uint32_t>(prologue_.slot_outputs.size()) + 7;
      }
      return;
    }
  }
  SEQFM_CHECK(false) << "CorruptSlotWiringForTest: no compiled body reads "
                        "a slot";
}

}  // namespace ir
}  // namespace seqfm
