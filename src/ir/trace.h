#ifndef SEQFM_IR_TRACE_H_
#define SEQFM_IR_TRACE_H_

#include <string>
#include <vector>

#include "core/model_interface.h"
#include "data/dataset.h"
#include "ir/program.h"

namespace seqfm {
namespace ir {

/// Result of tracing one tape-free forward.
struct TraceResult {
  Program program;
  /// Parallel to program.values: the graph node each value was recorded
  /// from. Every node pins the tensor observed at trace time, which is what
  /// the factoring pass compares across traces (alignment + empirical
  /// invariance) and the compiled self-check replays against.
  std::vector<autograd::NodePtr> value_nodes;
  /// Non-empty iff the model is not compilable as traced (unknown op,
  /// unannotated constant, unbindable gather indices, ...). The program is
  /// unusable in that case; callers fall back to the eager path.
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Runs model->Score(batch, /*training=*/false) once under NoGradGuard with
/// the recording sink armed and flattens the executed ops into a Program.
/// The batch must be a serving-style batch: every sample shares one (user,
/// history) pair and differs only in the candidate, which is what makes the
/// synthesized padding masks and the gather index bindings valid at serving
/// time. Tracing never mutates the model beyond what a plain eval forward
/// does, and results are discarded on error.
TraceResult Trace(core::Model* model, const data::Batch& batch);

/// True when \p binding reproduces the observed index matrix \p idx
/// ([batch, n] row-major) from \p src_batch's request arrays: non-negative
/// entries must equal src + delta exactly, negative (padding) entries only
/// agree in sign, matching how every gather consumes them. The factoring
/// pass uses this to cross-check a binding fitted on one trace against the
/// indices another trace observed.
bool VerifyIndexBinding(const IndexBinding& binding, const int32_t* idx,
                        size_t batch, size_t n, const data::Batch& src_batch);

}  // namespace ir
}  // namespace seqfm

#endif  // SEQFM_IR_TRACE_H_
