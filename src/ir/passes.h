#ifndef SEQFM_IR_PASSES_H_
#define SEQFM_IR_PASSES_H_

#include <cstddef>
#include <string>

#include "data/dataset.h"
#include "ir/trace.h"

namespace seqfm {
namespace ir {

/// \brief Optimization passes over traced programs.
///
/// The pass pipeline turns two aligned traces of one model (candidate counts
/// 1 and C) into a factored pair of programs:
///   prologue  — the candidate-invariant sub-program at count 1, executed
///               once per (user, history) and cached in the ContextCache;
///   body      — the per-candidate sub-program at count C, reading the
///               prologue's outputs through kSlot values (tiled to count C
///               where shapes demand it).
/// Each sub-program then goes through FoldConstants → DeadCodeElim →
/// FuseElementwise → PlanArena before execution.

struct FactorResult {
  Program prologue;
  Program body;
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Factors aligned traces of the same model. \p trace1 ran at candidate
/// count 1 and \p traceC at count >= 2 (two distinct candidates are what
/// disambiguate the candidate column in gather bindings); \p batch1 /
/// \p batchC are the batches they were traced against.
///
/// A value is candidate-invariant when it is so both structurally (its
/// instruction consumes no candidate column, transitively) and empirically
/// (its count-C tensor is exactly the count-1 tensor block-tiled C times,
/// bit-for-bit). Structural claims an empirical check refutes are demoted
/// and the taint re-propagated to a fixpoint, so a surprising numeric
/// dependence can never be hoisted. Fails (with .error set) when the traces
/// do not align instruction-for-instruction, when a gather binding cannot be
/// reconciled across counts, or when the final score itself is
/// candidate-invariant.
FactorResult Factor(const TraceResult& trace1, const TraceResult& traceC,
                    const data::Batch& batch1, const data::Batch& batchC);

/// Evaluates instructions whose inputs are all captured constants and
/// re-kinds their outputs as constants. Synthesized masks, gathers, and
/// no-input instructions are never folded (their values depend on the
/// request). Returns the number of instructions folded away.
size_t FoldConstants(Program* program);

/// Removes instructions whose outputs are unreachable from Program::output
/// and Program::slot_outputs. Returns the number removed.
size_t DeadCodeElim(Program* program);

/// Aliases the output of single-consumer elementwise chain links (relu,
/// sigmoid, tanh, scale, add_scalar, reshape) onto their input buffer so the
/// executor runs them in place (reshape becomes free). Returns the number of
/// values aliased.
size_t FuseElementwise(Program* program);

/// Assigns every live kLocal value a fixed offset in the execution frame via
/// lifetime analysis (first-fit over a merged free list, 64-byte-aligned
/// offsets) and sets Program::frame_floats to the planned high water.
/// Aliased values share their root's buffer and extend its lifetime. Must
/// run after the other passes.
void PlanArena(Program* program);

}  // namespace ir
}  // namespace seqfm

#endif  // SEQFM_IR_PASSES_H_
