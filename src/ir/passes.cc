#include "ir/passes.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "ir/exec.h"
#include "util/logging.h"

namespace seqfm {
namespace ir {
namespace {

bool IsGather(OpKind k) {
  return k == OpKind::kEmbeddingGather || k == OpKind::kEmbeddingSumGather;
}

bool IsSynthesized(OpKind k) {
  return k == OpKind::kPaddingMask || k == OpKind::kHistoryMask ||
         k == OpKind::kCrossPaddingMask || k == OpKind::kZeros;
}

/// Candidate ids live in column 1 of the static and unified arrays
/// ([UserIndex, CandidateIndex, ...]); the dynamic array is pure history.
bool BindingUsesCandidate(const IndexBinding& b) {
  if (b.source != IndexSource::kStatic && b.source != IndexSource::kUnified) {
    return false;
  }
  for (uint32_t c : b.cols) {
    if (c == 1) return true;
  }
  return false;
}

/// True iff \p big is exactly \p small repeated back-to-back, bit-for-bit
/// (the shape a candidate-invariant tensor must take across counts).
bool TilesTo(const tensor::Tensor& small, const tensor::Tensor& big) {
  const size_t s = small.size();
  const size_t b = big.size();
  if (s == 0 || b % s != 0) return false;
  const float* sv = small.data();
  const float* bv = big.data();
  const size_t rep = b / s;
  for (size_t r = 0; r < rep; ++r) {
    if (std::memcmp(bv + r * s, sv, s * sizeof(float)) != 0) return false;
  }
  return true;
}

/// Instruction-level alignment between the two traces: same op, same value
/// ids (the traces share a construction order, hence an id space), same
/// scalar attributes. traced_indices and bindings are reconciled separately.
bool InstrsAlign(const Instr& a, const Instr& b) {
  return a.kind == b.kind && a.in == b.in && a.out == b.out &&
         a.alpha == b.alpha && a.eps == b.eps && a.row == b.row &&
         a.trans_a == b.trans_a && a.trans_b == b.trans_b &&
         a.causal == b.causal;
}

bool ValuesAlign(const Value& a, const Value& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ValueKind::kParam:
      return a.param == b.param;
    case ValueKind::kConstant:
      return a.index == b.index;
    default:
      return true;  // locals may differ in shape across counts
  }
}

}  // namespace

FactorResult Factor(const TraceResult& trace1, const TraceResult& traceC,
                    const data::Batch& batch1, const data::Batch& batchC) {
  FactorResult res;
  const Program& p1 = trace1.program;
  const Program& pC = traceC.program;
  if (pC.count < 2) {
    res.error = "factor: need >= 2 candidates to disambiguate bindings";
    return res;
  }
  if (p1.instrs.size() != pC.instrs.size() ||
      p1.values.size() != pC.values.size()) {
    res.error = "factor: traces diverge in length (count-dependent control "
                "flow)";
    return res;
  }
  for (size_t i = 0; i < p1.values.size(); ++i) {
    if (!ValuesAlign(p1.values[i], pC.values[i])) {
      res.error = "factor: value " + std::to_string(i) + " diverges";
      return res;
    }
  }

  // Align instructions and reconcile gather bindings. A count-1 fit can be
  // ambiguous (one row cannot separate the user and candidate columns), so
  // the count-C binding wins whenever both explain the count-1 indices.
  std::vector<IndexBinding> bindings(p1.instrs.size());
  for (size_t i = 0; i < p1.instrs.size(); ++i) {
    const Instr& a = p1.instrs[i];
    const Instr& b = pC.instrs[i];
    if (!InstrsAlign(a, b)) {
      res.error = "factor: instr " + std::to_string(i) + " (" +
                  OpKindName(a.kind) + " vs " + OpKindName(b.kind) +
                  ") diverges";
      return res;
    }
    if (!IsGather(a.kind)) continue;
    if (a.binding != b.binding) {
      const size_t n = b.binding.cols.size();
      if (a.traced_indices.size() != batch1.batch_size * n ||
          !VerifyIndexBinding(b.binding, a.traced_indices.data(),
                              batch1.batch_size, n, batch1)) {
        res.error = "factor: gather binding at instr " + std::to_string(i) +
                    " is not count-stable";
        return res;
      }
    }
    bindings[i] = b.binding;
  }

  // Structural taint: a value is candidate-variant when its instruction
  // reads the candidate column (gathers) or any variant input (transitive).
  // Synthesized masks depend only on the shared history. demoted[] carries
  // empirical refutations into each re-propagation.
  const size_t nvals = p1.values.size();
  std::vector<char> variant(nvals, 0);
  std::vector<char> demoted(nvals, 0);
  auto propagate = [&]() {
    std::fill(variant.begin(), variant.end(), 0);
    for (size_t i = 0; i < pC.instrs.size(); ++i) {
      const Instr& ins = pC.instrs[i];
      bool v = demoted[ins.out] != 0;
      if (IsGather(ins.kind)) {
        v = v || BindingUsesCandidate(bindings[i]);
      } else if (!IsSynthesized(ins.kind)) {
        for (uint32_t u : ins.in) v = v || variant[u] != 0;
      }
      variant[ins.out] = v ? 1 : 0;
    }
  };
  propagate();

  // Empirical fixpoint: every structurally invariant value must have its
  // count-C tensor equal to its count-1 tensor block-tiled, bit-for-bit.
  // A refuted claim is demoted and the taint re-propagated, so numeric
  // candidate dependence the structure missed can never be hoisted.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Instr& ins : pC.instrs) {
      const uint32_t v = ins.out;
      if (variant[v]) continue;
      const autograd::NodePtr& n1 = trace1.value_nodes[v];
      const autograd::NodePtr& nC = traceC.value_nodes[v];
      SEQFM_CHECK(n1 != nullptr && nC != nullptr);
      if (!TilesTo(n1->value, nC->value)) {
        demoted[v] = 1;
        changed = true;
      }
    }
    if (changed) propagate();
  }

  if (pC.output == kNoValue || variant[pC.output] == 0) {
    res.error = "factor: score is candidate-invariant";
    return res;
  }

  // Slots: invariant locals consumed by at least one variant instruction.
  std::vector<char> is_slot(nvals, 0);
  for (const Instr& ins : pC.instrs) {
    if (!variant[ins.out]) continue;
    for (uint32_t u : ins.in) {
      if (!variant[u] && pC.values[u].kind == ValueKind::kLocal) {
        is_slot[u] = 1;
      }
    }
  }
  std::vector<uint32_t> slots;
  for (uint32_t v = 0; v < nvals; ++v) {
    if (is_slot[v]) slots.push_back(v);
  }

  // Prologue: the invariant sub-program at count 1, writing the slots.
  res.prologue = p1;
  res.prologue.instrs.clear();
  for (size_t i = 0; i < p1.instrs.size(); ++i) {
    if (variant[p1.instrs[i].out]) continue;
    Instr ins = p1.instrs[i];
    if (IsGather(ins.kind)) ins.binding = bindings[i];
    res.prologue.instrs.push_back(std::move(ins));
  }
  res.prologue.output = kNoValue;
  res.prologue.slot_outputs = slots;
  res.prologue.uid = NextProgramUid();

  // Body: the variant sub-program at count C, reading the slots. Slots whose
  // count-C consumers saw the block-tiled shape get an explicit kTileRows
  // from the count-1 slot tensor.
  res.body = pC;
  res.body.instrs.clear();
  res.body.slot_outputs.clear();
  std::vector<uint32_t> remap(nvals);
  for (uint32_t v = 0; v < nvals; ++v) remap[v] = v;
  for (size_t pos = 0; pos < slots.size(); ++pos) {
    const uint32_t s = slots[pos];
    Value& sv = res.body.values[s];
    const size_t size1 = p1.values[s].size();
    const size_t sizeC = pC.values[s].size();
    sv.kind = ValueKind::kSlot;
    sv.index = static_cast<uint32_t>(pos);
    sv.shape = p1.values[s].shape;
    if (sizeC != size1) {
      Value tiled;
      tiled.kind = ValueKind::kLocal;
      tiled.shape = pC.values[s].shape;
      const uint32_t tid = static_cast<uint32_t>(res.body.values.size());
      res.body.values.push_back(std::move(tiled));
      remap[s] = tid;
      Instr tile;
      tile.kind = OpKind::kTileRows;
      tile.in = {s};
      tile.out = tid;
      res.body.instrs.push_back(std::move(tile));
    }
  }
  for (size_t i = 0; i < pC.instrs.size(); ++i) {
    if (!variant[pC.instrs[i].out]) continue;
    Instr ins = pC.instrs[i];
    if (IsGather(ins.kind)) ins.binding = bindings[i];
    for (uint32_t& u : ins.in) u = remap[u];
    res.body.instrs.push_back(std::move(ins));
  }
  res.body.uid = NextProgramUid();
  return res;
}

size_t FoldConstants(Program* program) {
  // Never fold a program output or a slot output: the executor resolves both
  // through the frame's locals, so re-kinding one to kConstant would hand its
  // consumers an empty tensor. (A constant-valued slot is possible — a
  // constant subgraph feeding a candidate-variant op is selected as a slot.)
  std::vector<char> pinned(program->values.size(), 0);
  if (program->output != kNoValue) pinned[program->output] = 1;
  for (uint32_t s : program->slot_outputs) pinned[s] = 1;

  size_t folded = 0;
  std::vector<Instr> kept;
  kept.reserve(program->instrs.size());
  for (Instr& ins : program->instrs) {
    bool foldable = !pinned[ins.out] && !ins.in.empty() && !IsGather(ins.kind) &&
                    !IsSynthesized(ins.kind) && ins.kind != OpKind::kTileRows;
    for (uint32_t u : ins.in) {
      foldable = foldable &&
                 program->values[u].kind == ValueKind::kConstant;
    }
    if (!foldable) {
      kept.push_back(std::move(ins));
      continue;
    }
    std::vector<const tensor::Tensor*> in;
    in.reserve(ins.in.size());
    for (uint32_t u : ins.in) {
      in.push_back(&program->constants[program->values[u].index]);
    }
    Value& out = program->values[ins.out];
    tensor::Tensor value = tensor::Tensor::Uninitialized(out.shape);
    SEQFM_CHECK(EvalPure(ins, in, &value))
        << "unfoldable pure op " << OpKindName(ins.kind);
    out.kind = ValueKind::kConstant;
    out.index = static_cast<uint32_t>(program->constants.size());
    program->constants.push_back(std::move(value));
    ++folded;
  }
  program->instrs = std::move(kept);
  return folded;
}

size_t DeadCodeElim(Program* program) {
  std::vector<char> live(program->values.size(), 0);
  if (program->output != kNoValue) live[program->output] = 1;
  for (uint32_t s : program->slot_outputs) live[s] = 1;
  std::vector<char> keep(program->instrs.size(), 0);
  size_t removed = 0;
  for (size_t i = program->instrs.size(); i-- > 0;) {
    const Instr& ins = program->instrs[i];
    if (!live[ins.out]) {
      ++removed;
      continue;
    }
    keep[i] = 1;
    for (uint32_t u : ins.in) live[u] = 1;
  }
  if (removed > 0) {
    std::vector<Instr> kept;
    kept.reserve(program->instrs.size() - removed);
    for (size_t i = 0; i < program->instrs.size(); ++i) {
      if (keep[i]) kept.push_back(std::move(program->instrs[i]));
    }
    program->instrs = std::move(kept);
  }
  return removed;
}

size_t FuseElementwise(Program* program) {
  std::vector<uint32_t> consumers(program->values.size(), 0);
  for (const Instr& ins : program->instrs) {
    for (uint32_t u : ins.in) ++consumers[u];
  }
  std::vector<char> pinned(program->values.size(), 0);
  if (program->output != kNoValue) pinned[program->output] = 1;
  for (uint32_t s : program->slot_outputs) pinned[s] = 1;

  size_t fused = 0;
  for (const Instr& ins : program->instrs) {
    switch (ins.kind) {
      case OpKind::kRelu:
      case OpKind::kSigmoid:
      case OpKind::kTanh:
      case OpKind::kScale:
      case OpKind::kAddScalar:
      case OpKind::kReshape:
        break;
      default:
        continue;
    }
    const uint32_t src = ins.in[0];
    if (program->values[src].kind != ValueKind::kLocal) continue;
    if (consumers[src] != 1 || pinned[src]) continue;
    program->values[ins.out].alias_of = src;
    ++fused;
  }
  return fused;
}

void PlanArena(Program* program) {
  const size_t nvals = program->values.size();
  const size_t ninstr = program->instrs.size();
  constexpr size_t kAlignFloats = 16;  // 64-byte lanes
  auto align_up = [](size_t n) {
    return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  };
  auto root_of = [&](uint32_t v) {
    while (program->values[v].alias_of != kNoValue) {
      v = program->values[v].alias_of;
    }
    return v;
  };

  // Lifetimes per alias root: from the root's defining instruction to the
  // last instruction that reads or redefines (in place) any alias of it;
  // externally visible values live past the end of the program.
  constexpr size_t kNoDef = static_cast<size_t>(-1);
  std::vector<size_t> def(nvals, kNoDef);
  std::vector<size_t> end(nvals, 0);
  for (size_t i = 0; i < ninstr; ++i) {
    const Instr& ins = program->instrs[i];
    const uint32_t r = root_of(ins.out);
    if (def[r] == kNoDef) def[r] = i;
    end[r] = std::max(end[r], i);
    for (uint32_t u : ins.in) {
      if (program->values[u].kind != ValueKind::kLocal) continue;
      end[root_of(u)] = std::max(end[root_of(u)], i);
    }
  }
  if (program->output != kNoValue &&
      program->values[program->output].kind == ValueKind::kLocal) {
    end[root_of(program->output)] = ninstr;
  }
  for (uint32_t s : program->slot_outputs) {
    if (program->values[s].kind == ValueKind::kLocal) {
      end[root_of(s)] = ninstr;
    }
  }

  // First-fit over a merged free list, sweeping roots in definition order.
  struct Block {
    size_t offset;
    size_t size;
  };
  std::vector<Block> free_list;
  size_t high_water = 0;
  auto release = [&](size_t offset, size_t size) {
    Block blk{offset, size};
    auto it = std::lower_bound(
        free_list.begin(), free_list.end(), blk,
        [](const Block& a, const Block& b) { return a.offset < b.offset; });
    it = free_list.insert(it, blk);
    if (it + 1 != free_list.end() && it->offset + it->size == (it + 1)->offset) {
      it->size += (it + 1)->size;
      free_list.erase(it + 1);
    }
    if (it != free_list.begin() &&
        (it - 1)->offset + (it - 1)->size == it->offset) {
      (it - 1)->size += it->size;
      free_list.erase(it);
    }
  };
  auto acquire = [&](size_t size) {
    for (auto it = free_list.begin(); it != free_list.end(); ++it) {
      if (it->size < size) continue;
      const size_t offset = it->offset;
      it->offset += size;
      it->size -= size;
      if (it->size == 0) free_list.erase(it);
      return offset;
    }
    const size_t offset = high_water;
    high_water += size;
    return offset;
  };

  std::vector<uint32_t> order;
  for (uint32_t v = 0; v < nvals; ++v) {
    if (program->values[v].kind == ValueKind::kLocal &&
        program->values[v].alias_of == kNoValue && def[v] != kNoDef) {
      order.push_back(v);
    }
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return def[a] < def[b];
  });

  struct LiveRoot {
    size_t end;
    size_t offset;
    size_t size;
  };
  std::vector<LiveRoot> active;
  for (uint32_t v : order) {
    for (size_t i = active.size(); i-- > 0;) {
      if (active[i].end < def[v]) {
        release(active[i].offset, active[i].size);
        active.erase(active.begin() + i);
      }
    }
    const size_t size = align_up(program->values[v].size());
    const size_t offset = acquire(size);
    program->values[v].offset = offset;
    active.push_back({end[v], offset, size});
  }

  for (uint32_t v = 0; v < nvals; ++v) {
    Value& val = program->values[v];
    if (val.kind != ValueKind::kLocal) continue;
    if (val.alias_of != kNoValue) {
      val.offset = program->values[root_of(v)].offset;
    } else if (def[v] == kNoDef) {
      val.offset = kNoOffset;  // dead local (DCE removed its def)
    }
  }
  program->frame_floats = high_water;
}

}  // namespace ir
}  // namespace seqfm
