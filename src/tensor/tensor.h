#ifndef SEQFM_TENSOR_TENSOR_H_
#define SEQFM_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/result.h"
#include "util/status.h"

namespace seqfm {
namespace tensor {

namespace internal {

/// Every owned tensor data buffer starts on a 64-byte boundary: one full
/// cache line, and enough for aligned loads of any current or foreseeable
/// vector width (AVX2 needs 32, AVX-512 would need 64). core::ScratchArena
/// hands out the same alignment for wrapped buffers.
constexpr size_t kTensorAlignment = 64;
static_assert((kTensorAlignment & (kTensorAlignment - 1)) == 0 &&
                  kTensorAlignment >= 2 * sizeof(float) * 8,
              "tensor alignment must be a power of two covering one AVX2 "
              "register pair");

/// Process-wide count of heap allocations made for tensor data buffers.
/// The allocation-free-serving tests snapshot it around steady-state
/// requests: with the scratch arena active the delta must be zero.
uint64_t HeapAllocCount();

/// \brief The float buffer behind a Tensor.
///
/// Replaces std::vector<float>: owned buffers are 64-byte aligned and
/// default-initialized on request (no zero-fill for Tensor::Uninitialized),
/// and a buffer may instead *wrap* externally owned memory — the hook
/// core::ScratchArena uses to hand op outputs bump-allocated scratch space.
/// Wrapped storage is never freed here; copying any storage (wrapped or not)
/// always produces an owned aligned heap copy, so a tensor that escapes its
/// arena scope by copy is safe.
class FloatStorage {
 public:
  FloatStorage() = default;
  ~FloatStorage() { Release(); }

  FloatStorage(const FloatStorage& other) {
    AssignRange(other.ptr_, other.ptr_ + other.size_);
  }
  FloatStorage& operator=(const FloatStorage& other) {
    if (this != &other) AssignRange(other.ptr_, other.ptr_ + other.size_);
    return *this;
  }
  FloatStorage(FloatStorage&& other) noexcept
      : ptr_(other.ptr_), size_(other.size_), owned_(other.owned_) {
    other.Forget();
  }
  FloatStorage& operator=(FloatStorage&& other) noexcept {
    if (this != &other) {
      Release();
      ptr_ = other.ptr_;
      size_ = other.size_;
      owned_ = other.owned_;
      other.Forget();
    }
    return *this;
  }

  /// Owned buffer of n elements, every element set to value.
  void Assign(size_t n, float value);
  /// Owned buffer holding a copy of [first, last).
  void AssignRange(const float* first, const float* last);
  /// Owned buffer of n elements, contents indeterminate (no zero-fill).
  void ResizeUninitialized(size_t n);
  /// Points at caller-owned memory (not freed here); contents untouched.
  void WrapExternal(float* data, size_t n);

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  size_t size() const { return size_; }
  /// False for wrapped (arena) storage and for the empty buffer.
  bool owned() const { return owned_; }

  float& operator[](size_t i) { return ptr_[i]; }
  const float& operator[](size_t i) const { return ptr_[i]; }

 private:
  /// Frees an owned buffer; leaves the fields stale (callers reset them).
  void Release();
  void Forget() {
    ptr_ = nullptr;
    size_ = 0;
    owned_ = false;
  }
  /// Owned uninitialized buffer of n elements, reusing the current owned
  /// allocation when it already has exactly n.
  void Reserve(size_t n);

  float* ptr_ = nullptr;
  size_t size_ = 0;
  bool owned_ = false;
};

}  // namespace internal

/// \brief Dense row-major float tensor of rank 1 to 3.
///
/// This is the numeric workhorse of the library. It is deliberately simple:
/// contiguous storage, no views, no broadcasting at the storage level —
/// broadcasting semantics live in the op kernels (see ops.h). Rank 3 tensors
/// are laid out as [batch][row][col]. Owned data buffers are 64-byte aligned
/// (internal::kTensorAlignment) so SIMD kernels may assume vector-friendly
/// bases; WrapExternal tensors borrow scratch-arena memory with the same
/// alignment.
class Tensor {
 public:
  /// An empty rank-1 tensor of size 0.
  Tensor() : shape_{0} {}

  /// Zero-initialized tensor of the given shape. Shape entries must be
  /// positive and rank must be 1..3; violations abort (programmer error).
  explicit Tensor(std::vector<size_t> shape);

  /// Named factories ----------------------------------------------------

  /// All-zero tensor.
  static Tensor Zeros(std::vector<size_t> shape) { return Tensor(std::move(shape)); }

  /// Tensor whose elements are NOT initialized. Only for op outputs whose
  /// kernel overwrites every element before the tensor escapes — reading an
  /// element before writing it is undefined. The serving fast path uses this
  /// to skip the zero-fill on intermediates that live for one kernel.
  static Tensor Uninitialized(std::vector<size_t> shape);

  /// Tensor borrowing externally owned storage of exactly the shape's
  /// element count (contents indeterminate, never freed by the tensor).
  /// This is how autograd::internal::OutputBuffer hands ops memory from the
  /// thread's core::ScratchArena: the buffer must outlive the tensor and
  /// every move of it — copies are safe (they own aligned heap memory).
  static Tensor WrapExternal(std::vector<size_t> shape, float* data,
                             size_t count);

  /// All-one tensor.
  static Tensor Ones(std::vector<size_t> shape);

  /// Tensor filled with \p value.
  static Tensor Full(std::vector<size_t> shape, float value);

  /// Builds a tensor from explicit data; checks element count matches.
  static Result<Tensor> FromVector(std::vector<size_t> shape,
                                   std::vector<float> data);

  /// Shape access ---------------------------------------------------------

  size_t rank() const { return shape_.size(); }
  const std::vector<size_t>& shape() const { return shape_; }
  size_t dim(size_t i) const {
    SEQFM_DCHECK(i < shape_.size());
    return shape_[i];
  }
  /// Total number of elements.
  size_t size() const { return data_.size(); }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// True when the tensor owns (and will free) its data buffer; false for
  /// WrapExternal (scratch-arena) tensors and empty tensors.
  bool owns_storage() const { return data_.owned(); }

  /// Reinterprets the tensor with a new shape of identical element count.
  Status ReshapeInPlace(std::vector<size_t> shape);

  /// Element access --------------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(size_t i) {
    SEQFM_DCHECK(rank() == 1 && i < shape_[0]);
    return data_[i];
  }
  float at(size_t i) const {
    SEQFM_DCHECK(rank() == 1 && i < shape_[0]);
    return data_[i];
  }
  float& at(size_t i, size_t j) {
    SEQFM_DCHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  float at(size_t i, size_t j) const {
    SEQFM_DCHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  float& at(size_t b, size_t i, size_t j) {
    SEQFM_DCHECK(rank() == 3 && b < shape_[0] && i < shape_[1] && j < shape_[2]);
    return data_[(b * shape_[1] + i) * shape_[2] + j];
  }
  float at(size_t b, size_t i, size_t j) const {
    SEQFM_DCHECK(rank() == 3 && b < shape_[0] && i < shape_[1] && j < shape_[2]);
    return data_[(b * shape_[1] + i) * shape_[2] + j];
  }

  /// Pointer to the start of matrix \p b of a rank-3 tensor.
  float* BatchData(size_t b) {
    SEQFM_DCHECK(rank() == 3 && b < shape_[0]);
    return data_.data() + b * shape_[1] * shape_[2];
  }
  const float* BatchData(size_t b) const {
    SEQFM_DCHECK(rank() == 3 && b < shape_[0]);
    return data_.data() + b * shape_[1] * shape_[2];
  }

  /// Whole-tensor mutation --------------------------------------------------

  /// Sets every element to \p value.
  void Fill(float value);
  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// In-place axpy: this += alpha * other. Shapes must match.
  void AddScaled(const Tensor& other, float alpha);
  /// In-place scale: this *= alpha.
  void Scale(float alpha);

  /// Scalar value of a single-element tensor.
  float Item() const {
    SEQFM_CHECK_EQ(size(), 1u);
    return data_[0];
  }

  /// Debug string "[shape] values..." truncated to a few elements.
  std::string ToString(size_t max_elems = 16) const;

 private:
  std::vector<size_t> shape_;
  internal::FloatStorage data_;
};

}  // namespace tensor
}  // namespace seqfm

#endif  // SEQFM_TENSOR_TENSOR_H_
