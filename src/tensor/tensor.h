#ifndef SEQFM_TENSOR_TENSOR_H_
#define SEQFM_TENSOR_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/result.h"
#include "util/status.h"

namespace seqfm {
namespace tensor {

namespace internal {

/// Allocator whose value-less construct is a no-op, so a resize() performs
/// default (i.e. no) initialization of the new floats. This is what lets
/// Tensor::Uninitialized hand kernels an output buffer without paying the
/// zero-fill; explicit fills (assign, Fill) are unaffected.
template <typename T>
class DefaultInitAllocator : public std::allocator<T> {
 public:
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };

  using std::allocator<T>::allocator;

  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    ::new (static_cast<void*>(ptr)) U(std::forward<Args>(args)...);
  }
  template <typename U>
  void construct(U* ptr) {
    ::new (static_cast<void*>(ptr)) U;
  }
};

}  // namespace internal

/// \brief Dense row-major float tensor of rank 1 to 3.
///
/// This is the numeric workhorse of the library. It is deliberately simple:
/// contiguous storage, no views, no broadcasting at the storage level —
/// broadcasting semantics live in the op kernels (see ops.h). Rank 3 tensors
/// are laid out as [batch][row][col].
class Tensor {
 public:
  /// An empty rank-1 tensor of size 0.
  Tensor() : shape_{0} {}

  /// Zero-initialized tensor of the given shape. Shape entries must be
  /// positive and rank must be 1..3; violations abort (programmer error).
  explicit Tensor(std::vector<size_t> shape);

  /// Named factories ----------------------------------------------------

  /// All-zero tensor.
  static Tensor Zeros(std::vector<size_t> shape) { return Tensor(std::move(shape)); }

  /// Tensor whose elements are NOT initialized. Only for op outputs whose
  /// kernel overwrites every element before the tensor escapes — reading an
  /// element before writing it is undefined. The serving fast path uses this
  /// to skip the zero-fill on intermediates that live for one kernel.
  static Tensor Uninitialized(std::vector<size_t> shape);

  /// All-one tensor.
  static Tensor Ones(std::vector<size_t> shape);

  /// Tensor filled with \p value.
  static Tensor Full(std::vector<size_t> shape, float value);

  /// Builds a tensor from explicit data; checks element count matches.
  static Result<Tensor> FromVector(std::vector<size_t> shape,
                                   std::vector<float> data);

  /// Shape access ---------------------------------------------------------

  size_t rank() const { return shape_.size(); }
  const std::vector<size_t>& shape() const { return shape_; }
  size_t dim(size_t i) const {
    SEQFM_DCHECK(i < shape_.size());
    return shape_[i];
  }
  /// Total number of elements.
  size_t size() const { return data_.size(); }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Reinterprets the tensor with a new shape of identical element count.
  Status ReshapeInPlace(std::vector<size_t> shape);

  /// Element access --------------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(size_t i) {
    SEQFM_DCHECK(rank() == 1 && i < shape_[0]);
    return data_[i];
  }
  float at(size_t i) const {
    SEQFM_DCHECK(rank() == 1 && i < shape_[0]);
    return data_[i];
  }
  float& at(size_t i, size_t j) {
    SEQFM_DCHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  float at(size_t i, size_t j) const {
    SEQFM_DCHECK(rank() == 2 && i < shape_[0] && j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  float& at(size_t b, size_t i, size_t j) {
    SEQFM_DCHECK(rank() == 3 && b < shape_[0] && i < shape_[1] && j < shape_[2]);
    return data_[(b * shape_[1] + i) * shape_[2] + j];
  }
  float at(size_t b, size_t i, size_t j) const {
    SEQFM_DCHECK(rank() == 3 && b < shape_[0] && i < shape_[1] && j < shape_[2]);
    return data_[(b * shape_[1] + i) * shape_[2] + j];
  }

  /// Pointer to the start of matrix \p b of a rank-3 tensor.
  float* BatchData(size_t b) {
    SEQFM_DCHECK(rank() == 3 && b < shape_[0]);
    return data_.data() + b * shape_[1] * shape_[2];
  }
  const float* BatchData(size_t b) const {
    SEQFM_DCHECK(rank() == 3 && b < shape_[0]);
    return data_.data() + b * shape_[1] * shape_[2];
  }

  /// Whole-tensor mutation --------------------------------------------------

  /// Sets every element to \p value.
  void Fill(float value);
  /// Sets every element to zero.
  void Zero() { Fill(0.0f); }

  /// In-place axpy: this += alpha * other. Shapes must match.
  void AddScaled(const Tensor& other, float alpha);
  /// In-place scale: this *= alpha.
  void Scale(float alpha);

  /// Scalar value of a single-element tensor.
  float Item() const {
    SEQFM_CHECK_EQ(size(), 1u);
    return data_[0];
  }

  /// Debug string "[shape] values..." truncated to a few elements.
  std::string ToString(size_t max_elems = 16) const;

 private:
  std::vector<size_t> shape_;
  std::vector<float, internal::DefaultInitAllocator<float>> data_;
};

}  // namespace tensor
}  // namespace seqfm

#endif  // SEQFM_TENSOR_TENSOR_H_
