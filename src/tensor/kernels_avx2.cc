// AVX2 implementations of the dispatched kernel table. Compiled with
// -mavx2 -mfma -ffp-contract=off (see CMakeLists.txt) and selected at
// runtime, so this TU must only ever execute when util::CpuHasAvx2().
//
// Bit-parity with the scalar table is the design constraint everything here
// serves (kernels.h documents the contract):
//   * multiply-accumulate is _mm256_mul_ps followed by _mm256_add_ps — NOT
//     _mm256_fmadd_ps, whose single rounding the scalar path (built without
//     -mfma) cannot reproduce; -ffp-contract=off stops the compiler from
//     re-fusing the pair;
//   * reductions keep eight partial accumulators (one per lane, element i
//     into lane i % 8), spill them, finish sub-8 tails with the shared
//     scalar code, and combine with the shared fixed tree — so vector and
//     scalar orders are identical by construction;
//   * exp/sigmoid evaluate the shared polynomial (kernels_inl.h) with the
//     vector twin of every scalar step.
#include <immintrin.h>

#include <cstddef>

#include "tensor/kernels.h"
#include "tensor/kernels_inl.h"

namespace seqfm {
namespace tensor {
namespace kernels {

namespace {

// ---------------------------------------------------------------------------
// Shared vector exp polynomial (twin of ExpScalar, step for step)
// ---------------------------------------------------------------------------

inline __m256 ExpVec(__m256 x) {
  const __m256 lo = _mm256_set1_ps(kExpLo);
  const __m256 hi = _mm256_set1_ps(kExpHi);
  // Lanes below the domain (or NaN) must come out exactly 0, like the
  // scalar early return; compute the mask on the raw input.
  const __m256 ok = _mm256_cmp_ps(x, lo, _CMP_GE_OQ);
  x = _mm256_min_ps(x, hi);
  __m256 fx = _mm256_add_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(1.44269504088896341f)),
      _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(0.693359375f)));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(-2.12194440e-4f)));
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_add_ps(_mm256_mul_ps(y, x), _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_add_ps(_mm256_mul_ps(y, z), x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256i bits =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  const __m256 pow2n = _mm256_castsi256_ps(bits);
  return _mm256_and_ps(_mm256_mul_ps(y, pow2n), ok);
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

// Spills a vector of partial sums and finishes tail + tree with the shared
// scalar code so the combine order is the contract's by construction.
inline float FinishSumLanes(__m256 vacc, const float* a, const float* b,
                            size_t i, size_t n) {
  alignas(32) float lanes[kLanes];
  _mm256_store_ps(lanes, vacc);
  for (size_t l = 0; i < n; ++i, ++l) lanes[l] += a[i] * b[i];
  return CombineLanesSum(lanes);
}

float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 vacc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vacc = _mm256_add_ps(
        vacc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  return FinishSumLanes(vacc, a, b, i, n);
}

float ReduceSumAvx2(const float* x, size_t n) {
  __m256 vacc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    vacc = _mm256_add_ps(vacc, _mm256_loadu_ps(x + i));
  }
  alignas(32) float lanes[kLanes];
  _mm256_store_ps(lanes, vacc);
  for (size_t l = 0; i < n; ++i, ++l) lanes[l] += x[i];
  return CombineLanesSum(lanes);
}

float ReduceSumSqDiffAvx2(const float* x, float mean, size_t n) {
  const __m256 vmean = _mm256_set1_ps(mean);
  __m256 vacc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 c = _mm256_sub_ps(_mm256_loadu_ps(x + i), vmean);
    vacc = _mm256_add_ps(vacc, _mm256_mul_ps(c, c));
  }
  alignas(32) float lanes[kLanes];
  _mm256_store_ps(lanes, vacc);
  for (size_t l = 0; i < n; ++i, ++l) {
    const float c = x[i] - mean;
    lanes[l] += c * c;
  }
  return CombineLanesSum(lanes);
}

float ReduceMaxAddAvx2(const float* x, const float* add, size_t n) {
  __m256 vmax = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m256 v = _mm256_loadu_ps(x + i);
    if (add != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(add + i));
    // `>`-then-keep: a NaN challenger compares false and never replaces the
    // incumbent, matching the scalar rule.
    const __m256 gt = _mm256_cmp_ps(v, vmax, _CMP_GT_OQ);
    vmax = _mm256_blendv_ps(vmax, v, gt);
  }
  alignas(32) float lanes[kLanes];
  _mm256_store_ps(lanes, vmax);
  for (size_t l = 0; i < n; ++i, ++l) {
    const float v = x[i] + (add != nullptr ? add[i] : 0.0f);
    if (v > lanes[l]) lanes[l] = v;
  }
  return CombineLanesMax(lanes);
}

// ---------------------------------------------------------------------------
// Elementwise maps
// ---------------------------------------------------------------------------

void AddAvx2(const float* a, const float* b, float* y, size_t n) {
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) y[i] = a[i] + b[i];
}

void SubAvx2(const float* a, const float* b, float* y, size_t n) {
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_ps(
        y + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) y[i] = a[i] - b[i];
}

void MulAvx2(const float* a, const float* b, float* y, size_t n) {
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) y[i] = a[i] * b[i];
}

void MaddAvx2(const float* a, const float* b, float* y, size_t n) {
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 prod =
        _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a[i] * b[i];
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
}

void ScaleInPlaceAvx2(float alpha, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), va));
  }
  for (; i < n; ++i) y[i] *= alpha;
}

void ReluAvx2(const float* x, float* y, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 v = _mm256_loadu_ps(x + i);
    // x > 0 ? x : 0 — on NaN the comparison is false, so NaN maps to 0
    // exactly like the scalar ternary.
    const __m256 gt = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
    _mm256_storeu_ps(y + i, _mm256_and_ps(v, gt));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ExpMapAvx2(const float* x, float* y, size_t n) {
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_ps(y + i, ExpVec(_mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = ExpScalar(x[i]);
}

void SigmoidAvx2(const float* x, float* y, size_t n) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 ones = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 neg_abs =
        _mm256_or_ps(_mm256_andnot_ps(sign_mask, v), sign_mask);  // -|x|
    const __m256 e = ExpVec(neg_abs);
    const __m256 den = _mm256_add_ps(ones, e);
    const __m256 ge0 = _mm256_cmp_ps(v, zero, _CMP_GE_OQ);
    const __m256 num = _mm256_blendv_ps(e, ones, ge0);
    _mm256_storeu_ps(y + i, _mm256_div_ps(num, den));
  }
  for (; i < n; ++i) y[i] = SigmoidScalar(x[i]);
}

void TanhAvx2(const float* x, float* y, size_t n) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 ones = _mm256_set1_ps(1.0f);
  const __m256 neg_two = _mm256_set1_ps(-2.0f);
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 abs = _mm256_andnot_ps(sign_mask, v);
    const __m256 e = ExpVec(_mm256_mul_ps(neg_two, abs));
    const __m256 t = _mm256_div_ps(_mm256_sub_ps(ones, e),
                                   _mm256_add_ps(ones, e));
    // Restore the sign with a bit flip; on NaN the comparison is false and
    // the negated branch wins, matching TanhScalar's ternary.
    const __m256 ge0 = _mm256_cmp_ps(v, zero, _CMP_GE_OQ);
    _mm256_storeu_ps(y + i, _mm256_blendv_ps(_mm256_xor_ps(t, sign_mask), t,
                                             ge0));
  }
  for (; i < n; ++i) y[i] = TanhScalar(x[i]);
}

float SoftmaxExpSumAvx2(const float* x, const float* add, float max_val,
                        float* y, size_t n) {
  const __m256 vmax = _mm256_set1_ps(max_val);
  __m256 vacc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m256 v = _mm256_loadu_ps(x + i);
    if (add != nullptr) v = _mm256_add_ps(v, _mm256_loadu_ps(add + i));
    const __m256 e = ExpVec(_mm256_sub_ps(v, vmax));
    _mm256_storeu_ps(y + i, e);
    vacc = _mm256_add_ps(vacc, e);
  }
  alignas(32) float lanes[kLanes];
  _mm256_store_ps(lanes, vacc);
  for (size_t l = 0; i < n; ++i, ++l) {
    const float v = (x[i] + (add != nullptr ? add[i] : 0.0f)) - max_val;
    const float e = ExpScalar(v);
    y[i] = e;
    lanes[l] += e;
  }
  return CombineLanesSum(lanes);
}

void LayerNormRowAvx2(const float* x, const float* gamma, const float* beta,
                      float mean, float inv_std, size_t d, float* y,
                      float* xhat) {
  const __m256 vmean = _mm256_set1_ps(mean);
  const __m256 vis = _mm256_set1_ps(inv_std);
  size_t j = 0;
  for (; j + kLanes <= d; j += kLanes) {
    const __m256 h =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + j), vmean), vis);
    if (xhat != nullptr) _mm256_storeu_ps(xhat + j, h);
    const __m256 out = _mm256_add_ps(
        _mm256_mul_ps(_mm256_loadu_ps(gamma + j), h), _mm256_loadu_ps(beta + j));
    _mm256_storeu_ps(y + j, out);
  }
  for (; j < d; ++j) {
    const float h = (x[j] - mean) * inv_std;
    if (xhat != nullptr) xhat[j] = h;
    y[j] = gamma[j] * h + beta[j];
  }
}

// ---------------------------------------------------------------------------
// GEMM microkernels
// ---------------------------------------------------------------------------

// Non-transposed B: vectorize across OUTPUT COLUMNS, so each C element keeps
// the historical ascending-k single-accumulator order and the result is
// bit-identical to the scalar microkernel. Four A rows x two column vectors
// live in registers across the whole k loop.
template <size_t kRows>
inline void GemmPanelBNormal(const float* const* a, const float* b,
                             float* const* c, size_t k, size_t n,
                             bool accumulate) {
  static_assert(kRows >= 1 && kRows <= 4, "register budget");
  size_t j = 0;
  for (; j + 2 * kLanes <= n; j += 2 * kLanes) {
    __m256 acc0[kRows], acc1[kRows];
    for (size_t r = 0; r < kRows; ++r) {
      acc0[r] = _mm256_setzero_ps();
      acc1[r] = _mm256_setzero_ps();
    }
    for (size_t p = 0; p < k; ++p) {
      const float* brow = b + p * n + j;
      const __m256 vb0 = _mm256_loadu_ps(brow);
      const __m256 vb1 = _mm256_loadu_ps(brow + kLanes);
      for (size_t r = 0; r < kRows; ++r) {
        const __m256 va = _mm256_set1_ps(a[r][p]);
        acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(va, vb0));
        acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(va, vb1));
      }
    }
    for (size_t r = 0; r < kRows; ++r) {
      float* crow = c[r] + j;
      if (accumulate) {
        acc0[r] = _mm256_add_ps(_mm256_loadu_ps(crow), acc0[r]);
        acc1[r] = _mm256_add_ps(_mm256_loadu_ps(crow + kLanes), acc1[r]);
      }
      _mm256_storeu_ps(crow, acc0[r]);
      _mm256_storeu_ps(crow + kLanes, acc1[r]);
    }
  }
  for (; j + kLanes <= n; j += kLanes) {
    __m256 acc[kRows];
    for (size_t r = 0; r < kRows; ++r) acc[r] = _mm256_setzero_ps();
    for (size_t p = 0; p < k; ++p) {
      const __m256 vb = _mm256_loadu_ps(b + p * n + j);
      for (size_t r = 0; r < kRows; ++r) {
        acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(_mm256_set1_ps(a[r][p]),
                                                     vb));
      }
    }
    for (size_t r = 0; r < kRows; ++r) {
      float* crow = c[r] + j;
      if (accumulate) acc[r] = _mm256_add_ps(_mm256_loadu_ps(crow), acc[r]);
      _mm256_storeu_ps(crow, acc[r]);
    }
  }
  // Column tail: the plain ascending-k scalar expression per element.
  for (; j < n; ++j) {
    for (size_t r = 0; r < kRows; ++r) {
      float acc = 0.0f;
      const float* ar = a[r];
      for (size_t p = 0; p < k; ++p) acc += ar[p] * b[p * n + j];
      if (accumulate) {
        c[r][j] += acc;
      } else {
        c[r][j] = acc;
      }
    }
  }
}

void GemmRowsBNormalAvx2(const float* arows, const float* b, float* crows,
                         size_t rows, size_t k, size_t n, bool accumulate) {
  size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const float* a[4] = {arows + i * k, arows + (i + 1) * k,
                         arows + (i + 2) * k, arows + (i + 3) * k};
    float* c[4] = {crows + i * n, crows + (i + 1) * n, crows + (i + 2) * n,
                   crows + (i + 3) * n};
    GemmPanelBNormal<4>(a, b, c, k, n, accumulate);
  }
  for (; i < rows; ++i) {
    const float* a[1] = {arows + i * k};
    float* c[1] = {crows + i * n};
    GemmPanelBNormal<1>(a, b, c, k, n, accumulate);
  }
}

// Transposed B: one lane-blocked dot product per element — vector partial
// sums, shared scalar tail and combine tree, exactly GemmRowsBTransScalar's
// order.
void GemmRowsBTransAvx2(const float* arows, const float* b, float* crows,
                        size_t rows, size_t k, size_t n, bool accumulate) {
  size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    const float* a0 = arows + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* crow = crows + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      __m256 v0 = _mm256_setzero_ps();
      __m256 v1 = _mm256_setzero_ps();
      __m256 v2 = _mm256_setzero_ps();
      __m256 v3 = _mm256_setzero_ps();
      size_t p = 0;
      for (; p + kLanes <= k; p += kLanes) {
        const __m256 vb = _mm256_loadu_ps(brow + p);
        v0 = _mm256_add_ps(v0, _mm256_mul_ps(_mm256_loadu_ps(a0 + p), vb));
        v1 = _mm256_add_ps(v1, _mm256_mul_ps(_mm256_loadu_ps(a1 + p), vb));
        v2 = _mm256_add_ps(v2, _mm256_mul_ps(_mm256_loadu_ps(a2 + p), vb));
        v3 = _mm256_add_ps(v3, _mm256_mul_ps(_mm256_loadu_ps(a3 + p), vb));
      }
      const float s0 = FinishSumLanes(v0, a0, brow, p, k);
      const float s1 = FinishSumLanes(v1, a1, brow, p, k);
      const float s2 = FinishSumLanes(v2, a2, brow, p, k);
      const float s3 = FinishSumLanes(v3, a3, brow, p, k);
      if (accumulate) {
        crow[j] += s0;
        crow[n + j] += s1;
        crow[2 * n + j] += s2;
        crow[3 * n + j] += s3;
      } else {
        crow[j] = s0;
        crow[n + j] = s1;
        crow[2 * n + j] = s2;
        crow[3 * n + j] = s3;
      }
    }
  }
  for (; i < rows; ++i) {
    const float* ar = arows + i * k;
    float* crow = crows + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float s = DotAvx2(ar, b + j * k, k);
      if (accumulate) {
        crow[j] += s;
      } else {
        crow[j] = s;
      }
    }
  }
}

const KernelTable kAvx2Table = {
    /*dot=*/DotAvx2,
    /*reduce_sum=*/ReduceSumAvx2,
    /*reduce_sum_sq_diff=*/ReduceSumSqDiffAvx2,
    /*reduce_max_add=*/ReduceMaxAddAvx2,
    /*add=*/AddAvx2,
    /*sub=*/SubAvx2,
    /*mul=*/MulAvx2,
    /*madd=*/MaddAvx2,
    /*axpy=*/AxpyAvx2,
    /*scale=*/ScaleAvx2,
    /*scale_inplace=*/ScaleInPlaceAvx2,
    /*relu=*/ReluAvx2,
    /*exp_map=*/ExpMapAvx2,
    /*sigmoid=*/SigmoidAvx2,
    /*tanh=*/TanhAvx2,
    /*softmax_exp_sum=*/SoftmaxExpSumAvx2,
    /*layer_norm_row=*/LayerNormRowAvx2,
    /*gemm_rows_b_normal=*/GemmRowsBNormalAvx2,
    /*gemm_rows_b_trans=*/GemmRowsBTransAvx2,
    /*name=*/"avx2",
};

}  // namespace

// Looked up by kernels.cc (declared there, only when SEQFM_HAVE_AVX2).
const KernelTable* Avx2TableOrNull() { return &kAvx2Table; }

}  // namespace kernels
}  // namespace tensor
}  // namespace seqfm
