#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <new>
#include <sstream>

#include "tensor/kernels.h"

namespace seqfm {
namespace tensor {

namespace {
size_t NumElements(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}
}  // namespace

namespace internal {

namespace {

std::atomic<uint64_t> g_heap_allocs{0};

float* AllocateAligned(size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return static_cast<float*>(::operator new(
      n * sizeof(float), std::align_val_t{kTensorAlignment}));
}

void DeallocateAligned(float* p) {
  ::operator delete(p, std::align_val_t{kTensorAlignment});
}

}  // namespace

uint64_t HeapAllocCount() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

void FloatStorage::Release() {
  if (owned_) DeallocateAligned(ptr_);
}

void FloatStorage::Reserve(size_t n) {
  if (owned_ && size_ == n) return;
  Release();
  if (n == 0) {
    Forget();
    return;
  }
  ptr_ = AllocateAligned(n);
  size_ = n;
  owned_ = true;
}

void FloatStorage::Assign(size_t n, float value) {
  Reserve(n);
  for (size_t i = 0; i < n; ++i) ptr_[i] = value;
}

void FloatStorage::AssignRange(const float* first, const float* last) {
  const size_t n = static_cast<size_t>(last - first);
  Reserve(n);
  for (size_t i = 0; i < n; ++i) ptr_[i] = first[i];
}

void FloatStorage::ResizeUninitialized(size_t n) { Reserve(n); }

void FloatStorage::WrapExternal(float* data, size_t n) {
  Release();
  ptr_ = data;
  size_ = n;
  owned_ = false;
}

}  // namespace internal

Tensor::Tensor(std::vector<size_t> shape) : shape_(std::move(shape)) {
  SEQFM_CHECK(!shape_.empty() && shape_.size() <= 3)
      << "rank must be 1..3, got " << shape_.size();
  for (size_t d : shape_) SEQFM_CHECK_GT(d, 0u);
  data_.Assign(NumElements(shape_), 0.0f);
}

Tensor Tensor::Uninitialized(std::vector<size_t> shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  SEQFM_CHECK(!t.shape_.empty() && t.shape_.size() <= 3)
      << "rank must be 1..3, got " << t.shape_.size();
  for (size_t d : t.shape_) SEQFM_CHECK_GT(d, 0u);
  t.data_.ResizeUninitialized(NumElements(t.shape_));
  return t;
}

Tensor Tensor::WrapExternal(std::vector<size_t> shape, float* data,
                            size_t count) {
  Tensor t;
  t.shape_ = std::move(shape);
  SEQFM_CHECK(!t.shape_.empty() && t.shape_.size() <= 3)
      << "rank must be 1..3, got " << t.shape_.size();
  for (size_t d : t.shape_) SEQFM_CHECK_GT(d, 0u);
  SEQFM_CHECK_EQ(NumElements(t.shape_), count);
  SEQFM_CHECK(data != nullptr);
  t.data_.WrapExternal(data, count);
  return t;
}

Tensor Tensor::Ones(std::vector<size_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Result<Tensor> Tensor::FromVector(std::vector<size_t> shape,
                                  std::vector<float> data) {
  if (shape.empty() || shape.size() > 3) {
    return Status::InvalidArgument("tensor rank must be 1..3");
  }
  if (NumElements(shape) != data.size()) {
    return Status::InvalidArgument("shape does not match data size");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_.AssignRange(data.data(), data.data() + data.size());
  return t;
}

Status Tensor::ReshapeInPlace(std::vector<size_t> shape) {
  if (shape.empty() || shape.size() > 3) {
    return Status::InvalidArgument("tensor rank must be 1..3");
  }
  if (NumElements(shape) != data_.size()) {
    return Status::InvalidArgument("reshape must preserve element count");
  }
  shape_ = std::move(shape);
  return Status::OK();
}

void Tensor::Fill(float value) {
  float* p = data_.data();
  const size_t n = data_.size();
  for (size_t i = 0; i < n; ++i) p[i] = value;
}

void Tensor::AddScaled(const Tensor& other, float alpha) {
  SEQFM_CHECK(SameShape(other));
  kernels::Active().axpy(alpha, other.data(), data(), size());
}

void Tensor::Scale(float alpha) {
  kernels::Active().scale_inplace(alpha, data(), size());
}

std::string Tensor::ToString(size_t max_elems) const {
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << "x";
    os << shape_[i];
  }
  os << "](";
  const size_t n = std::min(max_elems, size());
  for (size_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (n < size()) os << ", ...";
  os << ")";
  return os.str();
}

}  // namespace tensor
}  // namespace seqfm
