#include "tensor/tensor.h"

#include <sstream>

namespace seqfm {
namespace tensor {

namespace {
size_t NumElements(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<size_t> shape) : shape_(std::move(shape)) {
  SEQFM_CHECK(!shape_.empty() && shape_.size() <= 3)
      << "rank must be 1..3, got " << shape_.size();
  for (size_t d : shape_) SEQFM_CHECK_GT(d, 0u);
  data_.assign(NumElements(shape_), 0.0f);
}

Tensor Tensor::Uninitialized(std::vector<size_t> shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  SEQFM_CHECK(!t.shape_.empty() && t.shape_.size() <= 3)
      << "rank must be 1..3, got " << t.shape_.size();
  for (size_t d : t.shape_) SEQFM_CHECK_GT(d, 0u);
  // resize() default-initializes through DefaultInitAllocator, i.e. leaves
  // the floats unwritten.
  t.data_.resize(NumElements(t.shape_));
  return t;
}

Tensor Tensor::Ones(std::vector<size_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Result<Tensor> Tensor::FromVector(std::vector<size_t> shape,
                                  std::vector<float> data) {
  if (shape.empty() || shape.size() > 3) {
    return Status::InvalidArgument("tensor rank must be 1..3");
  }
  if (NumElements(shape) != data.size()) {
    return Status::InvalidArgument("shape does not match data size");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  // Allocator types differ (plain vs. default-init), so this is a copy; the
  // factory only runs on cold paths (tests, constant construction).
  t.data_.assign(data.begin(), data.end());
  return t;
}

Status Tensor::ReshapeInPlace(std::vector<size_t> shape) {
  if (shape.empty() || shape.size() > 3) {
    return Status::InvalidArgument("tensor rank must be 1..3");
  }
  if (NumElements(shape) != data_.size()) {
    return Status::InvalidArgument("reshape must preserve element count");
  }
  shape_ = std::move(shape);
  return Status::OK();
}

void Tensor::Fill(float value) {
  for (auto& x : data_) x = value;
}

void Tensor::AddScaled(const Tensor& other, float alpha) {
  SEQFM_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  const size_t n = size();
  for (size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::Scale(float alpha) {
  for (auto& x : data_) x *= alpha;
}

std::string Tensor::ToString(size_t max_elems) const {
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << "x";
    os << shape_[i];
  }
  os << "](";
  const size_t n = std::min(max_elems, size());
  for (size_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (n < size()) os << ", ...";
  os << ")";
  return os.str();
}

}  // namespace tensor
}  // namespace seqfm
