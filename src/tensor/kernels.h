#ifndef SEQFM_TENSOR_KERNELS_H_
#define SEQFM_TENSOR_KERNELS_H_

#include <cstddef>

#include "util/cpu.h"

namespace seqfm {
namespace tensor {
namespace kernels {

/// \brief Dispatched inner loops behind the tensor/autograd compute kernels.
///
/// Every function pointer in this table has (at least) two implementations:
/// a portable scalar one (kernels.cc) and an AVX2 one (kernels_avx2.cc,
/// compiled with -mavx2 -mfma -ffp-contract=off and selected at startup via
/// util::ActiveSimdLevel()). The two are **bit-identical** on every input,
/// which is what keeps the repo's determinism contract (results independent
/// of thread count — and now of ISA) intact. Two rules make that possible:
///
/// 1. *Elementwise maps preserve per-element arithmetic.* add/sub/mul/axpy/
///    relu/... perform exactly the scalar expression per element; the vector
///    versions just do eight elements at once. Multiply-accumulate is always
///    emitted as a rounded multiply followed by a rounded add — never a fused
///    multiply-add — because the scalar path (built without -mfma) cannot
///    fuse, and contraction is globally disabled (-ffp-contract=off) so the
///    compiler cannot re-fuse behind our back. exp/sigmoid share one
///    polynomial (kernels_inl.h) evaluated with the same float ops on both
///    paths, replacing libm's exp whose vectorization would diverge.
///
/// 2. *Reductions follow one lane-blocked order.* A length-n reduction is
///    defined as eight partial accumulators — element i feeds lane i % 8
///    in ascending i, the tail (n % 8 elements) continuing lane-by-lane from
///    lane 0 — combined by the fixed tree
///        t0=l0+l4  t1=l1+l5  t2=l2+l6  t3=l3+l7
///        u0=t0+t2  u1=t1+t3  result=u0+u1
///    which is exactly the AVX2 128-bit-halves/movehl/shuffle horizontal
///    reduce. The scalar implementations follow the same order, and
///    tensor::GemmReference is generalized to it for transposed-B dot
///    products, so the oracle, the scalar kernels, and the AVX2 kernels all
///    agree to the last bit at any size, including 0/1 and non-multiple-of-8
///    tails. Max-reductions use the same lanes/tree with a `>`-then-keep
///    rule, so NaNs are ignored exactly like the historical scalar loops.
///
/// The GEMM microkernels keep the historical per-element accumulation order
/// for non-transposed B (ascending-k single accumulator per output element;
/// the AVX2 version vectorizes across output *columns*, which touches no
/// reduction order) and use the lane-blocked dot order for transposed B.
struct KernelTable {
  // --- reductions (lane-blocked order) ---------------------------------
  /// sum_i a[i] * b[i]
  float (*dot)(const float* a, const float* b, size_t n);
  /// sum_i x[i]
  float (*reduce_sum)(const float* x, size_t n);
  /// sum_i (x[i] - mean)^2
  float (*reduce_sum_sq_diff)(const float* x, float mean, size_t n);
  /// max_i (x[i] + (add ? add[i] : 0)); -inf when n == 0; NaNs never win.
  float (*reduce_max_add)(const float* x, const float* add, size_t n);

  // --- elementwise maps (per-element order preserving) -----------------
  void (*add)(const float* a, const float* b, float* y, size_t n);
  void (*sub)(const float* a, const float* b, float* y, size_t n);
  void (*mul)(const float* a, const float* b, float* y, size_t n);
  /// y[i] += a[i] * b[i]
  void (*madd)(const float* a, const float* b, float* y, size_t n);
  /// y[i] += alpha * x[i]
  void (*axpy)(float alpha, const float* x, float* y, size_t n);
  /// y[i] = alpha * x[i]
  void (*scale)(float alpha, const float* x, float* y, size_t n);
  void (*scale_inplace)(float alpha, float* y, size_t n);
  void (*relu)(const float* x, float* y, size_t n);
  /// y[i] = ExpApprox(x[i]): the shared polynomial exp. Exactly 0 below
  /// roughly -87.3 (so -inf and NaN map to 0), saturating near FLT_MAX at
  /// the top of the range; ~2 ulp inside it.
  void (*exp_map)(const float* x, float* y, size_t n);
  /// Numerically stable sigmoid built on ExpApprox (NaN maps to 0).
  void (*sigmoid)(const float* x, float* y, size_t n);
  /// tanh built on ExpApprox via (1 - e^{-2|x|}) / (1 + e^{-2|x|}) with the
  /// sign restored by a bit flip (NaN maps to -1).
  void (*tanh)(const float* x, float* y, size_t n);

  // --- fused rows ------------------------------------------------------
  /// y[i] = ExpApprox((x[i] + (add ? add[i] : 0)) - max_val); returns the
  /// lane-blocked sum of y. The softmax numerator + denominator in one pass.
  float (*softmax_exp_sum)(const float* x, const float* add, float max_val,
                           float* y, size_t n);
  /// y[j] = gamma[j] * ((x[j] - mean) * inv_std) + beta[j]; when xhat is
  /// non-null also stores the normalized activations (tape state).
  void (*layer_norm_row)(const float* x, const float* gamma,
                         const float* beta, float mean, float inv_std,
                         size_t d, float* y, float* xhat);

  // --- GEMM microkernels (see tensor/ops.cc for the blocking) ----------
  /// C rows [0, rows) (+)= A[rows,k] · B[k,n], A rows contiguous.
  void (*gemm_rows_b_normal)(const float* arows, const float* b, float* crows,
                             size_t rows, size_t k, size_t n, bool accumulate);
  /// C rows [0, rows) (+)= A[rows,k] · B^T with B stored [n,k]: per-element
  /// lane-blocked dot products.
  void (*gemm_rows_b_trans)(const float* arows, const float* b, float* crows,
                            size_t rows, size_t k, size_t n, bool accumulate);

  /// "scalar" / "avx2" — for logs and bench labels.
  const char* name;
};

/// The table for util::ActiveSimdLevel(). One relaxed atomic read; safe to
/// call from pool workers and to interleave with util::SetSimdLevel.
const KernelTable& Active();

/// The table for an explicit level. Falls back to scalar (with a one-time
/// warning) when AVX2 kernels are unavailable — not compiled in, or the CPU
/// lacks avx2+fma.
const KernelTable& Table(util::SimdLevel level);

/// True when Table(kAvx2) really is the AVX2 table.
bool Avx2KernelsAvailable();

}  // namespace kernels
}  // namespace tensor
}  // namespace seqfm

#endif  // SEQFM_TENSOR_KERNELS_H_
