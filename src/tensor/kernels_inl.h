#ifndef SEQFM_TENSOR_KERNELS_INL_H_
#define SEQFM_TENSOR_KERNELS_INL_H_

// Shared scalar bodies for the dispatched kernel layer. Included by BOTH
// kernels.cc (as the scalar table) and kernels_avx2.cc (for sub-8-element
// tails and the fixed combine tree), so the two translation units agree on
// every rounding step by construction.
//
// Everything here is `static inline` ON PURPOSE: kernels_avx2.cc is compiled
// with -mavx2, and an external-linkage inline function instantiated there
// could be the copy the linker keeps for the whole program — executing AVX2
// encodings on the scalar path of a non-AVX2 machine. Internal linkage gives
// each TU its own ISA-correct copy. The project compiles with
// -ffp-contract=off, so a*b+c below is a rounded multiply then a rounded add
// in every TU, matching the (non-FMA) vector instructions used by the AVX2
// kernels.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

namespace seqfm {
namespace tensor {
namespace kernels {

/// Lane count of the reduction contract (= floats per AVX2 register).
constexpr size_t kLanes = 8;

/// ExpApprox domain. Below kExpLo the result is exactly 0 (covers the
/// additive-mask -inf convention and keeps 2^n construction in the normal
/// range); above kExpHi the input saturates (result ~2.4e38, still finite).
constexpr float kExpLo = -87.33654f;
constexpr float kExpHi = 88.3762626647949f;

/// The fixed combine tree of the lane-blocked reduction order — identical to
/// the AVX2 horizontal reduce (low/high 128-bit halves, movehl, shuffle).
static inline float CombineLanesSum(const float* lanes) {
  const float t0 = lanes[0] + lanes[4];
  const float t1 = lanes[1] + lanes[5];
  const float t2 = lanes[2] + lanes[6];
  const float t3 = lanes[3] + lanes[7];
  const float u0 = t0 + t2;
  const float u1 = t1 + t3;
  return u0 + u1;
}

/// Max counterpart of CombineLanesSum. `>`-then-keep at every node: a NaN
/// challenger never replaces the incumbent, matching the elementwise rule.
static inline float CombineLanesMax(const float* lanes) {
  auto pick = [](float a, float b) { return b > a ? b : a; };
  const float t0 = pick(lanes[0], lanes[4]);
  const float t1 = pick(lanes[1], lanes[5]);
  const float t2 = pick(lanes[2], lanes[6]);
  const float t3 = pick(lanes[3], lanes[7]);
  return pick(pick(t0, t2), pick(t1, t3));
}

// ---------------------------------------------------------------------------
// Reductions (lane-blocked order; see kernels.h for the contract)
// ---------------------------------------------------------------------------

static inline float ScalarDot(const float* a, const float* b, size_t n) {
  float lanes[kLanes] = {0.0f};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) lanes[l] += a[i + l] * b[i + l];
  }
  for (size_t l = 0; i < n; ++i, ++l) lanes[l] += a[i] * b[i];
  return CombineLanesSum(lanes);
}

static inline float ScalarReduceSum(const float* x, size_t n) {
  float lanes[kLanes] = {0.0f};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) lanes[l] += x[i + l];
  }
  for (size_t l = 0; i < n; ++i, ++l) lanes[l] += x[i];
  return CombineLanesSum(lanes);
}

static inline float ScalarReduceSumSqDiff(const float* x, float mean,
                                          size_t n) {
  float lanes[kLanes] = {0.0f};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      const float c = x[i + l] - mean;
      lanes[l] += c * c;
    }
  }
  for (size_t l = 0; i < n; ++i, ++l) {
    const float c = x[i] - mean;
    lanes[l] += c * c;
  }
  return CombineLanesSum(lanes);
}

static inline float ScalarReduceMaxAdd(const float* x, const float* add,
                                       size_t n) {
  float lanes[kLanes];
  for (size_t l = 0; l < kLanes; ++l) {
    lanes[l] = -std::numeric_limits<float>::infinity();
  }
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      const float v = x[i + l] + (add != nullptr ? add[i + l] : 0.0f);
      if (v > lanes[l]) lanes[l] = v;
    }
  }
  for (size_t l = 0; i < n; ++i, ++l) {
    const float v = x[i] + (add != nullptr ? add[i] : 0.0f);
    if (v > lanes[l]) lanes[l] = v;
  }
  return CombineLanesMax(lanes);
}

// ---------------------------------------------------------------------------
// Shared exp polynomial (Cephes expf reduction, the scheme every vector math
// library uses). Each step is a plain float mul/add/sub/floor, so the AVX2
// kernel reproduces it operation-for-operation with _mm256_* equivalents.
// ---------------------------------------------------------------------------

static inline float ExpScalar(float x) {
  if (!(x >= kExpLo)) return 0.0f;  // underflow; also catches NaN and -inf
  if (x > kExpHi) x = kExpHi;
  // n = round(x / ln 2) via floor(x * log2e + 0.5); exact for our range.
  float fx = x * 1.44269504088896341f + 0.5f;
  fx = std::floor(fx);
  // r = x - n*ln2 in two steps (hi/lo split of ln 2) for a tight remainder.
  x = x - fx * 0.693359375f;
  x = x - fx * -2.12194440e-4f;
  const float z = x * x;
  float y = 1.9875691500e-4f;
  y = y * x + 1.3981999507e-3f;
  y = y * x + 8.3334519073e-3f;
  y = y * x + 4.1665795894e-2f;
  y = y * x + 1.6666665459e-1f;
  y = y * x + 5.0000001201e-1f;
  y = y * z + x;
  y = y + 1.0f;
  // 2^n by direct exponent-field construction (n in [-126, 127] here).
  const int32_t n = static_cast<int32_t>(fx);
  const uint32_t bits = static_cast<uint32_t>(n + 127) << 23;
  float pow2n;
  std::memcpy(&pow2n, &bits, sizeof(pow2n));
  return y * pow2n;
}

/// Stable sigmoid on ExpApprox: the historical StableSigmoid structure with
/// the shared polynomial in place of libm exp. NaN maps to 0 (exp(NaN)=0).
static inline float SigmoidScalar(float x) {
  if (x >= 0.0f) {
    const float z = ExpScalar(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = ExpScalar(x);
  return z / (1.0f + z);
}

/// tanh on ExpApprox: tanh(x) = sign(x) * (1 - e) / (1 + e) with
/// e = ExpApprox(-2|x|). |x| and the *-2 are exact, the division is a single
/// IEEE divide on both paths, and the sign restore is a bit flip, so the AVX2
/// twin matches operation-for-operation. Large |x| saturates to +-1 exactly
/// (ExpApprox underflows to 0); NaN maps to -1 (exp(NaN)=0 and NaN >= 0 is
/// false), mirroring SigmoidScalar's NaN-to-0 convention.
static inline float TanhScalar(float x) {
  const float a = x >= 0.0f ? x : -x;
  const float e = ExpScalar(-2.0f * a);
  const float t = (1.0f - e) / (1.0f + e);
  return x >= 0.0f ? t : -t;
}

// ---------------------------------------------------------------------------
// Elementwise maps
// ---------------------------------------------------------------------------

static inline void ScalarAdd(const float* a, const float* b, float* y,
                             size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}
static inline void ScalarSub(const float* a, const float* b, float* y,
                             size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = a[i] - b[i];
}
static inline void ScalarMul(const float* a, const float* b, float* y,
                             size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = a[i] * b[i];
}
static inline void ScalarMadd(const float* a, const float* b, float* y,
                              size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a[i] * b[i];
}
static inline void ScalarAxpy(float alpha, const float* x, float* y,
                              size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}
static inline void ScalarScale(float alpha, const float* x, float* y,
                               size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = alpha * x[i];
}
static inline void ScalarScaleInPlace(float alpha, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] *= alpha;
}
static inline void ScalarRelu(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}
static inline void ScalarExpMap(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = ExpScalar(x[i]);
}
static inline void ScalarSigmoidMap(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = SigmoidScalar(x[i]);
}
static inline void ScalarTanhMap(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = TanhScalar(x[i]);
}

static inline float ScalarSoftmaxExpSum(const float* x, const float* add,
                                        float max_val, float* y, size_t n) {
  float lanes[kLanes] = {0.0f};
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t l = 0; l < kLanes; ++l) {
      const float v = (x[i + l] + (add != nullptr ? add[i + l] : 0.0f)) -
                      max_val;
      const float e = ExpScalar(v);
      y[i + l] = e;
      lanes[l] += e;
    }
  }
  for (size_t l = 0; i < n; ++i, ++l) {
    const float v = (x[i] + (add != nullptr ? add[i] : 0.0f)) - max_val;
    const float e = ExpScalar(v);
    y[i] = e;
    lanes[l] += e;
  }
  return CombineLanesSum(lanes);
}

static inline void ScalarLayerNormRow(const float* x, const float* gamma,
                                      const float* beta, float mean,
                                      float inv_std, size_t d, float* y,
                                      float* xhat) {
  for (size_t j = 0; j < d; ++j) {
    const float h = (x[j] - mean) * inv_std;
    if (xhat != nullptr) xhat[j] = h;
    y[j] = gamma[j] * h + beta[j];
  }
}

}  // namespace kernels
}  // namespace tensor
}  // namespace seqfm

#endif  // SEQFM_TENSOR_KERNELS_INL_H_
