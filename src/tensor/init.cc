#include "tensor/init.h"

#include <cmath>

namespace seqfm {
namespace tensor {

void FillNormal(Tensor* t, Rng* rng, float stddev) {
  for (size_t i = 0; i < t->size(); ++i) {
    t->data()[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
}

void FillUniform(Tensor* t, Rng* rng, float bound) {
  for (size_t i = 0; i < t->size(); ++i) {
    t->data()[i] = static_cast<float>(rng->Uniform(-bound, bound));
  }
}

void FillXavier(Tensor* t, Rng* rng) {
  SEQFM_CHECK_EQ(t->rank(), 2u);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(t->dim(0) + t->dim(1)));
  FillUniform(t, rng, bound);
}

}  // namespace tensor
}  // namespace seqfm
