#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/scratch_arena.h"
#include "tensor/kernels.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace tensor {

namespace {

// ---------------------------------------------------------------------------
// GEMM
//
// C[m,n] (+)= A op B, row-major. The inner microkernels live in the
// dispatched kernel layer (tensor/kernels.h: scalar or AVX2, selected at
// startup); this file keeps the blocking and the thread-pool fan-out. The
// outer M loop is dispatched in row chunks across the global pool. Each
// output element is owned by exactly one chunk and accumulates its k
// products in a fixed order — ascending k for non-transposed B, the
// lane-blocked dot order for transposed B — into a private accumulator
// added to C once at the end, so the result is bit-for-bit identical to
// GemmReference for every blocking, grain, thread count, and SIMD level.
// ---------------------------------------------------------------------------

// Keep the microkernel's register tile height as the minimum row grain.
constexpr size_t kMr = 4;
// Grain cutoffs are shared with the autograd layer; see util/thread_pool.h.
using util::GrainForRows;
using util::kEwGrain;
using util::kMathGrain;
// GEMMs below this many multiply-adds run serially on the caller.
constexpr size_t kGemmParallelMinWork = util::kMinParallelWork;

// Computes C rows [i0, i1). When A is transposed (stored [k, m]) its rows are
// first packed contiguously so both inner kernels see a [rows, k] panel.
void GemmRowRange(const kernels::KernelTable& kt, const float* a,
                  const float* b, float* c, size_t m, size_t k, size_t n,
                  bool trans_a, bool trans_b, bool accumulate, size_t i0,
                  size_t i1) {
  const size_t rows = i1 - i0;
  const float* arows;
  // The trans-A pack buffer comes from the thread's scratch arena whenever a
  // scratch scope is active (serving paths), so steady-state serving stays
  // heap-allocation-free; training and bare calls keep the heap vector.
  core::ScratchArena* arena = nullptr;
  core::ScratchArena::Mark arena_mark;
  std::vector<float> packed_heap;
  if (trans_a) {
    float* packed;
    if (core::ScratchScopeActive()) {
      arena = &core::ThreadScratchArena();
      arena_mark = arena->mark();
      packed = arena->AllocateFloats(rows * k);
    } else {
      packed_heap.resize(rows * k);
      packed = packed_heap.data();
    }
    for (size_t p = 0; p < k; ++p) {
      const float* src = a + p * m + i0;
      for (size_t i = 0; i < rows; ++i) packed[i * k + p] = src[i];
    }
    arows = packed;
  } else {
    arows = a + i0 * k;
  }
  float* crows = c + i0 * n;
  if (trans_b) {
    kt.gemm_rows_b_trans(arows, b, crows, rows, k, n, accumulate);
  } else {
    kt.gemm_rows_b_normal(arows, b, crows, rows, k, n, accumulate);
  }
  if (arena != nullptr) arena->RewindTo(arena_mark);
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  SEQFM_CHECK(a.SameShape(b))
      << "shape mismatch: " << a.ToString(0) << " vs " << b.ToString(0);
}

/// The lane-blocked reduction order's independent restatement for the
/// oracle: eight partial sums, element p into lane p % 8, combined by the
/// fixed tree. Mirrors kernels.h so GemmReference stays a genuinely separate
/// implementation of the same contract.
float ReferenceLaneBlockedDot(const float* a, const float* b, size_t m,
                              size_t k, size_t i, size_t j, bool trans_a) {
  float lanes[8] = {0.0f};
  for (size_t p = 0; p < k; ++p) {
    const float av = trans_a ? a[p * m + i] : a[i * k + p];
    lanes[p % 8] += av * b[j * k + p];
  }
  const float t0 = lanes[0] + lanes[4];
  const float t1 = lanes[1] + lanes[5];
  const float t2 = lanes[2] + lanes[6];
  const float t3 = lanes[3] + lanes[7];
  return (t0 + t2) + (t1 + t3);
}

}  // namespace

void GemmReference(const float* a, const float* b, float* c, size_t m,
                   size_t k, size_t n, bool trans_a, bool trans_b,
                   bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::fill(c, c + m * n, 0.0f);
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc;
      if (trans_b) {
        // Transposed-B products are dot products; the kernel layer computes
        // them in the lane-blocked order, so the oracle defines that order.
        acc = ReferenceLaneBlockedDot(a, b, m, k, i, j, trans_a);
      } else {
        acc = 0.0f;
        for (size_t p = 0; p < k; ++p) {
          const float av = trans_a ? a[p * m + i] : a[i * k + p];
          acc += av * b[p * n + j];
        }
      }
      float* dst = c + i * n + j;
      if (accumulate) {
        *dst += acc;
      } else {
        *dst = acc;
      }
    }
  }
}

void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n, bool trans_a, bool trans_b, bool accumulate) {
  // Degenerate sizes are legal and handled explicitly: an empty output is a
  // no-op, and k == 0 is an empty sum (zero unless accumulating).
  if (m == 0 || n == 0) return;
  SEQFM_CHECK(c != nullptr) << "Gemm: null C with " << m << "x" << n
                            << " output";
  if (k == 0) {
    if (!accumulate) std::fill(c, c + m * n, 0.0f);
    return;
  }
  SEQFM_CHECK(a != nullptr) << "Gemm: null A with k=" << k;
  SEQFM_CHECK(b != nullptr) << "Gemm: null B with k=" << k;
  const kernels::KernelTable& kt = kernels::Active();
  const size_t work = m * n * k;
  if (work < kGemmParallelMinWork) {
    GemmRowRange(kt, a, b, c, m, k, n, trans_a, trans_b, accumulate, 0, m);
    return;
  }
  const size_t grain = std::max(kMr, GrainForRows(n * k, kGemmParallelMinWork));
  util::ParallelFor(m, grain, [=, &kt](size_t i0, size_t i1) {
    GemmRowRange(kt, a, b, c, m, k, n, trans_a, trans_b, accumulate, i0, i1);
  });
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out, bool trans_a,
            bool trans_b, bool accumulate) {
  SEQFM_CHECK_EQ(a.rank(), 2u);
  SEQFM_CHECK_EQ(b.rank(), 2u);
  const size_t m = trans_a ? a.dim(1) : a.dim(0);
  const size_t ka = trans_a ? a.dim(0) : a.dim(1);
  const size_t kb = trans_b ? b.dim(1) : b.dim(0);
  const size_t n = trans_b ? b.dim(0) : b.dim(1);
  SEQFM_CHECK_EQ(ka, kb);
  SEQFM_CHECK_EQ(out->rank(), 2u);
  SEQFM_CHECK_EQ(out->dim(0), m);
  SEQFM_CHECK_EQ(out->dim(1), n);
  Gemm(a.data(), b.data(), out->data(), m, ka, n, trans_a, trans_b, accumulate);
}

void BatchedMatMul(const Tensor& a, const Tensor& b, Tensor* out, bool trans_a,
                   bool trans_b, bool accumulate) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(b.rank(), 3u);
  SEQFM_CHECK_EQ(a.dim(0), b.dim(0));
  const size_t batch = a.dim(0);
  const size_t m = trans_a ? a.dim(2) : a.dim(1);
  const size_t ka = trans_a ? a.dim(1) : a.dim(2);
  const size_t kb = trans_b ? b.dim(2) : b.dim(1);
  const size_t n = trans_b ? b.dim(1) : b.dim(2);
  SEQFM_CHECK_EQ(ka, kb);
  SEQFM_CHECK_EQ(out->rank(), 3u);
  SEQFM_CHECK_EQ(out->dim(0), batch);
  SEQFM_CHECK_EQ(out->dim(1), m);
  SEQFM_CHECK_EQ(out->dim(2), n);
  // Parallelize over the batch; the per-item Gemm then runs inline on the
  // worker (nested ParallelFor calls are serial), which is the right split
  // for the many-small-matrices shape attention produces.
  const size_t per_item = m * n * ka;
  const size_t grain = GrainForRows(per_item, kGemmParallelMinWork);
  util::ParallelFor(batch, grain, [&, trans_a, trans_b,
                                   accumulate](size_t b0, size_t b1) {
    for (size_t i = b0; i < b1; ++i) {
      Gemm(a.BatchData(i), b.BatchData(i), out->BatchData(i), m, ka, n,
           trans_a, trans_b, accumulate);
    }
  });
}

void BatchedMatMulShared(const Tensor& a, const Tensor& w, Tensor* out,
                         bool trans_w, bool accumulate) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(w.rank(), 2u);
  const size_t rows = a.dim(0) * a.dim(1);
  const size_t k = a.dim(2);
  const size_t kw = trans_w ? w.dim(1) : w.dim(0);
  const size_t n = trans_w ? w.dim(0) : w.dim(1);
  SEQFM_CHECK_EQ(k, kw);
  SEQFM_CHECK_EQ(out->rank(), 3u);
  SEQFM_CHECK_EQ(out->dim(0), a.dim(0));
  SEQFM_CHECK_EQ(out->dim(1), a.dim(1));
  SEQFM_CHECK_EQ(out->dim(2), n);
  Gemm(a.data(), w.data(), out->data(), rows, k, n, /*trans_a=*/false, trans_w,
       accumulate);
}

void SoftmaxLastDim(const Tensor& in, const Tensor* mask, Tensor* out) {
  SEQFM_CHECK(in.SameShape(*out));
  const size_t cols = in.shape().back();
  const size_t rows = in.size() / cols;
  size_t mask_rows = 0;
  const float* mask_data = nullptr;
  if (mask != nullptr) {
    SEQFM_CHECK_EQ(mask->rank(), 2u);
    SEQFM_CHECK_EQ(mask->dim(1), cols);
    mask_rows = mask->dim(0);
    mask_data = mask->data();
    // The mask is broadcast over the leading batch dimension; the number of
    // attention rows per batch item must equal the mask's row count.
    SEQFM_CHECK_EQ(rows % mask_rows, 0u);
  }
  const float* src = in.data();
  float* dst = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(rows, GrainForRows(cols, kMathGrain), [=, &kt](size_t r0,
                                                                   size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* x = src + r * cols;
      float* y = dst + r * cols;
      const float* mrow =
          mask_data ? mask_data + (r % mask_rows) * cols : nullptr;
      const float max_val = kt.reduce_max_add(x, mrow, cols);
      // A fully masked row would yield max == -inf; fall back to zeros.
      if (!std::isfinite(max_val)) {
        std::fill(y, y + cols, 0.0f);
        continue;
      }
      // Masked (-inf) and NaN entries come out of the shared exp as exact
      // zeros, reproducing the historical per-element isfinite fallback.
      const float total = kt.softmax_exp_sum(x, mrow, max_val, y, cols);
      kt.scale_inplace(1.0f / total, y, cols);
    }
  });
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  CheckSameShape(a, *out);
  const float* av = a.data();
  const float* bv = b.data();
  float* y = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(a.size(), kEwGrain, [=, &kt](size_t i0, size_t i1) {
    kt.add(av + i0, bv + i0, y + i0, i1 - i0);
  });
}

void Sub(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  CheckSameShape(a, *out);
  const float* av = a.data();
  const float* bv = b.data();
  float* y = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(a.size(), kEwGrain, [=, &kt](size_t i0, size_t i1) {
    kt.sub(av + i0, bv + i0, y + i0, i1 - i0);
  });
}

void Mul(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  CheckSameShape(a, *out);
  const float* av = a.data();
  const float* bv = b.data();
  float* y = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(a.size(), kEwGrain, [=, &kt](size_t i0, size_t i1) {
    kt.mul(av + i0, bv + i0, y + i0, i1 - i0);
  });
}

void Relu(const Tensor& in, Tensor* out) {
  CheckSameShape(in, *out);
  const float* x = in.data();
  float* y = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(in.size(), kEwGrain, [=, &kt](size_t i0, size_t i1) {
    kt.relu(x + i0, y + i0, i1 - i0);
  });
}

void Sigmoid(const Tensor& in, Tensor* out) {
  CheckSameShape(in, *out);
  const float* x = in.data();
  float* y = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(in.size(), kMathGrain, [=, &kt](size_t i0, size_t i1) {
    kt.sigmoid(x + i0, y + i0, i1 - i0);
  });
}

void Tanh(const Tensor& in, Tensor* out) {
  CheckSameShape(in, *out);
  const float* x = in.data();
  float* y = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(in.size(), kMathGrain, [=, &kt](size_t i0, size_t i1) {
    kt.tanh(x + i0, y + i0, i1 - i0);
  });
}

void AddBiasLastDim(const Tensor& in, const Tensor& bias, Tensor* out) {
  CheckSameShape(in, *out);
  SEQFM_CHECK_EQ(bias.rank(), 1u);
  const size_t d = in.shape().back();
  SEQFM_CHECK_EQ(bias.dim(0), d);
  const size_t rows = in.size() / d;
  const float* x = in.data();
  const float* bv = bias.data();
  float* y = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(rows, GrainForRows(d, kEwGrain), [=, &kt](size_t r0,
                                                              size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      kt.add(x + r * d, bv, y + r * d, d);
    }
  });
}

void SumAxis1(const Tensor& in, float scale, Tensor* out, bool accumulate) {
  SEQFM_CHECK_EQ(in.rank(), 3u);
  SEQFM_CHECK_EQ(out->rank(), 2u);
  SEQFM_CHECK_EQ(out->dim(0), in.dim(0));
  SEQFM_CHECK_EQ(out->dim(1), in.dim(2));
  const size_t batch = in.dim(0), rows = in.dim(1), d = in.dim(2);
  if (!accumulate) out->Zero();
  // Each batch item owns a disjoint output row, so the batch loop is safe to
  // split across the pool.
  float* out_data = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(batch, GrainForRows(rows * d, kEwGrain),
                    [&in, &kt, out_data, scale, rows, d](size_t b0,
                                                         size_t b1) {
    for (size_t b = b0; b < b1; ++b) {
      const float* src = in.BatchData(b);
      float* dst = out_data + b * d;
      for (size_t i = 0; i < rows; ++i) {
        kt.axpy(scale, src + i * d, dst, d);
      }
    }
  });
}

void SumLastDim(const Tensor& in, Tensor* out) {
  const size_t d = in.shape().back();
  const size_t rows = in.size() / d;
  SEQFM_CHECK_EQ(out->size(), rows);
  const float* x = in.data();
  float* y = out->data();
  const kernels::KernelTable& kt = kernels::Active();
  util::ParallelFor(rows, GrainForRows(d, kEwGrain), [=, &kt](size_t r0,
                                                              size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      y[r] = kt.reduce_sum(x + r * d, d);
    }
  });
}

float SumAll(const Tensor& in) {
  // Deliberately serial and deliberately NOT lane-blocked: losses and
  // whole-tensor diagnostics keep their historical ascending order, which is
  // identical at every thread count and SIMD level by virtue of never being
  // vectorized.
  float acc = 0.0f;
  for (size_t i = 0; i < in.size(); ++i) acc += in.data()[i];
  return acc;
}

}  // namespace tensor
}  // namespace seqfm
