#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/thread_pool.h"

namespace seqfm {
namespace tensor {

namespace {

// ---------------------------------------------------------------------------
// GEMM
//
// C[m,n] (+)= A op B, row-major. The kernel is cache-blocked over N,
// register-tiled over kMr rows of C, and its outer M loop is dispatched in
// row chunks across the global thread pool. Each output element is owned by
// exactly one chunk and accumulates its k products in ascending-p order into
// a private accumulator that is added to C once at the end, so the result is
// bit-for-bit identical to GemmReference for every blocking, grain, and
// thread count.
// ---------------------------------------------------------------------------

constexpr size_t kMr = 4;    // register-tile height (rows of C per pass)
constexpr size_t kNc = 512;  // cache-block width (columns of C per pass)
// Grain cutoffs are shared with the autograd layer; see util/thread_pool.h.
using util::GrainForRows;
using util::kEwGrain;
using util::kMathGrain;
// GEMMs below this many multiply-adds run serially on the caller.
constexpr size_t kGemmParallelMinWork = util::kMinParallelWork;

inline void StoreRow(const float* acc, float* crow, size_t jn,
                     bool accumulate) {
  if (accumulate) {
    for (size_t j = 0; j < jn; ++j) crow[j] += acc[j];
  } else {
    for (size_t j = 0; j < jn; ++j) crow[j] = acc[j];
  }
}

// Rows [0, rows) of `arows` ([rows, k] contiguous) times non-transposed B
// ([k, n]), written to the matching rows of C starting at crows. Streams a
// kNc-wide block of B per pass; four C rows share each B row load.
void GemmRowsBNormal(const float* arows, const float* b, float* crows,
                     size_t rows, size_t k, size_t n, bool accumulate) {
  float acc[kMr * kNc];
  for (size_t j0 = 0; j0 < n; j0 += kNc) {
    const size_t jn = std::min(n - j0, kNc);
    size_t i = 0;
    for (; i + kMr <= rows; i += kMr) {
      std::fill(acc, acc + kMr * jn, 0.0f);
      const float* a0 = arows + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      for (size_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j0;
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        float* r0 = acc;
        float* r1 = acc + jn;
        float* r2 = acc + 2 * jn;
        float* r3 = acc + 3 * jn;
        for (size_t j = 0; j < jn; ++j) {
          r0[j] += v0 * brow[j];
          r1[j] += v1 * brow[j];
          r2[j] += v2 * brow[j];
          r3[j] += v3 * brow[j];
        }
      }
      for (size_t r = 0; r < kMr; ++r) {
        StoreRow(acc + r * jn, crows + (i + r) * n + j0, jn, accumulate);
      }
    }
    for (; i < rows; ++i) {
      std::fill(acc, acc + jn, 0.0f);
      const float* ar = arows + i * k;
      for (size_t p = 0; p < k; ++p) {
        const float av = ar[p];
        const float* brow = b + p * n + j0;
        for (size_t j = 0; j < jn; ++j) acc[j] += av * brow[j];
      }
      StoreRow(acc, crows + i * n + j0, jn, accumulate);
    }
  }
}

// Rows [0, rows) of `arows` times transposed B (stored [n, k]): pure dot
// products, register-tiled so four rows of A share each B row.
void GemmRowsBTrans(const float* arows, const float* b, float* crows,
                    size_t rows, size_t k, size_t n, bool accumulate) {
  size_t i = 0;
  for (; i + kMr <= rows; i += kMr) {
    const float* a0 = arows + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* crow = crows + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (size_t p = 0; p < k; ++p) {
        const float bv = brow[p];
        s0 += a0[p] * bv;
        s1 += a1[p] * bv;
        s2 += a2[p] * bv;
        s3 += a3[p] * bv;
      }
      if (accumulate) {
        crow[j] += s0;
        crow[n + j] += s1;
        crow[2 * n + j] += s2;
        crow[3 * n + j] += s3;
      } else {
        crow[j] = s0;
        crow[n + j] = s1;
        crow[2 * n + j] = s2;
        crow[3 * n + j] = s3;
      }
    }
  }
  for (; i < rows; ++i) {
    const float* ar = arows + i * k;
    float* crow = crows + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float s = 0.0f;
      for (size_t p = 0; p < k; ++p) s += ar[p] * brow[p];
      if (accumulate) {
        crow[j] += s;
      } else {
        crow[j] = s;
      }
    }
  }
}

// Computes C rows [i0, i1). When A is transposed (stored [k, m]) its rows are
// first packed contiguously so both inner kernels see a [rows, k] panel.
void GemmRowRange(const float* a, const float* b, float* c, size_t m, size_t k,
                  size_t n, bool trans_a, bool trans_b, bool accumulate,
                  size_t i0, size_t i1) {
  const size_t rows = i1 - i0;
  const float* arows;
  std::vector<float> packed;
  if (trans_a) {
    packed.resize(rows * k);
    for (size_t p = 0; p < k; ++p) {
      const float* src = a + p * m + i0;
      for (size_t i = 0; i < rows; ++i) packed[i * k + p] = src[i];
    }
    arows = packed.data();
  } else {
    arows = a + i0 * k;
  }
  float* crows = c + i0 * n;
  if (trans_b) {
    GemmRowsBTrans(arows, b, crows, rows, k, n, accumulate);
  } else {
    GemmRowsBNormal(arows, b, crows, rows, k, n, accumulate);
  }
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  SEQFM_CHECK(a.SameShape(b))
      << "shape mismatch: " << a.ToString(0) << " vs " << b.ToString(0);
}

}  // namespace

void GemmReference(const float* a, const float* b, float* c, size_t m,
                   size_t k, size_t n, bool trans_a, bool trans_b,
                   bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::fill(c, c + m * n, 0.0f);
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += av * bv;
      }
      float* dst = c + i * n + j;
      if (accumulate) {
        *dst += acc;
      } else {
        *dst = acc;
      }
    }
  }
}

void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n, bool trans_a, bool trans_b, bool accumulate) {
  // Degenerate sizes are legal and handled explicitly: an empty output is a
  // no-op, and k == 0 is an empty sum (zero unless accumulating).
  if (m == 0 || n == 0) return;
  SEQFM_CHECK(c != nullptr) << "Gemm: null C with " << m << "x" << n
                            << " output";
  if (k == 0) {
    if (!accumulate) std::fill(c, c + m * n, 0.0f);
    return;
  }
  SEQFM_CHECK(a != nullptr) << "Gemm: null A with k=" << k;
  SEQFM_CHECK(b != nullptr) << "Gemm: null B with k=" << k;
  const size_t work = m * n * k;
  if (work < kGemmParallelMinWork) {
    GemmRowRange(a, b, c, m, k, n, trans_a, trans_b, accumulate, 0, m);
    return;
  }
  const size_t grain = std::max(kMr, GrainForRows(n * k, kGemmParallelMinWork));
  util::ParallelFor(m, grain, [=](size_t i0, size_t i1) {
    GemmRowRange(a, b, c, m, k, n, trans_a, trans_b, accumulate, i0, i1);
  });
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out, bool trans_a,
            bool trans_b, bool accumulate) {
  SEQFM_CHECK_EQ(a.rank(), 2u);
  SEQFM_CHECK_EQ(b.rank(), 2u);
  const size_t m = trans_a ? a.dim(1) : a.dim(0);
  const size_t ka = trans_a ? a.dim(0) : a.dim(1);
  const size_t kb = trans_b ? b.dim(1) : b.dim(0);
  const size_t n = trans_b ? b.dim(0) : b.dim(1);
  SEQFM_CHECK_EQ(ka, kb);
  SEQFM_CHECK_EQ(out->rank(), 2u);
  SEQFM_CHECK_EQ(out->dim(0), m);
  SEQFM_CHECK_EQ(out->dim(1), n);
  Gemm(a.data(), b.data(), out->data(), m, ka, n, trans_a, trans_b, accumulate);
}

void BatchedMatMul(const Tensor& a, const Tensor& b, Tensor* out, bool trans_a,
                   bool trans_b, bool accumulate) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(b.rank(), 3u);
  SEQFM_CHECK_EQ(a.dim(0), b.dim(0));
  const size_t batch = a.dim(0);
  const size_t m = trans_a ? a.dim(2) : a.dim(1);
  const size_t ka = trans_a ? a.dim(1) : a.dim(2);
  const size_t kb = trans_b ? b.dim(2) : b.dim(1);
  const size_t n = trans_b ? b.dim(1) : b.dim(2);
  SEQFM_CHECK_EQ(ka, kb);
  SEQFM_CHECK_EQ(out->rank(), 3u);
  SEQFM_CHECK_EQ(out->dim(0), batch);
  SEQFM_CHECK_EQ(out->dim(1), m);
  SEQFM_CHECK_EQ(out->dim(2), n);
  // Parallelize over the batch; the per-item Gemm then runs inline on the
  // worker (nested ParallelFor calls are serial), which is the right split
  // for the many-small-matrices shape attention produces.
  const size_t per_item = m * n * ka;
  const size_t grain = GrainForRows(per_item, kGemmParallelMinWork);
  util::ParallelFor(batch, grain, [&, trans_a, trans_b,
                                   accumulate](size_t b0, size_t b1) {
    for (size_t i = b0; i < b1; ++i) {
      Gemm(a.BatchData(i), b.BatchData(i), out->BatchData(i), m, ka, n,
           trans_a, trans_b, accumulate);
    }
  });
}

void BatchedMatMulShared(const Tensor& a, const Tensor& w, Tensor* out,
                         bool trans_w, bool accumulate) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(w.rank(), 2u);
  const size_t rows = a.dim(0) * a.dim(1);
  const size_t k = a.dim(2);
  const size_t kw = trans_w ? w.dim(1) : w.dim(0);
  const size_t n = trans_w ? w.dim(0) : w.dim(1);
  SEQFM_CHECK_EQ(k, kw);
  SEQFM_CHECK_EQ(out->rank(), 3u);
  SEQFM_CHECK_EQ(out->dim(0), a.dim(0));
  SEQFM_CHECK_EQ(out->dim(1), a.dim(1));
  SEQFM_CHECK_EQ(out->dim(2), n);
  Gemm(a.data(), w.data(), out->data(), rows, k, n, /*trans_a=*/false, trans_w,
       accumulate);
}

void SoftmaxLastDim(const Tensor& in, const Tensor* mask, Tensor* out) {
  SEQFM_CHECK(in.SameShape(*out));
  const size_t cols = in.shape().back();
  const size_t rows = in.size() / cols;
  size_t mask_rows = 0;
  const float* mask_data = nullptr;
  if (mask != nullptr) {
    SEQFM_CHECK_EQ(mask->rank(), 2u);
    SEQFM_CHECK_EQ(mask->dim(1), cols);
    mask_rows = mask->dim(0);
    mask_data = mask->data();
    // The mask is broadcast over the leading batch dimension; the number of
    // attention rows per batch item must equal the mask's row count.
    SEQFM_CHECK_EQ(rows % mask_rows, 0u);
  }
  const float* src = in.data();
  float* dst = out->data();
  util::ParallelFor(rows, GrainForRows(cols, kMathGrain), [=](size_t r0,
                                                              size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* x = src + r * cols;
      float* y = dst + r * cols;
      const float* mrow =
          mask_data ? mask_data + (r % mask_rows) * cols : nullptr;
      float max_val = -std::numeric_limits<float>::infinity();
      for (size_t j = 0; j < cols; ++j) {
        const float v = x[j] + (mrow ? mrow[j] : 0.0f);
        if (v > max_val) max_val = v;
      }
      // A fully masked row would yield max == -inf; fall back to zeros.
      if (!std::isfinite(max_val)) {
        std::fill(y, y + cols, 0.0f);
        continue;
      }
      float total = 0.0f;
      for (size_t j = 0; j < cols; ++j) {
        const float v = x[j] + (mrow ? mrow[j] : 0.0f);
        y[j] = std::isfinite(v) ? std::exp(v - max_val) : 0.0f;
        total += y[j];
      }
      const float inv = 1.0f / total;
      for (size_t j = 0; j < cols; ++j) y[j] *= inv;
    }
  });
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  CheckSameShape(a, *out);
  const float* av = a.data();
  const float* bv = b.data();
  float* y = out->data();
  util::ParallelFor(a.size(), kEwGrain, [=](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) y[i] = av[i] + bv[i];
  });
}

void Sub(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  CheckSameShape(a, *out);
  const float* av = a.data();
  const float* bv = b.data();
  float* y = out->data();
  util::ParallelFor(a.size(), kEwGrain, [=](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) y[i] = av[i] - bv[i];
  });
}

void Mul(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  CheckSameShape(a, *out);
  const float* av = a.data();
  const float* bv = b.data();
  float* y = out->data();
  util::ParallelFor(a.size(), kEwGrain, [=](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) y[i] = av[i] * bv[i];
  });
}

void Relu(const Tensor& in, Tensor* out) {
  CheckSameShape(in, *out);
  const float* x = in.data();
  float* y = out->data();
  util::ParallelFor(in.size(), kEwGrain, [=](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  });
}

void Sigmoid(const Tensor& in, Tensor* out) {
  CheckSameShape(in, *out);
  const float* x = in.data();
  float* y = out->data();
  util::ParallelFor(in.size(), kMathGrain, [=](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) y[i] = StableSigmoid(x[i]);
  });
}

void Tanh(const Tensor& in, Tensor* out) {
  CheckSameShape(in, *out);
  const float* x = in.data();
  float* y = out->data();
  util::ParallelFor(in.size(), kMathGrain, [=](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) y[i] = std::tanh(x[i]);
  });
}

void AddBiasLastDim(const Tensor& in, const Tensor& bias, Tensor* out) {
  CheckSameShape(in, *out);
  SEQFM_CHECK_EQ(bias.rank(), 1u);
  const size_t d = in.shape().back();
  SEQFM_CHECK_EQ(bias.dim(0), d);
  const size_t rows = in.size() / d;
  const float* x = in.data();
  const float* bv = bias.data();
  float* y = out->data();
  util::ParallelFor(rows, GrainForRows(d, kEwGrain), [=](size_t r0,
                                                         size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* xr = x + r * d;
      float* yr = y + r * d;
      for (size_t j = 0; j < d; ++j) yr[j] = xr[j] + bv[j];
    }
  });
}

void SumAxis1(const Tensor& in, float scale, Tensor* out, bool accumulate) {
  SEQFM_CHECK_EQ(in.rank(), 3u);
  SEQFM_CHECK_EQ(out->rank(), 2u);
  SEQFM_CHECK_EQ(out->dim(0), in.dim(0));
  SEQFM_CHECK_EQ(out->dim(1), in.dim(2));
  const size_t batch = in.dim(0), rows = in.dim(1), d = in.dim(2);
  if (!accumulate) out->Zero();
  // Each batch item owns a disjoint output row, so the batch loop is safe to
  // split across the pool.
  float* out_data = out->data();
  util::ParallelFor(batch, GrainForRows(rows * d, kEwGrain),
                    [&in, out_data, scale, rows, d](size_t b0, size_t b1) {
    for (size_t b = b0; b < b1; ++b) {
      const float* src = in.BatchData(b);
      float* dst = out_data + b * d;
      for (size_t i = 0; i < rows; ++i) {
        const float* row = src + i * d;
        for (size_t j = 0; j < d; ++j) dst[j] += scale * row[j];
      }
    }
  });
}

void SumLastDim(const Tensor& in, Tensor* out) {
  const size_t d = in.shape().back();
  const size_t rows = in.size() / d;
  SEQFM_CHECK_EQ(out->size(), rows);
  const float* x = in.data();
  float* y = out->data();
  util::ParallelFor(rows, GrainForRows(d, kEwGrain), [=](size_t r0,
                                                         size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      const float* xr = x + r * d;
      float acc = 0.0f;
      for (size_t j = 0; j < d; ++j) acc += xr[j];
      y[r] = acc;
    }
  });
}

float SumAll(const Tensor& in) {
  // Deliberately serial: a parallel reduction would make the result depend
  // on the chunking, breaking bit-for-bit thread-count invariance.
  float acc = 0.0f;
  for (size_t i = 0; i < in.size(); ++i) acc += in.data()[i];
  return acc;
}

}  // namespace tensor
}  // namespace seqfm
