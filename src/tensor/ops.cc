#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace seqfm {
namespace tensor {

namespace {

// C[m,n] (+)= A[m,k] * B[k,n], all row-major, ikj loop order so that the
// inner loop streams both B and C rows (auto-vectorizes well).
void GemmNN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[m,n] (+)= A[m,k] * B^T where B is [n,k]: rows of A dot rows of B.
void GemmNT(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, bool accumulate) {
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  }
}

// C[m,n] (+)= A^T * B where A is [k,m], B is [k,n].
void GemmTN(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0f);
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[m,n] (+)= A^T * B^T where A is [k,m], B is [n,k].
void GemmTT(const float* a, const float* b, float* c, size_t m, size_t k,
            size_t n, bool accumulate) {
  for (size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
      if (accumulate) {
        crow[j] += acc;
      } else {
        crow[j] = acc;
      }
    }
  }
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  SEQFM_CHECK(a.SameShape(b))
      << "shape mismatch: " << a.ToString(0) << " vs " << b.ToString(0);
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n, bool trans_a, bool trans_b, bool accumulate) {
  if (!trans_a && !trans_b) {
    GemmNN(a, b, c, m, k, n, accumulate);
  } else if (!trans_a && trans_b) {
    GemmNT(a, b, c, m, k, n, accumulate);
  } else if (trans_a && !trans_b) {
    GemmTN(a, b, c, m, k, n, accumulate);
  } else {
    GemmTT(a, b, c, m, k, n, accumulate);
  }
}

void MatMul(const Tensor& a, const Tensor& b, Tensor* out, bool trans_a,
            bool trans_b, bool accumulate) {
  SEQFM_CHECK_EQ(a.rank(), 2u);
  SEQFM_CHECK_EQ(b.rank(), 2u);
  const size_t m = trans_a ? a.dim(1) : a.dim(0);
  const size_t ka = trans_a ? a.dim(0) : a.dim(1);
  const size_t kb = trans_b ? b.dim(1) : b.dim(0);
  const size_t n = trans_b ? b.dim(0) : b.dim(1);
  SEQFM_CHECK_EQ(ka, kb);
  SEQFM_CHECK_EQ(out->rank(), 2u);
  SEQFM_CHECK_EQ(out->dim(0), m);
  SEQFM_CHECK_EQ(out->dim(1), n);
  Gemm(a.data(), b.data(), out->data(), m, ka, n, trans_a, trans_b, accumulate);
}

void BatchedMatMul(const Tensor& a, const Tensor& b, Tensor* out, bool trans_a,
                   bool trans_b, bool accumulate) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(b.rank(), 3u);
  SEQFM_CHECK_EQ(a.dim(0), b.dim(0));
  const size_t batch = a.dim(0);
  const size_t m = trans_a ? a.dim(2) : a.dim(1);
  const size_t ka = trans_a ? a.dim(1) : a.dim(2);
  const size_t kb = trans_b ? b.dim(2) : b.dim(1);
  const size_t n = trans_b ? b.dim(1) : b.dim(2);
  SEQFM_CHECK_EQ(ka, kb);
  SEQFM_CHECK_EQ(out->rank(), 3u);
  SEQFM_CHECK_EQ(out->dim(0), batch);
  SEQFM_CHECK_EQ(out->dim(1), m);
  SEQFM_CHECK_EQ(out->dim(2), n);
  for (size_t i = 0; i < batch; ++i) {
    Gemm(a.BatchData(i), b.BatchData(i), out->BatchData(i), m, ka, n, trans_a,
         trans_b, accumulate);
  }
}

void BatchedMatMulShared(const Tensor& a, const Tensor& w, Tensor* out,
                         bool trans_w, bool accumulate) {
  SEQFM_CHECK_EQ(a.rank(), 3u);
  SEQFM_CHECK_EQ(w.rank(), 2u);
  const size_t rows = a.dim(0) * a.dim(1);
  const size_t k = a.dim(2);
  const size_t kw = trans_w ? w.dim(1) : w.dim(0);
  const size_t n = trans_w ? w.dim(0) : w.dim(1);
  SEQFM_CHECK_EQ(k, kw);
  SEQFM_CHECK_EQ(out->rank(), 3u);
  SEQFM_CHECK_EQ(out->dim(0), a.dim(0));
  SEQFM_CHECK_EQ(out->dim(1), a.dim(1));
  SEQFM_CHECK_EQ(out->dim(2), n);
  Gemm(a.data(), w.data(), out->data(), rows, k, n, /*trans_a=*/false, trans_w,
       accumulate);
}

void SoftmaxLastDim(const Tensor& in, const Tensor* mask, Tensor* out) {
  SEQFM_CHECK(in.SameShape(*out));
  const size_t cols = in.shape().back();
  const size_t rows = in.size() / cols;
  size_t mask_rows = 0;
  const float* mask_data = nullptr;
  if (mask != nullptr) {
    SEQFM_CHECK_EQ(mask->rank(), 2u);
    SEQFM_CHECK_EQ(mask->dim(1), cols);
    mask_rows = mask->dim(0);
    mask_data = mask->data();
    // The mask is broadcast over the leading batch dimension; the number of
    // attention rows per batch item must equal the mask's row count.
    SEQFM_CHECK_EQ(rows % mask_rows, 0u);
  }
  const float* src = in.data();
  float* dst = out->data();
  for (size_t r = 0; r < rows; ++r) {
    const float* x = src + r * cols;
    float* y = dst + r * cols;
    const float* mrow =
        mask_data ? mask_data + (r % mask_rows) * cols : nullptr;
    float max_val = -std::numeric_limits<float>::infinity();
    for (size_t j = 0; j < cols; ++j) {
      const float v = x[j] + (mrow ? mrow[j] : 0.0f);
      if (v > max_val) max_val = v;
    }
    // A fully masked row would yield max == -inf; fall back to uniform zeros.
    if (!std::isfinite(max_val)) {
      std::fill(y, y + cols, 0.0f);
      continue;
    }
    float total = 0.0f;
    for (size_t j = 0; j < cols; ++j) {
      const float v = x[j] + (mrow ? mrow[j] : 0.0f);
      y[j] = std::isfinite(v) ? std::exp(v - max_val) : 0.0f;
      total += y[j];
    }
    const float inv = 1.0f / total;
    for (size_t j = 0; j < cols; ++j) y[j] *= inv;
  }
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  CheckSameShape(a, *out);
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) out->data()[i] = a.data()[i] + b.data()[i];
}

void Sub(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  CheckSameShape(a, *out);
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) out->data()[i] = a.data()[i] - b.data()[i];
}

void Mul(const Tensor& a, const Tensor& b, Tensor* out) {
  CheckSameShape(a, b);
  CheckSameShape(a, *out);
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) out->data()[i] = a.data()[i] * b.data()[i];
}

void Relu(const Tensor& in, Tensor* out) {
  CheckSameShape(in, *out);
  const size_t n = in.size();
  for (size_t i = 0; i < n; ++i)
    out->data()[i] = in.data()[i] > 0.0f ? in.data()[i] : 0.0f;
}

void Sigmoid(const Tensor& in, Tensor* out) {
  CheckSameShape(in, *out);
  const size_t n = in.size();
  for (size_t i = 0; i < n; ++i) out->data()[i] = StableSigmoid(in.data()[i]);
}

void Tanh(const Tensor& in, Tensor* out) {
  CheckSameShape(in, *out);
  const size_t n = in.size();
  for (size_t i = 0; i < n; ++i) out->data()[i] = std::tanh(in.data()[i]);
}

void AddBiasLastDim(const Tensor& in, const Tensor& bias, Tensor* out) {
  CheckSameShape(in, *out);
  SEQFM_CHECK_EQ(bias.rank(), 1u);
  const size_t d = in.shape().back();
  SEQFM_CHECK_EQ(bias.dim(0), d);
  const size_t rows = in.size() / d;
  for (size_t r = 0; r < rows; ++r) {
    const float* x = in.data() + r * d;
    float* y = out->data() + r * d;
    for (size_t j = 0; j < d; ++j) y[j] = x[j] + bias.at(j);
  }
}

void SumAxis1(const Tensor& in, float scale, Tensor* out, bool accumulate) {
  SEQFM_CHECK_EQ(in.rank(), 3u);
  SEQFM_CHECK_EQ(out->rank(), 2u);
  SEQFM_CHECK_EQ(out->dim(0), in.dim(0));
  SEQFM_CHECK_EQ(out->dim(1), in.dim(2));
  const size_t batch = in.dim(0), rows = in.dim(1), d = in.dim(2);
  if (!accumulate) out->Zero();
  for (size_t b = 0; b < batch; ++b) {
    const float* src = in.BatchData(b);
    float* dst = out->data() + b * d;
    for (size_t i = 0; i < rows; ++i) {
      const float* row = src + i * d;
      for (size_t j = 0; j < d; ++j) dst[j] += scale * row[j];
    }
  }
}

void SumLastDim(const Tensor& in, Tensor* out) {
  const size_t d = in.shape().back();
  const size_t rows = in.size() / d;
  SEQFM_CHECK_EQ(out->size(), rows);
  for (size_t r = 0; r < rows; ++r) {
    const float* x = in.data() + r * d;
    float acc = 0.0f;
    for (size_t j = 0; j < d; ++j) acc += x[j];
    out->data()[r] = acc;
  }
}

float SumAll(const Tensor& in) {
  float acc = 0.0f;
  for (size_t i = 0; i < in.size(); ++i) acc += in.data()[i];
  return acc;
}

}  // namespace tensor
}  // namespace seqfm
