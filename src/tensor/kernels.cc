#include "tensor/kernels.h"

#include <algorithm>

#include "tensor/kernels_inl.h"
#include "util/logging.h"

namespace seqfm {
namespace tensor {
namespace kernels {

namespace {

// Register-tile height and cache-block width of the scalar GEMM microkernel.
// These only shape the traversal; every C element still accumulates its k
// products in ascending order into one private accumulator, so the blocking
// is invisible in the result bits (see tensor/ops.cc).
constexpr size_t kMr = 4;
constexpr size_t kNc = 512;

inline void StoreRow(const float* acc, float* crow, size_t jn,
                     bool accumulate) {
  if (accumulate) {
    for (size_t j = 0; j < jn; ++j) crow[j] += acc[j];
  } else {
    for (size_t j = 0; j < jn; ++j) crow[j] = acc[j];
  }
}

// Rows [0, rows) of `arows` ([rows, k] contiguous) times non-transposed B
// ([k, n]), written to the matching rows of C. Streams a kNc-wide block of B
// per pass; four C rows share each B row load. Historical kernel from
// tensor/ops.cc, unchanged — the order-preserving scalar reference the AVX2
// column-vectorized version must match bit-for-bit.
void GemmRowsBNormalScalar(const float* arows, const float* b, float* crows,
                           size_t rows, size_t k, size_t n, bool accumulate) {
  float acc[kMr * kNc];
  for (size_t j0 = 0; j0 < n; j0 += kNc) {
    const size_t jn = std::min(n - j0, kNc);
    size_t i = 0;
    for (; i + kMr <= rows; i += kMr) {
      std::fill(acc, acc + kMr * jn, 0.0f);
      const float* a0 = arows + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      for (size_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j0;
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        float* r0 = acc;
        float* r1 = acc + jn;
        float* r2 = acc + 2 * jn;
        float* r3 = acc + 3 * jn;
        for (size_t j = 0; j < jn; ++j) {
          r0[j] += v0 * brow[j];
          r1[j] += v1 * brow[j];
          r2[j] += v2 * brow[j];
          r3[j] += v3 * brow[j];
        }
      }
      for (size_t r = 0; r < kMr; ++r) {
        StoreRow(acc + r * jn, crows + (i + r) * n + j0, jn, accumulate);
      }
    }
    for (; i < rows; ++i) {
      std::fill(acc, acc + jn, 0.0f);
      const float* ar = arows + i * k;
      for (size_t p = 0; p < k; ++p) {
        const float av = ar[p];
        const float* brow = b + p * n + j0;
        for (size_t j = 0; j < jn; ++j) acc[j] += av * brow[j];
      }
      StoreRow(acc, crows + i * n + j0, jn, accumulate);
    }
  }
}

// Rows of A times transposed B (stored [n, k]): one lane-blocked dot product
// per output element (the kernel-layer reduction order), register-tiled so
// four A rows share each B row pass.
void GemmRowsBTransScalar(const float* arows, const float* b, float* crows,
                          size_t rows, size_t k, size_t n, bool accumulate) {
  size_t i = 0;
  for (; i + kMr <= rows; i += kMr) {
    const float* a0 = arows + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* crow = crows + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float l0[kLanes] = {0.0f}, l1[kLanes] = {0.0f}, l2[kLanes] = {0.0f},
            l3[kLanes] = {0.0f};
      size_t p = 0;
      for (; p + kLanes <= k; p += kLanes) {
        for (size_t l = 0; l < kLanes; ++l) {
          const float bv = brow[p + l];
          l0[l] += a0[p + l] * bv;
          l1[l] += a1[p + l] * bv;
          l2[l] += a2[p + l] * bv;
          l3[l] += a3[p + l] * bv;
        }
      }
      for (size_t l = 0; p < k; ++p, ++l) {
        const float bv = brow[p];
        l0[l] += a0[p] * bv;
        l1[l] += a1[p] * bv;
        l2[l] += a2[p] * bv;
        l3[l] += a3[p] * bv;
      }
      const float s0 = CombineLanesSum(l0);
      const float s1 = CombineLanesSum(l1);
      const float s2 = CombineLanesSum(l2);
      const float s3 = CombineLanesSum(l3);
      if (accumulate) {
        crow[j] += s0;
        crow[n + j] += s1;
        crow[2 * n + j] += s2;
        crow[3 * n + j] += s3;
      } else {
        crow[j] = s0;
        crow[n + j] = s1;
        crow[2 * n + j] = s2;
        crow[3 * n + j] = s3;
      }
    }
  }
  for (; i < rows; ++i) {
    const float* ar = arows + i * k;
    float* crow = crows + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float s = ScalarDot(ar, b + j * k, k);
      if (accumulate) {
        crow[j] += s;
      } else {
        crow[j] = s;
      }
    }
  }
}

const KernelTable kScalarTable = {
    /*dot=*/ScalarDot,
    /*reduce_sum=*/ScalarReduceSum,
    /*reduce_sum_sq_diff=*/ScalarReduceSumSqDiff,
    /*reduce_max_add=*/ScalarReduceMaxAdd,
    /*add=*/ScalarAdd,
    /*sub=*/ScalarSub,
    /*mul=*/ScalarMul,
    /*madd=*/ScalarMadd,
    /*axpy=*/ScalarAxpy,
    /*scale=*/ScalarScale,
    /*scale_inplace=*/ScalarScaleInPlace,
    /*relu=*/ScalarRelu,
    /*exp_map=*/ScalarExpMap,
    /*sigmoid=*/ScalarSigmoidMap,
    /*tanh=*/ScalarTanhMap,
    /*softmax_exp_sum=*/ScalarSoftmaxExpSum,
    /*layer_norm_row=*/ScalarLayerNormRow,
    /*gemm_rows_b_normal=*/GemmRowsBNormalScalar,
    /*gemm_rows_b_trans=*/GemmRowsBTransScalar,
    /*name=*/"scalar",
};

}  // namespace

#if defined(SEQFM_HAVE_AVX2)
// Defined in kernels_avx2.cc (compiled with -mavx2 -mfma -ffp-contract=off).
const KernelTable* Avx2TableOrNull();
#else
static const KernelTable* Avx2TableOrNull() { return nullptr; }
#endif

bool Avx2KernelsAvailable() {
  return util::CpuHasAvx2() && Avx2TableOrNull() != nullptr;
}

const KernelTable& Table(util::SimdLevel level) {
  if (level == util::SimdLevel::kAvx2) {
    if (Avx2KernelsAvailable()) return *Avx2TableOrNull();
    static const bool warned_once = [] {
      SEQFM_LOG(Warning)
          << "AVX2 kernels requested but unavailable "
          << "(not compiled in or CPU lacks avx2+fma); using scalar";
      return true;
    }();
    (void)warned_once;
  }
  return kScalarTable;
}

const KernelTable& Active() { return Table(util::ActiveSimdLevel()); }

}  // namespace kernels
}  // namespace tensor
}  // namespace seqfm
