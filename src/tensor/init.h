#ifndef SEQFM_TENSOR_INIT_H_
#define SEQFM_TENSOR_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace seqfm {
namespace tensor {

/// Fills \p t with N(0, stddev^2) draws.
void FillNormal(Tensor* t, Rng* rng, float stddev = 0.01f);

/// Fills \p t with U(-bound, bound) draws.
void FillUniform(Tensor* t, Rng* rng, float bound);

/// Xavier/Glorot uniform initialization for a rank-2 weight [fan_in, fan_out]:
/// U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))).
void FillXavier(Tensor* t, Rng* rng);

}  // namespace tensor
}  // namespace seqfm

#endif  // SEQFM_TENSOR_INIT_H_
