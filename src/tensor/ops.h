#ifndef SEQFM_TENSOR_OPS_H_
#define SEQFM_TENSOR_OPS_H_

#include <cmath>
#include <cstddef>

#include "tensor/tensor.h"

namespace seqfm {
namespace tensor {

/// Forward compute kernels shared by the autograd layer. All kernels take an
/// \p accumulate flag: when true they add into the output (used for gradient
/// accumulation), otherwise they overwrite it.
///
/// Raw GEMM core: C[m,n] (+)= A op B with optional transposition.
///   trans_a == false: A is [m,k] row-major; true: A is [k,m] and used as A^T.
///   trans_b == false: B is [k,n] row-major; true: B is [n,k] and used as B^T.
///
/// The kernel is cache-blocked, register-tiled, and dispatches row chunks of
/// C across the global util::ThreadPool once the problem is large enough.
/// Each output element sums its k products in ascending order into a private
/// accumulator added to C exactly once, so results are bit-for-bit identical
/// to GemmReference for every thread count.
///
/// Degenerate sizes are handled explicitly: m == 0 or n == 0 is a no-op and
/// k == 0 is an empty sum (C is zeroed unless accumulating). Null pointers
/// with non-degenerate sizes abort.
void Gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n, bool trans_a, bool trans_b, bool accumulate);

/// Naive single-threaded triple-loop GEMM with the same contract as Gemm.
/// The comparison oracle for tests and the baseline for bench_micro_ops.
void GemmReference(const float* a, const float* b, float* c, size_t m,
                   size_t k, size_t n, bool trans_a, bool trans_b,
                   bool accumulate);

/// C = A · B for rank-2 tensors; shape-checked wrappers over Gemm.
void MatMul(const Tensor& a, const Tensor& b, Tensor* out,
            bool trans_a = false, bool trans_b = false,
            bool accumulate = false);

/// Batched GEMM over rank-3 tensors: out[i] (+)= A[i] op B[i] per batch item.
void BatchedMatMul(const Tensor& a, const Tensor& b, Tensor* out,
                   bool trans_a = false, bool trans_b = false,
                   bool accumulate = false);

/// out[i] (+)= A[i] · W (rank-3 lhs, shared rank-2 rhs). Equivalent to
/// flattening A to [batch*rows, k], provided as a convenience.
void BatchedMatMulShared(const Tensor& a, const Tensor& w, Tensor* out,
                         bool trans_w = false, bool accumulate = false);

/// Row-wise softmax over the last dimension. If \p mask is non-null it must
/// point to a [rows_per_batch x cols] additive mask (0 or -inf style values)
/// that is broadcast over the leading batch dimension before normalizing.
/// Works for rank-2 ([rows, cols]) and rank-3 ([batch, rows, cols]) input.
void SoftmaxLastDim(const Tensor& in, const Tensor* mask, Tensor* out);

/// Elementwise kernels (same-shape in/out).
void Add(const Tensor& a, const Tensor& b, Tensor* out);
void Sub(const Tensor& a, const Tensor& b, Tensor* out);
void Mul(const Tensor& a, const Tensor& b, Tensor* out);
void Relu(const Tensor& in, Tensor* out);
void Sigmoid(const Tensor& in, Tensor* out);
void Tanh(const Tensor& in, Tensor* out);

/// Broadcast-add a rank-1 bias of size d over the last dimension.
void AddBiasLastDim(const Tensor& in, const Tensor& bias, Tensor* out);

/// Reductions.
/// Sums rank-3 [batch, rows, cols] over rows -> [batch, cols], scaled.
void SumAxis1(const Tensor& in, float scale, Tensor* out,
              bool accumulate = false);
/// Sums over the last dimension: [.., d] -> [.., 1] semantics, emitted as a
/// rank-2 [rows, 1] tensor for rank-2 input.
void SumLastDim(const Tensor& in, Tensor* out);
/// Sum of all elements.
float SumAll(const Tensor& in);

/// Numerically stable sigmoid for scalars.
inline float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

/// log(sigmoid(x)) computed stably.
inline float LogSigmoid(float x) {
  // log sigmoid(x) = -log(1 + e^{-x}) = min(x,0) - log(1 + e^{-|x|})
  const float m = x < 0.0f ? x : 0.0f;
  return m - std::log1p(std::exp(-std::abs(x)));
}

}  // namespace tensor
}  // namespace seqfm

#endif  // SEQFM_TENSOR_OPS_H_
