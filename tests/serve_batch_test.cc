// Lockdown suite for request-batched serving (PR 3 additions to src/serve/):
//   - serve::ContextCache LRU semantics: hit/miss/eviction/invalidation
//     counters, byte budget, key discrimination, oversize entries;
//   - cached factored scoring: bit-for-bit identical to the taped batched
//     forward, stale-context invalidation after checkpoint reloads;
//   - serve::BatchServer: fused multi-user waves equal to Predictor::TopK,
//     concurrent submission, generic-model fallback, quiesced reloads;
//   - serving edge cases shared by all paths: empty candidate list, k == 0,
//     k > catalog, duplicate candidates, empty/single-item histories.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "autograd/variable.h"
#include "baselines/registry.h"
#include "core/seqfm.h"
#include "data/dataset.h"
#include "nn/module.h"
#include "serve/checkpoint.h"
#include "serve/context_cache.h"
#include "serve/predictor.h"
#include "serve/server.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace seqfm {
namespace {

constexpr size_t kSeqLen = 6;

data::FeatureSpace SmallSpace() { return data::FeatureSpace(5, 9); }

core::SeqFmConfig SmallSeqFmConfig(uint64_t seed = 321) {
  core::SeqFmConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.ffn_layers = 2;
  cfg.keep_prob = 1.0f;
  cfg.seed = seed;
  return cfg;
}

/// Examples covering empty, single-item, short, and overflowing histories,
/// plus a duplicate (user, history) pair for cache-hit coverage.
std::vector<data::SequenceExample> TestExamples() {
  std::vector<data::SequenceExample> examples(6);
  examples[0] = {/*user=*/0, /*target=*/4, /*rating=*/1.0f,
                 {1, 2, 3, 0, 5, 6, 7, 8}};  // longer than kSeqLen
  examples[1] = {2, 6, 0.5f, {5}};           // single-item history
  examples[2] = {3, 0, 2.0f, {}};            // cold start
  examples[3] = {4, 8, 4.0f, {8, 7, 6}};
  examples[4] = {0, 2, 1.0f, {1, 2, 3, 0, 5, 6, 7, 8}};  // same ctx as [0]
  examples[5] = {2, 1, 0.5f, {5, 5}};        // same user as [1], new history
  return examples;
}

/// Taped reference: Model::Score over the same micro-batching the serving
/// paths use — the bit-for-bit ground truth.
std::vector<float> TapedScores(core::Model* model,
                               const data::BatchBuilder& builder,
                               const data::SequenceExample& ex,
                               const std::vector<int32_t>& candidates,
                               size_t batch_size = 4) {
  std::vector<float> scores;
  for (size_t start = 0; start < candidates.size(); start += batch_size) {
    const size_t end = std::min(candidates.size(), start + batch_size);
    std::vector<const data::SequenceExample*> repeated(end - start, &ex);
    std::vector<int32_t> chunk(candidates.begin() + start,
                               candidates.begin() + end);
    data::Batch batch = builder.Build(repeated, &chunk);
    autograd::Variable out = model->Score(batch, /*training=*/false);
    for (size_t i = 0; i < end - start; ++i) {
      scores.push_back(out.value().data()[i]);
    }
  }
  return scores;
}

std::vector<int32_t> FullCatalog(const data::FeatureSpace& space) {
  std::vector<int32_t> catalog;
  for (size_t i = 0; i < space.num_objects(); ++i) {
    catalog.push_back(static_cast<int32_t>(i));
  }
  return catalog;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectBitEqual(const std::vector<float>& a, const std::vector<float>& b,
                    const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << context;
  }
}

/// A synthetic context whose ApproxBytes is dominated by one tensor of
/// \p floats elements — lets cache tests control entry cost exactly.
serve::ContextCache::ContextPtr MakeContext(size_t floats) {
  auto ctx = std::make_shared<core::SharedContext>();
  ctx->h_dyn = autograd::Variable::Constant(
      tensor::Tensor::Zeros({1, floats}));
  return ctx;
}

// ---------------------------------------------------------------------------
// ContextCache unit tests
// ---------------------------------------------------------------------------

TEST(ContextCacheTest, HitMissCountersAndMemoization) {
  serve::ContextCache cache(1 << 20);
  std::atomic<int> computes{0};
  auto compute = [&]() {
    ++computes;
    return MakeContext(16);
  };
  const std::vector<int32_t> ids = {1, 2, 3, -1, -1, -1};
  auto first = cache.GetOrCompute(7, ids, compute);
  auto second = cache.GetOrCompute(7, ids, compute);
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(first.get(), second.get());  // memoized, not recomputed
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ContextCacheTest, KeyDistinguishesUserAndHistory) {
  serve::ContextCache cache(1 << 20);
  std::atomic<int> computes{0};
  auto compute = [&]() {
    ++computes;
    return MakeContext(16);
  };
  const std::vector<int32_t> ids_a = {1, 2, 3};
  const std::vector<int32_t> ids_b = {1, 2, 4};
  cache.GetOrCompute(7, ids_a, compute);
  cache.GetOrCompute(8, ids_a, compute);  // same history, different user
  cache.GetOrCompute(7, ids_b, compute);  // same user, different history
  EXPECT_EQ(computes.load(), 3);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ContextCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Each entry costs ~4 KiB of tensor payload (+ small overhead); a 10 KiB
  // budget holds two entries at most.
  serve::ContextCache cache(10 * 1024);
  auto compute = [] { return MakeContext(1024); };
  const std::vector<int32_t> a = {1}, b = {2}, c = {3};
  cache.GetOrCompute(0, a, compute);
  cache.GetOrCompute(0, b, compute);
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.GetOrCompute(0, a, compute);  // touch a => b becomes LRU
  cache.GetOrCompute(0, c, compute);  // evicts b
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, stats.byte_budget);
  // a survived (hit), b was evicted (miss), c is resident (hit).
  cache.GetOrCompute(0, a, compute);
  cache.GetOrCompute(0, c, compute);
  EXPECT_EQ(cache.stats().hits, 3u);
  cache.GetOrCompute(0, b, compute);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(ContextCacheTest, OversizeEntryServedButNotCached) {
  serve::ContextCache cache(1024);  // smaller than one 4 KiB context
  auto compute = [] { return MakeContext(1024); };
  const std::vector<int32_t> ids = {1};
  auto ctx = cache.GetOrCompute(0, ids, compute);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  cache.GetOrCompute(0, ids, compute);  // still a miss: nothing was cached
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ContextCacheTest, InvalidateDropsEverything) {
  serve::ContextCache cache(1 << 20);
  auto compute = [] { return MakeContext(64); };
  cache.GetOrCompute(0, {1}, compute);
  cache.GetOrCompute(1, {2}, compute);
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.Invalidate();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.invalidations, 1u);
  cache.GetOrCompute(0, {1}, compute);
  EXPECT_EQ(cache.stats().misses, 3u);  // re-fetch after invalidation misses
}

TEST(ContextCacheTest, ReinsertionAfterInvalidateDoesNotLeakBytes) {
  serve::ContextCache cache(1 << 20);
  const std::vector<int32_t> ids = {1, 2, 3};
  // compute() runs outside the cache lock, so a checkpoint reload can
  // invalidate mid-compute and the wave's entry is then (re)inserted into
  // the emptied cache — the racing-overwrite shape from the field. Repeating
  // the race must leave exactly one entry's worth of bytes, never an
  // accumulating residue.
  auto racing_compute = [&]() {
    cache.Invalidate();
    return MakeContext(64);
  };
  cache.GetOrCompute(7, ids, racing_compute);
  const auto once = cache.stats();
  ASSERT_EQ(once.entries, 1u);
  ASSERT_GT(once.bytes, 0u);
  for (int i = 0; i < 3; ++i) {
    cache.Invalidate();  // re-arm: the resident key would otherwise just hit
    cache.GetOrCompute(7, ids, racing_compute);
  }
  const auto again = cache.stats();
  EXPECT_EQ(again.entries, 1u);
  EXPECT_EQ(again.bytes, once.bytes) << "bytes leaked across re-insertions";
  // A plain re-lookup of the resident key must not double-charge either.
  cache.GetOrCompute(7, ids, [] { return MakeContext(64); });
  EXPECT_EQ(cache.stats().bytes, once.bytes);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ContextCacheTest, EntryCostChargesTheIdPayload) {
  // Same context tensors, histories of different lengths: the longer id key
  // must cost more, since the entry stores its own copy of the ids (the
  // header promises "ids + entry overhead included").
  serve::ContextCache short_ids(1 << 20);
  serve::ContextCache long_ids(1 << 20);
  short_ids.GetOrCompute(0, std::vector<int32_t>(4, 1),
                         [] { return MakeContext(64); });
  long_ids.GetOrCompute(0, std::vector<int32_t>(1004, 1),
                        [] { return MakeContext(64); });
  EXPECT_GE(long_ids.stats().bytes,
            short_ids.stats().bytes + 1000 * sizeof(int32_t));
}

TEST(ContextCacheTest, KeyHashMatchesFnvComposition) {
  const std::vector<int32_t> ids = {4, -1, 7};
  const int32_t user = 3;
  uint64_t expected = util::FnvUpdate(util::kFnv64Offset, &user, sizeof(user));
  expected = util::FnvUpdate(expected, ids.data(),
                             ids.size() * sizeof(int32_t));
  EXPECT_EQ(serve::ContextCache::KeyHash(user, ids), expected);
}

// ---------------------------------------------------------------------------
// Cached factored scoring: parity + invalidation
// ---------------------------------------------------------------------------

TEST(CachedPredictorTest, CachedScoresBitExactAcrossRepeats) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  const auto catalog = FullCatalog(space);

  serve::PredictorOptions opts;
  opts.micro_batch = 4;
  opts.context_cache_bytes = 1 << 20;
  serve::Predictor cached(&model, &builder, opts);
  ASSERT_TRUE(cached.fast_path_active());
  ASSERT_NE(cached.context_cache(), nullptr);

  for (size_t threads : {1u, 2u}) {
    util::SetGlobalThreads(threads);
    for (const auto& ex : TestExamples()) {
      const auto ref = TapedScores(&model, builder, ex, catalog);
      // Twice per example: the second pass must come from the cache and
      // still be bit-identical.
      ExpectBitEqual(cached.ScoreCandidates(ex, catalog), ref, "cold");
      ExpectBitEqual(cached.ScoreCandidates(ex, catalog), ref, "warm");
    }
  }
  util::SetGlobalThreads(1);

  const auto stats = cached.context_cache()->stats();
  // 2 threads x 6 examples x 2 passes = 24 lookups; examples[4] shares
  // examples[0]'s context, so only 5 distinct contexts exist and every
  // lookup after the five cold thread-1 misses hits.
  EXPECT_EQ(stats.hits + stats.misses, 24u);
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.hits, 19u);
}

TEST(CachedPredictorTest, ReloadCheckpointInvalidatesStaleContexts) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm served(space, SmallSeqFmConfig(/*seed=*/321));
  core::SeqFm other(space, SmallSeqFmConfig(/*seed=*/999));
  const auto catalog = FullCatalog(space);
  const auto ex = TestExamples()[0];

  const std::string path = TempPath("stale_ctx_ckpt.bin");
  ASSERT_TRUE(serve::Checkpoint::Save(other, path).ok());

  serve::PredictorOptions opts;
  opts.context_cache_bytes = 1 << 20;
  serve::Predictor predictor(&served, &builder, opts);

  const auto before = predictor.ScoreCandidates(ex, catalog);  // caches ctx
  ASSERT_TRUE(predictor.ReloadCheckpoint(path).ok());
  const auto after = predictor.ScoreCandidates(ex, catalog);

  // After the reload the served model holds `other`'s parameters; scores
  // must match a taped forward through them, not the stale cached context.
  ExpectBitEqual(after, TapedScores(&other, builder, ex, catalog),
                 "post-reload parity");
  EXPECT_NE(std::memcmp(before.data(), after.data(),
                        before.size() * sizeof(float)),
            0)
      << "reload should change scores (different parameters)";
  EXPECT_EQ(predictor.context_cache()->stats().invalidations, 1u);
  std::remove(path.c_str());
}

TEST(CachedPredictorTest, TopKAllUsesPrebuiltCatalog) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  serve::Predictor predictor(&model, &builder, {});
  const auto ex = TestExamples()[3];

  const auto via_all = predictor.TopKAll(ex, 4);
  const auto via_manual = predictor.TopK(ex, FullCatalog(space), 4);
  ASSERT_EQ(via_all.size(), via_manual.size());
  for (size_t i = 0; i < via_all.size(); ++i) {
    EXPECT_EQ(via_all[i].item, via_manual[i].item);
    EXPECT_EQ(std::memcmp(&via_all[i].score, &via_manual[i].score,
                          sizeof(float)),
              0);
  }
}

// ---------------------------------------------------------------------------
// Predictor / shared serving edge cases
// ---------------------------------------------------------------------------

TEST(ServingEdgeCaseTest, EmptyCandidateListAndZeroK) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  serve::PredictorOptions opts;
  opts.context_cache_bytes = 1 << 20;
  serve::Predictor predictor(&model, &builder, opts);
  const auto ex = TestExamples()[1];

  EXPECT_TRUE(predictor.ScoreCandidates(ex, {}).empty());
  EXPECT_TRUE(predictor.TopK(ex, {}, 5).empty());
  EXPECT_TRUE(predictor.TopK(ex, {0, 1, 2}, 0).empty());
  EXPECT_TRUE(predictor.TopKAll(ex, 0).empty());
}

TEST(ServingEdgeCaseTest, DuplicateCandidatesKeepBothSlots) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  serve::Predictor predictor(&model, &builder, {});
  const auto ex = TestExamples()[3];

  const std::vector<int32_t> dupes = {5, 5, 3, 5};
  const auto scores = predictor.ScoreCandidates(ex, dupes);
  ASSERT_EQ(scores.size(), 4u);
  // Identical candidates must score bit-identically in every slot.
  EXPECT_EQ(std::memcmp(&scores[0], &scores[1], sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&scores[0], &scores[3], sizeof(float)), 0);
  // Ties break by candidate id, then by position for duplicates of the same
  // id — so the three 5s all survive, in submission order among themselves.
  const auto top = predictor.TopK(ex, dupes, 4);
  ASSERT_EQ(top.size(), 4u);
  int fives = 0;
  for (const auto& item : top) fives += (item.item == 5);
  EXPECT_EQ(fives, 3);
}

TEST(ServingEdgeCaseTest, SelectTopKNaNsSortLast) {
  const std::vector<int32_t> candidates = {10, 11, 12};
  const std::vector<float> scores = {std::nanf(""), 2.0f, 1.0f};
  const auto top = serve::SelectTopK(candidates, scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 11);
  EXPECT_EQ(top[1].item, 12);
  EXPECT_EQ(top[2].item, 10);
}

// ---------------------------------------------------------------------------
// BatchServer
// ---------------------------------------------------------------------------

TEST(BatchServerTest, WaveResultsMatchPredictorTopK) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  const auto catalog = FullCatalog(space);
  const auto examples = TestExamples();

  serve::PredictorOptions opts;
  opts.micro_batch = 4;
  opts.context_cache_bytes = 1 << 20;
  serve::Predictor predictor(&model, &builder, opts);
  serve::Predictor reference(&model, &builder, {});  // uncached, unfused

  for (size_t threads : {1u, 2u}) {
    util::SetGlobalThreads(threads);
    serve::BatchServer server(&predictor, {});
    std::vector<std::future<std::vector<serve::ScoredItem>>> futures;
    std::vector<size_t> ks;
    for (size_t round = 0; round < 3; ++round) {
      for (const auto& ex : examples) {
        const size_t k = 1 + (round + futures.size()) % 5;
        ks.push_back(k);
        futures.push_back(server.Submit(ex, catalog, k));
      }
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      const auto got = futures[i].get();
      const auto want =
          reference.TopK(examples[i % examples.size()], catalog, ks[i]);
      ASSERT_EQ(got.size(), want.size()) << "request " << i;
      for (size_t j = 0; j < got.size(); ++j) {
        EXPECT_EQ(got[j].item, want[j].item) << "request " << i;
        EXPECT_EQ(std::memcmp(&got[j].score, &want[j].score, sizeof(float)),
                  0)
            << "request " << i;
      }
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.requests_admitted, futures.size());
  }
  util::SetGlobalThreads(1);
}

TEST(BatchServerTest, ServesEdgeCaseRequests) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  serve::PredictorOptions opts;
  opts.context_cache_bytes = 1 << 20;
  serve::Predictor predictor(&model, &builder, opts);
  serve::BatchServer server(&predictor, {});
  const auto examples = TestExamples();

  auto empty = server.Submit(examples[0], {}, 5);
  auto zero_k = server.Submit(examples[1], {0, 1, 2}, 0);
  auto clamped = server.Submit(examples[2], {0, 1}, 100);
  auto dupes = server.Submit(examples[3], {5, 5, 3}, 3);
  auto single_history = server.Submit(examples[1], {0, 4, 8}, 2);

  EXPECT_TRUE(empty.get().empty());
  EXPECT_TRUE(zero_k.get().empty());
  EXPECT_EQ(clamped.get().size(), 2u);
  const auto dupe_top = dupes.get();
  ASSERT_EQ(dupe_top.size(), 3u);
  const auto want = predictor.TopK(examples[1], {0, 4, 8}, 2);
  const auto got = single_history.get();
  ASSERT_EQ(got.size(), want.size());
  for (size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].item, want[j].item);
  }
}

TEST(BatchServerTest, ConcurrentSubmittersAllGetCorrectResults) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  const auto catalog = FullCatalog(space);
  const auto examples = TestExamples();

  serve::PredictorOptions opts;
  opts.context_cache_bytes = 1 << 20;
  serve::Predictor predictor(&model, &builder, opts);
  serve::Predictor reference(&model, &builder, {});

  // Precompute references single-threaded (reference shares the model).
  std::vector<std::vector<serve::ScoredItem>> want;
  for (const auto& ex : examples) {
    want.push_back(reference.TopK(ex, catalog, 3));
  }

  util::SetGlobalThreads(2);
  {
    serve::BatchServer server(&predictor, {});
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&, c]() {
        for (int r = 0; r < 8; ++r) {
          const size_t idx = (c + r) % examples.size();
          auto got = server.Submit(examples[idx], catalog, 3).get();
          if (got.size() != want[idx].size()) {
            ++failures;
            continue;
          }
          for (size_t j = 0; j < got.size(); ++j) {
            if (got[j].item != want[idx][j].item ||
                std::memcmp(&got[j].score, &want[idx][j].score,
                            sizeof(float)) != 0) {
              ++failures;
            }
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.stats().requests_served, 32u);
  }
  util::SetGlobalThreads(1);
}

TEST(BatchServerTest, GenericModelsServeThroughTheSameQueue) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  baselines::BaselineConfig cfg;
  cfg.embedding_dim = 8;
  cfg.max_seq_len = kSeqLen;
  cfg.mlp_hidden = 8;
  cfg.keep_prob = 1.0f;
  cfg.seed = 123;
  auto fm = baselines::CreateBaseline("FM", space, cfg).ValueOrDie();
  const auto catalog = FullCatalog(space);

  serve::Predictor predictor(fm.get(), &builder, {});
  ASSERT_FALSE(predictor.fast_path_active());
  serve::BatchServer server(&predictor, {});

  for (const auto& ex : TestExamples()) {
    const auto got = server.Submit(ex, catalog, 4).get();
    const auto want = predictor.TopK(ex, catalog, 4);
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].item, want[j].item);
      EXPECT_EQ(std::memcmp(&got[j].score, &want[j].score, sizeof(float)), 0);
    }
  }
}

TEST(BatchServerTest, ReloadCheckpointServesNewParameters) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm served(space, SmallSeqFmConfig(/*seed=*/321));
  core::SeqFm other(space, SmallSeqFmConfig(/*seed=*/999));
  const auto catalog = FullCatalog(space);
  const auto ex = TestExamples()[0];

  const std::string path = TempPath("server_reload_ckpt.bin");
  ASSERT_TRUE(serve::Checkpoint::Save(other, path).ok());

  serve::PredictorOptions opts;
  opts.context_cache_bytes = 1 << 20;
  serve::Predictor predictor(&served, &builder, opts);
  serve::BatchServer server(&predictor, {});

  (void)server.Submit(ex, catalog, 3).get();  // caches ex's context
  ASSERT_TRUE(server.ReloadCheckpoint(path).ok());
  const auto got = server.Submit(ex, catalog, 3).get();

  const auto ref = TapedScores(&other, builder, ex, catalog);
  const auto want = serve::SelectTopK(catalog, ref, 3);
  ASSERT_EQ(got.size(), want.size());
  for (size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].item, want[j].item);
    EXPECT_EQ(std::memcmp(&got[j].score, &want[j].score, sizeof(float)), 0);
  }
  std::remove(path.c_str());
}

TEST(BatchServerTest, DestructorDrainsQueuedRequests) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  const auto catalog = FullCatalog(space);
  serve::Predictor predictor(&model, &builder, {});

  std::vector<std::future<std::vector<serve::ScoredItem>>> futures;
  {
    serve::BatchServer server(&predictor, {});
    for (int i = 0; i < 16; ++i) {
      futures.push_back(server.Submit(TestExamples()[i % 6], catalog, 2));
    }
  }  // destructor must serve everything before joining
  for (auto& f : futures) {
    EXPECT_EQ(f.get().size(), 2u);
  }
}

TEST(BatchServerTest, SubmitRacingShutdownServesOrFailsCleanly) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  const auto catalog = FullCatalog(space);
  serve::PredictorOptions opts;
  opts.context_cache_bytes = 1 << 20;
  serve::Predictor predictor(&model, &builder, opts);
  const auto ex = TestExamples()[0];

  // Submitters hammer the server while another thread shuts it down
  // mid-traffic. Every future must resolve: either with a real top-k
  // (admitted before the cutoff — Shutdown drains those) or with the clean
  // std::runtime_error (lost the race). A deadlock here fails via test
  // timeout; a dropped promise via std::future_error on get().
  for (int round = 0; round < 4; ++round) {
    serve::BatchServer server(&predictor, {});
    std::atomic<bool> start{false};
    std::atomic<int> served{0}, rejected{0}, broken{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&]() {
        while (!start.load()) std::this_thread::yield();
        for (int r = 0; r < 16; ++r) {
          auto future = server.Submit(ex, catalog, 2);
          try {
            if (future.get().size() == 2) ++served;
          } catch (const std::runtime_error&) {
            ++rejected;  // clean post-shutdown failure
          } catch (const std::future_error&) {
            ++broken;  // promise dropped — the bug this test locks down
          }
        }
      });
    }
    start.store(true);
    // Shut down concurrently with the submitters (round 0 immediately, later
    // rounds after a few waves are likely in flight).
    for (int i = 0; i < round * 100; ++i) std::this_thread::yield();
    server.Shutdown();
    for (auto& t : clients) t.join();
    EXPECT_EQ(served.load() + rejected.load(), 64) << "round " << round;
    EXPECT_EQ(broken.load(), 0) << "round " << round;
    // Shutdown is idempotent, and Submit after it fails without blocking.
    server.Shutdown();
    EXPECT_THROW(server.Submit(ex, catalog, 2).get(), std::runtime_error);
  }
}

TEST(BatchServerTest, ConcurrentShutdownCallsAreSafe) {
  const data::FeatureSpace space = SmallSpace();
  data::BatchBuilder builder(space, kSeqLen);
  core::SeqFm model(space, SmallSeqFmConfig());
  serve::Predictor predictor(&model, &builder, {});
  serve::BatchServer server(&predictor, {});
  auto pending = server.Submit(TestExamples()[0], FullCatalog(space), 3);
  std::vector<std::thread> closers;
  for (int c = 0; c < 4; ++c) {
    closers.emplace_back([&]() { server.Shutdown(); });
  }
  for (auto& t : closers) t.join();
  // Whichever closer won, the admitted request was drained first.
  EXPECT_EQ(pending.get().size(), 3u);
}

TEST(BatchServerDeathTest, NullPredictorDies) {
  EXPECT_DEATH({ serve::BatchServer server(nullptr, {}); }, "null predictor");
}

}  // namespace
}  // namespace seqfm
