#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "optim/optimizer.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace seqfm {
namespace optim {
namespace {

using autograd::Variable;
using tensor::Tensor;

Variable Param(std::vector<float> vals) {
  return Variable::Leaf(
      Tensor::FromVector({vals.size()}, vals).ValueOrDie(), true);
}

void SetGrad(Variable& v, std::vector<float> g) {
  auto& grad = v.mutable_grad();
  for (size_t i = 0; i < g.size(); ++i) grad.at(i) = g[i];
}

TEST(SgdTest, PlainStep) {
  Variable p = Param({1.0f, 2.0f});
  Sgd opt({p}, 0.1f);
  SetGrad(p, {10.0f, -5.0f});
  opt.Step();
  EXPECT_FLOAT_EQ(p.value().at(0), 0.0f);
  EXPECT_FLOAT_EQ(p.value().at(1), 2.5f);
}

TEST(SgdTest, MomentumAccumulates) {
  Variable p = Param({0.0f});
  Sgd opt({p}, 1.0f, /*momentum=*/0.5f);
  SetGrad(p, {1.0f});
  opt.Step();  // vel = 1, p = -1
  EXPECT_FLOAT_EQ(p.value().at(0), -1.0f);
  SetGrad(p, {1.0f});
  opt.Step();  // vel = 1.5, p = -2.5
  EXPECT_FLOAT_EQ(p.value().at(0), -2.5f);
}

TEST(AdagradTest, AdaptiveScalingShrinksSteps) {
  Variable p = Param({0.0f});
  Adagrad opt({p}, 1.0f);
  SetGrad(p, {2.0f});
  opt.Step();  // acc=4, step = 2/2 = 1
  const float after_first = p.value().at(0);
  EXPECT_NEAR(after_first, -1.0f, 1e-4f);
  SetGrad(p, {2.0f});
  opt.Step();  // acc=8, step = 2/sqrt(8)
  EXPECT_NEAR(p.value().at(0), after_first - 2.0f / std::sqrt(8.0f), 1e-4f);
}

TEST(AdamTest, MatchesReferenceForThreeSteps) {
  // Hand-rolled Adam reference on f(w) = w^2 starting from w=1.
  const float lr = 0.1f, b1 = 0.9f, b2 = 0.999f, eps = 1e-8f;
  float w_ref = 1.0f, m = 0.0f, v = 0.0f;
  Variable p = Param({1.0f});
  Adam opt({p}, lr, b1, b2, eps);
  for (int t = 1; t <= 3; ++t) {
    const float g_ref = 2.0f * w_ref;
    m = b1 * m + (1 - b1) * g_ref;
    v = b2 * v + (1 - b2) * g_ref * g_ref;
    const float mhat = m / (1 - std::pow(b1, t));
    const float vhat = v / (1 - std::pow(b2, t));
    w_ref -= lr * mhat / (std::sqrt(vhat) + eps);

    opt.ZeroGrad();
    SetGrad(p, {2.0f * p.value().at(0)});
    opt.Step();
    EXPECT_NEAR(p.value().at(0), w_ref, 1e-5f) << "step " << t;
  }
  EXPECT_EQ(opt.step_count(), 3);
}

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  // With bias correction, |first update| == lr regardless of grad scale.
  for (float g : {0.001f, 1.0f, 1000.0f}) {
    Variable p = Param({0.0f});
    Adam opt({p}, 0.01f);
    SetGrad(p, {g});
    opt.Step();
    EXPECT_NEAR(std::abs(p.value().at(0)), 0.01f, 1e-4f);
  }
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Variable p = Param({0.0f, 0.0f});
  Sgd opt({p}, 1.0f);
  SetGrad(p, {3.0f, 4.0f});  // norm 5
  const float pre = opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(p.grad().at(0), 0.6f, 1e-5f);
  EXPECT_NEAR(p.grad().at(1), 0.8f, 1e-5f);
}

TEST(OptimizerTest, ClipLeavesSmallGradientsAlone) {
  Variable p = Param({0.0f});
  Sgd opt({p}, 1.0f);
  SetGrad(p, {0.5f});
  opt.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(p.grad().at(0), 0.5f);
}

TEST(OptimizerTest, ZeroGradClearsAllParams) {
  Variable a = Param({1.0f});
  Variable b = Param({2.0f});
  Adam opt({a, b}, 0.1f);
  SetGrad(a, {1.0f});
  SetGrad(b, {1.0f});
  opt.ZeroGrad();
  EXPECT_EQ(a.grad().at(0), 0.0f);
  EXPECT_EQ(b.grad().at(0), 0.0f);
}

TEST(StepDecayTest, HalvesOnSchedule) {
  Variable p = Param({0.0f});
  Sgd opt({p}, 1.0f);
  StepDecaySchedule sched(&opt, /*step_epochs=*/2, /*gamma=*/0.5f);
  sched.OnEpochEnd(0);
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  sched.OnEpochEnd(1);
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
  sched.OnEpochEnd(2);
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
  sched.OnEpochEnd(3);
  EXPECT_FLOAT_EQ(opt.lr(), 0.25f);
}

TEST(ConvergenceTest, AdamMinimizesQuadraticBowl) {
  // f(w) = sum (w - target)^2 via autograd end-to-end.
  Rng rng(70);
  Tensor init({8});
  tensor::FillNormal(&init, &rng, 2.0f);
  Variable w = Variable::Leaf(std::move(init), true);
  const std::vector<float> target(8, 0.7f);
  Adam opt({w}, 0.05f);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    Variable pred = autograd::Reshape(w, {8, 1});
    Variable loss = autograd::MseLoss(pred, target);
    if (step == 0) first_loss = loss.value().at(0);
    last_loss = loss.value().at(0);
    autograd::Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last_loss, first_loss * 0.01f);
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(w.value().at(i), 0.7f, 0.05f);
}

}  // namespace
}  // namespace optim
}  // namespace seqfm
