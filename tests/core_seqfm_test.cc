#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "core/seqfm.h"
#include "data/dataset.h"

namespace seqfm {
namespace core {
namespace {

data::Batch MakeBatch(const data::FeatureSpace& space, size_t max_seq_len,
                      std::vector<std::vector<int32_t>> histories,
                      std::vector<int32_t> users,
                      std::vector<int32_t> targets) {
  data::BatchBuilder builder(space, max_seq_len);
  std::vector<data::SequenceExample> examples(users.size());
  std::vector<const data::SequenceExample*> ptrs;
  for (size_t i = 0; i < users.size(); ++i) {
    examples[i].user = users[i];
    examples[i].target = targets[i];
    examples[i].history = histories[i];
    ptrs.push_back(&examples[i]);
  }
  return builder.Build(ptrs);
}

SeqFmConfig SmallConfig() {
  SeqFmConfig cfg;
  cfg.embedding_dim = 8;
  cfg.ffn_layers = 1;
  cfg.max_seq_len = 5;
  cfg.keep_prob = 1.0f;
  cfg.seed = 11;
  return cfg;
}

TEST(SeqFmTest, ScoreShapeAndFiniteness) {
  data::FeatureSpace space(4, 6);
  SeqFm model(space, SmallConfig());
  auto batch = MakeBatch(space, 5, {{0, 1}, {2, 3, 4}}, {0, 1}, {5, 2});
  auto out = model.Score(batch, /*training=*/false);
  ASSERT_EQ(out.value().shape(), (std::vector<size_t>{2, 1}));
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(std::isfinite(out.value().at(i, 0)));
  }
}

TEST(SeqFmTest, EvaluationIsDeterministic) {
  data::FeatureSpace space(4, 6);
  SeqFm model(space, SmallConfig());
  auto batch = MakeBatch(space, 5, {{0, 1, 2}}, {2}, {3});
  auto a = model.Score(batch, false);
  auto b = model.Score(batch, false);
  EXPECT_EQ(a.value().at(0, 0), b.value().at(0, 0));
}

TEST(SeqFmTest, TrainingWithDropoutVaries) {
  data::FeatureSpace space(4, 6);
  SeqFmConfig cfg = SmallConfig();
  cfg.keep_prob = 0.5f;
  SeqFm model(space, cfg);
  auto batch = MakeBatch(space, 5, {{0, 1, 2}}, {2}, {3});
  // Two training passes consume different dropout masks; scores differ with
  // overwhelming probability.
  auto a = model.Score(batch, true);
  auto b = model.Score(batch, true);
  EXPECT_NE(a.value().at(0, 0), b.value().at(0, 0));
}

TEST(SeqFmTest, SameSeedSameInitialization) {
  data::FeatureSpace space(4, 6);
  SeqFm m1(space, SmallConfig());
  SeqFm m2(space, SmallConfig());
  auto batch = MakeBatch(space, 5, {{1, 2}}, {0}, {4});
  EXPECT_EQ(m1.Score(batch, false).value().at(0, 0),
            m2.Score(batch, false).value().at(0, 0));
}

TEST(SeqFmTest, ParameterCountMatchesArchitecture) {
  data::FeatureSpace space(4, 6);
  SeqFmConfig cfg = SmallConfig();
  SeqFm model(space, cfg);
  const size_t d = cfg.embedding_dim;
  const size_t m_s = space.static_dim(), m_d = space.dynamic_dim();
  // embeddings + 3 views * 3 projections + ffn(l * (W + b + gamma + beta))
  // + w0 + w_s + w_d + p.
  const size_t expected = m_s * d + m_d * d + 3 * 3 * d * d +
                          cfg.ffn_layers * (d * d + 3 * d) + 1 + m_s + m_d +
                          3 * d;
  EXPECT_EQ(model.NumParameters(), expected);
}

TEST(SeqFmTest, GradientsReachEveryParameter) {
  data::FeatureSpace space(3, 5);
  SeqFm model(space, SmallConfig());
  auto batch =
      MakeBatch(space, 5, {{0, 1, 2, 3, 4}, {1, 2}}, {0, 2}, {4, 0});
  model.ZeroGrad();
  auto out = model.Score(batch, /*training=*/true);
  autograd::Backward(autograd::SumAll(out));
  size_t with_grad = 0, total = 0;
  for (const auto& [name, p] : model.NamedParameters()) {
    float norm = 0.0f;
    for (size_t i = 0; i < p.grad().size(); ++i) {
      norm += std::abs(p.grad().data()[i]);
    }
    ++total;
    if (norm > 0.0f) ++with_grad;
    // Every weight matrix/bias should receive nonzero gradient here except
    // embedding/linear rows for features absent from the batch.
    if (name.find("embedding") == std::string::npos &&
        name.find("w_static") == std::string::npos &&
        name.find("w_dynamic") == std::string::npos) {
      EXPECT_GT(norm, 0.0f) << name;
    }
  }
  EXPECT_EQ(with_grad, total);
}

// ---------------------------------------------------------------------------
// The paper's structural properties
// ---------------------------------------------------------------------------

TEST(SeqFmTest, StaticViewIgnoresHistoryWhenOthersDisabled) {
  data::FeatureSpace space(4, 6);
  SeqFmConfig cfg = SmallConfig();
  cfg.use_dynamic_view = false;
  cfg.use_cross_view = false;
  SeqFm model(space, cfg);
  auto b1 = MakeBatch(space, 5, {{0, 1, 2}}, {1}, {3});
  auto b2 = MakeBatch(space, 5, {{4, 5}}, {1}, {3});
  // Only the linear term sees dynamic features; zero it to isolate f(x).
  for (auto& [name, p] : model.NamedParameters()) {
    if (name == "w_dynamic") p.mutable_value().Zero();
  }
  EXPECT_NEAR(model.Score(b1, false).value().at(0, 0),
              model.Score(b2, false).value().at(0, 0), 1e-6f);
}

TEST(SeqFmTest, DynamicViewIsOrderSensitive) {
  data::FeatureSpace space(4, 6);
  SeqFmConfig cfg = SmallConfig();
  SeqFm model(space, cfg);
  auto fwd = MakeBatch(space, 5, {{0, 1, 2, 3, 4}}, {1}, {5});
  auto rev = MakeBatch(space, 5, {{4, 3, 2, 1, 0}}, {1}, {5});
  const float a = model.Score(fwd, false).value().at(0, 0);
  const float b = model.Score(rev, false).value().at(0, 0);
  EXPECT_GT(std::abs(a - b), 1e-6f)
      << "a sequence-aware model must distinguish order";
}

TEST(SeqFmTest, SetCategoryModelsWouldNotDistinguishOrderButSeqFmDoes) {
  // Complementary check: identical multiset, different order, non-trivial
  // difference. Guards against accidentally pooling before attention.
  data::FeatureSpace space(2, 8);
  SeqFmConfig cfg = SmallConfig();
  cfg.max_seq_len = 4;
  SeqFm model(space, cfg);
  auto ab = MakeBatch(space, 4, {{1, 2, 3, 4}}, {0}, {7});
  auto ba = MakeBatch(space, 4, {{2, 1, 4, 3}}, {0}, {7});
  EXPECT_NE(model.Score(ab, false).value().at(0, 0),
            model.Score(ba, false).value().at(0, 0));
}

class SeqFmAblationTest : public ::testing::TestWithParam<int> {};

TEST_P(SeqFmAblationTest, EveryAblationProducesFiniteScoresAndGradients) {
  data::FeatureSpace space(3, 5);
  SeqFmConfig cfg = SmallConfig();
  switch (GetParam()) {
    case 0: cfg.use_static_view = false; break;
    case 1: cfg.use_dynamic_view = false; break;
    case 2: cfg.use_cross_view = false; break;
    case 3: cfg.use_residual = false; break;
    case 4: cfg.use_layer_norm = false; break;
    case 5: cfg.mask_padding_keys = true; break;
    case 6: cfg.ffn_layers = 3; break;
    default: break;
  }
  SeqFm model(space, cfg);
  auto batch = MakeBatch(space, 5, {{0, 1}, {}}, {0, 1}, {2, 3});
  auto out = model.Score(batch, true);
  ASSERT_EQ(out.value().size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(std::isfinite(out.value().at(i, 0)));
  }
  autograd::Backward(autograd::SumAll(out));  // must not crash
}

INSTANTIATE_TEST_SUITE_P(AllAblations, SeqFmAblationTest,
                         ::testing::Range(0, 7));

TEST(SeqFmTest, ViewCountReflectsConfig) {
  data::FeatureSpace space(3, 5);
  SeqFmConfig cfg = SmallConfig();
  EXPECT_EQ(SeqFm(space, cfg).num_views(), 3u);
  cfg.use_cross_view = false;
  EXPECT_EQ(SeqFm(space, cfg).num_views(), 2u);
  cfg.use_static_view = false;
  EXPECT_EQ(SeqFm(space, cfg).num_views(), 1u);
}

TEST(SeqFmTest, EmptyHistoryIsHandled) {
  data::FeatureSpace space(3, 5);
  SeqFm model(space, SmallConfig());
  auto batch = MakeBatch(space, 5, {{}}, {0}, {1});
  auto out = model.Score(batch, false);
  EXPECT_TRUE(std::isfinite(out.value().at(0, 0)));
}

TEST(SeqFmTest, PaddingMaskingChangesScores) {
  data::FeatureSpace space(3, 5);
  SeqFmConfig with = SmallConfig();
  with.mask_padding_keys = true;
  SeqFmConfig without = SmallConfig();
  SeqFm m_with(space, with), m_without(space, without);
  // Short history -> padding present -> the extension changes attention.
  auto batch = MakeBatch(space, 5, {{2}}, {1}, {4});
  EXPECT_NE(m_with.Score(batch, false).value().at(0, 0),
            m_without.Score(batch, false).value().at(0, 0));
}

TEST(SeqFmTest, CheckpointRoundTripPreservesScores) {
  data::FeatureSpace space(3, 5);
  SeqFm a(space, SmallConfig());
  SeqFmConfig other = SmallConfig();
  other.seed = 99;
  SeqFm b(space, other);
  auto batch = MakeBatch(space, 5, {{0, 1, 2}}, {1}, {4});
  const float score_a = a.Score(batch, false).value().at(0, 0);
  EXPECT_NE(score_a, b.Score(batch, false).value().at(0, 0));
  const std::string path = "/tmp/seqfm_model_test.bin";
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  EXPECT_EQ(score_a, b.Score(batch, false).value().at(0, 0));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace core
}  // namespace seqfm
