#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"

namespace seqfm {
namespace eval {
namespace {

// ---------------------------------------------------------------------------
// Metric math on hand-computed cases
// ---------------------------------------------------------------------------

TEST(MetricsTest, RankOfFirst) {
  EXPECT_EQ(RankOfFirst({5.0f, 1.0f, 2.0f}), 0u);        // best
  EXPECT_EQ(RankOfFirst({2.0f, 5.0f, 1.0f}), 1u);
  EXPECT_EQ(RankOfFirst({0.0f, 5.0f, 2.0f, 1.0f}), 3u);  // worst
  EXPECT_EQ(RankOfFirst({2.0f, 2.0f, 2.0f}), 0u);        // gt wins ties
}

TEST(MetricsTest, HitAtThreshold) {
  EXPECT_EQ(HitAt(4, 5), 1.0);
  EXPECT_EQ(HitAt(5, 5), 0.0);
  EXPECT_EQ(HitAt(0, 1), 1.0);
}

TEST(MetricsTest, NdcgValues) {
  EXPECT_NEAR(NdcgAt(0, 10), 1.0, 1e-9);                  // 1/log2(2)
  EXPECT_NEAR(NdcgAt(1, 10), 1.0 / std::log2(3.0), 1e-9);
  EXPECT_EQ(NdcgAt(10, 10), 0.0);
  EXPECT_GT(NdcgAt(2, 10), NdcgAt(3, 10));                // monotone
}

TEST(MetricsTest, AucPerfectAndRandomAndInverted) {
  EXPECT_NEAR(Auc({3.0f, 4.0f}, {1.0f, 2.0f}), 1.0, 1e-9);
  EXPECT_NEAR(Auc({1.0f, 2.0f}, {3.0f, 4.0f}), 0.0, 1e-9);
  EXPECT_NEAR(Auc({1.0f}, {1.0f}), 0.5, 1e-9);  // tie -> 1/2
  // Mixed: pos {2, 0}, neg {1}: pairs (2>1)=1, (0<1)=0 -> 0.5.
  EXPECT_NEAR(Auc({2.0f, 0.0f}, {1.0f}), 0.5, 1e-9);
}

TEST(MetricsTest, RmseMaeHandComputed) {
  const std::vector<float> pred = {1.0f, 3.0f};
  const std::vector<float> target = {2.0f, 1.0f};
  EXPECT_NEAR(Mae(pred, target), 1.5, 1e-6);          // (1 + 2)/2
  EXPECT_NEAR(Rmse(pred, target), std::sqrt(2.5), 1e-6);
}

// Degenerate inputs must die loudly (the metric would otherwise be 0/0 =
// NaN and poison every aggregate downstream); metrics.h documents this
// contract, these tests pin it.
TEST(MetricsDeathTest, EmptyInputsCheckFailInsteadOfReturningNan) {
  EXPECT_DEATH((void)RankOfFirst({}), "empty score vector");
  EXPECT_DEATH((void)Auc({}, {1.0f}), "no positive scores");
  EXPECT_DEATH((void)Auc({1.0f}, {}), "no negative scores");
  EXPECT_DEATH((void)Auc({}, {}), "no positive scores");
  EXPECT_DEATH((void)Rmse({}, {}), "empty input");
  EXPECT_DEATH((void)Mae({}, {}), "empty input");
  EXPECT_DEATH((void)Rrse({}, {}), "empty input");
}

TEST(MetricsDeathTest, MismatchedLengthsAndZeroVarianceCheckFail) {
  EXPECT_DEATH((void)Rmse({1.0f}, {1.0f, 2.0f}), "");
  EXPECT_DEATH((void)Mae({1.0f, 2.0f}, {1.0f}), "");
  EXPECT_DEATH((void)Rrse({1.0f}, {1.0f, 2.0f}), "");
  // Constant targets: the RRSE denominator is 0, so any prediction would
  // score x/0 or 0/0.
  EXPECT_DEATH((void)Rrse({1.0f, 2.0f}, {3.0f, 3.0f}), "zero variance");
}

TEST(MetricsTest, RrseIsOneForMeanPredictor) {
  // Predicting the target mean gives RRSE exactly 1.
  const std::vector<float> target = {1.0f, 2.0f, 3.0f, 6.0f};
  const float mean = 3.0f;
  const std::vector<float> pred(4, mean);
  EXPECT_NEAR(Rrse(pred, target), 1.0, 1e-6);
  // A perfect predictor gives 0.
  EXPECT_NEAR(Rrse(target, target), 0.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Evaluators with a controllable stub model
// ---------------------------------------------------------------------------

/// Scores candidate objects by a fixed per-object utility; ignores history.
class StubModel : public core::Model {
 public:
  StubModel(const data::FeatureSpace& space, std::vector<float> utilities)
      : space_(space), utilities_(std::move(utilities)) {}

  autograd::Variable Score(const data::Batch& batch, bool) override {
    tensor::Tensor out({batch.batch_size, 1});
    for (size_t b = 0; b < batch.batch_size; ++b) {
      const int32_t cand = batch.static_ids[b * batch.n_static + 1] -
                           static_cast<int32_t>(space_.num_users());
      out.at(b, 0) = utilities_[cand];
    }
    return autograd::Variable::Constant(std::move(out));
  }
  std::vector<autograd::Variable> TrainableParameters() override { return {}; }
  std::string name() const override { return "Stub"; }

 private:
  data::FeatureSpace space_;
  std::vector<float> utilities_;
};

struct EvalFixture {
  EvalFixture()
      : log(MakeLog()),
        ds(data::TemporalDataset::FromLog(log).ValueOrDie()),
        space(log.num_users(), log.num_objects()),
        builder(space, 4) {}

  static data::InteractionLog MakeLog() {
    data::InteractionLog log(4, 10);
    // Every user visits objects 0..3 first, so negatives can only come from
    // objects 4..9; the final (test) object is the user id with a
    // user-specific rating (non-zero variance across the test split).
    for (int32_t u = 0; u < 4; ++u) {
      for (int t = 0; t < 4; ++t) {
        log.Add({u, static_cast<int32_t>(t), t, 3.0f});
      }
      log.Add({u, u, 10, 2.0f + 0.5f * static_cast<float>(u)});
    }
    log.Finalize();
    return log;
  }

  data::InteractionLog log;
  data::TemporalDataset ds;
  data::FeatureSpace space;
  data::BatchBuilder builder;
};

TEST(RankingEvaluatorTest, OracleModelGetsPerfectScores) {
  EvalFixture fx;
  // Utility: test targets (objects 0..3) score highest.
  std::vector<float> util(10, 0.0f);
  for (int i = 0; i < 4; ++i) util[i] = 10.0f + i;
  StubModel oracle(fx.space, util);
  RankingEvaluator evaluator(&fx.ds, &fx.builder, /*num_negatives=*/5,
                             /*seed=*/1);
  auto metrics = evaluator.Evaluate(&oracle, {1, 5});
  EXPECT_NEAR(metrics.hr[5], 1.0, 1e-9);
  EXPECT_NEAR(metrics.ndcg[5], 1.0, 1e-9);
}

TEST(RankingEvaluatorTest, AntiOracleScoresZero) {
  EvalFixture fx;
  std::vector<float> util(10, 1.0f);
  for (int i = 0; i < 4; ++i) util[i] = -10.0f;  // targets ranked last
  StubModel anti(fx.space, util);
  RankingEvaluator evaluator(&fx.ds, &fx.builder, 5, 1);
  auto metrics = evaluator.Evaluate(&anti, {5});
  EXPECT_NEAR(metrics.hr[5], 0.0, 1e-9);
}

TEST(RankingEvaluatorTest, CandidatesFixedAcrossModels) {
  EvalFixture fx;
  RankingEvaluator e1(&fx.ds, &fx.builder, 5, 99);
  RankingEvaluator e2(&fx.ds, &fx.builder, 5, 99);
  std::vector<float> util(10, 0.0f);
  util[0] = 1.0f;
  StubModel m(fx.space, util);
  auto a = e1.Evaluate(&m, {5, 10});
  auto b = e2.Evaluate(&m, {5, 10});
  EXPECT_EQ(a.hr[5], b.hr[5]);
  EXPECT_EQ(a.ndcg[10], b.ndcg[10]);
}

TEST(ClassificationEvaluatorTest, OracleAucIsOne) {
  EvalFixture fx;
  std::vector<float> util(10, -5.0f);
  for (int i = 0; i < 4; ++i) util[i] = 5.0f;  // positives high
  StubModel oracle(fx.space, util);
  ClassificationEvaluator evaluator(&fx.ds, &fx.builder, 7);
  auto metrics = evaluator.Evaluate(&oracle);
  EXPECT_NEAR(metrics.auc, 1.0, 1e-9);
  EXPECT_LT(metrics.rmse, 0.05);
  EXPECT_LT(metrics.logloss, 0.05);
}

TEST(RegressionEvaluatorTest, PerfectAndBiasedPredictors) {
  EvalFixture fx;
  // Test target of user u is object u with rating 2.0 + 0.5u.
  std::vector<float> util(10, 0.0f);
  for (int u = 0; u < 4; ++u) util[u] = 2.0f + 0.5f * static_cast<float>(u);
  StubModel perfect(fx.space, util);
  RegressionEvaluator evaluator(&fx.ds, &fx.builder);
  auto m = evaluator.Evaluate(&perfect);
  EXPECT_NEAR(m.mae, 0.0, 1e-6);
  EXPECT_NEAR(m.rrse, 0.0, 1e-6);

  std::vector<float> biased = util;
  for (int u = 0; u < 4; ++u) biased[u] += 1.0f;
  StubModel off(fx.space, biased);
  auto m2 = evaluator.Evaluate(&off);
  EXPECT_NEAR(m2.mae, 1.0, 1e-6);
  EXPECT_NEAR(m2.rmse, 1.0, 1e-6);
}

TEST(ScoreExamplesTest, ChunksMatchSingleBatch) {
  EvalFixture fx;
  std::vector<float> util(10);
  for (int i = 0; i < 10; ++i) util[i] = static_cast<float>(i);
  StubModel m(fx.space, util);
  std::vector<const data::SequenceExample*> examples;
  for (const auto& ex : fx.ds.train()) examples.push_back(&ex);
  auto big = ScoreExamples(&m, fx.builder, examples, nullptr, 1000);
  auto tiny = ScoreExamples(&m, fx.builder, examples, nullptr, 2);
  ASSERT_EQ(big.size(), tiny.size());
  for (size_t i = 0; i < big.size(); ++i) EXPECT_EQ(big[i], tiny[i]);
}

}  // namespace
}  // namespace eval
}  // namespace seqfm
